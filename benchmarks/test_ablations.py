"""Ablations over the design choices DESIGN.md calls out."""

import json

import pytest

from repro.bench import (
    AblationHarness,
    batch_execution,
    hot_vs_cold,
    impl_swap,
    interconnect_sweep,
)


@pytest.fixture(scope="module")
def harness(bench_sf):
    # Ablations run at half the figure-4 scale: they sweep engines.
    return AblationHarness(sf=max(bench_sf / 2, 0.02))


def test_caching_region_pays_off(harness, results_dir, benchmark):
    """Hot runs must be much faster than cold runs over PCIe (§3.2.3 +
    hot-run measurement methodology)."""
    result = benchmark.pedantic(hot_vs_cold, args=(harness,), rounds=1, iterations=1)
    (results_dir / "ablation_hot_cold.txt").write_text(repr(result) + "\n")
    assert result["speedup"] > 2.0


def test_nvlink_shrinks_the_cold_run_penalty(harness, benchmark):
    def check():
        """§2.1: NVLink-C2C makes beyond-device-memory access cheap - the
        cold-run penalty over NVLink must be far smaller than over PCIe4."""
        from repro.gpu.specs import GH200

        pcie = hot_vs_cold(harness)
        nvlink = hot_vs_cold(harness, spec=GH200)
        assert nvlink["speedup"] < pcie["speedup"]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_kernel_impl_swap_preserves_speed_class(harness, results_dir, benchmark):
    def check():
        """§3.2.2: operator implementations are swappable.  The custom hash
        group-by avoids libcudf's sort path for string keys."""
        from repro.bench import impl_swap_string_groupby

        result = impl_swap_string_groupby(harness)
        (results_dir / "ablation_impl_swap.txt").write_text(repr(result) + "\n")
        assert result["custom"] < result["libcudf"]  # hash beats sort on strings
        assert result["custom"] > 0

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_impl_swap_on_numeric_join_query(harness, benchmark):
    def check():
        """On a join-heavy numeric query the sort-merge 'custom' join pays the
        log-factor passes: libcudf's hash join should win or tie."""
        result = impl_swap(harness, query=5, op_kinds=("join",))
        assert result["libcudf"] <= result["custom"] * 1.5

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_interconnect_sweep(harness, results_dir, benchmark):
    """Cold-run time must improve monotonically PCIe4 -> PCIe5 -> NVLink."""
    text = benchmark.pedantic(interconnect_sweep, args=(harness,), rounds=1, iterations=1)
    (results_dir / "ablation_interconnect.txt").write_text(text + "\n")
    lines = [line for line in text.splitlines() if "ms" in line]
    times = [float(line.split("|")[-1].strip().split()[0]) for line in lines]
    assert times == sorted(times, reverse=True)


def test_batch_execution_matches_whole_table(harness, results_dir, benchmark):
    def check():
        """§3.4 out-of-core batching: same result, bounded extra overhead."""
        result = batch_execution(harness, query=1, batch_rows=20_000)
        (results_dir / "ablation_batch.txt").write_text(repr(result) + "\n")
        assert result["batched_rows"] == 4  # Q1's four groups
        # Batching adds per-batch launches but must stay in the same class.
        assert result["batched_s"] < result["whole_s"] * 10

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_compression_saves_capacity(harness, results_dir, benchmark):
    """§3.4 lightweight compression: the caching footprint must shrink
    substantially while hot-run time stays in the same class."""
    from repro.bench import compression_ablation

    result = benchmark.pedantic(
        compression_ablation, args=(harness,), rounds=1, iterations=1
    )
    (results_dir / "ablation_compression.txt").write_text(repr(result) + "\n")
    assert result["packed_cache_bytes"] < 0.7 * result["plain_cache_bytes"]
    assert result["packed_hot_s"] < result["plain_hot_s"] * 3


def test_multi_gpu_scales_compute(results_dir, benchmark):
    """§3.4 multi-GPU per node: 8 ranks beat 4 ranks on compute time."""
    from repro.bench import multi_gpu_ablation

    result = benchmark.pedantic(multi_gpu_ablation, rounds=1, iterations=1)
    (results_dir / "ablation_multigpu.txt").write_text(repr(result) + "\n")
    assert result["gpus2_compute_s"] < result["gpus1_compute_s"]


def test_overlap_hides_cold_load_and_exchange_time(harness, results_dir, benchmark):
    """Copy/compute overlap (async copy streams + prefetch): cold runs of
    Q1/Q3/Q6 must get strictly faster with overlap on, the distributed Q3
    total must improve, and its Table-2 exchange fraction must not grow."""
    from repro.bench import overlap_ablation

    result = benchmark.pedantic(
        overlap_ablation, args=(harness,), rounds=1, iterations=1
    )
    (results_dir / "ablation_overlap.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    for q in (1, 3, 6):
        assert result[f"q{q}_overlap_s"] < result[f"q{q}_baseline_s"]
        assert result[f"q{q}_hidden_s"] > 0.0
    assert result["dist_overlap_total_s"] < result["dist_baseline_total_s"]
    assert result["dist_overlap_exchange_frac"] <= result["dist_baseline_exchange_frac"]


def test_oocore_survives_shrinking_pools_without_fallback(results_dir, benchmark):
    """Out-of-core partitioned execution: an over-HBM Q9 must complete on
    the GPU tier (no fallback, no rejection) at every pool size, with the
    spill machinery engaged at the small ones, and the slowdown curve must
    be monotone and cliff-free — graceful degradation, not collapse."""
    from repro.bench import oocore_ablation

    result = benchmark.pedantic(oocore_ablation, rounds=1, iterations=1)
    (results_dir / "ablation_oocore.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    sweep = result["sweep"]
    assert len(sweep) >= 3  # acceptance wants a curve, not a point
    for entry in sweep:
        # With the flag on the *first attempt* finishes on the GPU tier.
        assert entry["ooc_tier"] is None
        assert entry["ooc_rows_match"]
    # The spill machinery actually engaged at the tight pool sizes.
    assert any(entry["spilled_bytes"] > 0 for entry in sweep)
    # Without the flag, the tightest pool needs the degradation ladder.
    assert sweep[-1]["off_tier"] is not None
    # Monotone (shrinking memory never speeds the query up) ...
    times = [entry["ooc_s"] for entry in sweep]
    for faster, slower in zip(times, times[1:]):
        assert slower >= faster * 0.999
    # ... and cliff-free: no step blows up, and the whole sweep stays in
    # one order of magnitude of the roomiest out-of-core run.
    for faster, slower in zip(times, times[1:]):
        assert slower < faster * 3.0
    assert times[-1] < times[0] * 10.0


def test_fusion_shrinks_streaming_queries(harness, results_dir, benchmark):
    """Pipeline fusion + compiled expressions: the streaming-bound Q1 and
    Q6 must get strictly faster hot with fusion on, with the saved
    intermediate-materialisation bytes recorded; Q3 (join-bound control)
    must never get slower."""
    from repro.bench import fusion_ablation

    result = benchmark.pedantic(
        fusion_ablation, args=(harness,), rounds=1, iterations=1
    )
    (results_dir / "ablation_fusion.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    for q in (1, 6):
        entry = result["per_query"][f"q{q}"]
        assert entry["fused_hot_s"] < entry["baseline_hot_s"]
        assert entry["fused_cold_s"] < entry["baseline_cold_s"]
        assert entry["fused_kernels"] < entry["baseline_kernels"]
        assert entry["saved_bytes"] > 0
        assert entry["fused_regions"] > 0
    q3 = result["per_query"]["q3"]
    assert q3["fused_hot_s"] <= q3["baseline_hot_s"]


def test_predicate_transfer_shrinks_the_q3_shuffle(results_dir, benchmark):
    """§3.4 predicate transfer: exchange volume and time must both drop
    substantially on the shuffle-bound query, with identical results
    (correctness is asserted by tests/distributed)."""
    from repro.bench import predicate_transfer_ablation

    result = benchmark.pedantic(predicate_transfer_ablation, rounds=1, iterations=1)
    (results_dir / "ablation_predicate_transfer.txt").write_text(repr(result) + "\n")
    assert result["pt_bytes"] < 0.5 * result["baseline_bytes"]
    assert result["pt_exchange_s"] < result["baseline_exchange_s"]
