"""Figure 1 — hardware trends (GPU memory, interconnect, storage, network).

Regenerates the four trend panels and checks the growth claims §2.1 makes:
memory capacity roughly doubling per generation, PCIe doubling every ~2
years, NVLink-C2C's step change, and declining H100 pricing.
"""

from repro.bench import figure1_all, figure1_series
from repro.gpu.specs import TRENDS, trend_cagr


def test_figure1_regenerates(results_dir, benchmark):
    text = benchmark.pedantic(figure1_all, rounds=1, iterations=1)
    (results_dir / "figure1.txt").write_text(text + "\n")
    for panel in ("gpu_memory_gb", "interconnect_gbps", "storage_gbps", "network_gbps"):
        assert panel in text


def test_gpu_memory_doubles_per_generation(benchmark):
    def check():
        # Volta 32 -> Ampere 80 -> Hopper-class 141/192 -> Blackwell 288 (§2.1).
        values = {label.split(" ")[0]: v for _, label, v in TRENDS["gpu_memory_gb"]}
        assert values["V100"] == 32.0
        assert values["A100"] == 80.0
        assert values["B300"] == 288.0

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_pcie_doubles_every_generation(benchmark):
    def check():
        pcie = [v for _, label, v in TRENDS["interconnect_gbps"] if label.startswith("PCIe")]
        for slower, faster in zip(pcie, pcie[1:]):
            assert faster == 2 * slower

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_nvlink_c2c_is_step_change(benchmark):
    def check():
        nvlink = next(v for _, label, v in TRENDS["interconnect_gbps"] if "NVLink" in label)
        best_pcie = max(v for _, label, v in TRENDS["interconnect_gbps"] if "PCIe" in label)
        assert nvlink > 5 * best_pcie

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_growth_rates(benchmark):
    def check():
        assert trend_cagr("storage_gbps") > 0.3  # >30%/yr storage bandwidth
        assert trend_cagr("network_gbps") > 0.2
        assert trend_cagr("h100_price_per_hour") < -0.3  # prices falling fast

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_series_renderer(benchmark):
    text = benchmark.pedantic(figure1_series, args=("gpu_memory_gb",), rounds=1, iterations=1)
    assert "CAGR" in text
