"""Figure 4 — TPC-H end-to-end, single node, cost-normalised.

MiniDuck (DuckDB role) and ClickLite (ClickHouse role) on the CPU device
vs Sirius on the GH200 device.  Asserts the paper's shape:

* Sirius beats MiniDuck on (almost) every query, several-fold geomean;
* Sirius beats ClickLite by a larger factor;
* ClickLite cannot run Q21 and does not finish Q9;
* the worst Sirius queries are the tiny-input ones (launch-overhead
  bound), matching GPU behaviour at small scale.
"""

import pytest

from repro.bench import Figure4Result


@pytest.fixture(scope="module")
def figure4(single_node_harness, results_dir) -> Figure4Result:
    result = single_node_harness.run()
    (results_dir / "figure4.txt").write_text(
        f"TPC-H SF {result.scale_factor} (simulated hot-run times)\n"
        + result.figure4_table()
        + "\n"
    )
    (results_dir / "figure5.txt").write_text(result.figure5_table() + "\n")
    return result


def test_all_queries_ran(figure4, benchmark):
    def check():
        assert [t.query for t in figure4.timings] == list(range(1, 23))
        assert all(t.sirius_s > 0 and t.duckdb_s > 0 for t in figure4.timings)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_sirius_beats_duckdb_geomean(figure4, benchmark):
    def check():
        # Paper: 7x at SF100.  At bench scale the simulated geomean lands
        # lower (launch overheads amortise with data size) but must remain a
        # clear multi-x win.
        assert figure4.speedup_vs_duckdb > 3.0

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_sirius_beats_clickhouse_by_more(figure4, benchmark):
    def check():
        assert figure4.speedup_vs_clickhouse >= figure4.speedup_vs_duckdb * 0.9
        assert figure4.speedup_vs_clickhouse > 3.0

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_clickhouse_q21_unsupported(figure4, benchmark):
    def check():
        q21 = next(t for t in figure4.timings if t.query == 21)
        assert q21.clickhouse_status == "unsupported"

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_clickhouse_q9_does_not_finish(figure4, benchmark):
    def check():
        q9 = next(t for t in figure4.timings if t.query == 9)
        assert q9.clickhouse_status == "dnf"

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_figure4_byte_identical_to_seed(figure4, results_dir, bench_sf, benchmark):
    """Rendered output must match the seed snapshot byte for byte (Q9 DNF /
    Q21 unsupported rendering included), so incidental changes can't move a
    single simulated nanosecond.  Refreshed once for the LEFT JOIN residual-ON
    correctness fix, which changes Q13's plan (filter pushed below the join;
    answer cross-validated against SQLite)."""

    def check():
        if bench_sf != 0.1:
            pytest.skip("seed snapshot was rendered at SF 0.1")
        generated = (results_dir / "figure4.txt").read_text()
        seed = (results_dir / "figure4_seed.txt").read_text()
        assert generated == seed

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_big_scan_queries_show_large_speedup(figure4, benchmark):
    def check():
        # Q1 and Q6 stream the full lineitem table - the bandwidth-ratio
        # regime where the GPU advantage is largest.
        for q in (1, 6):
            t = next(x for x in figure4.timings if x.query == q)
            assert t.duckdb_s / t.sirius_s > 5.0

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_harness_wall_clock(single_node_harness, benchmark):
    """pytest-benchmark wall-clock of one representative query (Q6)."""
    benchmark.pedantic(
        single_node_harness.run_query, args=(6,), rounds=3, iterations=1
    )
