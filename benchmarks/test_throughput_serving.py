"""Serving benchmark — multi-query throughput and tail latency.

A mixed Q1/Q3/Q6 workload on one simulated GH200:

* concurrency ≥ 4 must beat serialized back-to-back execution on
  aggregate simulated throughput (cross-query stream parallelism);
* shortest-expected-cost-first must beat FIFO on p50 latency when a
  long query arrives first (SJF's whole point);
* same seed, same schedule: the report is bit-deterministic.

The full report (per-policy throughput, p50/p95/p99 split into queue
wait vs service) is written to ``benchmarks/results/
throughput_serving.json`` for the CI artifact.
"""

import json

import pytest

from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import MiniDuck
from repro.sched import ServingScheduler, WorkloadDriver, WorkloadQuery
from repro.tpch import generate_tpch, tpch_query

from .conftest import BENCH_SF

SERVE_SF = min(BENCH_SF, 0.05)  # serving interleaves; keep the data small
SEED = 19920101
MIX = (1, 3, 6)
STREAMS = 4


@pytest.fixture(scope="module")
def workload():
    data = generate_tpch(sf=SERVE_SF, seed=SEED)
    host = MiniDuck()
    host.load_tables(data)
    plans = {n: host.plan(tpch_query(n)) for n in MIX}
    return data, plans


def fresh_engine(data) -> SiriusEngine:
    engine = SiriusEngine.for_spec(GH200)
    engine.warm_cache(data)
    return engine


@pytest.fixture(scope="module")
def serialized_seconds(workload) -> float:
    data, plans = workload
    engine = fresh_engine(data)
    total = 0.0
    for n in MIX:
        engine.execute(plans[n], data)
        total += engine.last_profile.sim_seconds
    return total


def serve(workload, policy, submit_order=MIX, streams=STREAMS):
    data, plans = workload
    engine = fresh_engine(data)
    sched = ServingScheduler(engine, policy=policy, streams=streams, seed=SEED)
    for n in submit_order:
        sched.submit(plans[n], data, label=f"q{n}", arrival_s=0.0)
    return sched.run()


def test_concurrent_throughput_beats_serialized(
    workload, serialized_seconds, benchmark
):
    def check():
        report = serve(workload, "fair")
        assert report.counters["completed"] == len(MIX)
        assert report.makespan_s < serialized_seconds
        concurrent_qps = report.throughput_qps
        serialized_qps = len(MIX) / serialized_seconds
        assert concurrent_qps > serialized_qps
        return report

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_sjf_beats_fifo_on_p50(workload, benchmark):
    """Long query submitted first: FIFO makes the short ones wait; SJF
    reorders and wins the median."""

    def check():
        # Q1 (the heavy aggregation) first, then the lighter Q3/Q6.
        fifo = serve(workload, "fifo", submit_order=(1, 3, 6), streams=1)
        sjf = serve(workload, "sjf", submit_order=(1, 3, 6), streams=1)
        assert sjf.latency["total_s"]["p50"] < fifo.latency["total_s"]["p50"]
        return fifo, sjf

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_same_seed_is_deterministic(workload, benchmark):
    def check():
        data, plans = workload
        reports = []
        for _ in range(2):
            engine = fresh_engine(data)
            mix = [WorkloadQuery(f"q{n}", plans[n]) for n in MIX]
            driver = WorkloadDriver(engine, data, mix, seed=SEED)
            reports.append(
                driver.open_loop(
                    num_queries=16, rate_qps=4000.0, policy="fair", streams=STREAMS
                )
            )
        assert reports[0].schedule_digest == reports[1].schedule_digest
        assert reports[0].to_dict() == reports[1].to_dict()

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_cold_start_serving_benefits_from_overlap(workload, results_dir, benchmark):
    """Cold-start serving (caches empty, every query pays its loads): the
    copy/compute-overlap engine must finish the mix strictly faster, and
    both runs stay bit-deterministic."""

    def cold_serve(enabled: bool):
        data, plans = workload
        engine = SiriusEngine.for_spec(GH200, overlap=enabled)  # no warm_cache
        sched = ServingScheduler(engine, policy="fair", streams=STREAMS, seed=SEED)
        for n in MIX:
            sched.submit(plans[n], data, label=f"q{n}", arrival_s=0.0)
        return sched.run()

    def check():
        baseline = cold_serve(False)
        overlapped = cold_serve(True)
        assert baseline.counters["completed"] == len(MIX)
        assert overlapped.counters["completed"] == len(MIX)
        assert overlapped.makespan_s < baseline.makespan_s
        repeat = cold_serve(True)
        assert repeat.makespan_s == overlapped.makespan_s
        doc = {
            "baseline_makespan_s": baseline.makespan_s,
            "overlap_makespan_s": overlapped.makespan_s,
            "speedup": baseline.makespan_s / overlapped.makespan_s,
        }
        (results_dir / "serving_cold_overlap.json").write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_write_serving_report(workload, serialized_seconds, results_dir, benchmark):
    """Render the cross-policy serving report consumed by CI."""

    def check():
        doc = {
            "sf": SERVE_SF,
            "seed": SEED,
            "mix": [f"q{n}" for n in MIX],
            "streams": STREAMS,
            "serialized_s": serialized_seconds,
            "policies": {},
        }
        for policy in ("fifo", "fair", "sjf"):
            report = serve(workload, policy)
            doc["policies"][policy] = report.to_dict()
        out = results_dir / "throughput_serving.json"
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        assert out.exists()

    benchmark.pedantic(check, rounds=1, iterations=1)
