"""Table 2 — distributed TPC-H (Q1, Q3, Q6) on a 4-node cluster.

Asserts the paper's shape:

* Sirius is fastest on all three queries, with the largest Doris speedup
  on Q1;
* Q3 is exchange-bound for Sirius (its plan shuffles both orders and
  lineitem);
* Q1 and Q6 are dominated by the coordinator/other component, not by GPU
  compute ("GPU execution is not the primary performance bottleneck");
* the ClickHouse-style baseline degrades most on the join query (Q3), the
  one its initiator-executed distributed joins cannot scale out.
"""

import pytest

from repro.bench import Table2Result


@pytest.fixture(scope="module")
def table2(distributed_harness, results_dir) -> Table2Result:
    result = distributed_harness.run()
    (results_dir / "table2.txt").write_text(
        f"Distributed TPC-H SF {result.scale_factor}, {result.num_nodes} nodes "
        "(simulated times)\n" + result.table() + "\n"
    )
    return result


def test_sirius_fastest_everywhere(table2, benchmark):
    def check():
        for row in table2.rows:
            assert row.sirius_s < row.doris_s
            assert row.sirius_s < row.clickhouse_s

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_q1_has_largest_doris_speedup(table2, benchmark):
    def check():
        # Q1 shows the biggest Doris gap of the scan-shaped queries (the
        # paper: 12.5x vs 2.4x on Q6); Q3's ratio moves with the exchange
        # term, so compare within a tolerance of the overall max.
        q1 = table2.row(1)
        assert q1.speedup_vs_doris > table2.row(6).speedup_vs_doris
        assert q1.speedup_vs_doris >= 0.85 * max(r.speedup_vs_doris for r in table2.rows)
        assert q1.speedup_vs_doris > 4.0

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_q3_is_exchange_bound_for_sirius(table2, benchmark):
    def check():
        q3 = table2.row(3)
        assert q3.sirius_exchange_s > q3.sirius_compute_s
        assert q3.exchanged_bytes > 0

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_q1_q6_exchange_negligible(table2, benchmark):
    def check():
        for q in (1, 6):
            row = table2.row(q)
            assert row.sirius_exchange_s < 0.2 * row.sirius_s

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_gpu_compute_not_the_bottleneck(table2, benchmark):
    def check():
        # §4.3: "GPU execution is not the primary performance bottleneck".
        for q in (1, 6):
            row = table2.row(q)
            assert row.sirius_other_s > row.sirius_compute_s * 0.5

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_rows_are_views_of_query_profiles(table2, benchmark):
    def check():
        # The observability layer's QueryProfile is the source of truth;
        # every Table2Row numeric field must match it exactly.
        for row in table2.rows:
            profile = row.sirius_profile
            assert profile is not None
            split = profile.table2_split()
            assert row.sirius_s == profile.sim_seconds
            assert row.sirius_compute_s == split["compute"]
            assert row.sirius_exchange_s == split["exchange"]
            assert row.sirius_other_s == split["other"]
            assert row.exchanged_bytes == profile.exchanged_bytes
            assert profile.retries == 0  # fault-free run

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_clickhouse_degrades_most_on_the_join_query(table2, benchmark):
    def check():
        # Relative to Doris, ClickHouse loses the most ground on Q3 - the
        # only join query - because its distributed joins run on the
        # initiator alone.  (The paper's absolute collapse, 15x slower
        # than Doris, needs SF100-sized broadcasts.)
        ratios = {r.query: r.clickhouse_s / r.doris_s for r in table2.rows}
        assert ratios[3] > ratios[1]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_harness_wall_clock(distributed_harness, benchmark):
    benchmark.pedantic(distributed_harness.run_query, args=(6,), rounds=2, iterations=1)
