"""Fleet serving benchmark — replication, caching, and elasticity.

A bursty open-loop Q1/Q3/Q6 workload at 10x the solo serving
concurrency (160 queries, 40x oversubscribed bursts) against
``repro.fleet``:

* 4 always-on replicas must beat 1 replica on p99 total latency —
  replication is what absorbs the bursts;
* a warm result cache must beat the cache-off fleet on throughput —
  repeated query shapes short-circuit at the router;
* an autoscaled 1..4 fleet must bill fewer replica-seconds than the
  always-on 4-replica fleet while still completing everything;
* same seed, same schedule: every fleet report is bit-deterministic.

The full report (per-config p50/p95/p99 split into queue wait vs
service, cache hit rates, replica-seconds) is written to
``benchmarks/results/fleet_serving.json`` for the CI artifact.
"""

import json

import pytest

from repro.fleet import (
    Autoscaler,
    FleetScheduler,
    FleetWorkloadDriver,
    engine_factory,
)
from repro.gpu.specs import GH200
from repro.hosts import MiniDuck
from repro.sched import WorkloadQuery
from repro.tpch import generate_tpch, tpch_query

from .conftest import BENCH_SF

SERVE_SF = min(BENCH_SF, 0.05)  # serving interleaves; keep the data small
SEED = 19920101
MIX = (1, 3, 6)
STREAMS = 4

# 10x the solo serving loop's 16 queries; bursts oversubscribe a single
# replica's sustainable rate by roughly 10x.
NUM_QUERIES = 160
BURST = dict(
    base_qps=500.0, burst_qps=20000.0, burst_every_s=0.01, burst_len_s=0.002
)


@pytest.fixture(scope="module")
def workload():
    data = generate_tpch(sf=SERVE_SF, seed=SEED)
    host = MiniDuck()
    host.load_tables(data)
    plans = {n: host.plan(tpch_query(n)) for n in MIX}
    mix = [WorkloadQuery(f"q{n}", plans[n]) for n in MIX]
    return data, mix


def run_fleet(workload, replicas, result_cache_bytes=0, autoscaler=None):
    data, mix = workload
    fleet = FleetScheduler(
        engine_factory(GH200, warm=data),
        replicas=replicas,
        routing="least-outstanding",
        streams=STREAMS,
        seed=SEED,
        result_cache_bytes=result_cache_bytes,
        plan_cache_entries=64 if result_cache_bytes else 0,
        autoscaler=autoscaler,
    )
    driver = FleetWorkloadDriver(data, mix, seed=SEED)
    return driver.bursty_open_loop(fleet, num_queries=NUM_QUERIES, **BURST)


_RUNS: dict[str, object] = {}


def fleet_report(workload, key):
    """Each configuration is simulated once; every test shares the runs."""
    if key not in _RUNS:
        if key == "solo_1":
            _RUNS[key] = run_fleet(workload, replicas=1)
        elif key == "fleet_4":
            _RUNS[key] = run_fleet(workload, replicas=4)
        elif key == "fleet_4_warm":
            _RUNS[key] = run_fleet(
                workload, replicas=4, result_cache_bytes=1 << 25
            )
        elif key == "autoscale_1_to_4":
            _RUNS[key] = run_fleet(
                workload,
                replicas=1,
                autoscaler=Autoscaler(
                    min_replicas=1,
                    max_replicas=4,
                    up_queue_wait_s=0.0005,
                    down_utilization=0.5,
                    cooldown_s=0.001,
                    interval_s=0.0005,
                ),
            )
        else:  # pragma: no cover - guard against typos
            raise KeyError(key)
    return _RUNS[key]


def test_four_replicas_beat_one_on_p99(workload, benchmark):
    def check():
        one = fleet_report(workload, "solo_1")
        four = fleet_report(workload, "fleet_4")
        assert one.counters["completed"] == NUM_QUERIES
        assert four.counters["completed"] == NUM_QUERIES
        # The acceptance bar: replication wins the tail under bursts.
        assert four.latency["total_s"]["p99"] < one.latency["total_s"]["p99"]
        assert four.latency["total_s"]["p95"] < one.latency["total_s"]["p95"]
        return one, four

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_warm_result_cache_beats_cold_on_throughput(workload, benchmark):
    def check():
        cold = fleet_report(workload, "fleet_4")
        warm = fleet_report(workload, "fleet_4_warm")
        assert warm.counters["completed"] == NUM_QUERIES
        # The mix repeats three shapes: nearly everything after the first
        # pass is served out of the result cache.
        assert warm.counters["cache_hits"] > NUM_QUERIES // 2
        assert warm.result_cache_hit_rate > 0.5
        # The acceptance bar: the warm cache wins on throughput.
        assert warm.throughput_qps > cold.throughput_qps
        assert warm.latency["total_s"]["p50"] <= cold.latency["total_s"]["p50"]
        return cold, warm

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_autoscaler_bills_less_than_always_on(workload, benchmark):
    def check():
        four = fleet_report(workload, "fleet_4")
        auto = fleet_report(workload, "autoscale_1_to_4")
        assert auto.counters["completed"] == NUM_QUERIES
        assert auto.counters["scale_ups"] >= 1
        # Elasticity pays: fewer replica-seconds than always-on 4.
        assert auto.replica_seconds < four.replica_seconds
        return auto

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fleet_run_is_deterministic(workload, benchmark):
    def check():
        first = fleet_report(workload, "fleet_4")
        repeat = run_fleet(workload, replicas=4)
        assert repeat.schedule_digest == first.schedule_digest
        assert repeat.to_dict() == first.to_dict()

    benchmark.pedantic(check, rounds=1, iterations=1)


def _config_doc(report) -> dict:
    """The compact per-config slice of the CI artifact (no per-job rows)."""
    return {
        "routing": report.routing,
        "makespan_s": report.makespan_s,
        "throughput_qps": report.throughput_qps,
        "latency": report.latency,
        "counters": report.counters,
        "result_cache": report.result_cache,
        "result_cache_hit_rate": report.result_cache_hit_rate,
        "plan_cache": report.plan_cache,
        "replica_seconds": report.replica_seconds,
        "autoscale_events": report.autoscale_events,
        "schedule_digest": report.schedule_digest,
        "replicas": [
            {k: v for k, v in r.items() if k != "report"}
            for r in report.replicas
        ],
    }


def test_write_fleet_report(workload, results_dir, benchmark):
    """Render the cross-config fleet report consumed by CI."""

    def check():
        doc = {
            "sf": SERVE_SF,
            "seed": SEED,
            "mix": [f"q{n}" for n in MIX],
            "streams": STREAMS,
            "num_queries": NUM_QUERIES,
            "burst": BURST,
            "configs": {
                key: _config_doc(fleet_report(workload, key))
                for key in (
                    "solo_1",
                    "fleet_4",
                    "fleet_4_warm",
                    "autoscale_1_to_4",
                )
            },
        }
        out = results_dir / "fleet_serving.json"
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        assert out.exists()

    benchmark.pedantic(check, rounds=1, iterations=1)
