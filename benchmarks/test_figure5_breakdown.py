"""Figure 5 — Sirius per-query operator breakdown.

Asserts the paper's observations:

* joins dominate the join-heavy queries (Q2-Q5, Q7-Q8, Q20-Q22);
* group-by is a substantial share for Q1 (few groups -> contention) and
  Q10/Q18 (string keys -> sort-based group-by);
* filtering dominates Q6 and Q19 and is substantial in Q13;
* aggregation/order-by never dominate end-to-end time.
"""

import pytest


@pytest.fixture(scope="module")
def figure4(single_node_harness):
    return single_node_harness.run()


def _share(timing, category):
    total = sum(timing.sirius_breakdown.values())
    return timing.sirius_breakdown.get(category, 0.0) / total if total else 0.0


def _timing(figure4, q):
    return next(t for t in figure4.timings if t.query == q)


@pytest.mark.parametrize("q", [3, 5, 7, 8, 21])
def test_joins_dominate_join_heavy_queries(figure4, q, benchmark):
    def check():
        assert figure4.dominant_category(q) == "join"

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("q", [2, 4, 20, 22])
def test_joins_substantial_in_remaining_join_queries(figure4, q, benchmark):
    def check():
        assert _share(_timing(figure4, q), "join") > 0.3

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_groupby_substantial_in_q1(figure4, benchmark):
    def check():
        # Four groups -> GPU atomic contention makes group-by visible.
        assert _share(_timing(figure4, 1), "groupby") > 0.15

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("q", [10, 13, 18])
def test_string_groupby_outweighs_agg_and_orderby(figure4, q, benchmark):
    """Q10/Q13/Q18 group on string keys (sort-based path): their group-by
    time must exceed the aggregation and order-by components the paper
    says never matter.  (Absolute shares are smaller than the paper's at
    bench scale: the inputs these group-bys see shrink with SF.)"""
    def check():
        t = _timing(figure4, q)
        assert _share(t, "groupby") > _share(t, "aggregation")

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_string_groupby_uses_sort_path(figure4, benchmark):
    def check():
        # Q18's string-keyed group-by must cost more per query than Q3's
        # numeric-keyed one despite Q3 aggregating more rows.
        q18 = _timing(figure4, 18).sirius_breakdown.get("groupby", 0.0)
        q3 = _timing(figure4, 3).sirius_breakdown.get("groupby", 0.0)
        assert q18 > q3

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("q", [6, 19])
def test_filter_dominates_filter_heavy_queries(figure4, q, benchmark):
    def check():
        assert figure4.dominant_category(q) == "filter"

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_filter_substantial_in_q13(figure4, benchmark):
    def check():
        # Complex low-selectivity string matching (NOT LIKE '%special%requests%').
        assert _share(_timing(figure4, 13), "filter") > 0.1

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("q", range(1, 23))
def test_agg_and_orderby_never_dominate(figure4, q, benchmark):
    def check():
        assert figure4.dominant_category(q) not in ("aggregation", "orderby")

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_breakdown_renders(figure4, benchmark):
    text = benchmark.pedantic(figure4.figure5_table, rounds=1, iterations=1)
    assert text.count("Q") >= 22
