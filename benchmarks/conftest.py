"""Shared benchmark configuration.

Scale factor comes from ``REPRO_BENCH_SF`` (default 0.1 — the largest
scale that keeps a full three-engine TPC-H sweep in a few wall-clock
minutes).  The harnesses report *simulated* time; pytest-benchmark's
wall-clock numbers measure the harness itself.

Rendered tables for every figure/table are written to
``benchmarks/results/`` so EXPERIMENTS.md can reference the exact output.
"""

import os
from pathlib import Path

import pytest

BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.1"))
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_sf() -> float:
    return BENCH_SF


@pytest.fixture(scope="session")
def single_node_harness():
    from repro.bench import SingleNodeHarness

    return SingleNodeHarness(sf=BENCH_SF)


@pytest.fixture(scope="session")
def distributed_harness():
    from repro.bench import DistributedHarness

    return DistributedHarness(sf=BENCH_SF, num_nodes=4)
