"""Table 1 — CPU vs GPU instance comparison.

Regenerates the paper's hardware-economics table from the spec catalog and
checks its headline claims (bandwidth gap, cost parity of the GH200).
"""

from repro.bench import table1
from repro.gpu.specs import C6A_METAL, GH200_INSTANCE


def test_table1_regenerates(results_dir, benchmark):
    text = benchmark.pedantic(table1, rounds=1, iterations=1)
    (results_dir / "table1.txt").write_text(text + "\n")
    assert "c6a.metal" in text and "GH200" in text


def test_table1_headline_claims(benchmark):
    def check():
        # GPU memory bandwidth ~7.5x the CPU's at lower hourly cost.
        assert GH200_INSTANCE.memory_bw_gbps / C6A_METAL.memory_bw_gbps == 7.5
        assert GH200_INSTANCE.cost_per_hour < C6A_METAL.cost_per_hour
        # But far less memory capacity - the paper's central tension.
        assert GH200_INSTANCE.memory_gb < C6A_METAL.memory_gb

    benchmark.pedantic(check, rounds=1, iterations=1)
