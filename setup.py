"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation --no-use-pep517`` uses the legacy
``setup.py develop`` path; all real metadata lives in pyproject.toml.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.23"],
    python_requires=">=3.10",
)
