"""Defect corpus for the plan analyzer: every PA rule has at least one
fixture plan it must flag — with the expected rule id — and a minimal
passing twin that must come back clean.

The fixtures construct relation trees directly (not through PlanBuilder,
which resolves names and would reject most of these), exactly like a
buggy or malicious third-party plan payload would arrive.
"""

import pytest

from repro.analysis import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    TIER_CPU_PLAN,
    TIER_GPU,
    TIER_REJECT,
    TIER_SPILL,
    analyze_plan,
)
from repro.analysis.plan_analyzer import PLAN_RULES
from repro.columnar import Schema, Table
from repro.gpu import GH200, Device
from repro.plan import Plan
from repro.plan.expressions import AggregateCall, FieldRef, Literal, ScalarCall
from repro.plan.relations import (
    AggregateRel,
    ExchangeRel,
    FetchRel,
    FilterRel,
    JoinRel,
    ProjectRel,
    ReadRel,
    SortRel,
)

SCHEMA = Schema([("k", "int64"), ("g", "int64"), ("v", "float64"), ("s", "string")])
DIM_SCHEMA = Schema([("k", "int64"), ("w", "int64")])


def read():
    return ReadRel("fact", SCHEMA)


def dim_read():
    return ReadRel("dim", DIM_SCHEMA)


@pytest.fixture(scope="module")
def catalog():
    fact = Table.from_pydict(
        {"k": [1, 2, 3], "g": [0, 1, 0], "v": [1.5, -2.0, 3.25], "s": ["a", "b", "c"]},
        SCHEMA,
    )
    dim = Table.from_pydict({"k": [1, 2], "w": [10, 20]}, DIM_SCHEMA)
    return {"fact": fact, "dim": dim}


def agg(op, arg_index=None):
    arg = FieldRef(arg_index) if arg_index is not None else None
    return AggregateCall(op if arg is not None else "count_star", arg)


def shuffle_without_keys(input_rel):
    # The constructor refuses this shape; a hand-mutated payload can
    # still carry it, which is exactly what the analyzer is for.
    ex = ExchangeRel(input_rel, "shuffle", [0])
    ex.keys = []
    return ex


# (rule, failing relation factory, passing relation factory)
CORPUS = [
    ("PA01", lambda: ReadRel("missing", SCHEMA), read),
    ("PA02", lambda: ProjectRel(read(), [FieldRef(9)], ["x"]),
     lambda: ProjectRel(read(), [FieldRef(0)], ["x"])),
    ("PA02", lambda: SortRel(read(), [(11, True)]),
     lambda: SortRel(read(), [(0, True)])),
    ("PA02", lambda: AggregateRel(read(), [7], [(agg("sum", 2), "m")]),
     lambda: AggregateRel(read(), [1], [(agg("sum", 2), "m")])),
    ("PA02", lambda: JoinRel(read(), dim_read(), "inner", [0], [5]),
     lambda: JoinRel(read(), dim_read(), "inner", [0], [0])),
    ("PA02", lambda: ExchangeRel(read(), "shuffle", [9]),
     lambda: ExchangeRel(read(), "shuffle", [0])),
    ("PA03",
     lambda: ProjectRel(
         read(), [ScalarCall("add", [FieldRef(3), Literal(1)])], ["x"]),
     lambda: ProjectRel(
         read(), [ScalarCall("add", [FieldRef(0), Literal(1)])], ["x"])),
    ("PA04", lambda: FilterRel(read(), FieldRef(0)),
     lambda: FilterRel(read(), ScalarCall("gt", [FieldRef(0), Literal(1)]))),
    ("PA04",
     lambda: ReadRel("fact", SCHEMA, filter_expr=FieldRef(2)),
     lambda: ReadRel(
         "fact", SCHEMA,
         filter_expr=ScalarCall("gt", [FieldRef(2), Literal(0.0)]))),
    ("PA05", lambda: AggregateRel(read(), [1], [(FieldRef(2), "m")]),
     lambda: AggregateRel(read(), [1], [(agg("sum", 2), "m")])),
    ("PA05",
     lambda: FilterRel(read(), AggregateCall("sum", FieldRef(2))),
     lambda: FilterRel(read(), ScalarCall("gt", [FieldRef(2), Literal(0.0)]))),
    ("PA05",
     lambda: AggregateRel(
         read(), [1],
         [(AggregateCall("sum", AggregateCall("sum", FieldRef(2))), "m")]),
     lambda: AggregateRel(read(), [1], [(agg("sum", 2), "m")])),
    ("PA05", lambda: ProjectRel(read(), [FieldRef(0), FieldRef(1)], ["x", "x"]),
     lambda: ProjectRel(read(), [FieldRef(0), FieldRef(1)], ["x", "y"])),
    ("PA06", lambda: JoinRel(read(), dim_read(), "inner", [3], [0]),
     lambda: JoinRel(read(), dim_read(), "inner", [0], [0])),
    ("PA06", lambda: JoinRel(read(), dim_read(), "left", [], []),
     lambda: JoinRel(read(), dim_read(), "inner", [], [])),
    ("PA07", lambda: shuffle_without_keys(read()),
     lambda: ExchangeRel(read(), "shuffle", [0])),
    ("PA07", lambda: ExchangeRel(read(), "broadcast", [0]),
     lambda: ExchangeRel(read(), "broadcast")),
    ("PA07",
     lambda: ExchangeRel(ExchangeRel(read(), "shuffle", [0]), "broadcast"),
     lambda: ExchangeRel(FilterRel(
         ExchangeRel(read(), "shuffle", [0]),
         ScalarCall("gt", [FieldRef(0), Literal(1)])), "broadcast")),
    ("PA08",
     lambda: FilterRel(read(), ScalarCall("like", [FieldRef(3), FieldRef(3)])),
     lambda: FilterRel(read(), ScalarCall("like", [FieldRef(3), Literal("a%")]))),
    ("PA08",
     lambda: FilterRel(
         read(), ScalarCall("in", [FieldRef(0), Literal(1), FieldRef(1)])),
     lambda: FilterRel(
         read(), ScalarCall("in", [FieldRef(0), Literal(1), Literal(2)]))),
    ("PA08",
     lambda: ProjectRel(
         read(),
         [ScalarCall("substring", [FieldRef(3), FieldRef(0), Literal(2)])],
         ["x"]),
     lambda: ProjectRel(
         read(),
         [ScalarCall("substring", [FieldRef(3), Literal(1), Literal(2)])],
         ["x"])),
    ("PA10", lambda: FetchRel(read(), -1, None),
     lambda: FetchRel(read(), 0, 5)),
    ("PA10", lambda: FetchRel(read(), 0, -3),
     lambda: FetchRel(read(), 0, 3)),
]

ERROR_RULES = {r for r, d in PLAN_RULES.items() if r not in ("PA07", "PA08", "PA09")}


class TestDefectCorpus:
    @pytest.mark.parametrize(
        "rule,bad,good", CORPUS, ids=[f"{r}-{i}" for i, (r, _, _) in enumerate(CORPUS)]
    )
    def test_bad_fixture_is_flagged(self, rule, bad, good, catalog):
        report = analyze_plan(Plan(bad()), catalog)
        assert rule in report.rules_hit(), report.findings

    @pytest.mark.parametrize(
        "rule,bad,good", CORPUS, ids=[f"{r}-{i}" for i, (r, _, _) in enumerate(CORPUS)]
    )
    def test_good_twin_is_clean(self, rule, bad, good, catalog):
        report = analyze_plan(Plan(good()), catalog)
        assert rule not in report.rules_hit(), report.findings

    def test_every_rule_has_a_failing_fixture(self):
        covered = {rule for rule, _, _ in CORPUS} | {"PA09"}  # PA09 below
        assert covered == set(PLAN_RULES)

    def test_errors_reject(self, catalog):
        report = analyze_plan(Plan(FetchRel(read(), -1, None)), catalog)
        assert not report.ok
        assert report.suggested_tier == TIER_REJECT
        assert all(f.severity == SEVERITY_ERROR for f in report.errors)

    def test_gpu_unsupported_suggests_cpu_plan(self, catalog):
        rel = FilterRel(read(), ScalarCall("like", [FieldRef(3), FieldRef(3)]))
        report = analyze_plan(Plan(rel), catalog)
        assert report.ok  # warnings only
        assert not report.gpu_supported
        assert report.suggested_tier == TIER_CPU_PLAN
        assert all(f.severity == SEVERITY_WARNING for f in report.findings)

    def test_exchange_warnings_stay_on_gpu(self, catalog):
        report = analyze_plan(Plan(ExchangeRel(read(), "broadcast", [0])), catalog)
        assert report.ok
        assert report.suggested_tier == TIER_GPU


class TestWorkingSetTier:
    def test_pa09_oversized_working_set_suggests_spill(self):
        n = 50_000
        fact = Table.from_pydict(
            {
                "k": list(range(n)),
                "g": [i % 7 for i in range(n)],
                "v": [float(i) for i in range(n)],
                "s": ["x"] * n,
            },
            SCHEMA,
        )
        device = Device(GH200, memory_limit_gb=0.001)  # ~0.5 MB pool
        report = analyze_plan(Plan(SortRel(read(), [(0, True)])), {"fact": fact}, device)
        assert report.ok
        assert "PA09" in report.rules_hit()
        assert report.suggested_tier == TIER_SPILL
        assert report.working_set_bytes > device.processing_pool.capacity

    def test_small_working_set_stays_gpu(self, catalog):
        device = Device(GH200, memory_limit_gb=1.0)
        report = analyze_plan(Plan(SortRel(read(), [(0, True)])), catalog, device)
        assert report.suggested_tier == TIER_GPU
        assert "PA09" not in report.rules_hit()


class TestReportShape:
    def test_multiple_findings_accumulate(self, catalog):
        # One plan, three independent defects: the analyzer must report
        # them all, not stop at the first like validate() does.
        rel = FetchRel(
            ProjectRel(
                FilterRel(ReadRel("missing", SCHEMA), FieldRef(0)),
                [FieldRef(9)],
                ["x"],
            ),
            -1,
            None,
        )
        report = analyze_plan(Plan(rel), catalog)
        assert {"PA01", "PA02", "PA04", "PA10"} <= report.rules_hit()

    def test_output_schema_and_json(self, catalog):
        import json

        report = analyze_plan(Plan(read()), catalog)
        assert report.output_schema == [
            ("k", "int64"), ("g", "int64"), ("v", "float64"), ("s", "string")
        ]
        doc = json.loads(report.to_json())
        assert doc["ok"] is True
        assert doc["suggested_tier"] == TIER_GPU
        assert doc["findings"] == []
        assert report.summary()

    def test_analyzer_never_raises_on_broken_trees(self):
        rel = ProjectRel(ReadRel("missing", SCHEMA), [FieldRef(42)], ["x"])
        report = analyze_plan(Plan(rel))  # no catalog, no device
        assert not report.ok
