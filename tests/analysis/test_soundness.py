"""Soundness of the plan analyzer, as a hypothesis property.

Two directions, over the same random-plan generators the differential
fuzzer uses:

* **No false rejections**: any plan the executor runs successfully must
  pass the analyzer with zero *errors* (warnings are advisory).
* **No false acceptances, on the seeded defect family**: a plan the
  analyzer rejects must not execute cleanly.  Mutations are drawn from
  the analyzer's own error catalog (out-of-range ordinals, non-boolean
  filters, negative fetches, malformed measures), applied on top of
  arbitrary generated plans.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_plan
from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.plan import Plan
from repro.plan.expressions import AggregateCall, FieldRef, Literal
from repro.plan.relations import AggregateRel, FetchRel, FilterRel, ProjectRel

from tests.core.test_random_plans import plans, tables


def _arity(plan):
    return len(plan.output_schema())


MUTATIONS = [
    ("field-out-of-range", lambda root: ProjectRel(
        root, [FieldRef(_arity(Plan(root)) + 3)], ["bad"])),
    ("non-boolean-filter", lambda root: FilterRel(root, Literal(7))),
    ("negative-fetch", lambda root: FetchRel(root, -2, None)),
    ("non-aggregate-measure", lambda root: AggregateRel(
        root, [0], [(FieldRef(0), "m")])),
    ("aggregate-in-filter", lambda root: FilterRel(
        root, AggregateCall("count", FieldRef(0)))),
]


class TestAnalyzerSoundness:
    @settings(max_examples=50, deadline=None)
    @given(data=tables(), plan=plans())
    def test_executable_plans_pass_the_analyzer(self, data, plan):
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        engine.execute(plan, data)  # must not raise — generator emits valid plans
        report = analyze_plan(plan, data, engine.device)
        assert report.ok, [str(f) for f in report.errors]

    @settings(max_examples=40, deadline=None)
    @given(
        data=tables(),
        plan=plans(),
        mutation=st.sampled_from(MUTATIONS),
    )
    def test_rejected_plans_do_not_execute_cleanly(self, data, plan, mutation):
        _name, mutate = mutation
        broken = Plan(mutate(plan.root))
        report = analyze_plan(broken, data)
        assert not report.ok, f"analyzer missed defect {_name}"
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        try:
            engine.execute(broken, data)
        except Exception:
            pass  # not cleanly: exactly what the analyzer predicted
        else:
            raise AssertionError(
                f"analyzer rejected {_name} but the engine executed it cleanly"
            )
