"""Golden suite: every production plan must pass the analyzer clean.

All 22 single-node TPC-H plans (as MiniDuck plans them) and the Q1/Q3/Q6
distributed fragments (as MiniDoris fragments them) must produce zero
findings, and the analyzer's working-set estimate must agree *exactly*
with :func:`repro.sched.estimator.estimate_plan` — the number admission
control gates on.
"""

import pytest

from repro.analysis import analyze_plan
from repro.gpu import GH200, Device
from repro.hosts import MiniDoris, MiniDuck
from repro.plan import Plan
from repro.sched.estimator import estimate_plan
from repro.tpch import generate_tpch, tpch_query

SF = 0.01


@pytest.fixture(scope="module")
def duck():
    host = MiniDuck()
    host.load_tables(generate_tpch(SF))
    return host


@pytest.fixture(scope="module")
def device():
    return Device(GH200, memory_limit_gb=1.0)


class TestGoldenTpch:
    @pytest.mark.parametrize("q", range(1, 23))
    def test_tpch_plan_is_clean(self, q, duck, device):
        plan = duck.plan(tpch_query(q))
        report = analyze_plan(plan, duck.tables, device)
        assert report.findings == [], [str(f) for f in report.findings]
        assert report.ok
        assert report.gpu_supported
        assert report.suggested_tier == "gpu"
        assert report.output_schema is not None

    @pytest.mark.parametrize("q", range(1, 23))
    def test_working_set_matches_sched_estimator(self, q, duck, device):
        plan = duck.plan(tpch_query(q))
        report = analyze_plan(plan, duck.tables, device)
        est = estimate_plan(plan, duck.tables, device)
        assert report.working_set_bytes == est.working_set_bytes
        assert report.estimated_rows == est.rows
        assert report.estimated_service_s == est.service_s
        # The per-pipeline-breaker breakdown must account for every byte.
        assert (
            sum(site["bytes"] for site in report.pipeline_working_sets)
            == est.working_set_bytes
        )

    def test_output_schema_matches_plan(self, duck, device):
        plan = duck.plan(tpch_query(1))
        report = analyze_plan(plan, duck.tables, device)
        expected = [(f.name, f.dtype.name) for f in plan.output_schema()]
        assert report.output_schema == expected


class TestGoldenDistributedFragments:
    @pytest.fixture(scope="class")
    def doris(self):
        db = MiniDoris(num_nodes=2, mode="doris")
        db.load_tables(generate_tpch(SF))
        return db

    @pytest.mark.parametrize("q", [1, 3, 6])
    def test_fragments_are_clean(self, q, doris):
        fragments = doris.plan_fragments(tpch_query(q))
        assert fragments
        for fragment in fragments:
            report = analyze_plan(Plan(fragment.plan))
            assert report.findings == [], (q, [str(f) for f in report.findings])
            assert report.suggested_tier == "gpu"
