"""Fixtures for the invariant lints: every RR rule has a bad snippet it
must flag and a good twin it must accept — plus the authoritative check
that the real ``src/repro`` tree is clean.
"""

from pathlib import Path

import pytest

from repro.analysis.lints import LINT_RULES, default_rules, lint_paths, lint_tree

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

# (rule, relpath, bad source, good source)
CASES = [
    (
        "RR01",
        "core/demo.py",
        "import time\n\ndef f():\n    return time.time()\n",
        "def f(clock):\n    return clock.now\n",
    ),
    (
        "RR01",
        "core/demo.py",
        "from datetime import datetime\n\ndef f():\n    return datetime.now()\n",
        "import datetime\n\ndef f(s):\n    return datetime.date.fromisoformat(s)\n",
    ),
    (
        "RR01",
        "core/demo.py",
        "import time as t\n\ndef f():\n    t.sleep(1)\n",
        "def f(clock):\n    clock.advance(1.0)\n",
    ),
    (
        "RR02",
        "faults/demo.py",
        "import random\n\ndef f():\n    return random.random()\n",
        "import random\n\ndef f(seed):\n    return random.Random(seed).random()\n",
    ),
    (
        "RR02",
        "faults/demo.py",
        "import random\n\ndef f():\n    return random.Random()\n",
        "import random\n\ndef f(seed):\n    return random.Random(seed)\n",
    ),
    (
        "RR02",
        "sched/demo.py",
        "import numpy as np\n\ndef f():\n    return np.random.rand(4)\n",
        "import numpy as np\n\ndef f(seed):\n    return np.random.default_rng(seed).random(4)\n",
    ),
    (
        "RR02",
        "sched/demo.py",
        "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n",
        "import numpy as np\n\ndef f(seed):\n    return np.random.default_rng(seed)\n",
    ),
    (
        "RR03",
        "gpu/demo.py",
        "def f(pool, n):\n    return pool.allocate(n, owner='q1')\n",
        "def f(pool, n):\n    a = pool.allocate(n, owner='q1')\n"
        "    pool.release_owner('q1')\n    return a\n",
    ),
    (
        "RR03",
        "sched/demo.py",
        "def f(pool, job):\n    pool.reserve(job.owner_key, 100)\n",
        "def f(pool, job):\n    pool.reserve(job.owner_key, 100)\n"
        "    pool.unreserve(job.owner_key)\n",
    ),
    (
        "RR04",
        "core/operators/demo.py",
        "class CountingOperator(StreamingOperator):\n"
        "    def __init__(self):\n        self.rows = 0\n"
        "    def process(self, batch, state):\n        self.rows += 1\n",
        "class CountingOperator(StreamingOperator):\n"
        "    def __init__(self):\n        self.rows = 0\n"
        "    def process(self, batch, state):\n"
        "        state['rows'] = state.get('rows', 0) + 1\n",
    ),
    (
        "RR05",
        "core/demo.py",
        "def f(tracer):\n    tracer.record_span('x', 'op', start=0, end=1)\n",
        "def f(tracer):\n    if tracer.enabled:\n"
        "        tracer.record_span('x', 'op', start=0, end=1)\n",
    ),
    (
        "RR05",
        "core/demo.py",
        "def f(tracer=Tracer()):\n    pass\n",
        "def f(tracer=NULL_TRACER):\n    pass\n",
    ),
    (
        "RR06",
        "core/demo.py",
        "def f(clock, s):\n    clock.advance(s, category='transfer')\n",
        "def f(device, n):\n    device.htod(n)\n",
    ),
    (
        "RR06",
        "core/demo.py",
        "def f(clock, t):\n    clock.advance_to(t, 'transfer-wait')\n",
        "def f(device, t):\n    device.wait_copies(t)\n",
    ),
    (
        "RR07",
        "core/demo.py",
        "def f(device, n):\n"
        "    return device.processing_pool.allocate(n, owner='q1')\n",
        "def f(device, arr):\n    return device.new_buffer(arr)\n",
    ),
    (
        "RR07",
        "kernels/demo.py",
        "def f(device, n):\n    device.caching_region.allocate(n)\n",
        "def f(device, arr):\n"
        "    return device.new_buffer(arr, region='caching')\n",
    ),
    (
        "RR08",
        "core/demo.py",
        "def f(bm, t):\n"
        "    g = bm.get_table('t', t)\n"
        "    t.columns['x'] = 1\n"
        "    return g\n",
        "def f(bm, t):\n"
        "    t2 = t.with_column('x', 1)\n"
        "    return bm.get_table('t', t2)\n",
    ),
    (
        "RR08",
        "core/demo.py",
        "def f(bm, frag):\n"
        "    bm.put_fragment('ns/p0', frag)\n"
        "    frag.columns.append(extra)\n",
        "def f(bm, frag):\n"
        "    frag = frag.concat(extra)\n"
        "    bm.put_fragment('ns/p0', frag)\n",
    ),
    (
        "RR09",
        "core/operators/fused.py",
        "def f(ctx, arr):\n    return ctx.device.new_buffer(arr)\n",
        "def f(ctx, table, mask):\n    return mask_table(table, mask)\n",
    ),
    (
        "RR09",
        "core/expr_compile.py",
        "def f(dev, dtype, data):\n"
        "    return GColumn.from_array(dev, dtype, data)\n",
        "def f(dev, n, dtype):\n"
        "    return fill_constant(dev, n, 1, dtype=dtype)\n",
    ),
    (
        "RR08",
        "sched/demo.py",
        "def f(bm, t):\n"
        "    bm.prefetch('t', t)\n"
        "    t.stats.update(hot=True)\n",
        "def f(bm, t):\n"
        "    t = annotate(t, hot=True)\n"
        "    bm.prefetch('t', t)\n",
    ),
]


def run(rule, relpath, source):
    findings = lint_tree(source, default_rules(), relpath=relpath)
    return {f.rule for f in findings}


class TestLintFixtures:
    @pytest.mark.parametrize(
        "rule,relpath,bad,good",
        CASES,
        ids=[f"{r}-{i}" for i, (r, _, _, _) in enumerate(CASES)],
    )
    def test_bad_snippet_is_flagged(self, rule, relpath, bad, good):
        assert rule in run(rule, relpath, bad)

    @pytest.mark.parametrize(
        "rule,relpath,bad,good",
        CASES,
        ids=[f"{r}-{i}" for i, (r, _, _, _) in enumerate(CASES)],
    )
    def test_good_twin_is_clean(self, rule, relpath, bad, good):
        assert rule not in run(rule, relpath, good)

    def test_every_rule_has_fixtures(self):
        assert {rule for rule, _, _, _ in CASES} == set(LINT_RULES)

    def test_suppression_comment(self):
        source = "import time\n\ndef f():\n    return time.time()  # lint: allow=RR01\n"
        assert "RR01" not in run("RR01", "core/demo.py", source)

    def test_operator_rule_scoped_to_operators(self):
        # The same stateful class outside core/operators is out of scope.
        source = (
            "class CountingOperator(StreamingOperator):\n"
            "    def process(self, batch, state):\n        self.rows = 1\n"
        )
        assert "RR04" in run("RR04", "core/operators/x.py", source)
        assert "RR04" not in run("RR04", "sched/x.py", source)

    def test_fused_buffer_rule_scoped_to_fused_path(self):
        # Minting buffers is fine elsewhere (RR07 governs the general case);
        # RR09 only polices the fused execution path.
        source = "def f(ctx, arr):\n    return ctx.device.new_buffer(arr)\n"
        assert "RR09" in run("RR09", "core/operators/fused.py", source)
        assert "RR09" not in run("RR09", "core/operators/streaming.py", source)

    def test_published_table_rebind_releases_tracking(self):
        # Rebinding the published name points it at a fresh object; writes
        # through the new binding are fine.
        source = (
            "def f(bm, t):\n"
            "    bm.get_table('t', t)\n"
            "    t = make_table()\n"
            "    t.columns['x'] = 1\n"
        )
        assert "RR08" not in run("RR08", "core/demo.py", source)

    def test_published_table_mutator_method_flagged_once(self):
        source = (
            "def f(bm, t):\n"
            "    bm.prefetch('t', t)\n"
            "    t.columns.append(c)\n"
        )
        findings = lint_tree(source, default_rules(), relpath="core/demo.py")
        assert [f.rule for f in findings] == ["RR08"]

    def test_published_table_rule_skips_store_implementation(self):
        # The buffer manager owns its entries — in-place moves are its job.
        source = (
            "def f(self, name, t):\n"
            "    self.prefetch(name, t)\n"
            "    t.columns['x'] = 1\n"
        )
        assert "RR08" not in run("RR08", "core/buffer_manager.py", source)

    def test_tracer_dataclass_field_default_none_is_fine(self):
        source = (
            "from dataclasses import dataclass, field\n\n"
            "@dataclass\nclass Job:\n"
            "    tracer: object = field(default=None, repr=False)\n"
        )
        assert "RR05" not in run("RR05", "sched/x.py", source)
        bad = (
            "from dataclasses import dataclass, field\n\n"
            "@dataclass\nclass Job:\n"
            "    tracer: object = field(default_factory=Tracer, repr=False)\n"
        )
        assert "RR05" in run("RR05", "sched/x.py", bad)


class TestSrcTreeIsClean:
    def test_src_repro_passes_all_lints(self):
        findings = lint_paths(SRC_ROOT, default_rules())
        assert findings == [], [str(f) for f in findings]

    def test_cli_lint_exit_code(self):
        from repro.analysis.__main__ import main

        assert main(["lint", "--root", str(SRC_ROOT)]) == 0

    def test_cli_rules_listing(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule in list(LINT_RULES) + ["PA01", "PA10"]:
            assert rule in out
