"""Sanitizer layer tests: zero observer effect, clean-suite gates, and
the determinism checker over the real serving/fleet stack.

The tentpole guarantee is that ``sanitize=True`` only *observes*: for
any plan and any serving workload, the sanitized run must produce
byte-identical results, clocks, counters, and reports to the unsanitized
run — and report zero findings on the repo's own (correct) code paths.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sanitizers import SanitizerReport, sanitized
from repro.analysis.sanitizers.cli import (
    run_battery_suite,
    run_fleet_suite,
    run_tpch_suite,
    sanitized_query_check,
)
from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.obs import Tracer
from repro.sched import JobState, ServingScheduler

from tests.core.test_random_plans import plans, tables


def _engine_fingerprint(engine) -> dict:
    return {
        "clock": engine.device.clock.now,
        "bm": engine.buffer_manager.stats(),
        "pool_in_use": engine.device.processing_pool.in_use,
        "pool_stats": engine.device.processing_pool.stats(),
        "caching_used": engine.device.caching_region.used,
    }


class TestZeroObserverEffect:
    @settings(max_examples=25, deadline=None)
    @given(data=tables(), plan=plans(), overlap=st.booleans())
    def test_sanitized_query_is_byte_identical(self, data, plan, overlap):
        plain = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0, overlap=overlap)
        result_plain = plain.execute(plan, data)

        san = SiriusEngine.for_spec(
            GH200, memory_limit_gb=1.0, overlap=overlap, sanitize=True
        )
        result_san = san.execute(plan, data)

        assert result_san.to_pydict() == result_plain.to_pydict()
        assert _engine_fingerprint(san) == _engine_fingerprint(plain)
        assert san.sanitizer.ok, [str(f) for f in san.sanitizer.findings]
        assert san.sanitizer.hb.acyclic()

    @settings(max_examples=10, deadline=None)
    @given(data=tables(), batch=st.lists(plans(), min_size=2, max_size=3))
    def test_sanitized_serving_report_is_byte_identical(self, data, batch):
        reports = {}
        for sanitize in (False, True):
            engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
            sched = ServingScheduler(
                engine, policy="fair", streams=2, sanitize=sanitize,
                tracer_factory=Tracer,
            )
            jobs = [
                sched.submit(plan, data, label=f"q{i}", arrival_s=0.0)
                for i, plan in enumerate(batch)
            ]
            reports[sanitize] = (sched.run(), jobs, engine)

        plain_report, _, _ = reports[False]
        san_report, san_jobs, san_engine = reports[True]
        assert san_report.to_json() == plain_report.to_json()
        assert san_report.schedule_digest == plain_report.schedule_digest
        assert san_engine.sanitizer.ok, [
            str(f) for f in san_engine.sanitizer.findings
        ]
        # busy_s partition: per-operator spans still sum to each query's
        # own service time under the sanitizer.
        for job in san_jobs:
            assert job.state == JobState.COMPLETED
            op_spans = [s for s in job.profile.spans if s.kind == "operator"]
            busy = sum(s.attributes.get("busy_s", 0.0) for s in op_spans)
            assert busy == pytest.approx(
                job.qrun.service_seconds, rel=1e-9, abs=1e-15
            )


class TestSanitizedContext:
    def test_context_manager_attaches_and_detaches(self):
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        assert engine.sanitizer is None
        from repro.columnar import Schema, Table
        from repro.plan import Plan
        from repro.plan.relations import ReadRel

        t = Table.from_pydict(
            {"a": [1, 2, 3]}, Schema([("a", "int64")])
        )
        plan = Plan(ReadRel("t", t.schema))
        with sanitized(engine) as sanitizer:
            engine.execute(plan, {"t": t})
        assert sanitizer.ok, [str(f) for f in sanitizer.findings]
        assert sanitizer.checks_run > 0
        assert engine.sanitizer is None
        assert engine.device.clock.sanitizer is None
        assert engine.buffer_manager.sanitizer is None

    def test_one_shot_query_check_helper(self):
        from repro.columnar import Schema, Table
        from repro.plan import Plan
        from repro.plan.relations import ReadRel

        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        t = Table.from_pydict({"a": [1, 2]}, Schema([("a", "int64")]))
        report = sanitized_query_check(engine, Plan(ReadRel("t", t.schema)), {"t": t})
        assert report.ok
        assert report.counters["checks_run"] > 0


class TestReportMachinery:
    def test_report_round_trips_and_merges(self):
        a = SanitizerReport(suite="a")
        b = SanitizerReport(suite="b", counters={"checks_run": 3})
        a.merge(b)
        payload = json.loads(a.to_json())
        assert payload["suite"] == "a"
        assert payload["counters"]["checks_run"] == 3
        assert payload["ok"] is True
        assert "SA01" in payload["rules"]

    def test_unknown_rule_rejected(self):
        from repro.analysis.report import Finding

        report = SanitizerReport(suite="x")
        with pytest.raises(ValueError):
            report.add(Finding("SA99", "error", "nope", "here"))


class TestCleanSuites:
    """The repo's own workloads run clean under the sanitizer (the CI
    ``sanitize`` job runs the full versions; these are scaled-down)."""

    def test_tpch_suite_clean(self):
        report = run_tpch_suite(queries=(1, 6))
        assert report.ok, report.to_json()
        assert report.counters["checks_run"] > 0
        assert report.counters["stream_events"] > 0

    def test_battery_suite_clean(self):
        report = run_battery_suite(limit=12)
        assert report.ok, report.to_json()
        assert report.counters["battery_cases"] == 12

    def test_fleet_suite_clean_across_all_routings(self):
        # The acceptance gate: the determinism checker passes on every
        # routing policy under permuted tie-breaks and runtime traps.
        report = run_fleet_suite(requests=8, replicas=2)
        assert report.ok, report.to_json()
        for routing in ("round-robin", "least-outstanding", "placement"):
            assert report.counters[f"determinism_runs:{routing}"] >= 4
