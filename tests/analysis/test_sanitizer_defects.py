"""The seeded defect corpus: every SA rule has an intentionally buggy
micro-harness that must make it fire *exactly once* with the right site
attribution, plus a clean twin the sanitizer must accept.

Each buggy harness breaks one invariant the way a real regression would
(a dropped ``wait_copies``, a skipped ``_sync_in_flight``, a leaked
owner, a double ``free``...) while everything around it stays correct —
so a rule that over-fires or mis-attributes fails here before it ever
poisons the clean-suite gate.
"""

import json
import time
from types import SimpleNamespace

import pytest

from repro.analysis.sanitizers import (
    SA_RULES,
    DeterminismChecker,
    Sanitizer,
)
from repro.columnar import Schema, Table
from repro.core import BufferManager
from repro.gpu import Device, GH200
from repro.kernels import GTable


def make_table(rows: int = 400) -> Table:
    schema = Schema([("a", "int64"), ("b", "float64")])
    return Table.from_pydict(
        {"a": list(range(rows)), "b": [float(i) for i in range(rows)]}, schema
    )


def sanitized_bm(overlap: bool = True, memory_limit_gb: float = 0.001):
    device = Device(GH200, memory_limit_gb=memory_limit_gb)
    bm = BufferManager(device, overlap=overlap)
    sanitizer = Sanitizer()
    sanitizer.attach(device, bm)
    return device, bm, sanitizer


# rule -> list of harnesses; each returns (findings, expected_site_fragment)
DEFECTS: dict = {}
CLEAN: dict = {}


def defect(rule):
    def deco(fn):
        DEFECTS.setdefault(rule, []).append(fn)
        return fn

    return deco


def clean(rule):
    def deco(fn):
        CLEAN.setdefault(rule, []).append(fn)
        return fn

    return deco


# -- SA01: read before the copy landed ----------------------------------------


@defect("SA01")
def missing_wait_before_prefetch_read():
    device, bm, sanitizer = sanitized_bm()
    t = make_table()
    assert bm.prefetch("t", t)
    device.wait_copies = lambda until=None: 0.0  # the seeded defect
    bm.get_table("t", t)
    return sanitizer.findings, "buffer_manager.get_table:t"


@clean("SA01")
def prefetch_read_with_real_wait():
    device, bm, sanitizer = sanitized_bm()
    t = make_table()
    assert bm.prefetch("t", t)
    bm.get_table("t", t)
    bm.complete_loads()
    return sanitizer


# -- SA02: release of an in-flight entry --------------------------------------


@defect("SA02")
def drop_without_stream_join():
    device, bm, sanitizer = sanitized_bm()
    t = make_table()
    assert bm.prefetch("t", t)
    bm._sync_in_flight = lambda name: None  # the seeded defect
    bm.drop("t")
    return sanitizer.findings, "buffer_manager._drop:t"


@clean("SA02")
def drop_with_stream_join():
    device, bm, sanitizer = sanitized_bm()
    t = make_table()
    assert bm.prefetch("t", t)
    bm.drop("t")
    return sanitizer


# -- SA03: pipeline ends with overlapped loads still landing -------------------


@defect("SA03")
def pipeline_end_without_complete_loads():
    device, bm, sanitizer = sanitized_bm()
    bm.get_table("t", make_table())  # cold overlapped load -> consumed event
    # The seeded defect: the executor "forgets" complete_loads before the
    # sink finalises.
    sanitizer.on_pipeline_end("pipeline-p9")
    return sanitizer.findings, "pipeline-p9"


@clean("SA03")
def pipeline_end_after_complete_loads():
    device, bm, sanitizer = sanitized_bm()
    bm.get_table("t", make_table())
    bm.complete_loads()
    sanitizer.on_pipeline_end("pipeline-p9")
    return sanitizer


# -- SA04: fragment read before its demotion write joined ----------------------


@defect("SA04")
def fragment_get_before_spill_write_lands():
    device, bm, sanitizer = sanitized_bm()
    g = GTable.from_host(device, make_table())
    bm.put_fragment("q1/p0", g)
    bm.spill_fragment("q1/p0")
    device.wait_copies = lambda until=None: 0.0  # the seeded defect
    bm.get_fragment("q1/p0")
    bm.clear_fragments()
    return sanitizer.findings, "buffer_manager.get_fragment:q1/p0"


@clean("SA04")
def fragment_get_after_spill_write_lands():
    device, bm, sanitizer = sanitized_bm()
    g = GTable.from_host(device, make_table())
    bm.put_fragment("q1/p0", g)
    bm.spill_fragment("q1/p0")
    bm.get_fragment("q1/p0")
    bm.clear_fragments()
    return sanitizer


# -- SA05: leaks past end-of-scope cleanup ------------------------------------


@defect("SA05")
def fragments_survive_query_end():
    device, bm, sanitizer = sanitized_bm()
    bm.put_fragment("q1/p0", GTable.from_host(device, make_table()))
    # The seeded defect: the engine skips clear_fragments/drop_namespace.
    sanitizer.check_query_end(
        SimpleNamespace(buffer_manager=bm), "engine.execute:q1"
    )
    return sanitizer.findings, "engine.execute:q1"


@defect("SA05")
def owner_leaks_pool_bytes_past_end_run():
    device, bm, sanitizer = sanitized_bm()
    pool = device.processing_pool
    pool.reset()  # sync the shadow ledger to a whole generation
    pool.allocate(4096, owner="q7")  # the seeded defect: never released
    sanitizer.check_end_run(
        SimpleNamespace(device=device, buffer_manager=bm),
        "scheduler.end_run:fair",
    )
    return sanitizer.findings, "scheduler.end_run:fair"


@defect("SA05")
def fragment_survives_namespace_drop():
    device, bm, sanitizer = sanitized_bm()
    bm.put_fragment("q1/p0", GTable.from_host(device, make_table()))
    # The seeded defect: a namespace drop that did not actually retire
    # the fragment (simulated by invoking the check directly).
    sanitizer.check_namespace_dropped(bm, "q1")
    return sanitizer.findings, "buffer_manager.drop_namespace:q1"


@clean("SA05")
def namespace_drop_retires_everything():
    device, bm, sanitizer = sanitized_bm()
    bm.put_fragment("q1/p0", GTable.from_host(device, make_table()))
    bm.drop_namespace("q1")  # runs check_namespace_dropped itself
    sanitizer.check_query_end(
        SimpleNamespace(buffer_manager=bm), "engine.execute:q1"
    )
    return sanitizer


@clean("SA05")
def released_owner_is_clean_at_end_run():
    device, bm, sanitizer = sanitized_bm()
    pool = device.processing_pool
    pool.reset()
    pool.allocate(4096, owner="q7")
    pool.release_owner("q7")
    sanitizer.check_end_run(
        SimpleNamespace(device=device, buffer_manager=bm),
        "scheduler.end_run:fair",
    )
    return sanitizer


# -- SA06: double free ---------------------------------------------------------


@defect("SA06")
def double_free_same_allocation():
    device, bm, sanitizer = sanitized_bm()
    pool = device.processing_pool
    pool.reset()
    alloc = pool.allocate(1024, owner="q1")
    pool.free(alloc)
    with pytest.raises(ValueError):
        pool.free(alloc)  # the seeded defect
    return sanitizer.findings, "pool.free:gen"


@clean("SA06")
def paired_alloc_free():
    device, bm, sanitizer = sanitized_bm()
    pool = device.processing_pool
    pool.reset()
    alloc = pool.allocate(1024, owner="q1")
    pool.free(alloc)
    return sanitizer


@clean("SA06")
def free_after_release_owner_is_stream_ordered():
    # release_owner reaps the owner's allocations wholesale; a later free
    # of the stale handle is the documented legitimate no-op, not SA06.
    device, bm, sanitizer = sanitized_bm()
    pool = device.processing_pool
    pool.reset()
    alloc = pool.allocate(1024, owner="q1")
    pool.release_owner("q1")
    pool.free(alloc)
    return sanitizer


# -- SA07: consumer handed freed device buffers --------------------------------


@defect("SA07")
def hot_hit_through_freed_buffers():
    device, bm, sanitizer = sanitized_bm(overlap=False)
    t = make_table()
    g = bm.get_table("t", t)
    g.columns[0].buffer.free()  # the seeded defect
    bm.get_table("t", t)
    return sanitizer.findings, "buffer_manager.get_table:t"


@clean("SA07")
def hot_hit_through_live_buffers():
    device, bm, sanitizer = sanitized_bm(overlap=False)
    t = make_table()
    bm.get_table("t", t)
    bm.get_table("t", t)
    return sanitizer


# -- SA08: counter drift vs the shadow ledger / recomputed truth ---------------


@defect("SA08")
def pinned_counter_drifts():
    device, bm, sanitizer = sanitized_bm(overlap=False)
    bm.get_table("t", make_table())
    bm.pinned_host_bytes += 128  # the seeded defect
    sanitizer.check_drift(bm, "drift-check")
    return sanitizer.findings, "drift-check"


@defect("SA08")
def compression_savings_without_compression():
    device, bm, sanitizer = sanitized_bm(overlap=False)
    bm.compressed_saved_bytes = 512  # the seeded defect
    sanitizer.check_drift(bm, "drift-check")
    return sanitizer.findings, "drift-check"


@clean("SA08")
def untampered_counters_have_no_drift():
    device, bm, sanitizer = sanitized_bm(overlap=False)
    bm.get_table("t", make_table())
    sanitizer.check_drift(bm, "drift-check")
    return sanitizer


class _Report:
    """Minimal stand-in exposing what DeterminismChecker compares."""

    def __init__(self, digest: str):
        self.schedule_digest = digest

    def to_json(self) -> str:
        return self.schedule_digest


# -- SA09: runtime wall-clock / global-RNG touch -------------------------------


@defect("SA09")
def schedule_consults_wall_clock():
    checker = DeterminismChecker(permutations=1)

    def run(transform):
        time.time()  # the seeded defect
        return _Report("d0")

    checker.check(run, site="defect:sa09")
    return checker.findings, "defect:sa09"


@clean("SA09")
def seeded_generators_do_not_trip_the_trap():
    import random

    checker = DeterminismChecker(permutations=1)

    def run(transform):
        rng = random.Random(7)  # the sanctioned idiom
        return _Report(str(rng.random()))

    checker.check(run, site="clean:sa09")
    return checker


# -- SA10: tie-break-sensitive / stateful schedules ----------------------------


class _HeadOfListPolicy:
    """Position-dependent: picks whatever happens to be first."""

    name = "head"

    def select(self, candidates, now):
        return candidates[0]


class _LowestSeqPolicy:
    """State-keyed: picks by job state with a total-order tie-break."""

    name = "lowest-seq"

    def select(self, candidates, now):
        return min(candidates, key=lambda j: j.seq)


def _policy_digest(policy) -> str:
    jobs = [SimpleNamespace(seq=i) for i in range(6)]
    order = [policy.select(list(jobs), 0.0).seq for _ in range(4)]
    return json.dumps(order)


@defect("SA10")
def position_dependent_policy_diverges_under_permutation():
    checker = DeterminismChecker(permutations=2, trap=False)

    def run(transform):
        policy = _HeadOfListPolicy()  # the seeded defect
        if transform is not None:
            policy = transform(policy)
        return _Report(_policy_digest(policy))

    checker.check(run, site="defect:sa10")
    return checker.findings, "defect:sa10"


@defect("SA10")
def hidden_state_survives_across_runs():
    checker = DeterminismChecker(permutations=1, trap=False)
    calls = {"n": 0}

    def run(transform):
        calls["n"] += 1  # the seeded defect: state leaks between runs
        return _Report(str(calls["n"]))

    findings = checker.check(run, site="defect:sa10-repeat")
    repeat = [f for f in findings if "repeat run diverged" in f.message]
    return repeat, "defect:sa10-repeat"


@clean("SA10")
def state_keyed_policy_is_permutation_invariant():
    checker = DeterminismChecker(permutations=3, trap=False)

    def run(transform):
        policy = _LowestSeqPolicy()
        if transform is not None:
            policy = transform(policy)
        return _Report(_policy_digest(policy))

    checker.check(run, site="clean:sa10")
    return checker


# -- the corpus gate -----------------------------------------------------------

_DEFECT_CASES = [
    (rule, fn) for rule, fns in sorted(DEFECTS.items()) for fn in fns
]
_CLEAN_CASES = [(rule, fn) for rule, fns in sorted(CLEAN.items()) for fn in fns]


class TestDefectCorpus:
    @pytest.mark.parametrize(
        "rule,harness",
        _DEFECT_CASES,
        ids=[f"{rule}-{fn.__name__}" for rule, fn in _DEFECT_CASES],
    )
    def test_defect_fires_exactly_once(self, rule, harness):
        findings, site_fragment = harness()
        assert [f.rule for f in findings] == [rule], [str(f) for f in findings]
        assert site_fragment in findings[0].site

    @pytest.mark.parametrize(
        "rule,harness",
        _CLEAN_CASES,
        ids=[f"{rule}-{fn.__name__}" for rule, fn in _CLEAN_CASES],
    )
    def test_clean_twin_reports_nothing(self, rule, harness):
        sanitizer = harness()
        assert sanitizer.ok, [str(f) for f in sanitizer.findings]

    def test_every_sa_rule_has_defect_and_clean_fixture(self):
        assert set(DEFECTS) == set(SA_RULES)
        assert set(CLEAN) == set(SA_RULES)
