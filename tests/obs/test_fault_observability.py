"""Fault x observability: injected faults surface as span events.

The fault-injection framework (PR 1) and the tracing layer meet here:
link drops produce ``exchange-retry`` events with correct attempt counts,
repeated device-OOM produces a ``fallback`` event carrying the degradation
tier that absorbed it, and transient kernel faults produce
``kernel-relaunch`` events — all attached to the query's span tree with
simulated timestamps, so a trace export tells the whole failure story.
"""

import pytest

from repro.faults import FaultPlan
from repro.hosts import MiniDoris
from repro.obs import Tracer
from repro.tpch import generate_tpch, tpch_query


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=0.02)


def traced_cluster(data, **kwargs):
    kwargs.setdefault("num_nodes", 4)
    kwargs.setdefault("mode", "sirius")
    kwargs.setdefault("tracer", Tracer())
    db = MiniDoris(**kwargs)
    db.load_tables(data)
    db.warm_caches()
    return db


class TestExchangeRetryEvents:
    def test_link_drops_appear_as_retry_events(self, data):
        db = traced_cluster(data)
        db.install_faults(FaultPlan().drop_links(at=0.0, count=2))
        result = db.execute(tpch_query(3))

        retries = [
            e for s in result.profile.spans for e in s.events
            if e.name == "exchange-retry"
        ]
        assert len(retries) == 2 == result.profile.retries
        assert [e.attributes["attempt"] for e in retries] == [1, 2]
        # Exponential backoff is recorded on the events.
        assert (
            retries[1].attributes["backoff_s"]
            == 2 * retries[0].attributes["backoff_s"]
        )
        assert all(e.sim_time > 0 for e in retries)

    def test_each_drop_also_recorded_on_the_communicator_span(self, data):
        db = traced_cluster(data)
        db.install_faults(FaultPlan().drop_links(at=0.0, count=1))
        result = db.execute(tpch_query(3))
        drops = [
            e for s in result.profile.spans for e in s.events
            if e.name == "link-drop"
        ]
        assert len(drops) == 1
        # The drop is observed inside an exchange span (the retry loop's
        # scope), and successful collectives still record their spans.
        assert any(s.kind == "collective" for s in result.profile.spans)

    def test_no_faults_no_retry_events(self, data):
        db = traced_cluster(data)
        result = db.execute(tpch_query(3))
        assert result.profile.retries == 0
        assert not [
            e for s in result.profile.spans for e in s.events
            if e.name in ("exchange-retry", "link-drop")
        ]


class TestDegradationEvents:
    def test_oom_fallback_event_carries_the_absorbing_tier(self, data):
        tracer = Tracer()
        db = traced_cluster(data, tracer=tracer)
        db.install_faults(FaultPlan().oom_spike(at=0.0, count=8, node_id=1))
        db.execute(tpch_query(6))

        fallbacks = tracer.find_events("fallback")
        assert fallbacks, "degradation must surface as a span event"
        assert fallbacks[0].attributes["tier"] == "cpu-pipeline"
        assert "gpu-retry-spill" in fallbacks[0].attributes["tiers_attempted"]
        assert fallbacks[0].attributes["exception"] == "OutOfDeviceMemory"
        # The tier label matches the node engine's own fallback record.
        assert db._node_engines[1].fallback.events[0].tier == "cpu-pipeline"


class TestKernelRelaunchEvents:
    def test_transient_kernel_faults_traced_with_attempts(self, data):
        tracer = Tracer()
        db = traced_cluster(data, tracer=tracer)
        db.install_faults(FaultPlan().kernel_fault(at=0.0, count=2, node_id=1))
        result = db.execute(tpch_query(6))

        relaunches = tracer.find_events("kernel-relaunch")
        assert len(relaunches) == 2
        # Both scheduled faults hit the same kernel launch, so the attempt
        # counter runs 1, 2 within one relaunch loop.
        assert [e.attributes["attempt"] for e in relaunches] == [1, 2]
        assert all(e.attributes["rank"] == 1 for e in relaunches)
        assert result.profile.retries == 0  # exchange retries, not kernels
