"""Unit tests for the tracing core: spans, events, metrics, null tracer."""

import json

import pytest

from repro.gpu import SimClock
from repro.obs import NULL_TRACER, MetricSet, NullTracer, Tracer


class TestSpans:
    def test_span_records_clock_interval(self):
        clock = SimClock()
        tracer = Tracer(clock)
        clock.advance(1.0)
        with tracer.span("query", kind="query") as handle:
            clock.advance(2.5)
            handle.set(rows_out=7)
        (span,) = tracer.spans
        assert span.name == "query"
        assert span.kind == "query"
        assert span.start == pytest.approx(1.0)
        assert span.end == pytest.approx(3.5)
        assert span.duration == pytest.approx(2.5)
        assert span.attributes["rows_out"] == 7

    def test_nesting_builds_parent_child_tree(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("query") as _q:
            clock.advance(0.1)
            with tracer.span("pipeline-0"):
                clock.advance(0.2)
            with tracer.span("pipeline-1"):
                clock.advance(0.3)
        query, p0, p1 = tracer.spans
        assert query.parent_id is None
        assert p0.parent_id == query.span_id
        assert p1.parent_id == query.span_id
        assert p0.nests_within(query)
        assert p1.nests_within(query)
        assert not query.nests_within(p0)
        assert tracer.span_tree(query) == [query, p0, p1]

    def test_span_closed_on_exception(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with pytest.raises(RuntimeError):
            with tracer.span("query"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.end == pytest.approx(1.0)
        assert not tracer._stack  # stack unwound

    def test_exception_unwinds_open_children(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with pytest.raises(RuntimeError):
            with tracer.span("query") as q:
                inner = tracer.span("pipeline")
                inner.__enter__()  # never exited: the exception unwinds it
                raise RuntimeError("boom")
        assert not tracer._stack

    def test_record_span_retroactive_with_explicit_parent(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("pipeline") as p:
            clock.advance(1.0)
            tracer.record_span("op", "operator", start=0.2, end=0.8, busy_s=0.6)
        op = next(s for s in tracer.spans if s.kind == "operator")
        pipeline = next(s for s in tracer.spans if s.name == "pipeline")
        assert op.parent_id == pipeline.span_id  # innermost open span
        assert op.attributes["busy_s"] == pytest.approx(0.6)
        orphan = tracer.record_span("late", "operator", start=0.0, end=0.1)
        assert orphan.parent_id is None

    def test_span_requires_a_clock(self):
        tracer = Tracer()  # no default clock
        with pytest.raises(ValueError, match="needs a clock"):
            tracer.span("query")
        # A per-span clock satisfies it.
        with tracer.span("query", clock=SimClock()):
            pass

    def test_events_attach_to_innermost_open_span(self):
        clock = SimClock()
        tracer = Tracer(clock)
        tracer.event("orphan", sim_time=0.0, reason="pre-query")
        with tracer.span("query"):
            clock.advance(1.0)
            tracer.event("retry", attempt=1)
        (span,) = tracer.spans
        assert [e.name for e in span.events] == ["retry"]
        assert span.events[0].sim_time == pytest.approx(1.0)
        assert span.events[0].attributes["attempt"] == 1
        assert [e.name for e in tracer.root_events] == ["orphan"]
        assert {e.name for e in tracer.find_events("retry")} == {"retry"}
        assert tracer.find_events("orphan")[0].attributes["reason"] == "pre-query"

    def test_mark_and_spans_since(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("q1"):
            clock.advance(0.1)
        mark = tracer.mark()
        with tracer.span("q2"):
            clock.advance(0.1)
        assert [s.name for s in tracer.spans_since(mark)] == ["q2"]

    def test_to_json_round_trips(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("query", kind="query", device="GH200"):
            clock.advance(1.0)
            tracer.event("retry", attempt=2)
            tracer.count("bytes", 128)
            tracer.gauge("in_use", 64)
        doc = json.loads(tracer.to_json())
        (span,) = doc["spans"]
        assert span["name"] == "query"
        assert span["attributes"] == {"device": "GH200"}
        assert span["events"][0]["attempt"] == 2
        assert doc["metrics"]["counters"]["bytes"] == 128
        assert doc["metrics"]["gauges"]["in_use"]["value"] == 64


class TestNullTracer:
    def test_everything_is_a_no_op(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("query", clock=SimClock()) as handle:
            handle.set(rows=1)
            handle.event("retry", attempt=1)
        tracer.record_span("op", "operator", 0.0, 1.0)
        tracer.event("retry")
        tracer.count("bytes", 10)
        tracer.gauge("in_use", 10)
        assert tracer.spans_since(tracer.mark()) == ()
        assert tracer.find_events("retry") == ()

    def test_singleton_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_null_tracer_never_touches_the_clock(self):
        clock = SimClock()
        with NULL_TRACER.span("query", clock=clock):
            pass
        assert clock.now == 0.0


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = MetricSet()
        metrics.count("bytes", 10)
        metrics.count("bytes", 5)
        metrics.count("calls")
        assert metrics.counter_value("bytes") == 15
        assert metrics.counter_value("calls") == 1
        assert metrics.counter_value("missing") == 0

    def test_gauges_track_high_water(self):
        metrics = MetricSet()
        metrics.gauge("in_use", 10)
        metrics.gauge("in_use", 40)
        metrics.gauge("in_use", 5)
        assert metrics.gauge_value("in_use") == 5
        assert metrics.high_water("in_use") == 40
