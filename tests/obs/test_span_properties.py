"""Property tests: span trees from random plans are well-formed.

Reuses the random table/plan generators of the differential fuzzer
(:mod:`tests.core.test_random_plans`) and checks the structural invariants
the tracing layer guarantees on a single node (one clock domain):

* every child span's interval nests within its parent's interval;
* per-operator *busy* time is a disjoint partition of execution: summed
  over all operator spans it equals the query span's elapsed simulated
  time exactly (every clock advance inside a pipeline happens in exactly
  one measured operator region);
* pipeline spans tile the query span (nothing advances the clock between
  pipelines).
"""

import math

from hypothesis import given, settings

from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.obs import Tracer
from tests.core.test_random_plans import plans, tables


def _traced_run(data, plan):
    tracer = Tracer()
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0, tracer=tracer)
    engine.execute(plan, data)
    spans = engine.last_profile.spans
    (query,) = [s for s in spans if s.kind == "query"]
    return spans, query


def _children(spans, parent):
    return [s for s in spans if s.parent_id == parent.span_id]


class TestSpanProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=tables(), plan=plans())
    def test_children_nest_within_parents(self, data, plan):
        spans, query = _traced_run(data, plan)
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert span.nests_within(parent, tol=1e-9), (
                f"{span.name} [{span.start}, {span.end}] escapes "
                f"{parent.name} [{parent.start}, {parent.end}]"
            )

    @settings(max_examples=60, deadline=None)
    @given(data=tables(), plan=plans())
    def test_operator_busy_time_partitions_query_time(self, data, plan):
        spans, query = _traced_run(data, plan)
        operators = [s for s in spans if s.kind == "operator"]
        assert operators, "a traced query must record operator spans"
        busy = sum(s.attributes["busy_s"] for s in operators)
        assert math.isclose(busy, query.duration, rel_tol=1e-9, abs_tol=1e-12), (
            f"operator busy time {busy} != query elapsed {query.duration}"
        )

    @settings(max_examples=60, deadline=None)
    @given(data=tables(), plan=plans())
    def test_pipelines_tile_the_query_span(self, data, plan):
        spans, query = _traced_run(data, plan)
        pipelines = [s for s in spans if s.kind == "pipeline"]
        assert pipelines
        total = sum(p.duration for p in pipelines)
        assert math.isclose(total, query.duration, rel_tol=1e-9, abs_tol=1e-12)
        # And each pipeline's operators partition that pipeline.
        for pipeline in pipelines:
            ops = [s for s in _children(spans, pipeline) if s.kind == "operator"]
            busy = sum(s.attributes["busy_s"] for s in ops)
            assert math.isclose(busy, pipeline.duration, rel_tol=1e-9, abs_tol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(data=tables(), plan=plans())
    def test_tracing_does_not_change_simulated_results(self, data, plan):
        """The overhead guarantee: identical rows and identical simulated
        time with and without a tracer installed."""
        from tests.core.test_random_plans import normalise

        plain = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        traced = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0, tracer=Tracer())
        rows_plain = normalise(plain.execute(plan, data))
        rows_traced = normalise(traced.execute(plan, data))
        assert rows_plain == rows_traced
        assert plain.last_profile.sim_seconds == traced.last_profile.sim_seconds
        assert plain.device.clock.now == traced.device.clock.now
