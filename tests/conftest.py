"""Shared fixtures: simulated devices and small canonical tables.

Reproducibility: property-based tests (hypothesis) honour the
``REPRO_TEST_SEED`` environment variable — set it to replay a failing CI
run locally (``REPRO_TEST_SEED=123 pytest ...``).  The active seed is
printed in the pytest report header and on failure hypothesis prints the
reproduction blob (``print_blob`` is on in the registered profile).
"""

import os

import pytest

from repro.columnar import Schema, Table
from repro.gpu import A100_40G, Device, GH200, M7I_CPU

try:
    from hypothesis import settings as _hyp_settings

    _hyp_settings.register_profile("repro", print_blob=True)
    _hyp_settings.load_profile("repro")
    _HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test extra
    _HAVE_HYPOTHESIS = False

REPRO_TEST_SEED = os.environ.get("REPRO_TEST_SEED")


def pytest_configure(config):
    if _HAVE_HYPOTHESIS and REPRO_TEST_SEED and hasattr(config.option, "hypothesis_seed"):
        # Only take the env seed when none was passed on the command line.
        if config.option.hypothesis_seed is None:
            config.option.hypothesis_seed = REPRO_TEST_SEED


def pytest_report_header(config):
    if REPRO_TEST_SEED:
        return f"repro: REPRO_TEST_SEED={REPRO_TEST_SEED} (hypothesis seed pinned)"
    return "repro: REPRO_TEST_SEED unset (hypothesis uses a random seed)"


@pytest.fixture
def gpu():
    """A GH200-like device with a small memory limit (tests stay tiny)."""
    return Device(GH200, memory_limit_gb=2.0)


@pytest.fixture
def cpu_device():
    return Device(M7I_CPU, memory_limit_gb=2.0)


@pytest.fixture
def a100():
    return Device(A100_40G, memory_limit_gb=2.0)


@pytest.fixture
def orders_table():
    """A small orders-like table with ints, floats, dates, and strings."""
    schema = Schema(
        [
            ("o_orderkey", "int64"),
            ("o_custkey", "int64"),
            ("o_totalprice", "float64"),
            ("o_orderdate", "date"),
            ("o_orderpriority", "string"),
        ]
    )
    return Table.from_pydict(
        {
            "o_orderkey": [1, 2, 3, 4, 5, 6],
            "o_custkey": [10, 20, 10, 30, 20, 10],
            "o_totalprice": [100.0, 250.5, 75.25, 300.0, 125.75, 90.0],
            "o_orderdate": [
                "1995-01-10",
                "1995-03-15",
                "1996-06-01",
                "1996-07-20",
                "1997-02-28",
                "1997-11-11",
            ],
            "o_orderpriority": ["1-URGENT", "2-HIGH", "1-URGENT", "3-MEDIUM", "2-HIGH", "5-LOW"],
        },
        schema,
    )


@pytest.fixture
def customer_table():
    schema = Schema(
        [
            ("c_custkey", "int64"),
            ("c_name", "string"),
            ("c_acctbal", "float64"),
        ]
    )
    return Table.from_pydict(
        {
            "c_custkey": [10, 20, 30, 40],
            "c_name": ["Customer#10", "Customer#20", "Customer#30", "Customer#40"],
            "c_acctbal": [1000.0, -50.0, 0.0, 777.7],
        },
        schema,
    )
