"""Unit tests for the IR optimizer passes: pruning and build-side swap."""


from repro.columnar import Schema
from repro.plan import JoinRel, PlanBuilder, ProjectRel, ReadRel, col, lit
from repro.plan.plan import Plan, walk_relations
from repro.sql.optimizer import choose_build_sides, optimize_plan, prune_columns

WIDE = Schema([(f"c{i}", "int64") for i in range(8)])
OTHER = Schema([("k", "int64"), ("v", "float64"), ("s", "string")])


def reads(rel):
    return [r for r in walk_relations(rel) if isinstance(r, ReadRel)]


class TestProjectionPruning:
    def test_scan_pruned_to_used_columns(self):
        plan = (
            PlanBuilder.read("t", WIDE)
            .filter(col("c3") > lit(0))
            .project([("c1", "out")])
            .build()
        )
        pruned = prune_columns(plan.root)
        (read,) = reads(pruned)
        assert set(read.projection) == {"c1", "c3"}
        Plan(pruned).validate()

    def test_pruned_plan_keeps_output_schema(self):
        plan = (
            PlanBuilder.read("t", WIDE)
            .project([("c7", "a"), (col("c0") + lit(1), "b")])
            .build()
        )
        pruned = prune_columns(plan.root)
        assert Plan(pruned).output_schema().names() == ["a", "b"]

    def test_join_prunes_both_sides(self):
        left = PlanBuilder.read("t", WIDE)
        right = PlanBuilder.read("u", OTHER)
        plan = (
            left.join(right, "inner", [("c0", "k")])
            .project([("c2", "x"), ("v", "y")])
            .build()
        )
        pruned = prune_columns(plan.root)
        projections = {r.table_name: set(r.projection) for r in reads(pruned)}
        assert projections["t"] == {"c0", "c2"}
        assert projections["u"] == {"k", "v"}
        Plan(pruned).validate()

    def test_aggregate_keeps_group_and_measure_inputs(self):
        plan = (
            PlanBuilder.read("u", OTHER)
            .aggregate(groups=["s"], aggs=[("sum", "v", "total")])
            .build()
        )
        pruned = prune_columns(plan.root)
        (read,) = reads(pruned)
        assert set(read.projection) == {"s", "v"}

    def test_sort_keys_survive_pruning(self):
        plan = (
            PlanBuilder.read("u", OTHER)
            .project([("k", "k"), ("v", "v")])
            .sort([("v", False)])
            .build()
        )
        pruned = prune_columns(plan.root)
        Plan(pruned).validate()

    def test_semi_join_right_side_keeps_keys_only(self):
        left = PlanBuilder.read("t", WIDE)
        right = PlanBuilder.read("u", OTHER)
        plan = left.join(right, "semi", [("c0", "k")]).select(["c1"]).build()
        pruned = prune_columns(plan.root)
        projections = {r.table_name: set(r.projection) for r in reads(pruned)}
        assert projections["u"] == {"k"}


class TestBuildSideSwap:
    def make_join(self, left_name, right_name):
        left = PlanBuilder.read(left_name, WIDE)
        right = PlanBuilder.read(right_name, OTHER)
        return left.join(right, "inner", [("c0", "k")]).build()

    def test_bigger_right_side_swapped(self):
        plan = self.make_join("small", "big")
        out = choose_build_sides(plan.root, {"small": 10, "big": 100_000})
        # Swap inserts a re-ordering projection above the flipped join.
        assert isinstance(out, ProjectRel)
        join = next(r for r in walk_relations(out) if isinstance(r, JoinRel))
        assert join.left.table_name == "big"
        Plan(out).validate()

    def test_smaller_right_side_untouched(self):
        plan = self.make_join("big", "small")
        out = choose_build_sides(plan.root, {"big": 100_000, "small": 10})
        assert isinstance(out, JoinRel)

    def test_swap_preserves_output_schema(self):
        plan = self.make_join("small", "big")
        out = choose_build_sides(plan.root, {"small": 10, "big": 100_000})
        assert Plan(out).output_schema() == plan.output_schema()

    def test_semi_join_never_swapped(self):
        left = PlanBuilder.read("small", WIDE)
        right = PlanBuilder.read("big", OTHER)
        plan = left.join(right, "semi", [("c0", "k")]).build()
        out = choose_build_sides(plan.root, {"small": 10, "big": 100_000})
        assert isinstance(out, JoinRel) and out.join_type == "semi"


class TestOptimizePlanEndToEnd:
    def test_combined_passes_validate(self):
        left = PlanBuilder.read("small", WIDE)
        right = PlanBuilder.read("big", OTHER)
        plan = (
            left.join(right, "inner", [("c0", "k")])
            .filter(col("v") > lit(1.0))
            .aggregate(groups=["s"], aggs=[("count", None, "n")])
            .sort([("n", False)])
            .limit(5)
            .build()
        )
        optimized = optimize_plan(plan, {"small": 10, "big": 100_000})
        assert optimized.output_schema() == plan.output_schema()
