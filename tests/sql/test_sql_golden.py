"""Golden-result SQL tests: hand-computed answers on a tiny catalog.

These validate end-to-end SQL semantics (parser -> planner -> engine)
against values checked by hand, independently of the engine-vs-engine
differential tests.
"""

import pytest

from repro.columnar import Schema, Table
from repro.hosts import MiniDuck


@pytest.fixture(scope="module")
def db():
    duck = MiniDuck()
    duck.create_table(
        "emp",
        Table.from_pydict(
            {
                "id": [1, 2, 3, 4, 5],
                "dept": ["eng", "eng", "sales", "sales", "hr"],
                "salary": [100.0, 120.0, 80.0, 90.0, 70.0],
                "hired": ["2020-01-15", "2019-06-01", "2021-03-20", "2020-11-11", "2022-02-02"],
                "manager": [None, 1, 1, 3, 1],
            },
            Schema(
                [
                    ("id", "int64"),
                    ("dept", "string"),
                    ("salary", "float64"),
                    ("hired", "date"),
                    ("manager", "int64"),
                ]
            ),
        ),
    )
    duck.create_table(
        "dept",
        Table.from_pydict(
            {"name": ["eng", "sales", "hr", "legal"], "budget": [500, 300, 100, 50]},
            Schema([("name", "string"), ("budget", "int64")]),
        ),
    )
    return duck


def rows(db, sql):
    return db.execute(sql).table.to_rows()


class TestProjectionAndFilter:
    def test_select_constant_expression(self, db):
        assert rows(db, "select 1 + 2 * 3 as x from dept limit 1") == [(7,)]

    def test_where_and_or_precedence(self, db):
        got = rows(db, "select id from emp where dept = 'eng' or dept = 'hr' and salary > 75")
        assert sorted(r[0] for r in got) == [1, 2]  # hr filtered out by AND

    def test_between_inclusive(self, db):
        got = rows(db, "select id from emp where salary between 80 and 100 order by id")
        assert [r[0] for r in got] == [1, 3, 4]

    def test_like_case_sensitivity(self, db):
        assert rows(db, "select count(*) as n from emp where dept like 'ENG'") == [(0,)]
        assert rows(db, "select count(*) as n from emp where dept like 'e%'") == [(2,)]

    def test_date_comparison(self, db):
        got = rows(db, "select id from emp where hired >= date '2021-01-01' order by id")
        assert [r[0] for r in got] == [3, 5]

    def test_is_null(self, db):
        assert rows(db, "select id from emp where manager is null") == [(1,)]
        assert rows(db, "select count(*) as n from emp where manager is not null") == [(4,)]


class TestAggregates:
    def test_group_by_with_having(self, db):
        got = rows(
            db,
            "select dept, avg(salary) as a from emp group by dept "
            "having avg(salary) > 75 order by dept",
        )
        assert got == [("eng", 110.0), ("sales", 85.0)]

    def test_count_star_vs_count_column(self, db):
        assert rows(db, "select count(*) as a, count(manager) as b from emp") == [(5, 4)]

    def test_min_max_on_strings_and_dates(self, db):
        import datetime

        got = rows(db, "select min(dept) as a, max(hired) as b from emp")
        assert got == [("eng", datetime.date(2022, 2, 2))]

    def test_distinct(self, db):
        got = rows(db, "select distinct dept from emp order by dept")
        assert got == [("eng",), ("hr",), ("sales",)]

    def test_case_in_aggregate(self, db):
        got = rows(
            db,
            "select sum(case when dept = 'eng' then salary else 0 end) as eng_total from emp",
        )
        assert got == [(220.0,)]


class TestJoinsAndSubqueries:
    def test_inner_join_with_filter(self, db):
        got = rows(
            db,
            "select e.id, d.budget from emp e, dept d "
            "where e.dept = d.name and d.budget >= 300 order by e.id",
        )
        assert got == [(1, 500), (2, 500), (3, 300), (4, 300)]

    def test_self_join(self, db):
        got = rows(
            db,
            "select e.id, m.id from emp e, emp m "
            "where e.manager = m.id and m.dept = 'eng' order by e.id",
        )
        assert got == [(2, 1), (3, 1), (5, 1)]

    def test_left_join_counts_unmatched(self, db):
        got = rows(
            db,
            "select d.name, count(e.id) as n from dept d "
            "left outer join emp e on d.name = e.dept "
            "group by d.name order by d.name",
        )
        assert got == [("eng", 2), ("hr", 1), ("legal", 0), ("sales", 2)]

    def test_in_subquery(self, db):
        got = rows(
            db,
            "select name from dept where name in (select dept from emp) order by name",
        )
        assert got == [("eng",), ("hr",), ("sales",)]

    def test_not_exists(self, db):
        got = rows(
            db,
            "select name from dept where not exists ("
            "select * from emp where emp.dept = dept.name)",
        )
        assert got == [("legal",)]

    def test_correlated_scalar_subquery(self, db):
        # Employees earning above their department's average.
        got = rows(
            db,
            "select id from emp e where salary > ("
            "select avg(salary) from emp where dept = e.dept) order by id",
        )
        assert [r[0] for r in got] == [2, 4]

    def test_uncorrelated_scalar_subquery(self, db):
        got = rows(
            db,
            "select id from emp where salary > (select avg(salary) from emp) order by id",
        )
        assert [r[0] for r in got] == [1, 2]

    def test_derived_table(self, db):
        got = rows(
            db,
            "select t.d, t.total from (select dept as d, sum(salary) as total "
            "from emp group by dept) t where t.total > 100 order by t.d",
        )
        assert got == [("eng", 220.0), ("sales", 170.0)]

    def test_cte(self, db):
        got = rows(
            db,
            "with totals as (select dept as d, sum(salary) as s from emp group by dept) "
            "select d from totals where s = (select max(s) from totals)",
        )
        assert got == [("eng",)]


class TestOrderLimit:
    def test_order_by_two_keys(self, db):
        got = rows(db, "select dept, id from emp order by dept, id desc")
        assert got[0] == ("eng", 2) and got[-1] == ("sales", 3)

    def test_limit_after_sort(self, db):
        got = rows(db, "select id from emp order by salary desc limit 2")
        assert [r[0] for r in got] == [2, 1]

    def test_order_by_position(self, db):
        got = rows(db, "select id, salary from emp order by 2 limit 1")
        assert got == [(5, 70.0)]
