"""Regression tests for frontend defects found while building the SQL
shape battery.  Each class pins one fixed defect; the last pins the
typed-error guarantee (malformed SQL raises SqlSyntaxError or
SqlPlanningError, never an untyped exception)."""

import pytest

from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import CpuEngine, MiniDuck, SiriusExtension
from repro.sql import SqlPlanningError, SqlSyntaxError
from repro.tpch import generate_tpch


@pytest.fixture(scope="module")
def dbs():
    tables = generate_tpch(0.01)
    cpu_db = MiniDuck()
    cpu_db.load_tables(tables)
    gpu_db = MiniDuck()
    gpu_db.load_tables(tables)
    gpu_db.install_extension(
        SiriusExtension(SiriusEngine.for_spec(GH200, memory_limit_gb=4.0), CpuEngine())
    )
    return cpu_db, gpu_db


def both(dbs, sql):
    cpu_db, gpu_db = dbs
    cpu = cpu_db.execute(sql).table.to_rows()
    gpu = gpu_db.execute(sql).table.to_rows()
    assert sorted(map(repr, cpu)) == sorted(map(repr, gpu)), sql
    return cpu


class TestNullLiterals:
    """NULL literals were untyped and crashed the GPU kernel layer."""

    def test_bare_null_projection(self, dbs):
        rows = both(dbs, "select null as x from region")
        assert rows == [(None,)] * 5

    def test_null_comparison_is_never_true(self, dbs):
        rows = both(dbs, "select count(*) as n from lineitem where l_quantity = null")
        assert rows == [(0,)]

    def test_coalesce_null_head(self, dbs):
        rows = both(dbs, "select coalesce(null, 1) as x from region")
        assert rows == [(1,)] * 5

    def test_case_without_else_yields_null(self, dbs):
        rows = both(dbs, "select case when 1 = 0 then 1 end as x from region")
        assert rows == [(None,)] * 5


class TestGlobalCountDistinct:
    """count(distinct x) without GROUP BY raised CpuEvalError on the host."""

    def test_global_count_distinct(self, dbs):
        rows = both(dbs, "select count(distinct n_regionkey) as n from nation")
        assert rows == [(5,)]

    def test_global_count_distinct_strings(self, dbs):
        rows = both(dbs, "select count(distinct o_orderstatus) as n from orders")
        assert rows == [(3,)]


class TestLikeEscape:
    """LIKE ... ESCAPE was rejected by the parser."""

    def test_escaped_percent_is_literal(self, dbs):
        rows = both(dbs, r"select count(*) as n from part where p_type like 'PROMO\%' escape '\'")
        assert rows == [(0,)]

    def test_escaped_underscore(self, dbs):
        # No part name contains a literal underscore.
        rows = both(dbs, r"select count(*) as n from part where p_name like '%\_%' escape '\'")
        assert rows == [(0,)]

    def test_escape_must_be_single_char(self, dbs):
        with pytest.raises(SqlSyntaxError):
            dbs[0].execute("select * from part where p_name like 'x%' escape 'ab'")


class TestGroupByAliasAndOrdinal:
    """GROUP BY <select alias> and GROUP BY <ordinal> failed to resolve."""

    def test_group_by_alias(self, dbs):
        rows = both(dbs, "select n_regionkey as rk, count(*) as n from nation group by rk order by rk")
        assert rows == [(i, 5) for i in range(5)]

    def test_group_by_ordinal(self, dbs):
        rows = both(dbs, "select n_regionkey, count(*) as n from nation group by 1 order by 1")
        assert rows == [(i, 5) for i in range(5)]

    def test_group_by_ordinal_out_of_range(self, dbs):
        with pytest.raises(SqlPlanningError):
            dbs[0].execute("select n_regionkey from nation group by 9")

    def test_group_by_aggregate_alias_rejected(self, dbs):
        with pytest.raises(SqlPlanningError):
            dbs[0].execute("select count(*) as n from nation group by n")


class TestScalarFunctions:
    """upper/lower/length/abs/round/concat were unknown to the whole stack."""

    def test_upper_lower(self, dbs):
        rows = both(dbs, "select upper(r_name) as u, lower(r_name) as l from region order by u")
        assert rows[0] == ("AFRICA", "africa")

    def test_length(self, dbs):
        rows = both(dbs, "select length(r_name) as n from region order by n")
        assert [r[0] for r in rows] == sorted(len(n) for n in
                                              ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"])

    def test_concat_operator_and_function(self, dbs):
        rows = both(dbs, "select r_name || '!' as a, concat(r_name, '?') as b from region order by a")
        assert rows[0] == ("AFRICA!", "AFRICA?")

    def test_abs_round(self, dbs):
        rows = both(dbs, "select abs(-2) as a, round(2.567, 2) as r from region limit 1")
        assert rows == [(2, 2.57)]

    def test_function_over_aggregate(self, dbs):
        rows = both(dbs, "select round(avg(p_size), 1) as r from part")
        assert isinstance(rows[0][0], float)

    def test_unknown_function_is_typed(self, dbs):
        with pytest.raises(SqlPlanningError):
            dbs[0].execute("select frobnicate(r_name) from region")

    def test_wrong_arity_is_typed(self, dbs):
        with pytest.raises(SqlPlanningError):
            dbs[0].execute("select upper(r_name, 2) from region")

    def test_type_mismatch_is_typed(self, dbs):
        with pytest.raises(SqlPlanningError):
            dbs[0].execute("select abs(r_name) from region")


class TestQualifiedStar:
    """``alias.*`` failed to parse."""

    def test_qualified_star(self, dbs):
        rows = both(dbs, "select r.* from region r order by r_regionkey")
        assert len(rows) == 5 and len(rows[0]) == 3

    def test_qualified_star_in_join(self, dbs):
        rows = both(
            dbs,
            "select n.* from nation n join region r on n_regionkey = r_regionkey "
            "where r_name = 'ASIA' order by n_nationkey",
        )
        assert len(rows) == 5 and len(rows[0]) == 4

    def test_unknown_alias_star_is_typed(self, dbs):
        with pytest.raises(SqlPlanningError):
            dbs[0].execute("select z.* from region r")


class TestOffset:
    """OFFSET was lexed but rejected by the parser; the GPU compiler also
    dropped offset-without-limit on sorted output."""

    def test_limit_offset(self, dbs):
        rows = both(dbs, "select n_name from nation order by n_name limit 3 offset 2")
        assert len(rows) == 3

    def test_offset_without_limit(self, dbs):
        rows = both(dbs, "select n_name from nation order by n_name offset 22")
        assert [r[0] for r in rows] == ["UNITED KINGDOM", "UNITED STATES", "VIETNAM"]

    def test_offset_past_end(self, dbs):
        rows = both(dbs, "select r_name from region order by r_name limit 5 offset 99")
        assert rows == []

    def test_offset_requires_number(self, dbs):
        with pytest.raises(SqlSyntaxError):
            dbs[0].execute("select r_name from region offset x")


class TestLeftJoinResidualOn:
    """Residual LEFT JOIN ON conjuncts were applied as a post-join filter,
    wrongly dropping null-extended rows."""

    def test_restrictive_on_keeps_all_left_rows(self, dbs):
        rows = both(
            dbs,
            "select count(*) as n from nation left join supplier "
            "on n_nationkey = s_nationkey and s_acctbal > 99999.0",
        )
        assert rows == [(25,)]

    def test_unmatched_rows_null_extend(self, dbs):
        rows = both(
            dbs,
            "select count(s_name) as matched, count(*) as total from nation "
            "left join supplier on n_nationkey = s_nationkey and 1 = 0",
        )
        assert rows == [(0, 25)]

    def test_left_side_residual_is_typed(self, dbs):
        with pytest.raises(SqlPlanningError):
            dbs[0].execute(
                "select count(*) from nation left join supplier "
                "on n_nationkey = s_nationkey and n_regionkey > 2"
            )


MALFORMED = [
    "select",
    "select from region",
    "select * from",
    "select * frm region",
    "select * from region where",
    "select * from region where r_name ==",
    "select * from region limit 'x'",
    "select * from region order by",
    "select * from region group by",
    "select count( from region",
    "select * from region r where like 'x'",
    "select * from region; drop table region",
    "select * from region union select * from nation",
    "select (select from nation) from region",
    "select * from region where r_name like 'x' escape",
    "select case when then 1 end from region",
    "select * from region offset",
    "select 'unterminated from region",
]

NONVIABLE = [
    "select * from no_such_table",
    "select no_such_column from region",
    "select r_name + 1 from region",
    "select sum(r_name) from region",
    "select * from region where no_such(r_name)",
    "select nation.* from region",
    "select * from region group by 0",
    "select upper(r_regionkey) from region",
]


class TestTypedErrorsOnly:
    """Anything the frontend rejects must surface as a typed error."""

    @pytest.mark.parametrize("sql", MALFORMED)
    def test_malformed_raises_syntax_or_planning(self, dbs, sql):
        with pytest.raises((SqlSyntaxError, SqlPlanningError)):
            dbs[0].execute(sql)

    @pytest.mark.parametrize("sql", NONVIABLE)
    def test_nonviable_raises_planning(self, dbs, sql):
        with pytest.raises((SqlSyntaxError, SqlPlanningError)):
            dbs[0].execute(sql)
