"""Unit tests for the SQL lexer."""

import pytest

from repro.sql import SqlSyntaxError, tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]  # drop eof


class TestBasicTokens:
    def test_keywords_lowercased(self):
        assert kinds("SELECT From")[0] == ("keyword", "select")
        assert kinds("SELECT From")[1] == ("keyword", "from")

    def test_identifiers(self):
        assert kinds("l_orderkey")[0] == ("ident", "l_orderkey")

    def test_qualified_name_tokens(self):
        toks = kinds("n1.n_name")
        assert toks == [("ident", "n1"), ("op", "."), ("ident", "n_name")]

    def test_integer_and_decimal(self):
        assert kinds("42")[0] == ("number", "42")
        assert kinds("0.05")[0] == ("number", "0.05")

    def test_number_then_dot_identifier_not_swallowed(self):
        toks = kinds("7.0")
        assert toks == [("number", "7.0")]

    def test_string_literal(self):
        assert kinds("'BUILDING'")[0] == ("string", "BUILDING")

    def test_escaped_quote_in_string(self):
        assert kinds("'it''s'")[0] == ("string", "it's")

    def test_two_char_operators(self):
        assert kinds("a <> b")[1] == ("op", "<>")
        assert kinds("a >= b")[1] == ("op", ">=")

    def test_eof_token_present(self):
        assert tokenize("select")[-1].kind == "eof"


class TestCommentsAndErrors:
    def test_line_comment_skipped(self):
        assert kinds("select -- a comment\n 1") == [("keyword", "select"), ("number", "1")]

    def test_block_comment_skipped(self):
        assert kinds("select /* hi */ 1") == [("keyword", "select"), ("number", "1")]

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError, match="unterminated string"):
            tokenize("select 'oops")

    def test_unterminated_comment_raises(self):
        with pytest.raises(SqlSyntaxError, match="unterminated comment"):
            tokenize("select /* forever")

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("select @foo")

    def test_quoted_identifier(self):
        assert kinds('"Weird Name"')[0] == ("ident", "weird name")
