"""Property-based random SQL over the TPC-H catalog.

A bounded grammar (seeded via the ``repro`` hypothesis profile, see
conftest) composes statements over the small TPC-H tables; every
generated statement must

* execute on the CPU reference and the GPU engine with identical results
  (the battery's differential invariant, under composition the
  hand-written battery doesn't enumerate), and
* when truncated to an arbitrary prefix, either execute or raise a
  *typed* frontend error — never an untyped exception.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.baselines import canonical_rows, rows_equal
from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import CpuEngine, MiniDuck, SiriusExtension
from repro.sql import SqlPlanningError, SqlSyntaxError
from repro.tpch import generate_tpch

INT_COLS = {
    "nation": ["n_nationkey", "n_regionkey"],
    "supplier": ["s_suppkey", "s_nationkey"],
    "region": ["r_regionkey"],
}
FLOAT_COLS = {"nation": [], "supplier": ["s_acctbal"], "region": []}
STR_COLS = {
    "nation": ["n_name"],
    "supplier": ["s_name", "s_phone"],
    "region": ["r_name"],
}
CMP = ["=", "<>", "<", "<=", ">", ">="]
PATTERNS = ["A%", "%a%", "%er", "_____", "Supplier#%", "%UNITED%"]


@st.composite
def predicates(draw, table):
    kind = draw(st.sampled_from(["int_cmp", "float_cmp", "between", "in", "like", "null", "arith"]))
    if kind == "float_cmp" and not FLOAT_COLS[table]:
        kind = "int_cmp"
    if kind == "int_cmp":
        col = draw(st.sampled_from(INT_COLS[table]))
        return f"{col} {draw(st.sampled_from(CMP))} {draw(st.integers(-2, 30))}"
    if kind == "float_cmp":
        col = draw(st.sampled_from(FLOAT_COLS[table]))
        return f"{col} {draw(st.sampled_from(CMP))} {draw(st.integers(-1000, 10000))}.0"
    if kind == "between":
        col = draw(st.sampled_from(INT_COLS[table]))
        lo = draw(st.integers(-2, 20))
        neg = "not " if draw(st.booleans()) else ""
        return f"{col} {neg}between {lo} and {lo + draw(st.integers(0, 15))}"
    if kind == "in":
        col = draw(st.sampled_from(INT_COLS[table]))
        values = draw(st.lists(st.integers(0, 24), min_size=1, max_size=4))
        neg = "not " if draw(st.booleans()) else ""
        return f"{col} {neg}in ({', '.join(map(str, values))})"
    if kind == "like":
        col = draw(st.sampled_from(STR_COLS[table]))
        neg = "not " if draw(st.booleans()) else ""
        return f"{col} {neg}like '{draw(st.sampled_from(PATTERNS))}'"
    if kind == "null":
        col = draw(st.sampled_from(INT_COLS[table] + STR_COLS[table]))
        neg = " not" if draw(st.booleans()) else ""
        return f"{col} is{neg} null"
    col = draw(st.sampled_from(INT_COLS[table]))
    op = draw(st.sampled_from(["+", "-", "*", "%"]))
    return f"{col} {op} {draw(st.integers(1, 7))} {draw(st.sampled_from(CMP))} {draw(st.integers(0, 40))}"


@st.composite
def sql_statements(draw):
    table = draw(st.sampled_from(["nation", "supplier", "region"]))
    preds = [draw(predicates(table)) for _ in range(draw(st.integers(0, 2)))]
    where = f" where {' and '.join(preds)}" if preds else ""

    shape = draw(st.sampled_from(["plain", "distinct", "group", "global"]))
    key = draw(st.sampled_from(INT_COLS[table] + STR_COLS[table]))
    if shape == "group":
        agg_col = draw(st.sampled_from(INT_COLS[table] + FLOAT_COLS[table]))
        fn = draw(st.sampled_from(["sum", "min", "max", "avg", "count"]))
        select = f"{key}, {fn}({agg_col}) as m, count(*) as n"
        tail = f" group by {key} order by {key}"
    elif shape == "global":
        agg_col = draw(st.sampled_from(INT_COLS[table] + FLOAT_COLS[table]))
        select = f"sum({agg_col}) as s, count(*) as n"
        tail = ""
    elif shape == "distinct":
        select = f"distinct {key}"
        tail = f" order by {key}"
    else:
        cols = INT_COLS[table] + STR_COLS[table]
        select = ", ".join(cols)
        tail = f" order by {', '.join(cols)}"
        if draw(st.booleans()):
            tail += f" limit {draw(st.integers(0, 30))}"
            if draw(st.booleans()):
                tail += f" offset {draw(st.integers(0, 10))}"
    return f"select {select} from {table}{where}{tail}"


@pytest.fixture(scope="module")
def dbs():
    tables = generate_tpch(0.01)
    small = {n: tables[n] for n in ("nation", "supplier", "region")}
    cpu_db = MiniDuck()
    cpu_db.load_tables(small)
    gpu_db = MiniDuck()
    gpu_db.load_tables(small)
    gpu_db.install_extension(
        SiriusExtension(SiriusEngine.for_spec(GH200, memory_limit_gb=1.0), CpuEngine())
    )
    return cpu_db, gpu_db


class TestRandomSql:
    @settings(max_examples=120, deadline=None)
    @given(sql=sql_statements())
    def test_generated_sql_agrees_across_engines(self, dbs, sql):
        cpu_db, gpu_db = dbs
        cpu = cpu_db.execute(sql).table
        gpu = gpu_db.execute(sql).table
        assert cpu.schema.names() == gpu.schema.names(), sql
        assert rows_equal(cpu.to_rows(), gpu.to_rows()), (
            sql,
            canonical_rows(cpu.to_rows())[:5],
            canonical_rows(gpu.to_rows())[:5],
        )

    @settings(max_examples=120, deadline=None)
    @given(sql=sql_statements(), cut=st.integers(1, 200))
    def test_truncated_sql_never_raises_untyped(self, dbs, sql, cut):
        cpu_db, _ = dbs
        prefix = sql[: max(1, len(sql) - cut)]
        try:
            cpu_db.execute(prefix)
        except (SqlSyntaxError, SqlPlanningError):
            pass  # typed rejection is the contract
