"""Unit tests for the SQL planner: binding, join graphs, decorrelation."""

import pytest

from repro.plan import AggregateRel, FetchRel, FilterRel, JoinRel, SortRel
from repro.plan.plan import walk_relations
from repro.sql import SqlPlanner, SqlPlanningError, TableStats
from repro.tpch import TPCH_QUERIES, TPCH_SCHEMAS, TABLE_BASE_ROWS


@pytest.fixture
def catalog():
    return {
        name: TableStats(schema, max(int(TABLE_BASE_ROWS[name] * 0.01), 1))
        for name, schema in TPCH_SCHEMAS.items()
    }


@pytest.fixture
def planner(catalog):
    return SqlPlanner(catalog)


def rels_of(plan, cls):
    return [r for r in walk_relations(plan.root) if isinstance(r, cls)]


class TestBasicPlans:
    def test_scan_project(self, planner):
        plan = planner.plan_sql("select n_name from nation")
        assert plan.output_schema().names() == ["n_name"]

    def test_filter_plan(self, planner):
        plan = planner.plan_sql("select n_name from nation where n_nationkey = 3")
        assert rels_of(plan, FilterRel)

    def test_unknown_table_rejected(self, planner):
        with pytest.raises(SqlPlanningError, match="unknown table"):
            planner.plan_sql("select 1 from ghosts")

    def test_unknown_column_rejected(self, planner):
        with pytest.raises(SqlPlanningError, match="unknown column"):
            planner.plan_sql("select wrong from nation")

    def test_ambiguous_column_rejected(self, planner):
        with pytest.raises(SqlPlanningError, match="ambiguous"):
            planner.plan_sql(
                "select n_name from nation n1, nation n2 where n1.n_nationkey = n2.n_nationkey"
            )

    def test_qualified_disambiguation(self, planner):
        plan = planner.plan_sql(
            "select n1.n_name from nation n1, nation n2 "
            "where n1.n_nationkey = n2.n_nationkey"
        )
        assert plan.output_schema().names() == ["n_name"]

    def test_order_by_alias_and_position(self, planner):
        plan = planner.plan_sql(
            "select n_name as x from nation order by x"
        )
        assert rels_of(plan, SortRel)
        plan2 = planner.plan_sql("select n_name from nation order by 1 desc limit 3")
        assert rels_of(plan2, FetchRel)[0].count == 3

    def test_distinct_becomes_group(self, planner):
        plan = planner.plan_sql("select distinct n_regionkey from nation")
        aggs = rels_of(plan, AggregateRel)
        assert aggs and aggs[0].measures == []


class TestJoinGraph:
    def test_comma_join_produces_equi_join(self, planner):
        plan = planner.plan_sql(
            "select n_name, r_name from nation, region where n_regionkey = r_regionkey"
        )
        joins = rels_of(plan, JoinRel)
        assert len(joins) == 1
        assert joins[0].left_keys and joins[0].join_type == "inner"

    def test_single_table_predicates_pushed_to_scan_side(self, planner):
        plan = planner.plan_sql(
            "select n_name from nation, region "
            "where n_regionkey = r_regionkey and r_name = 'ASIA'"
        )
        # The region filter must sit below the join, not above it.
        join = rels_of(plan, JoinRel)[0]
        below = [r for side in join.inputs for r in walk_relations(side)]
        assert any(isinstance(r, FilterRel) for r in below)

    def test_greedy_reorder_starts_from_small_table(self, catalog):
        greedy = SqlPlanner(catalog, reorder_joins=True)
        as_written = SqlPlanner(catalog, reorder_joins=False)
        sql = TPCH_QUERIES[5]
        # Both must plan, and generally produce different join trees.
        p1 = greedy.plan_sql(sql)
        p2 = as_written.plan_sql(sql)
        assert p1.to_json() != p2.to_json()

    def test_written_order_cross_joins_when_disconnected(self, catalog):
        as_written = SqlPlanner(catalog, reorder_joins=False)
        plan = as_written.plan_sql(
            "select 1 from part, supplier, lineitem "
            "where p_partkey = l_partkey and s_suppkey = l_suppkey"
        )
        joins = rels_of(plan, JoinRel)
        assert any(not j.left_keys for j in joins)  # the part x supplier cross

    def test_greedy_avoids_the_cross_join(self, planner):
        plan = planner.plan_sql(
            "select 1 from part, supplier, lineitem "
            "where p_partkey = l_partkey and s_suppkey = l_suppkey"
        )
        assert all(j.left_keys for j in rels_of(plan, JoinRel))

    def test_left_outer_join(self, planner):
        plan = planner.plan_sql(
            "select c_custkey from customer left outer join orders on c_custkey = o_custkey"
        )
        assert rels_of(plan, JoinRel)[0].join_type == "left"


class TestDecorrelation:
    def test_exists_becomes_semi_join(self, planner):
        plan = planner.plan_sql(
            "select o_orderkey from orders where exists ("
            "select * from lineitem where l_orderkey = o_orderkey)"
        )
        assert any(j.join_type == "semi" for j in rels_of(plan, JoinRel))

    def test_not_exists_becomes_anti_join(self, planner):
        plan = planner.plan_sql(
            "select c_custkey from customer where not exists ("
            "select * from orders where o_custkey = c_custkey)"
        )
        assert any(j.join_type == "anti" for j in rels_of(plan, JoinRel))

    def test_exists_with_non_equi_residual(self, planner):
        # Q21's pattern: equality + inequality correlation.
        plan = planner.plan_sql(
            "select l1.l_orderkey from lineitem l1 where exists ("
            "select * from lineitem l2 where l2.l_orderkey = l1.l_orderkey "
            "and l2.l_suppkey <> l1.l_suppkey)"
        )
        semi = next(j for j in rels_of(plan, JoinRel) if j.join_type == "semi")
        assert semi.post_filter is not None

    def test_in_subquery_becomes_semi_join(self, planner):
        plan = planner.plan_sql(
            "select o_orderpriority from orders where o_orderkey in ("
            "select l_orderkey from lineitem)"
        )
        assert any(j.join_type == "semi" for j in rels_of(plan, JoinRel))

    def test_not_in_becomes_anti_join(self, planner):
        plan = planner.plan_sql(
            "select s_suppkey from supplier where s_suppkey not in ("
            "select ps_suppkey from partsupp)"
        )
        assert any(j.join_type == "anti" for j in rels_of(plan, JoinRel))

    def test_correlated_scalar_aggregate(self, planner):
        # Q17's pattern: grouped subquery joined back on the correlation key.
        plan = planner.plan_sql(
            "select sum(l_extendedprice) from lineitem, part "
            "where p_partkey = l_partkey and l_quantity < ("
            "select 0.2 * avg(l_quantity) from lineitem where l_partkey = p_partkey)"
        )
        aggs = rels_of(plan, AggregateRel)
        assert len(aggs) >= 2  # the decorrelated group-by + the outer one

    def test_uncorrelated_scalar_becomes_cross_join(self, planner):
        plan = planner.plan_sql(
            "select c_custkey from customer where c_acctbal > ("
            "select avg(c_acctbal) from customer)"
        )
        assert any(not j.left_keys for j in rels_of(plan, JoinRel))

    def test_correlation_disabled_raises(self, catalog):
        planner = SqlPlanner(catalog, allow_correlated_subqueries=False)
        with pytest.raises(SqlPlanningError, match="correlated"):
            planner.plan_sql(
                "select o_orderkey from orders where exists ("
                "select * from lineitem where l_orderkey = o_orderkey)"
            )


class TestAggregatePlanning:
    def test_aggregate_with_expression_argument(self, planner):
        plan = planner.plan_sql(
            "select sum(l_extendedprice * (1 - l_discount)) as rev from lineitem"
        )
        assert plan.output_schema().names() == ["rev"]

    def test_having_filters_after_aggregate(self, planner):
        plan = planner.plan_sql(
            "select l_orderkey, sum(l_quantity) from lineitem "
            "group by l_orderkey having sum(l_quantity) > 100"
        )
        # Find a FilterRel above an AggregateRel.
        found = False
        for rel in walk_relations(plan.root):
            if isinstance(rel, FilterRel) and any(
                isinstance(r, AggregateRel) for r in walk_relations(rel.input_rel)
            ):
                found = True
        assert found

    def test_bare_column_outside_group_by_rejected(self, planner):
        with pytest.raises(SqlPlanningError, match="GROUP BY"):
            planner.plan_sql("select n_name, count(*) from nation group by n_regionkey")

    def test_or_factoring_extracts_common_join_predicate(self, planner):
        # Q19's shape: the shared p_partkey = l_partkey must become a join
        # edge even though it is written inside an OR.
        plan = planner.plan_sql(
            "select sum(l_extendedprice) from lineitem, part where "
            "(p_partkey = l_partkey and p_size = 1) or (p_partkey = l_partkey and p_size = 2)"
        )
        assert all(j.left_keys for j in rels_of(plan, JoinRel))

    def test_interval_folding(self, planner):
        plan = planner.plan_sql(
            "select count(*) from orders where o_orderdate < date '1995-01-01' + interval '3' month"
        )
        assert "1995-04-01" in plan.to_json()


class TestAll22Plan:
    @pytest.mark.parametrize("q", sorted(TPCH_QUERIES))
    def test_plans_and_validates(self, planner, q):
        plan = planner.plan_sql(TPCH_QUERIES[q])
        plan.validate()
        assert len(plan.output_schema()) >= 1
