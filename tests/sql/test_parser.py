"""Unit tests for the SQL parser (AST shapes)."""

import pytest

from repro.sql import parse_sql
from repro.sql.ast_nodes import (
    AggCall,
    BetweenExpr,
    BinaryOp,
    CaseExpr,
    DateLit,
    ExistsExpr,
    InExpr,
    IntervalLit,
    LikeExpr,
    ScalarSubquery,
    SubqueryRef,
    TableRef,
)
from repro.sql.lexer import SqlSyntaxError
from repro.tpch import TPCH_QUERIES


class TestSelectBasics:
    def test_simple_select(self):
        stmt = parse_sql("select a, b from t")
        assert [i.expr.name for i in stmt.items] == ["a", "b"]
        assert stmt.from_tables == [TableRef("t", None)]

    def test_aliases(self):
        stmt = parse_sql("select a as x, b y from t1 t, t2 as u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_tables[0].alias == "t"
        assert stmt.from_tables[1].alias == "u"

    def test_distinct(self):
        assert parse_sql("select distinct a from t").distinct

    def test_group_having_order_limit(self):
        stmt = parse_sql(
            "select a, sum(b) from t group by a having sum(b) > 5 order by 2 desc limit 7"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 7

    def test_trailing_semicolon_ok(self):
        parse_sql("select a from t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_sql("select a from t where x = 1 42")


class TestExpressions:
    def where(self, cond):
        return parse_sql(f"select a from t where {cond}").where

    def test_precedence_and_over_or(self):
        expr = self.where("a = 1 or b = 2 and c = 3")
        assert isinstance(expr, BinaryOp) and expr.op == "or"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "and"

    def test_arithmetic_precedence(self):
        expr = self.where("a + b * c = 1").left
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_between(self):
        expr = self.where("a between 1 and 5")
        assert isinstance(expr, BetweenExpr) and not expr.negated

    def test_not_between(self):
        assert self.where("a not between 1 and 5").negated

    def test_like_and_not_like(self):
        assert isinstance(self.where("a like 'x%'"), LikeExpr)
        assert self.where("a not like 'x%'").negated

    def test_in_list(self):
        expr = self.where("a in (1, 2, 3)")
        assert isinstance(expr, InExpr) and len(expr.values) == 3

    def test_in_subquery(self):
        expr = self.where("a in (select b from u)")
        assert isinstance(expr, InExpr) and expr.subquery is not None

    def test_exists(self):
        expr = self.where("exists (select * from u where u.x = t.a)")
        assert isinstance(expr, ExistsExpr)

    def test_scalar_subquery_comparison(self):
        expr = self.where("a < (select max(b) from u)")
        assert isinstance(expr.right, ScalarSubquery)

    def test_date_and_interval(self):
        expr = self.where("d >= date '1994-01-01' + interval '1' year")
        assert isinstance(expr.right.left, DateLit)
        assert isinstance(expr.right.right, IntervalLit)
        assert expr.right.right.unit == "year"

    def test_case_expression(self):
        stmt = parse_sql(
            "select case when a = 1 then 10 else 0 end from t"
        )
        case = stmt.items[0].expr
        assert isinstance(case, CaseExpr) and len(case.whens) == 1

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("select case else 1 end from t")

    def test_aggregates(self):
        stmt = parse_sql("select count(*), count(distinct a), avg(b) from t")
        assert stmt.items[0].expr.arg is None
        assert stmt.items[1].expr.distinct
        assert isinstance(stmt.items[2].expr, AggCall)

    def test_extract_and_substring(self):
        stmt = parse_sql(
            "select extract(year from d), substring(s from 1 for 2) from t"
        )
        assert stmt.items[0].expr.extra["part"] == "year"
        assert stmt.items[1].expr.name == "substring"

    def test_unary_minus(self):
        expr = self.where("a = -5")
        assert expr.right.op == "-"


class TestFromClause:
    def test_comma_join(self):
        stmt = parse_sql("select 1 from a, b, c")
        assert len(stmt.from_tables) == 3

    def test_explicit_left_outer_join(self):
        stmt = parse_sql(
            "select 1 from a left outer join b on a.x = b.y"
        )
        assert stmt.joins[0].kind == "left"
        assert stmt.joins[0].condition is not None

    def test_derived_table(self):
        stmt = parse_sql("select 1 from (select a from t) sub")
        assert isinstance(stmt.from_tables[0], SubqueryRef)
        assert stmt.from_tables[0].alias == "sub"

    def test_cte(self):
        stmt = parse_sql("with r as (select a from t) select a from r")
        assert "r" in stmt.ctes


class TestTpchQueriesParse:
    @pytest.mark.parametrize("q", sorted(TPCH_QUERIES))
    def test_parses(self, q):
        stmt = parse_sql(TPCH_QUERIES[q])
        assert stmt.items
