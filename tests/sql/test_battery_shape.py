"""The SQL shape battery: 340+ one-line statements over TPC-H, each
validated against its committed (rows, cols) shape on BOTH engines, with
CPU and GPU values cross-checked.  One parametrized test; zero tolerated
mismatches."""

import pytest

from repro.bench.baselines import battery_cases, expected_shapes, rows_equal
from repro.bench.baselines.battery import SCALE_FACTOR
from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import CpuEngine, MiniDuck, SiriusExtension
from repro.tpch import generate_tpch

CASES = battery_cases()
SHAPES = expected_shapes()


@pytest.fixture(scope="module")
def engines():
    tables = generate_tpch(SCALE_FACTOR)
    cpu_db = MiniDuck()
    cpu_db.load_tables(tables)
    gpu_db = MiniDuck()
    gpu_db.load_tables(tables)
    gpu_db.install_extension(
        SiriusExtension(SiriusEngine.for_spec(GH200, memory_limit_gb=4.0), CpuEngine())
    )
    return cpu_db, gpu_db


def test_every_case_has_a_committed_shape():
    assert len(CASES) >= 300
    assert {c.case_id for c in CASES} == set(SHAPES)


class TestBatteryShapes:
    @pytest.mark.parametrize("case", CASES, ids=[c.case_id for c in CASES])
    def test_shape_and_engine_agreement(self, engines, case):
        cpu_db, gpu_db = engines
        expected = SHAPES[case.case_id]

        cpu = cpu_db.execute(case.sql).table
        assert (cpu.num_rows, len(cpu.schema.fields)) == expected, case.sql

        gpu = gpu_db.execute(case.sql).table
        assert (gpu.num_rows, len(gpu.schema.fields)) == expected, case.sql

        assert cpu.schema.names() == gpu.schema.names(), case.sql
        assert rows_equal(cpu.to_rows(), gpu.to_rows()), case.sql
