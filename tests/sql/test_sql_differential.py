"""Random-SQL differential fuzzing: MiniDuck CPU vs Sirius GPU.

hypothesis composes random (valid) SQL strings over a small catalog; the
query must parse, plan, and produce identical results on both engines.
Exercises the full stack — lexer to kernels — under combinations no
hand-written test enumerates.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Schema, Table
from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import CpuEngine, MiniDuck, SiriusExtension

SCHEMA_T = Schema([("a", "int64"), ("b", "float64"), ("s", "string"), ("d", "date")])
SCHEMA_U = Schema([("a", "int64"), ("w", "int64")])

NUM_COLS = ["a", "b"]
CMP_OPS = ["=", "<>", "<", "<=", ">", ">="]
AGG_FUNCS = ["sum", "min", "max", "avg", "count"]


@st.composite
def predicates(draw, alias=""):
    kind = draw(st.sampled_from(["cmp", "between", "in", "like", "null"]))
    prefix = f"{alias}." if alias else ""
    if kind == "cmp":
        column = draw(st.sampled_from(NUM_COLS))
        op = draw(st.sampled_from(CMP_OPS))
        return f"{prefix}{column} {op} {draw(st.integers(-5, 15))}"
    if kind == "between":
        lo = draw(st.integers(-5, 10))
        return f"{prefix}a between {lo} and {lo + draw(st.integers(0, 10))}"
    if kind == "in":
        values = draw(st.lists(st.integers(0, 12), min_size=1, max_size=4))
        return f"{prefix}a in ({', '.join(map(str, values))})"
    if kind == "like":
        pattern = draw(st.sampled_from(["x%", "%y", "%z%", "q_"]))
        return f"{prefix}s like '{pattern}'"
    return f"{prefix}b is not null"


@st.composite
def sql_queries(draw):
    use_join = draw(st.booleans())
    where = []
    n_preds = draw(st.integers(0, 2))
    for _ in range(n_preds):
        where.append(draw(predicates("t" if use_join else "")))

    shape = draw(st.sampled_from(["plain", "group", "global"]))
    if shape == "group":
        agg = draw(st.sampled_from(AGG_FUNCS))
        select = f"s, {agg}(b) as m, count(*) as n"
        tail = " group by s order by s"
    elif shape == "global":
        select = "sum(b) as total, count(*) as n"
        tail = ""
    else:
        select = "a, b, s" if not use_join else "t.a, t.b, t.s, u.w"
        order_cols = "a, b, s" if not use_join else "t.a, t.b, t.s, u.w"
        tail = f" order by {order_cols}"
        if draw(st.booleans()):
            tail += f" limit {draw(st.integers(0, 12))}"

    if use_join:
        frm = "t, u"
        where = ["t.a = u.a"] + where
    else:
        frm = "t"
    where_clause = f" where {' and '.join(where)}" if where else ""
    return f"select {select} from {frm}{where_clause}{tail}"


@pytest.fixture(scope="module")
def engines():
    import numpy as np

    rng = np.random.default_rng(7)
    n = 60
    t = Table.from_pydict(
        {
            "a": rng.integers(0, 12, n).tolist(),
            "b": np.round(rng.uniform(-20, 20, n), 2).tolist(),
            "s": [rng.choice(["xeno", "navy", "buzz", "quay", "myz"]) for _ in range(n)],
            "d": ["1995-01-01"] * n,
        },
        SCHEMA_T,
    )
    u = Table.from_pydict(
        {"a": rng.integers(0, 12, 20).tolist(), "w": rng.integers(0, 9, 20).tolist()},
        SCHEMA_U,
    )
    cpu_db = MiniDuck()
    cpu_db.load_tables({"t": t, "u": u})
    gpu_db = MiniDuck()
    gpu_db.load_tables({"t": t, "u": u})
    gpu_db.install_extension(
        SiriusExtension(SiriusEngine.for_spec(GH200, memory_limit_gb=1.0), CpuEngine())
    )
    return cpu_db, gpu_db


def canonical_rows(table):
    return sorted(
        table.to_rows(),
        key=lambda row: tuple(
            f"{v:.6g}" if isinstance(v, float) else repr(v) for v in row
        ),
    )


def values_match(x, y) -> bool:
    # String rounding (".6g") is unstable when two results a few ulps
    # apart straddle a rounding boundary; compare floats numerically.
    if isinstance(x, float) and isinstance(y, float):
        return math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-9)
    return x == y


def assert_same_results(a, b, sql):
    rows_a, rows_b = canonical_rows(a), canonical_rows(b)
    assert len(rows_a) == len(rows_b), sql
    for row_a, row_b in zip(rows_a, rows_b):
        assert len(row_a) == len(row_b), sql
        assert all(values_match(x, y) for x, y in zip(row_a, row_b)), (
            sql,
            row_a,
            row_b,
        )


class TestSqlDifferential:
    @settings(max_examples=150, deadline=None)
    @given(sql=sql_queries())
    def test_cpu_and_gpu_agree(self, engines, sql):
        cpu_db, gpu_db = engines
        cpu = cpu_db.execute(sql)
        gpu = gpu_db.execute(sql)
        assert_same_results(cpu.table, gpu.table, sql)
        assert cpu.table.schema.names() == gpu.table.schema.names()
