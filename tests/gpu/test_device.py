"""Unit tests for Device and DeviceMemory: regions, transfers, OOM."""

import numpy as np
import pytest

from repro.gpu import Device, DeviceMemory, GH200, OutOfDeviceMemory, SimClock


class TestDeviceMemory:
    def test_allocate_free_cycle(self):
        m = DeviceMemory(1000)
        m.allocate(600)
        assert m.used == 600 and m.available == 400
        m.free(600)
        assert m.used == 0

    def test_oom(self):
        m = DeviceMemory(100)
        with pytest.raises(OutOfDeviceMemory) as exc:
            m.allocate(200)
        assert exc.value.requested == 200

    def test_over_free_rejected(self):
        m = DeviceMemory(100)
        with pytest.raises(ValueError):
            m.free(1)

    def test_peak(self):
        m = DeviceMemory(1000)
        m.allocate(800)
        m.free(800)
        m.allocate(100)
        assert m.peak == 800


class TestDeviceRegions:
    def test_fifty_fifty_split_by_default(self):
        d = Device(GH200, memory_limit_gb=2.0)
        assert d.caching_region.capacity == pytest.approx(10**9, rel=0.01)
        assert d.processing_pool.capacity == pytest.approx(10**9, rel=0.01)

    def test_custom_caching_fraction(self):
        d = Device(GH200, caching_fraction=0.25, memory_limit_gb=4.0)
        assert d.caching_region.capacity == pytest.approx(10**9, rel=0.01)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            Device(GH200, caching_fraction=1.5)

    def test_buffer_in_processing_pool(self):
        d = Device(GH200, memory_limit_gb=1.0)
        buf = d.new_buffer(np.zeros(1000, dtype=np.int64))
        assert d.processing_pool.in_use >= 8000
        buf.free()
        assert d.processing_pool.in_use == 0

    def test_buffer_in_caching_region(self):
        d = Device(GH200, memory_limit_gb=1.0)
        buf = d.new_buffer(np.zeros(1000, dtype=np.int64), region="caching")
        assert d.caching_region.used == 8000
        buf.free()
        assert d.caching_region.used == 0

    def test_buffer_free_is_idempotent(self):
        d = Device(GH200, memory_limit_gb=1.0)
        buf = d.new_buffer(np.zeros(10))
        buf.free()
        buf.free()  # second free must not raise or double-release
        assert d.processing_pool.in_use == 0

    def test_processing_oom_surfaces(self):
        d = Device(GH200, memory_limit_gb=0.001)  # 1 MB total, 512 KB pool
        with pytest.raises(OutOfDeviceMemory):
            d.new_buffer(np.zeros(10**6, dtype=np.float64))

    def test_unknown_region_rejected(self):
        d = Device(GH200, memory_limit_gb=1.0)
        with pytest.raises(ValueError):
            d.new_buffer(np.zeros(1), region="l2_cache")


class TestDeviceTimeCharging:
    def test_launch_advances_clock(self):
        d = Device(GH200, memory_limit_gb=1.0)
        before = d.clock.now
        d.launch("stream", 10**6, 10**6, 1000)
        assert d.clock.now > before
        assert d.kernel_count == 1

    def test_transfers_attributed(self):
        d = Device(GH200, memory_limit_gb=1.0)
        d.htod(10**9)
        d.dtoh(10**9)
        assert d.htod_bytes == 10**9 and d.dtoh_bytes == 10**9
        assert d.clock.bucket("transfer") == pytest.approx(d.clock.now)

    def test_shared_clock(self):
        clock = SimClock()
        d1 = Device(GH200, clock=clock, memory_limit_gb=1.0)
        d2 = Device(GH200, clock=clock, memory_limit_gb=1.0)
        d1.launch("stream", 10**6, 0, 10)
        assert d2.clock.now == d1.clock.now > 0

    def test_memory_report_keys(self):
        d = Device(GH200, memory_limit_gb=1.0)
        report = d.memory_report()
        assert {"caching_capacity", "processing_peak"} <= set(report)
