"""Tests for the hardware catalog (Table 1 and Figure 1 source data)."""

import pytest

from repro.gpu import C6A_METAL, GH200, TABLE1_INSTANCES, TRENDS, trend_cagr
from repro.gpu.specs import GH200_INSTANCE


class TestTable1Data:
    def test_table1_has_cpu_and_gpu(self):
        kinds = {i.kind for i in TABLE1_INSTANCES}
        assert kinds == {"cpu", "gpu"}

    def test_paper_numbers_for_c6a(self):
        assert C6A_METAL.cores == 192
        assert C6A_METAL.memory_bw_gbps == 400.0
        assert C6A_METAL.memory_gb == 384.0
        assert C6A_METAL.cost_per_hour == pytest.approx(7.344)

    def test_paper_numbers_for_gh200(self):
        assert GH200_INSTANCE.cores > 14000
        assert GH200_INSTANCE.memory_bw_gbps == 3000.0
        assert GH200_INSTANCE.cost_per_hour == pytest.approx(3.2)

    def test_gpu_wins_bandwidth_per_dollar(self):
        # The paper's core economic argument.
        assert GH200_INSTANCE.bandwidth_per_dollar > 10 * C6A_METAL.bandwidth_per_dollar


class TestFigure1Trends:
    def test_all_four_panels_present(self):
        assert {"gpu_memory_gb", "interconnect_gbps", "storage_gbps", "network_gbps"} <= set(
            TRENDS
        )

    def test_series_sorted_by_year(self):
        for name, series in TRENDS.items():
            years = [y for y, _, _ in series]
            assert years == sorted(years), name

    def test_gpu_memory_reaches_288(self):
        values = [v for _, _, v in TRENDS["gpu_memory_gb"]]
        assert max(values) == 288.0

    def test_capacity_trends_grow(self):
        for name in ("gpu_memory_gb", "interconnect_gbps", "storage_gbps", "network_gbps"):
            assert trend_cagr(name) > 0, name

    def test_h100_price_declines(self):
        assert trend_cagr("h100_price_per_hour") < 0


class TestDeviceSpecs:
    def test_gh200_device_matches_eval_section(self):
        assert GH200.memory_gb == 92.0
        assert GH200.memory_bw_gbps == 3000.0
        assert GH200.interconnect_gbps == 450.0  # NVLink-C2C per direction

    def test_gpu_random_access_discounted(self):
        assert 0 < GH200.random_access_efficiency < 1
