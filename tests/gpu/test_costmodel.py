"""Unit tests pinning the analytical kernel cost model."""

import pytest

from repro.gpu import GH200, KernelClass, KernelCostModel, M7I_CPU

GB = 1_000_000_000


@pytest.fixture
def gpu_model():
    return KernelCostModel(GH200)


@pytest.fixture
def cpu_model():
    return KernelCostModel(M7I_CPU)


class TestStreamingKernels:
    def test_bandwidth_bound_time(self, gpu_model):
        # 3 GB in + 3 GB out over 3000 GB/s = 2 ms of memory traffic.
        cost = gpu_model.kernel_cost(KernelClass.STREAM, 3 * GB, 3 * GB, 1000)
        assert cost.streaming == pytest.approx(0.002)
        assert cost.random == 0.0

    def test_launch_overhead_dominates_tiny_kernels(self, gpu_model):
        cost = gpu_model.kernel_cost(KernelClass.STREAM, 64, 64, 8)
        assert cost.launch > cost.streaming + cost.compute

    def test_gpu_beats_cpu_on_big_streams(self, gpu_model, cpu_model):
        args = (KernelClass.STREAM, 10 * GB, 10 * GB, 100_000_000)
        assert gpu_model.kernel_cost(*args).total < cpu_model.kernel_cost(*args).total

    def test_bandwidth_ratio_shapes_speedup(self, gpu_model, cpu_model):
        # For huge purely-streaming kernels, the speedup approaches the
        # bandwidth ratio (3000/300 = 10x here).
        args = (KernelClass.STREAM, 100 * GB, 0, 1)
        ratio = cpu_model.kernel_cost(*args).total / gpu_model.kernel_cost(*args).total
        assert 9.0 < ratio < 11.0


class TestRandomAccessKernels:
    def test_hash_probe_pays_random_discount(self, gpu_model):
        stream = gpu_model.kernel_cost(KernelClass.STREAM, GB, 0, 10)
        probe = gpu_model.kernel_cost(KernelClass.HASH_PROBE, GB, 0, 10)
        assert probe.random > stream.streaming

    def test_random_efficiency_factor(self, gpu_model):
        cost = gpu_model.kernel_cost(KernelClass.GATHER, GB, 0, 1)
        expected = GB / (3000 * GB * 0.25)
        assert cost.random == pytest.approx(expected)


class TestSortKernels:
    def test_sort_pays_log_passes(self, gpu_model):
        small = gpu_model.kernel_cost(KernelClass.SORT, GB, 0, 2**10)
        big = gpu_model.kernel_cost(KernelClass.SORT, GB, 0, 2**30)
        assert big.streaming > small.streaming


class TestContentionPenalty:
    def test_few_groups_penalised_on_gpu(self, gpu_model):
        few = gpu_model.kernel_cost(KernelClass.GROUPBY_HASH, GB, 0, 10**7, num_groups=4)
        many = gpu_model.kernel_cost(KernelClass.GROUPBY_HASH, GB, 0, 10**7, num_groups=10**6)
        assert few.penalty > 0.0
        assert many.penalty == 0.0
        assert few.total > many.total

    def test_cpu_has_no_contention_penalty(self, cpu_model):
        cost = cpu_model.kernel_cost(KernelClass.GROUPBY_HASH, GB, 0, 10**7, num_groups=4)
        assert cost.penalty == 0.0

    def test_penalty_monotone_in_group_count(self, gpu_model):
        penalties = [
            gpu_model.kernel_cost(
                KernelClass.GROUPBY_HASH, GB, 0, 10**7, num_groups=g
            ).penalty
            for g in (2, 32, 512, 4096)
        ]
        assert penalties == sorted(penalties, reverse=True)


class TestTransfers:
    def test_transfer_time_is_latency_plus_bytes(self, gpu_model):
        t = gpu_model.transfer_cost(45 * GB)
        # 45 GB over 450 GB/s NVLink-C2C = 100 ms, plus 2 us latency.
        assert t == pytest.approx(0.1 + 2e-6)

    def test_unknown_kernel_class_rejected(self, gpu_model):
        with pytest.raises(ValueError):
            gpu_model.kernel_cost("warp_drive", 1, 1, 1)


class TestPinnedTransferPricing:
    """§3.4 spills to *pinned* host memory; ``pinned_bw_fraction`` prices
    the pageable-vs-pinned bandwidth gap (1.0 by default: no gap)."""

    def test_default_fraction_prices_identically(self, gpu_model):
        # Float-identical, not approx: the default spec must be a no-op.
        assert gpu_model.transfer_cost(GB, pinned=True) == gpu_model.transfer_cost(GB)

    def test_pinned_streams_faster_when_pageable_is_derated(self):
        from dataclasses import replace

        spec = replace(GH200, pinned_bw_fraction=0.5)
        model = KernelCostModel(spec)
        pageable = model.transfer_cost(45 * GB)
        pinned = model.transfer_cost(45 * GB, pinned=True)
        assert pinned < pageable
        # Latency is link-level and unchanged; only the bandwidth term
        # scales: pinned streams at the full rate, pageable at half.
        assert pinned == pytest.approx(0.05 + 2e-6)
        assert pageable == pytest.approx(0.1 + 2e-6)
