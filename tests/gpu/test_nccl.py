"""Unit tests for the NCCL-style communicator and its barrier semantics."""

import pytest

from repro.gpu import Communicator, Fabric, INFINIBAND_NDR, SimClock

GB = 1_000_000_000


@pytest.fixture
def clocks():
    return [SimClock() for _ in range(4)]


@pytest.fixture
def comm(clocks):
    return Communicator(clocks, INFINIBAND_NDR)


class TestBarrierSemantics:
    def test_collective_aligns_clocks_to_slowest(self, clocks, comm):
        clocks[2].advance(1.0)  # rank 2 is behind (has done more work)
        comm.barrier()
        assert all(c.now == pytest.approx(1.0 + INFINIBAND_NDR.latency) for c in clocks)

    def test_waiting_time_attributed_to_exchange(self, clocks, comm):
        clocks[0].advance(2.0)
        comm.barrier()
        # Ranks 1-3 waited ~2 s; that waiting shows up as exchange time.
        assert clocks[1].bucket("exchange") == pytest.approx(2.0 + INFINIBAND_NDR.latency)


class TestBroadcast:
    def test_time_is_bytes_over_bandwidth(self, clocks, comm):
        comm.broadcast(0, 50 * GB)
        expected = INFINIBAND_NDR.latency + 50 * GB / (50 * GB)
        assert clocks[0].now == pytest.approx(expected)

    def test_wire_bytes_counted_per_receiver(self, comm):
        comm.broadcast(0, 1000)
        assert comm.bytes_on_wire == 3000

    def test_single_rank_broadcast_free(self):
        solo = Communicator([SimClock()], INFINIBAND_NDR)
        solo.broadcast(0, 10**9)
        assert solo.bytes_on_wire == 0

    def test_bad_root_rejected(self, comm):
        with pytest.raises(ValueError):
            comm.broadcast(9, 100)


class TestAllToAll:
    def test_diagonal_is_free(self, clocks, comm):
        # Everything stays local: only latency is charged.
        local_only = [[GB if i == j else 0 for j in range(4)] for i in range(4)]
        comm.all_to_all(local_only)
        assert clocks[0].now == pytest.approx(3 * INFINIBAND_NDR.latency)
        assert comm.bytes_on_wire == 0

    def test_bottleneck_rank_sets_duration(self, clocks, comm):
        matrix = [[0] * 4 for _ in range(4)]
        matrix[0] = [0, 50 * GB, 50 * GB, 50 * GB]  # rank 0 sends 150 GB
        comm.all_to_all(matrix)
        expected = 3 * INFINIBAND_NDR.latency + 150 * GB / (50 * GB)
        assert clocks[0].now == pytest.approx(expected)

    def test_shape_checked(self, comm):
        with pytest.raises(ValueError):
            comm.all_to_all([[0, 0], [0, 0]])


class TestGatherAndMulticast:
    def test_gather_charges_incoming_bytes(self, clocks, comm):
        comm.gather(0, [0, 50 * GB, 50 * GB, 50 * GB])
        expected = INFINIBAND_NDR.latency + 150 * GB / (50 * GB)
        assert clocks[0].now == pytest.approx(expected)

    def test_multicast_serialises_destinations(self, clocks, comm):
        comm.multicast(0, [1, 2], 50 * GB)
        expected = INFINIBAND_NDR.latency + 2 * 50 * GB / (50 * GB)
        assert clocks[0].now == pytest.approx(expected)

    def test_multicast_to_self_only_free(self, clocks, comm):
        comm.multicast(0, [0], GB)
        assert comm.bytes_on_wire == 0


class TestFabric:
    def test_fabric_units(self):
        f = Fabric("test", 10.0, 5.0)
        assert f.bandwidth == 10 * GB
        assert f.latency == pytest.approx(5e-6)

    def test_empty_communicator_rejected(self):
        with pytest.raises(ValueError):
            Communicator([], INFINIBAND_NDR)
