"""Unit tests for the simulated clock and its attribution buckets."""

import pytest

from repro.gpu import SimClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        c = SimClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_future(self):
        c = SimClock()
        c.advance(1.0)
        c.advance_to(5.0)
        assert c.now == 5.0

    def test_advance_to_past_is_noop(self):
        c = SimClock()
        c.advance(3.0)
        c.advance_to(1.0)
        assert c.now == 3.0

    def test_elapsed_since(self):
        c = SimClock()
        mark = c.now
        c.advance(2.25)
        assert c.elapsed_since(mark) == 2.25


class TestAttribution:
    def test_explicit_category(self):
        c = SimClock()
        c.advance(1.0, category="join")
        c.advance(2.0, category="filter")
        c.advance(0.5, category="join")
        assert c.bucket("join") == 1.5
        assert c.bucket("filter") == 2.0

    def test_unknown_bucket_is_zero(self):
        assert SimClock().bucket("nothing") == 0.0

    def test_scoped_attribution(self):
        c = SimClock()
        with c.attributed("groupby"):
            c.advance(1.0)
        c.advance(1.0)  # outside any scope: unattributed
        assert c.bucket("groupby") == 1.0
        assert c.now == 2.0

    def test_nested_scopes_innermost_wins(self):
        c = SimClock()
        with c.attributed("outer"):
            with c.attributed("inner"):
                c.advance(1.0)
            c.advance(2.0)
        assert c.bucket("inner") == 1.0
        assert c.bucket("outer") == 2.0

    def test_explicit_category_overrides_scope(self):
        c = SimClock()
        with c.attributed("scope"):
            c.advance(1.0, category="explicit")
        assert c.bucket("explicit") == 1.0
        assert c.bucket("scope") == 0.0

    def test_advance_to_attributes_waiting_time(self):
        c = SimClock()
        c.advance_to(4.0, category="exchange")
        assert c.bucket("exchange") == 4.0

    def test_reset_buckets_keeps_time(self):
        c = SimClock()
        c.advance(1.0, category="x")
        c.reset_buckets()
        assert c.now == 1.0
        assert c.buckets() == {}


class TestStreams:
    def test_issue_does_not_advance_host(self):
        c = SimClock()
        s = c.stream("copy")
        start, end = s.issue(2.0)
        assert (start, end) == (0.0, 2.0)
        assert c.now == 0.0
        assert s.busy_s == 2.0

    def test_issue_queues_behind_frontier(self):
        c = SimClock()
        s = c.stream("copy")
        s.issue(1.0)
        assert s.issue(0.5) == (1.0, 1.5)

    def test_issue_starts_no_earlier_than_host(self):
        c = SimClock()
        s = c.stream("copy")
        c.advance(3.0)
        assert s.issue(1.0) == (3.0, 4.0)

    def test_negative_issue_rejected(self):
        with pytest.raises(ValueError):
            SimClock().stream("copy").issue(-0.1)

    def test_wait_exposes_only_the_remainder(self):
        c = SimClock()
        s = c.stream("copy")
        _, event = s.issue(2.0)
        c.advance(1.5)  # host compute running while the copy streams
        exposed = s.wait(event, category="transfer-wait")
        assert exposed == 0.5
        assert c.now == 2.0
        assert c.bucket("transfer-wait") == 0.5
        assert s.hidden_s == 1.5

    def test_wait_after_completion_is_free(self):
        c = SimClock()
        s = c.stream("copy")
        _, event = s.issue(1.0)
        c.advance(5.0)
        assert s.wait(event) == 0.0
        assert c.now == 5.0
        assert s.hidden_s == 1.0  # fully hidden behind host compute

    def test_wait_defaults_to_frontier(self):
        c = SimClock()
        s = c.stream("copy")
        s.issue(1.0)
        s.issue(1.0)
        s.wait()
        assert c.now == 2.0
        assert s.exposed_s == 2.0
        assert s.hidden_s == 0.0

    def test_stream_handles_are_stable(self):
        c = SimClock()
        assert c.stream("copy") is c.stream("copy")
        assert c.stream("copy") is not c.stream("send")

    def test_stream_stats_snapshot(self):
        c = SimClock()
        assert c.stream_stats() == {}
        s = c.stream("copy")
        s.issue(2.0)
        c.advance(2.0)
        s.wait()
        assert c.stream_stats() == {
            "copy": {"busy_s": 2.0, "exposed_s": 0.0, "hidden_s": 2.0, "ops": 1}
        }
