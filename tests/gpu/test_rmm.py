"""Unit + property tests for the RMM-style pool allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import PoolAllocator
from repro.gpu.memory import OutOfDeviceMemory


class TestBasicAllocation:
    def test_allocate_and_free(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(1000)
        assert a.size >= 1000
        assert pool.in_use == a.size
        pool.free(a)
        assert pool.in_use == 0

    def test_alignment(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(1)
        assert a.size % 256 == 0
        assert a.offset % 256 == 0

    def test_oom_on_exhaustion(self):
        pool = PoolAllocator(1024)
        pool.allocate(512)
        with pytest.raises(OutOfDeviceMemory):
            pool.allocate(1024)

    def test_double_free_detected(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(100)
        pool.free(a)
        with pytest.raises(ValueError, match="double free"):
            pool.free(a)

    def test_zero_size_allowed(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(0)
        assert a.size == 256  # minimum block
        pool.free(a)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PoolAllocator(0)


class TestCoalescing:
    def test_freed_neighbours_merge(self):
        pool = PoolAllocator(4096)
        a = pool.allocate(1024)
        b = pool.allocate(1024)
        c = pool.allocate(1024)
        pool.free(a)
        pool.free(c)
        assert pool.stats().free_blocks == 2  # a-hole and c+tail
        pool.free(b)
        stats = pool.stats()
        assert stats.free_blocks == 1
        assert stats.largest_free_block == pool.capacity

    def test_fragmentation_metric(self):
        pool = PoolAllocator(4096)
        blocks = [pool.allocate(512) for _ in range(8)]
        for blk in blocks[::2]:
            pool.free(blk)
        stats = pool.stats()
        assert stats.fragmentation > 0.0
        # Even though half the pool is free, a 1024-byte request fails.
        assert pool.available == 2048
        with pytest.raises(OutOfDeviceMemory):
            pool.allocate(1024)


class TestStats:
    def test_peak_tracks_high_water(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(1000)
        b = pool.allocate(2000)
        pool.free(a)
        pool.free(b)
        assert pool.stats().peak_in_use >= 3000
        assert pool.in_use == 0

    def test_counters(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(10)
        pool.free(a)
        stats = pool.stats()
        assert stats.num_allocs == 1 and stats.num_frees == 1


class TestPropertyInvariants:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 4096)),
            max_size=120,
        )
    )
    def test_random_workload_never_corrupts(self, ops):
        """No overlap, no leak, frees restore capacity - under any workload."""
        pool = PoolAllocator(1 << 16)
        live = []
        for action, size in ops:
            if action == "alloc":
                try:
                    live.append(pool.allocate(size))
                except OutOfDeviceMemory:
                    pass
            elif live:
                pool.free(live.pop(len(live) // 2))
            pool.check_invariants()
        for a in live:
            pool.free(a)
        pool.check_invariants()
        assert pool.in_use == 0
        assert pool.stats().free_blocks == 1
