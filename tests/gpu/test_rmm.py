"""Unit + property tests for the RMM-style pool allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import PoolAllocator
from repro.gpu.memory import OutOfDeviceMemory


class TestBasicAllocation:
    def test_allocate_and_free(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(1000)
        assert a.size >= 1000
        assert pool.in_use == a.size
        pool.free(a)
        assert pool.in_use == 0

    def test_alignment(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(1)
        assert a.size % 256 == 0
        assert a.offset % 256 == 0

    def test_oom_on_exhaustion(self):
        pool = PoolAllocator(1024)
        pool.allocate(512)
        with pytest.raises(OutOfDeviceMemory):
            pool.allocate(1024)

    def test_double_free_detected(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(100)
        pool.free(a)
        with pytest.raises(ValueError, match="double free"):
            pool.free(a)

    def test_zero_size_allowed(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(0)
        assert a.size == 256  # minimum block
        pool.free(a)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PoolAllocator(0)


class TestCoalescing:
    def test_freed_neighbours_merge(self):
        pool = PoolAllocator(4096)
        a = pool.allocate(1024)
        b = pool.allocate(1024)
        c = pool.allocate(1024)
        pool.free(a)
        pool.free(c)
        assert pool.stats().free_blocks == 2  # a-hole and c+tail
        pool.free(b)
        stats = pool.stats()
        assert stats.free_blocks == 1
        assert stats.largest_free_block == pool.capacity

    def test_fragmentation_metric(self):
        pool = PoolAllocator(4096)
        blocks = [pool.allocate(512) for _ in range(8)]
        for blk in blocks[::2]:
            pool.free(blk)
        stats = pool.stats()
        assert stats.fragmentation > 0.0
        # Even though half the pool is free, a 1024-byte request fails.
        assert pool.available == 2048
        with pytest.raises(OutOfDeviceMemory):
            pool.allocate(1024)


class TestStats:
    def test_peak_tracks_high_water(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(1000)
        b = pool.allocate(2000)
        pool.free(a)
        pool.free(b)
        assert pool.stats().peak_in_use >= 3000
        assert pool.in_use == 0

    def test_counters(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(10)
        pool.free(a)
        stats = pool.stats()
        assert stats.num_allocs == 1 and stats.num_frees == 1


class TestPropertyInvariants:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 4096)),
            max_size=120,
        )
    )
    def test_random_workload_never_corrupts(self, ops):
        """No overlap, no leak, frees restore capacity - under any workload."""
        pool = PoolAllocator(1 << 16)
        live = []
        for action, size in ops:
            if action == "alloc":
                try:
                    live.append(pool.allocate(size))
                except OutOfDeviceMemory:
                    pass
            elif live:
                pool.free(live.pop(len(live) // 2))
            pool.check_invariants()
        for a in live:
            pool.free(a)
        pool.check_invariants()
        assert pool.in_use == 0
        assert pool.stats().free_blocks == 1


class TestOwnerTracking:
    """Per-query owner tags: the serving scheduler's reclamation path."""

    def test_release_owner_frees_only_that_owner(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(1000, owner="q1")
        b = pool.allocate(2000, owner="q2")
        c = pool.allocate(3000, owner="q1")
        reclaimed = pool.release_owner("q1")
        assert reclaimed == a.size + c.size
        assert pool.in_use == b.size
        assert pool.owner_bytes("q1") == 0
        assert pool.owner_bytes("q2") == b.size
        pool.free(b)
        pool.check_invariants()
        assert pool.in_use == 0

    def test_stale_handle_free_after_release_is_noop(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(1000, owner="q1")
        pool.release_owner("q1")
        pool.free(a)  # stale handle: silent no-op
        pool.check_invariants()
        assert pool.in_use == 0

    def test_genuine_double_free_still_raises(self):
        pool = PoolAllocator(1 << 20)
        a = pool.allocate(1000, owner="q1")
        pool.free(a)
        with pytest.raises(ValueError, match="double free"):
            pool.free(a)

    def test_release_owner_requires_tag(self):
        pool = PoolAllocator(1 << 20)
        pool.allocate(1000)  # untagged
        with pytest.raises(ValueError):
            pool.release_owner(None)

    def test_reset_clears_owner_maps(self):
        pool = PoolAllocator(1 << 20)
        pool.allocate(1000, owner="q1")
        pool.reset()
        assert pool.owner_bytes("q1") == 0
        assert pool.in_use == 0


class TestReservations:
    def test_reserve_is_advisory(self):
        pool = PoolAllocator(1 << 16)
        pool.reserve("q1", 1 << 16)
        # Reservation never blocks real allocation.
        a = pool.allocate(1 << 15)
        assert pool.reserved_total == 1 << 16
        pool.free(a)

    def test_unreserve_returns_bytes(self):
        pool = PoolAllocator(1 << 16)
        pool.reserve("q1", 100)
        pool.reserve("q1", 50)
        assert pool.reserved_total == 150
        assert pool.unreserve("q1") == 150
        assert pool.reserved_total == 0
        assert pool.unreserve("q1") == 0  # idempotent

    def test_negative_reservation_rejected(self):
        pool = PoolAllocator(1 << 16)
        with pytest.raises(ValueError):
            pool.reserve("q1", -1)
