"""Admission control: headroom gating, the bounded queue, queue-wait
deadline accounting (the satellite bug fix), reservations, and the
static (plan-analysis) rejection and pre-degradation paths."""

import pytest

from repro.columnar import Schema, Table
from repro.core import Deadline, DeadlineExceededError, SiriusEngine
from repro.gpu.clock import SimClock
from repro.gpu.rmm import PoolAllocator
from repro.gpu.specs import GH200
from repro.plan import PlanBuilder, col, lit
from repro.sched import (
    AdmissionController,
    JobState,
    PlanEstimate,
    QueryJob,
    ServingScheduler,
)

SCHEMA = Schema([("k", "int64"), ("v", "float64")])


@pytest.fixture
def data():
    n = 4000
    return {
        "t": Table.from_pydict(
            {"k": list(range(n)), "v": [float(i) for i in range(n)]}, SCHEMA
        )
    }


@pytest.fixture
def plan():
    return PlanBuilder.read("t", SCHEMA).filter(col("v") > lit(10.0)).build()


def fake_job(seq, working_set):
    return QueryJob(
        seq=seq,
        label=f"j{seq}",
        plan=None,
        catalog={},
        estimate=PlanEstimate(working_set, 0.0, 0),
    )


class TestControllerUnit:
    def test_headroom_shrinks_with_reservations(self):
        pool = PoolAllocator(1000)
        ctrl = AdmissionController(pool, headroom_fraction=0.5)
        budget = ctrl.headroom_bytes
        assert budget == int(pool.capacity * 0.5)
        job = fake_job(0, working_set=300)
        assert ctrl.can_admit(job)
        ctrl.admit(job)
        assert ctrl.headroom_bytes == budget - 300
        assert not ctrl.can_admit(fake_job(1, working_set=budget - 299))
        assert ctrl.release(job) == 300
        assert ctrl.headroom_bytes == budget

    def test_reservations_are_advisory(self):
        """A reservation never blocks real allocation (estimates may be
        wrong; genuine pressure surfaces as pool OOM, not admission)."""
        pool = PoolAllocator(10_000)
        ctrl = AdmissionController(pool, headroom_fraction=1.0)
        ctrl.admit(fake_job(0, working_set=pool.capacity))
        # The pool itself still hands out every byte.
        allocation = pool.allocate(pool.capacity)
        pool.free(allocation)

    def test_validation(self):
        pool = PoolAllocator(1000)
        with pytest.raises(ValueError):
            AdmissionController(pool, headroom_fraction=0.0)
        with pytest.raises(ValueError):
            AdmissionController(pool, max_queue_depth=0)


class TestBoundedQueue:
    def test_arrivals_past_queue_depth_are_rejected(self, data, plan):
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        admission = AdmissionController(
            engine.device.processing_pool,
            headroom_fraction=1e-9,  # nothing admits on headroom alone
            max_queue_depth=1,
        )
        sched = ServingScheduler(
            engine, policy="fifo", streams=1, admission=admission
        )
        for i in range(3):
            sched.submit(plan, data, label=f"q{i}", arrival_s=0.0)
        report = sched.run()
        by_label = {j.label: j for j in report.jobs}
        # q0 queues then is force-admitted (idle device, zero headroom);
        # q1 and q2 find the depth-1 queue full and are shed.
        assert by_label["q0"].state == JobState.COMPLETED
        assert by_label["q0"].forced_admission
        assert by_label["q1"].state == JobState.REJECTED
        assert by_label["q2"].state == JobState.REJECTED
        assert report.counters["rejected"] == 2
        assert report.counters["forced_admissions"] == 1

    def test_headroom_serialises_admission(self, data, plan):
        """When only one working set fits, the second query waits its
        turn in the queue and its queue_wait_s records the wait."""
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        engine.warm_cache(data)
        pool = engine.device.processing_pool
        # Probe the estimate via a throwaway scheduler.
        probe = ServingScheduler(engine)
        job = probe.submit(plan, data)
        demand = job.estimate.working_set_bytes
        admission = AdmissionController(
            pool, headroom_fraction=(demand + 64) / pool.capacity
        )
        sched = ServingScheduler(
            engine, policy="fifo", streams=2, admission=admission
        )
        sched.submit(plan, data, label="first", arrival_s=0.0)
        sched.submit(plan, data, label="second", arrival_s=0.0)
        report = sched.run()
        first, second = report.jobs
        assert first.state == JobState.COMPLETED
        assert second.state == JobState.COMPLETED
        assert first.queue_wait_s == 0.0
        assert second.queue_wait_s > 0.0
        assert second.admitted_s >= first.completion_s
        assert not second.forced_admission


class TestQueueWaitDeadline:
    """Regression for the satellite fix: a deadline must cover admission-
    queue wait, not just execution."""

    def test_charge_wait_consumes_budget(self):
        clock = SimClock()
        deadline = Deadline(1.0, clock)
        deadline.charge_wait(0.4)
        assert deadline.waited_s == pytest.approx(0.4)
        assert deadline.expires_at == pytest.approx(0.6)
        clock.advance(0.59)
        deadline.check(clock)  # still inside the shrunk budget
        clock.advance(0.02)
        with pytest.raises(DeadlineExceededError) as exc_info:
            deadline.check(clock)
        # Elapsed includes the charged wait.
        assert exc_info.value.elapsed_s == pytest.approx(0.61 + 0.4)

    def test_negative_wait_rejected(self):
        deadline = Deadline(1.0, SimClock())
        with pytest.raises(ValueError):
            deadline.charge_wait(-0.1)

    def test_wait_without_budget_is_recorded_only(self):
        deadline = Deadline(None, SimClock(), max_intermediate_rows=10)
        deadline.charge_wait(5.0)
        assert deadline.waited_s == 5.0
        assert deadline.expires_at == float("inf")

    def test_deadline_expires_in_admission_queue(self, data, plan):
        """A query whose whole budget elapses while queued fails with
        DeadlineExceededError without ever executing a task."""
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        engine.warm_cache(data)
        pool = engine.device.processing_pool
        probe = ServingScheduler(engine)
        demand = probe.submit(plan, data).estimate.working_set_bytes
        admission = AdmissionController(
            pool, headroom_fraction=(demand + 64) / pool.capacity
        )
        sched = ServingScheduler(
            engine, policy="fifo", streams=1, admission=admission
        )
        sched.submit(plan, data, label="big", arrival_s=0.0)
        doomed = sched.submit(
            plan, data, label="doomed", arrival_s=0.0, deadline_s=1e-9
        )
        report = sched.run()
        assert doomed.state == JobState.FAILED
        assert isinstance(doomed.error, DeadlineExceededError)
        assert doomed.steps == 0  # never ran a single task
        assert doomed.service_s == 0.0
        assert doomed.queue_wait_s == pytest.approx(1e-9)
        assert doomed.completion_s == pytest.approx(doomed.arrival_s + 1e-9)
        assert report.counters["expired_in_queue"] == 1
        big = report.jobs[0]
        assert big.state == JobState.COMPLETED


class TestStaticAdmission:
    """Admission acting on the plan alone, before any GPU memory moves."""

    def test_static_working_set_rejection_unit(self):
        """The acceptance-criterion path: rejection decided purely from
        the static working-set estimate vs pool capacity."""
        pool = PoolAllocator(1000)
        ctrl = AdmissionController(pool, max_working_set_fraction=0.5)
        small = fake_job(0, working_set=400)
        big = fake_job(1, working_set=600)
        assert ctrl.static_reject_reason(small) is None
        reason = ctrl.static_reject_reason(big)
        assert reason is not None and "static working set" in reason
        # Without the knob the same job is not statically rejected.
        assert AdmissionController(pool).static_reject_reason(big) is None
        with pytest.raises(ValueError):
            AdmissionController(pool, max_working_set_fraction=0.0)

    def test_oversized_query_rejected_at_arrival(self, data, plan):
        """End-to-end: with static admission on, a query whose static
        estimate exceeds the cap is shed at arrival — it never queues,
        never executes a task, and the report says why."""
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        engine.warm_cache(data)
        pool = engine.device.processing_pool
        probe = ServingScheduler(engine)
        demand = probe.submit(plan, data).estimate.working_set_bytes
        assert demand > 0
        admission = AdmissionController(
            pool, max_working_set_fraction=(demand - 1) / pool.capacity
        )
        sched = ServingScheduler(
            engine, policy="fifo", streams=1, admission=admission,
            static_admission=True,
        )
        doomed = sched.submit(plan, data, label="doomed", arrival_s=0.0)
        report = sched.run()
        assert doomed.state == JobState.REJECTED
        assert doomed.steps == 0
        assert "static working set" in doomed.meta["reject_reason"]
        assert report.counters["rejected"] == 1
        assert admission.static_rejected == 1
        assert admission.stats()["static_rejected"] == 1

    def test_analyzer_error_plan_rejected_at_arrival(self, data):
        """A plan that validate() accepts but the analyzer proves broken
        (unknown table: validate has no catalog) is rejected statically
        instead of failing mid-execution."""
        bad_plan = PlanBuilder.read("nonexistent", SCHEMA).build()
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        sched = ServingScheduler(engine, streams=1, static_admission=True)
        job = sched.submit(bad_plan, data, label="broken")
        assert job.meta["analysis"].suggested_tier == "reject"
        report = sched.run()
        assert job.state == JobState.REJECTED
        assert "plan analysis" in job.meta["reject_reason"]
        assert report.counters["rejected"] == 1

    def test_same_plan_without_static_admission_fails_at_runtime(self, data):
        """Control: static admission off, the broken plan is admitted and
        dies mid-query — the failure mode the static path prevents."""
        bad_plan = PlanBuilder.read("nonexistent", SCHEMA).build()
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        sched = ServingScheduler(engine, streams=1)
        job = sched.submit(bad_plan, data, label="broken")
        assert "analysis" not in job.meta
        sched.run()
        assert job.state == JobState.FAILED

    def test_spill_prediction_pre_degrades(self, data):
        """A query whose static working set exceeds the whole pool is
        admitted directly in the out-of-core configuration (no wasted
        full-size attempt) and still completes."""
        # Aggregation has a real working set (hash state + sort buffer),
        # so a 0.7x pool is tight statically yet survivable batched.
        plan = (
            PlanBuilder.read("t", SCHEMA)
            .aggregate(groups=["k"], aggs=[("sum", "v", "sv"), ("count", None, "c")])
            .sort([("k", True)])
            .build()
        )
        probe_engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        probe = ServingScheduler(probe_engine)
        demand = probe.submit(plan, data).estimate.working_set_bytes
        small_engine = SiriusEngine.for_spec(
            GH200, memory_limit_gb=2 * 0.7 * demand / (1024**3)
        )
        pool_cap = small_engine.device.processing_pool.capacity
        assert demand > pool_cap, (demand, pool_cap)
        sched = ServingScheduler(
            small_engine, policy="fifo", streams=1, static_admission=True
        )
        job = sched.submit(plan, data, label="spiller")
        assert job.meta["analysis"].suggested_tier == "gpu-retry-spill"
        report = sched.run()
        assert job.degraded_tier == "gpu-retry-spill"
        assert report.counters["pre_degraded"] == 1
        assert job.state == JobState.COMPLETED
