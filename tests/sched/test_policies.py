"""Unit tests for the pluggable scheduling policies."""

import pytest

from repro.sched import (
    FifoPolicy,
    PlanEstimate,
    QueryJob,
    RoundRobinFairSharePolicy,
    ShortestCostFirstPolicy,
    make_policy,
)


def job(seq, arrival=0.0, service=0.0, est_service=0.0):
    j = QueryJob(
        seq=seq,
        label=f"j{seq}",
        plan=None,
        catalog={},
        arrival_s=arrival,
        estimate=PlanEstimate(0, est_service, 0),
    )
    j.service_s = service
    return j


class TestFifo:
    def test_earliest_arrival_wins(self):
        jobs = [job(0, arrival=2.0), job(1, arrival=1.0), job(2, arrival=3.0)]
        assert FifoPolicy().select(jobs, now=5.0).seq == 1

    def test_tie_breaks_by_sequence(self):
        jobs = [job(1, arrival=1.0), job(0, arrival=1.0)]
        assert FifoPolicy().select(jobs, now=5.0).seq == 0


class TestFairShare:
    def test_least_attained_service_wins(self):
        jobs = [job(0, service=0.5), job(1, service=0.1), job(2, service=0.3)]
        assert RoundRobinFairSharePolicy().select(jobs, now=0.0).seq == 1

    def test_degenerates_to_round_robin_on_equal_costs(self):
        # Equal-cost tasks: repeatedly selecting and charging a fixed
        # quantum cycles through every job in order.
        jobs = [job(i) for i in range(3)]
        policy = RoundRobinFairSharePolicy()
        order = []
        for _ in range(6):
            chosen = policy.select(jobs, now=0.0)
            order.append(chosen.seq)
            chosen.service_s += 1.0
        assert order == [0, 1, 2, 0, 1, 2]


class TestShortestCostFirst:
    def test_smallest_estimate_wins(self):
        jobs = [job(0, est_service=3.0), job(1, est_service=1.0), job(2, est_service=2.0)]
        assert ShortestCostFirstPolicy().select(jobs, now=0.0).seq == 1

    def test_uses_remaining_not_total_cost(self):
        # Job 0 estimated longer but is nearly done; job 1 untouched.
        jobs = [job(0, service=2.9, est_service=3.0), job(1, est_service=1.0)]
        assert ShortestCostFirstPolicy().select(jobs, now=0.0).seq == 0

    def test_missing_estimate_treated_as_zero(self):
        j0 = job(0, est_service=1.0)
        j1 = job(1)
        j1.estimate = None
        assert ShortestCostFirstPolicy().select([j0, j1], now=0.0).seq == 1


class TestFactory:
    def test_resolves_names(self):
        assert make_policy("fifo").name == "fifo"
        assert make_policy("fair").name == "fair"
        assert make_policy("sjf").name == "sjf"

    def test_passes_instances_through(self):
        policy = FifoPolicy()
        assert make_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("lottery")
