"""Estimator pricing of overlapped cold loads.

With ``overlap=True`` the estimator charges a cold table's first chunk
synchronously and only the copy tail the plan's kernel work cannot hide
— mirroring the engine's double-buffered loader — so SJF/admission rank
cold queries the same way the overlap engine will actually run them.
"""

import pytest

from repro.gpu import Device
from repro.gpu.specs import A100_40G
from repro.hosts import MiniDuck
from repro.sched.estimator import estimate_plan
from repro.tpch import generate_tpch, tpch_query


@pytest.fixture(scope="module")
def setup():
    data = generate_tpch(sf=0.02, seed=7)
    duck = MiniDuck()
    duck.load_tables(data)
    return data, duck


def test_overlap_estimate_is_cheaper_for_cold_tables(setup):
    data, duck = setup
    plan = duck.plan(tpch_query(6))
    device = Device(A100_40G)
    cold = {"lineitem": data["lineitem"]}
    sync = estimate_plan(plan, duck.tables, device, cold_tables=cold)
    overlapped = estimate_plan(
        plan, duck.tables, device, cold_tables=cold, overlap=True
    )
    assert overlapped.service_s < sync.service_s
    # Overlap hides copy time; it never hides kernel time, so the
    # overlapped estimate stays above the warm-cache estimate.
    warm = estimate_plan(plan, duck.tables, device)
    assert overlapped.service_s >= warm.service_s
    assert overlapped.working_set_bytes == sync.working_set_bytes
    assert overlapped.rows == sync.rows


def test_overlap_flag_without_cold_tables_changes_nothing(setup):
    _, duck = setup
    plan = duck.plan(tpch_query(1))
    device = Device(A100_40G)
    base = estimate_plan(plan, duck.tables, device)
    flagged = estimate_plan(plan, duck.tables, device, overlap=True)
    assert flagged == base
