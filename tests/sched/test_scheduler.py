"""The serving scheduler: single-query identity, determinism, the
concurrency throughput win, and degradation under contention."""

import pytest

from repro.core import SiriusEngine
from repro.faults import FaultInjector, FaultPlan
from repro.gpu.specs import GH200
from repro.hosts import MiniDuck
from repro.obs import Tracer
from repro.sched import (
    JobState,
    ServingScheduler,
    WorkloadDriver,
    WorkloadQuery,
)
from repro.tpch import generate_tpch, tpch_query

SF = 0.01
SEED = 19920101


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=SF, seed=SEED)


@pytest.fixture(scope="module")
def plans(data):
    host = MiniDuck()
    host.load_tables(data)
    return {n: host.plan(tpch_query(n)) for n in (1, 3, 6)}


def fresh_engine(data, **kwargs):
    engine = SiriusEngine.for_spec(GH200, **kwargs)
    engine.warm_cache(data)
    return engine


def normalise(table):
    return sorted(
        tuple(f"{v:.6g}" if isinstance(v, float) else repr(v) for v in row)
        for row in table.to_rows()
    )


class TestSingleQueryIdentity:
    """At concurrency 1 the serving path is byte-identical to execute()."""

    @pytest.mark.parametrize("query", [1, 3, 6])
    def test_profile_and_result_match_execute(self, data, plans, query):
        solo = fresh_engine(data)
        expected = solo.execute(plans[query], data)
        expected_profile = solo.last_profile

        served = fresh_engine(data)
        # batch_rows=None: mirror the engine's default execution config.
        sched = ServingScheduler(served, policy="fifo", streams=1, batch_rows=None)
        job = sched.submit(plans[query], data, label=f"q{query}")
        report = sched.run()

        assert job.state == JobState.COMPLETED
        assert normalise(job.table) == normalise(expected)
        assert job.profile.sim_seconds == expected_profile.sim_seconds
        assert job.profile.breakdown == expected_profile.breakdown
        assert job.profile.kernel_count == expected_profile.kernel_count
        assert job.profile.device_mem_peak == expected_profile.device_mem_peak
        # The device clocks agree to the last float: same work, same order.
        assert served.device.clock.now == solo.device.clock.now
        assert report.counters["completed"] == 1

    def test_service_time_equals_profile_plus_result_copy(self, data, plans):
        engine = fresh_engine(data)
        sched = ServingScheduler(engine, policy="fifo", streams=1, batch_rows=None)
        job = sched.submit(plans[6], data)
        sched.run()
        # service_s = the query's own clock advance: profile plus the
        # device->host result copy charged on the final step.
        assert job.service_s >= job.profile.sim_seconds
        assert job.service_s == pytest.approx(job.profile.sim_seconds, rel=0.25)


class TestDeterminism:
    def _run(self, data, plans, policy="fair"):
        engine = fresh_engine(data)
        mix = [WorkloadQuery(f"q{n}", p) for n, p in sorted(plans.items())]
        driver = WorkloadDriver(engine, data, mix, seed=SEED)
        return driver.open_loop(
            num_queries=10, rate_qps=5000.0, policy=policy, streams=4
        )

    def test_same_seed_same_schedule_and_report(self, data, plans):
        first = self._run(data, plans)
        second = self._run(data, plans)
        assert first.schedule_digest == second.schedule_digest
        assert first.to_dict() == second.to_dict()

    def test_different_seeds_differ(self, data, plans):
        engine = fresh_engine(data)
        mix = [WorkloadQuery(f"q{n}", p) for n, p in sorted(plans.items())]
        other = WorkloadDriver(engine, data, mix, seed=SEED + 1).open_loop(
            num_queries=10, rate_qps=5000.0, policy="fair", streams=4
        )
        assert other.schedule_digest != self._run(data, plans).schedule_digest


class TestConcurrencyThroughput:
    def test_concurrent_beats_serialized(self, data, plans):
        """Aggregate throughput at concurrency 4 beats back-to-back."""
        solo = fresh_engine(data)
        serialized = 0.0
        for _, plan in sorted(plans.items()):
            solo.execute(plan, data)
            serialized += solo.last_profile.sim_seconds

        engine = fresh_engine(data)
        sched = ServingScheduler(engine, policy="fair", streams=4)
        for n, plan in sorted(plans.items()):
            sched.submit(plan, data, label=f"q{n}", arrival_s=0.0)
        report = sched.run()
        assert report.counters["completed"] == len(plans)
        assert report.makespan_s < serialized

    def test_results_unchanged_under_interleaving(self, data, plans):
        expected = {}
        solo = fresh_engine(data)
        for n, plan in sorted(plans.items()):
            expected[n] = normalise(solo.execute(plan, data))

        engine = fresh_engine(data)
        sched = ServingScheduler(engine, policy="fair", streams=4)
        jobs = {
            n: sched.submit(plan, data, label=f"q{n}", arrival_s=0.0)
            for n, plan in sorted(plans.items())
        }
        sched.run()
        for n, job in jobs.items():
            assert job.state == JobState.COMPLETED
            assert normalise(job.table) == expected[n]

    def test_queue_wait_plus_admitted_spans_cover_latency(self, data, plans):
        tracer = Tracer()
        engine = fresh_engine(data)
        sched = ServingScheduler(
            engine, policy="fair", streams=2, tracer=tracer, tracer_factory=Tracer
        )
        for n, plan in sorted(plans.items()):
            sched.submit(plan, data, label=f"q{n}", arrival_s=0.0)
        report = sched.run()
        for job in report.jobs:
            assert job.latency_s == pytest.approx(
                job.queue_wait_s + (job.completion_s - job.admitted_s)
            )
        kinds = {s.kind for s in tracer.spans}
        assert "serving-service" in kinds


class TestDegradationUnderContention:
    def test_oom_spike_degrades_and_completes(self, data, plans):
        """An injected device-OOM during serving walks the job down one
        tier (out-of-core retry) instead of failing the whole run."""
        engine = fresh_engine(data, enable_spill=False)
        injector = FaultInjector(FaultPlan().oom_spike(at=0.0, count=1))
        injector.attach_device(engine.device)
        sched = ServingScheduler(engine, policy="fair", streams=2)
        for n, plan in sorted(plans.items()):
            sched.submit(plan, data, label=f"q{n}", arrival_s=0.0)
        report = sched.run()
        assert report.counters["completed"] == len(plans)
        assert report.counters["degraded"] == 1
        degraded = [j for j in report.jobs if j.degraded_tier is not None]
        assert len(degraded) == 1
        assert degraded[0].degraded_tier == "gpu-retry-spill"
        assert degraded[0].state == JobState.COMPLETED

    def test_persistent_oom_fails_only_that_job(self, data, plans):
        engine = fresh_engine(data, enable_spill=False)
        injector = FaultInjector(FaultPlan().oom_spike(at=0.0, count=50))
        injector.attach_device(engine.device)
        sched = ServingScheduler(engine, policy="fifo", streams=2)
        for n, plan in sorted(plans.items()):
            sched.submit(plan, data, label=f"q{n}", arrival_s=0.0)
        report = sched.run()
        # Every job walked the full ladder (batched retry, then the
        # partitioned spill tier); with the spike still firing they all
        # fail — but the scheduler itself survives and reports.
        assert report.counters["completed"] + report.counters["failed"] == len(plans)
        assert report.counters["failed"] >= 1
        for job in report.jobs:
            if job.state == JobState.FAILED:
                assert job.degraded_tier == "gpu-spill"


class TestClosedLoop:
    def test_clients_keep_one_query_in_flight(self, data, plans):
        engine = fresh_engine(data)
        mix = [WorkloadQuery(f"q{n}", p) for n, p in sorted(plans.items())]
        driver = WorkloadDriver(engine, data, mix, seed=SEED)
        report = driver.closed_loop(
            clients=3, requests_per_client=4, policy="fair", streams=2
        )
        assert report.counters["submitted"] == 12
        assert report.counters["completed"] == 12
        # A client's requests never overlap: sorted by arrival, each
        # arrival is at or after the previous completion.
        by_client = {}
        for job in report.jobs:
            by_client.setdefault(job.meta["client"], []).append(job)
        for jobs in by_client.values():
            jobs.sort(key=lambda j: j.arrival_s)
            for prev, nxt in zip(jobs, jobs[1:]):
                assert nxt.arrival_s >= prev.completion_s
