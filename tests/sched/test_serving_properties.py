"""Property-based serving tests.

* **No starvation** under round-robin fair-share: every admitted job in a
  random concurrent batch reaches a terminal state, and none is failed by
  the scheduler itself (no deadlines are set).
* **busy_s partition**: each query's per-operator ``busy_s`` spans
  partition that query's *service* time — they sum to the run's own clock
  advance even when other queries' tasks interleave arbitrarily between
  its steps.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.obs import Tracer
from repro.sched import JobState, ServingScheduler

from tests.core.test_random_plans import plans, tables


def serve_batch(data, batch, policy, streams, tracer_factory=None):
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
    sched = ServingScheduler(
        engine,
        policy=policy,
        streams=streams,
        tracer_factory=tracer_factory,
    )
    jobs = [
        sched.submit(plan, data, label=f"q{i}", arrival_s=0.0)
        for i, plan in enumerate(batch)
    ]
    return sched.run(), jobs


class TestNoStarvation:
    @settings(max_examples=25, deadline=None)
    @given(
        data=tables(),
        batch=st.lists(plans(), min_size=2, max_size=4),
        streams=st.integers(1, 3),
    )
    def test_fair_share_completes_every_job(self, data, batch, streams):
        report, jobs = serve_batch(data, batch, "fair", streams)
        for job in jobs:
            assert job.state == JobState.COMPLETED, job.error
            assert job.completion_s is not None
        assert report.counters["completed"] == len(jobs)
        # Conservation: every executed task interval belongs to a job and
        # service times sum to the total scheduled work.
        assert report.counters["steps"] == sum(j.steps for j in jobs)

    @settings(max_examples=10, deadline=None)
    @given(data=tables(), batch=st.lists(plans(), min_size=2, max_size=3))
    def test_all_policies_complete_the_same_jobs(self, data, batch):
        outcomes = {}
        for policy in ("fifo", "fair", "sjf"):
            report, jobs = serve_batch(data, batch, policy, streams=2)
            outcomes[policy] = [j.state for j in jobs]
        assert outcomes["fifo"] == outcomes["fair"] == outcomes["sjf"]


class TestBusySecondsPartition:
    @settings(max_examples=15, deadline=None)
    @given(
        data=tables(),
        batch=st.lists(plans(), min_size=2, max_size=3),
    )
    def test_operator_busy_partitions_service_time(self, data, batch):
        report, jobs = serve_batch(
            data, batch, "fair", streams=2, tracer_factory=Tracer
        )
        for job in jobs:
            assert job.state == JobState.COMPLETED
            op_spans = [s for s in job.profile.spans if s.kind == "operator"]
            busy_total = sum(s.attributes.get("busy_s", 0.0) for s in op_spans)
            # The executor's own service time (profile.sim_seconds is the
            # query-span elapsed time on the shared clock, which would
            # include interleaved foreign work; qrun.service_seconds is
            # the query's own clock advance).
            assert busy_total == pytest.approx(
                job.qrun.service_seconds, rel=1e-9, abs=1e-15
            )
            # The job's recorded service adds only the result copy-out.
            assert job.service_s >= job.qrun.service_seconds - 1e-15
