"""Battery statements through the serving scheduler.

A sample of the SQL shape battery runs through :class:`ServingScheduler`
at concurrency 4; every job must complete with rows identical to the
same plan executed solo.  This ties the battery's correctness contract
to the serving path — interleaving streams must not perturb results.
"""

import pytest

from repro.bench.baselines import battery_cases, canonical_rows
from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import MiniDuck
from repro.sched import AdmissionController, JobState, ServingScheduler
from repro.sql import SqlPlanningError
from repro.tpch import generate_tpch

SF = 0.01
STREAMS = 4
STRIDE = 10  # every 10th battery case keeps the run fast but broad


@pytest.fixture(scope="module")
def data():
    return generate_tpch(SF)


@pytest.fixture(scope="module")
def served_cases(data):
    """(case, plan, solo_rows) for each sampled battery statement the
    GPU engine executes end to end on its own."""
    host = MiniDuck()
    host.load_tables(data)
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=4.0)
    engine.warm_cache(data)

    out = []
    for case in battery_cases()[::STRIDE]:
        try:
            plan = host.plan(case.sql)
            table = engine.execute(plan, data)
        except (SqlPlanningError, NotImplementedError, ValueError):
            continue  # host-only shape; solo GPU coverage lives in the battery test
        out.append((case, plan, canonical_rows(table.to_rows())))
    return out


def test_sample_is_broad(served_cases):
    assert len(served_cases) >= 20
    assert len({case.category for case, _, _ in served_cases}) >= 6


def test_battery_under_serving_matches_solo(data, served_cases):
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=4.0)
    engine.warm_cache(data)
    # All jobs arrive at t=0; widen the admission queue past the sample size
    # so load-shedding doesn't kick in (that behaviour has its own tests).
    admission = AdmissionController(
        engine.device.processing_pool,
        out_of_core=engine.out_of_core,
        max_queue_depth=2 * len(served_cases) + 8,
    )
    sched = ServingScheduler(engine, policy="fair", streams=STREAMS, admission=admission)
    jobs = [
        (sched.submit(plan, data, label=case.case_id, arrival_s=0.0), case, solo)
        for case, plan, solo in served_cases
    ]
    report = sched.run()
    assert report.counters["completed"] == len(jobs)
    for job, case, solo in jobs:
        assert job.state == JobState.COMPLETED, case.case_id
        assert canonical_rows(job.table.to_rows()) == solo, case.case_id
