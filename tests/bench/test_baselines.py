"""The differential baseline harness: canonicalization, resource
monitoring, dialect translation, and the end-to-end artifact — with the
optional-dependency skip paths exercised explicitly."""

import datetime
import json
from decimal import Decimal

import numpy as np
import pytest

from repro.bench.baselines import (
    available_baselines,
    baseline_engines,
    battery_cases,
    canonical_rows,
    rows_equal,
    run_battery_baselines,
)
from repro.bench.baselines.canonical import normalize_value, values_match
from repro.bench.baselines.engines import DuckDbBaseline, SqliteBaseline
from repro.bench.baselines.harness import ARTIFACT_SCHEMA_VERSION
from repro.bench.baselines.monitor import ResourceMonitor
from repro.tpch import generate_tpch

HAVE_DUCKDB = DuckDbBaseline.is_available()


class TestCanonicalization:
    def test_normalize_maps_representation_variants(self):
        assert normalize_value(Decimal("2.50")) == 2.5
        assert normalize_value(datetime.date(1995, 3, 15)) == "1995-03-15"
        assert normalize_value(datetime.datetime(1995, 3, 15, 12)) == "1995-03-15"
        assert normalize_value(True) == 1
        assert normalize_value(b"ASIA") == "ASIA"
        assert normalize_value(np.int64(7)) == 7
        assert normalize_value(None) is None

    def test_canonical_order_is_total_with_nulls_first(self):
        rows = [(1.5, "b"), (None, "a"), (0, "c")]
        assert canonical_rows(rows)[0] == (None, "a")

    def test_rows_equal_ignores_row_order(self):
        assert rows_equal([(1, "a"), (2, "b")], [(2, "b"), (1, "a")])

    def test_rows_equal_float_tolerance(self):
        assert rows_equal([(1.0000001,)], [(1.0,)])
        assert not rows_equal([(1.01,)], [(1.0,)])

    def test_rows_equal_null_vs_zero(self):
        assert not rows_equal([(None,)], [(0,)])
        assert values_match(None, None)
        assert not values_match(None, 0)

    def test_rows_equal_cardinality(self):
        assert not rows_equal([(1,)], [(1,), (1,)])


class TestResourceMonitor:
    def test_stats_schema(self):
        with ResourceMonitor() as mon:
            sum(range(10000))
        assert set(mon.stats) == {"wall_s", "user_cpu_s", "sys_cpu_s", "max_rss_kib", "rss_kib"}
        assert mon.stats["wall_s"] >= 0.0
        assert mon.stats["max_rss_kib"] > 0
        # rss_kib is nullable: None without psutil, an int with it.
        assert mon.stats["rss_kib"] is None or mon.stats["rss_kib"] > 0


class TestSqliteTranslation:
    def test_date_literal(self):
        out = SqliteBaseline().translate("select * from orders where o_orderdate < date '1995-01-01'")
        assert "date '" not in out and "'1995-01-01'" in out

    def test_extract_becomes_strftime(self):
        out = SqliteBaseline().translate("select extract(year from o_orderdate) from orders")
        assert "strftime('%Y', o_orderdate)" in out

    def test_substring_from_for(self):
        out = SqliteBaseline().translate("select substring(r_name from 1 for 2) from region")
        assert "substr(r_name, 1, 2)" in out

    def test_offset_without_limit_gets_limit(self):
        out = SqliteBaseline().translate("select r_name from region order by r_name offset 2")
        assert "limit -1 offset 2" in out

    def test_concat_becomes_pipes(self):
        out = SqliteBaseline().translate("select concat(r_name, '!') from region")
        assert "||" in out and "concat" not in out

    def test_negative_round_digits_unsupported(self):
        assert SqliteBaseline().unsupported_reason("select round(s_acctbal, -2) from supplier")
        assert SqliteBaseline().unsupported_reason("select round(s_acctbal, 2) from supplier") is None


class TestOptionalDependencyGates:
    def test_sqlite_always_available(self):
        assert "sqlite" in available_baselines()

    @pytest.mark.skipif(HAVE_DUCKDB, reason="duckdb installed; skip path untestable")
    def test_missing_duckdb_skips_cleanly(self):
        assert "duckdb" not in available_baselines()
        tables = generate_tpch(0.001)
        assert baseline_engines(tables, ["duckdb"]) == {}

    def test_unknown_engine_name_is_an_error(self):
        with pytest.raises(ValueError):
            baseline_engines({}, ["postgres"])


class TestHarnessArtifact:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("battery") / "battery_baselines.json"
        artifact = run_battery_baselines(engines=["sqlite"], out_path=out, limit=40)
        return artifact, out

    def test_schema_and_counts(self, artifact):
        data, _ = artifact
        assert data["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert data["statement_count"] == 40
        assert data["scale_factor"] == 0.01
        summary = data["engines"]["sqlite"]
        assert summary["cases"] == 40
        assert summary["mismatch"] == 0
        assert summary["error"] == 0
        assert summary["match"] + summary["unsupported"] == 40

    def test_resources_recorded(self, artifact):
        data, _ = artifact
        assert data["reference"]["resources"]["wall_s"] > 0
        assert data["engines"]["sqlite"]["resources"]["wall_s"] > 0

    def test_results_rows(self, artifact):
        data, _ = artifact
        ids = {c.case_id for c in battery_cases()}
        for r in data["results"]:
            assert r["engine"] == "sqlite"
            assert r["case_id"] in ids
            assert r["status"] in ("match", "mismatch", "error", "unsupported")
            if r["status"] == "match":
                assert r["elapsed_s"] >= 0

    def test_artifact_round_trips_through_json(self, artifact):
        data, out = artifact
        assert json.loads(out.read_text()) == data


@pytest.mark.skipif(not HAVE_DUCKDB, reason="duckdb not installed")
class TestDuckDbLive:
    def test_duckdb_matches_reference(self):
        artifact = run_battery_baselines(engines=["duckdb"], limit=40)
        summary = artifact["engines"]["duckdb"]
        assert summary["mismatch"] == 0
        assert summary["error"] == 0
