"""Tests for the benchmark harness itself (tiny scale: fast)."""

import pytest

from repro.bench import (
    DistributedHarness,
    SingleNodeHarness,
    ascii_table,
    bar_series,
    figure1_series,
    format_ms,
    geomean,
    table1,
)


class TestReportHelpers:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0

    def test_format_ms(self):
        assert format_ms(0.0015) == "1.500"
        assert format_ms(None) == "-"

    def test_bar_series_uses_category_glyphs(self):
        bar = bar_series("Q1", {"join": 0.5, "filter": 0.5}, width=10)
        assert "J" in bar and "F" in bar

    def test_table1_and_figure1_render(self):
        assert "GH200" in table1()
        assert "CAGR" in figure1_series("network_gbps")


class TestSingleNodeHarnessSmall:
    @pytest.fixture(scope="class")
    def harness(self):
        return SingleNodeHarness(sf=0.01)

    def test_run_subset(self, harness):
        result = harness.run(queries=[1, 6])
        assert [t.query for t in result.timings] == [1, 6]
        assert result.speedup_vs_duckdb > 1.0

    def test_figure4_table_renders_statuses(self, harness):
        result = harness.run(queries=[6, 21])
        text = result.figure4_table()
        assert "unsupported" in text

    def test_breakdowns_recorded(self, harness):
        result = harness.run(queries=[6])
        assert result.dominant_category(6) == "filter"


class TestDistributedHarnessSmall:
    def test_run_q6(self):
        harness = DistributedHarness(sf=0.01, num_nodes=2)
        result = harness.run(queries=(6,))
        row = result.row(6)
        assert row.sirius_s < row.doris_s
        assert "Sirius ms" in result.table()
