"""Property: shuffle retry under link faults never loses or duplicates rows.

Hypothesis drives random per-node data, a random number of injected link
drops, and a random fault-plan seed; the exchange layer must retry each
dropped collective (charging backoff to the sim clock) and deliver the
exact input multiset.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Schema, Table
from repro.distributed import Cluster, DistributedExecutor, ExchangeSpec, Fragment
from repro.faults import FaultInjector, FaultPlan
from repro.gpu.device import Device
from repro.gpu.specs import M7I_CPU
from repro.hosts import CpuEngine
from repro.plan import ReadRel

SCHEMA = Schema([("k", "int64"), ("v", "float64")])


def shuffle_fragments():
    return [
        Fragment(0, ReadRel("t", SCHEMA), ExchangeSpec(0, "shuffle", [0], SCHEMA), "all", []),
        Fragment(1, ReadRel("__ex0", SCHEMA), None, "all", [0]),
    ]


def run_shuffle_with_drops(per_node, drops, seed):
    cluster = Cluster(num_nodes=4, device_factory=lambda c: Device(M7I_CPU, clock=c))
    plan = FaultPlan(seed=seed)
    if drops:
        plan.drop_links(at=0.0, count=drops)
    injector = FaultInjector(plan)
    injector.attach_communicator(cluster.communicator)
    received = []

    def executor_fn(nid, plan, catalog):
        table = CpuEngine(cluster.nodes[nid].device).execute(plan, catalog)
        if plan.root.table_name == "__ex0":
            received.append((nid, table))
        return table

    for node, vals in zip(cluster.nodes, per_node):
        node.catalog["t"] = Table.from_pydict(
            {"k": vals, "v": [float(v) for v in vals]}, SCHEMA
        )
    executor = DistributedExecutor(cluster, executor_fn)
    executor.run(shuffle_fragments())
    return cluster, executor, received


class TestShuffleRetryConservation:
    @settings(max_examples=30, deadline=None)
    @given(
        per_node=st.lists(
            st.lists(st.integers(0, 30), max_size=25), min_size=4, max_size=4
        ),
        drops=st.integers(0, 4),
        seed=st.integers(0, 1000),
    )
    def test_retry_preserves_multiset(self, per_node, drops, seed):
        cluster, executor, received = run_shuffle_with_drops(per_node, drops, seed)
        sent = sorted(v for vals in per_node for v in vals)
        got = sorted(v for _, t in received for v in t["k"].to_pylist())
        assert got == sent
        # Every drop costs exactly one retry (drops < max_exchange_retries,
        # so nothing escalates), and each is visible in both logs.
        assert len(executor.retry_events) == drops
        assert cluster.communicator.dropped_collectives == drops

    def test_backoff_charged_to_sim_clock(self):
        per_node = [[1, 2, 3], [4, 5], [6], [7, 8, 9]]
        clean_cluster, _, _ = run_shuffle_with_drops(per_node, 0, seed=0)
        fault_cluster, executor, _ = run_shuffle_with_drops(per_node, 3, seed=0)
        assert fault_cluster.max_clock() > clean_cluster.max_clock()
        backoffs = [e.backoff_s for e in executor.retry_events]
        # Exponential: each subsequent retry doubles the previous backoff.
        assert backoffs == sorted(backoffs)
        assert backoffs[1] == pytest.approx(2 * backoffs[0])

    def test_exhausted_retries_escalate(self):
        from repro.gpu import LinkDroppedError

        per_node = [[1], [2], [3], [4]]
        with pytest.raises(LinkDroppedError):
            run_shuffle_with_drops(per_node, 50, seed=0)
