"""Chaos suite: seeded faults against the distributed warehouse.

Each test injects a deterministic fault schedule and asserts the paper's
robustness story: queries still finish, results match the fault-free
answer, and the coordinator's event log records what happened.
"""

import pytest

from repro.faults import FaultPlan
from repro.hosts import MiniDoris, MiniDuck
from repro.tpch import generate_tpch, tpch_query

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=0.02)


@pytest.fixture(scope="module")
def baseline(data):
    duck = MiniDuck()
    duck.load_tables(data)
    return {
        q: normalise(duck.execute(tpch_query(q)).table) for q in (1, 3, 6)
    }


def normalise(table):
    rows = []
    for row in table.to_rows():
        rows.append(tuple(f"{v:.6g}" if isinstance(v, float) else repr(v) for v in row))
    return sorted(rows)


def make_cluster(data, **kwargs):
    kwargs.setdefault("num_nodes", 4)
    kwargs.setdefault("mode", "sirius")
    db = MiniDoris(**kwargs)
    db.load_tables(data)
    if db.mode == "sirius":
        db.warm_caches()
    return db


class TestNodeCrash:
    @pytest.mark.parametrize("q", [1, 3, 6])
    def test_query_survives_mid_query_crash(self, q, data, baseline):
        """The acceptance scenario: node 2 dies mid-query; the coordinator
        detects the missed heartbeats, evicts it, re-partitions onto the
        survivors, and re-executes — result identical to fault-free."""
        db = make_cluster(data, heartbeat_timeout_s=0.005)
        injector = db.install_faults(FaultPlan().crash_node(2, at=2e-4))
        result = db.execute(tpch_query(q))
        assert normalise(result.table) == baseline[q]
        assert db.cluster.num_nodes == 3
        assert injector.summary() == {"node-crash": 1}
        events = [e["event"] for e in db.event_log]
        assert "node_failure_detected" in events
        assert "fragments_reexecuted" in events
        detected = next(
            e for e in db.event_log if e["event"] == "node_failure_detected"
        )
        assert detected["dead_nodes"] == [2]
        assert detected["sim_time"] > 2e-4  # detection latency is modelled

    def test_detection_latency_charged_to_query(self, data):
        db = make_cluster(data, heartbeat_timeout_s=0.005)
        db.install_faults(FaultPlan().crash_node(2, at=2e-4))
        faulted = db.execute(tpch_query(1))
        clean = make_cluster(data).execute(tpch_query(1))
        # The failed attempt + detection + re-execution all stay on the clock.
        assert faulted.total_seconds > clean.total_seconds

    def test_coordinator_crash_is_unrecoverable(self, data):
        db = make_cluster(data, heartbeat_timeout_s=0.005)
        db.install_faults(FaultPlan().crash_node(0, at=2e-4))
        with pytest.raises(RuntimeError, match="coordinator"):
            db.execute(tpch_query(1))

    def test_too_many_crashes_exhaust_recovery(self, data):
        from repro.hosts import NodeFailureError

        db = make_cluster(data, heartbeat_timeout_s=0.005, max_recoveries=0)
        db.install_faults(FaultPlan().crash_node(2, at=2e-4))
        with pytest.raises(NodeFailureError):
            db.execute(tpch_query(1))


class TestOOMSpikes:
    def test_persistent_oom_degrades_to_cpu_pipeline(self, data, baseline):
        """Repeated device-OOM on one node pushes its fragments onto the
        standby CPU engine; the query still completes correctly."""
        db = make_cluster(data)
        db.install_faults(FaultPlan().oom_spike(at=0.0, count=8, node_id=1))
        result = db.execute(tpch_query(6))
        assert normalise(result.table) == baseline[6]
        events = db._node_engines[1].fallback.events
        assert any(e.tier == "cpu-pipeline" for e in events)
        assert any(e["event"] == "pipeline_cpu_fallback" for e in db.event_log)


class TestNetworkFaults:
    def test_link_drops_retried_transparently(self, data, baseline):
        db = make_cluster(data)
        db.install_faults(FaultPlan().drop_links(at=0.0, count=2))
        result = db.execute(tpch_query(3))
        assert normalise(result.table) == baseline[3]
        assert result.exchange_retries == 2
        assert db.cluster.communicator.dropped_collectives == 2

    def test_bandwidth_degradation_slows_exchange(self, data):
        clean = make_cluster(data).execute(tpch_query(3))
        db = make_cluster(data)
        db.install_faults(FaultPlan().degrade_bandwidth(0.0, 10.0, 0.25))
        degraded = db.execute(tpch_query(3))
        assert degraded.exchange_seconds > clean.exchange_seconds

    def test_straggler_slows_the_query(self, data, baseline):
        clean = make_cluster(data).execute(tpch_query(1))
        db = make_cluster(data)
        db.install_faults(FaultPlan().straggler(2, 0.0, 10.0, 4.0))
        slowed = db.execute(tpch_query(1))
        assert normalise(slowed.table) == baseline[1]
        assert slowed.total_seconds > clean.total_seconds


class TestKernelFaults:
    def test_transient_kernel_faults_absorbed_by_relaunch(self, data, baseline):
        db = make_cluster(data)
        db.install_faults(FaultPlan().kernel_fault(at=0.0, count=2, node_id=1))
        result = db.execute(tpch_query(6))
        assert normalise(result.table) == baseline[6]
        assert db.cluster.nodes[1].device.kernel_relaunches == 2


class TestDeterminism:
    def test_same_plan_same_outcome(self, data):
        runs = []
        for _ in range(2):
            db = make_cluster(data, heartbeat_timeout_s=0.005)
            db.install_faults(
                FaultPlan(seed=11).crash_node(2, at=2e-4).drop_links(at=0.0, count=1)
            )
            result = db.execute(tpch_query(3))
            runs.append((normalise(result.table), result.total_seconds, tuple(
                e["event"] for e in db.event_log
            )))
        assert runs[0] == runs[1]
