"""Chaos suite: mid-query memory pressure under the serving scheduler.

A seeded :class:`MemoryPressure` window shrinks the processing pool's
soft limit while a mixed TPC-H workload is in flight.  The robustness
story being pinned: the out-of-core engine *spills through* the pressure
(partition fragments walk down the tiered store and come back) instead
of failing or shedding queries — every job completes, answers match the
fault-free run, and the pool carries no stranded fragments afterwards.
"""

import numpy as np
import pytest

from repro.core import SiriusEngine
from repro.faults import FaultInjector, FaultPlan
from repro.gpu.specs import GH200
from repro.sched import JobState, ServingScheduler
from repro.sql import SqlPlanner, TableStats
from repro.tpch import TPCH_SCHEMAS, generate_tpch, tpch_query

pytestmark = pytest.mark.chaos

SF = 0.01
QUERIES = (3, 5, 9, 10)
MEMORY_GB = 0.05


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=SF)


@pytest.fixture(scope="module")
def plans(data):
    stats = {}
    for name, t in data.items():
        distinct = {
            f.name: int(len(np.unique(c.data))) for f, c in zip(t.schema, t.columns)
        }
        stats[name] = TableStats(TPCH_SCHEMAS[name], t.num_rows, distinct)
    planner = SqlPlanner(stats)
    return {q: planner.plan_sql(tpch_query(q)) for q in QUERIES}


@pytest.fixture(scope="module")
def baseline(data, plans):
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=8.0)
    engine.warm_cache(data)
    return {q: normalise(engine.execute(plan, data)) for q, plan in plans.items()}


def normalise(table):
    rows = []
    for row in table.to_rows():
        rows.append(
            tuple(f"{v:.6g}" if isinstance(v, float) else repr(v) for v in row)
        )
    return sorted(rows)


def run_under_pressure(data, plans, factor: float, **engine_kwargs):
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=MEMORY_GB, **engine_kwargs)
    injector = FaultInjector(
        FaultPlan().memory_pressure(start=0.0, end=100.0, factor=factor)
    )
    injector.attach_device(engine.device)
    sched = ServingScheduler(engine, policy="fair", streams=2)
    jobs = {}
    for q, plan in sorted(plans.items()):
        jobs[q] = sched.submit(plan, data, label=f"q{q}", arrival_s=0.0)
    report = sched.run()
    return engine, report, jobs


class TestServingUnderMemoryPressure:
    def test_out_of_core_workload_completes_and_matches(
        self, data, plans, baseline
    ):
        engine, report, jobs = run_under_pressure(
            data, plans, factor=0.3, out_of_core=True
        )
        assert report.counters["completed"] == len(QUERIES)
        assert report.counters["failed"] == 0
        assert report.counters["rejected"] == 0
        for q, job in jobs.items():
            assert job.state == JobState.COMPLETED
            assert normalise(job.table) == baseline[q]
        # The pressure window really bit: the allocator's callback path
        # spilled partition fragments instead of surfacing OOM.
        assert engine.buffer_manager.pressure_spills > 0
        assert engine.buffer_manager.spilled_fragment_bytes > 0

    def test_no_fragments_stranded_after_the_storm(self, data, plans):
        engine, report, _ = run_under_pressure(
            data, plans, factor=0.3, out_of_core=True
        )
        assert report.counters["completed"] == len(QUERIES)
        stats = engine.buffer_manager.spill_stats()
        assert stats["live_fragments"] == 0
        assert stats["pinned_fragment_bytes"] == 0
        assert stats["disk_fragment_bytes"] == 0

    def test_default_engine_survives_via_the_ladder(self, data, plans, baseline):
        """With the flag off the same storm is survivable too — but only
        by degrading; the answers still match."""
        engine, report, jobs = run_under_pressure(data, plans, factor=0.3)
        assert report.counters["completed"] == len(QUERIES)
        assert report.counters["failed"] == 0
        for q, job in jobs.items():
            assert normalise(job.table) == baseline[q]

    def test_pressure_run_is_clean_under_sanitizer(self, data, plans, baseline):
        """The storm's spill-through path holds every dynamic invariant:
        the sanitizer sees no races, leaks, or counter drift — and adds
        zero behavioral perturbation (answers still match)."""
        engine, report, jobs = run_under_pressure(
            data, plans, factor=0.3, out_of_core=True, sanitize=True
        )
        assert report.counters["completed"] == len(QUERIES)
        assert engine.buffer_manager.pressure_spills > 0
        for q, job in jobs.items():
            assert job.state == JobState.COMPLETED
            assert normalise(job.table) == baseline[q]
        san = engine.sanitizer.report("chaos:memory-pressure")
        assert san.ok, san.to_json()
        assert san.counters["checks_run"] > 0

    def test_pressure_run_is_deterministic(self, data, plans):
        profiles = []
        for _ in range(2):
            engine, report, jobs = run_under_pressure(
                data, plans, factor=0.3, out_of_core=True
            )
            profiles.append(
                {
                    q: (job.profile.sim_seconds, job.profile.spill.get("spilled_bytes", 0))
                    for q, job in jobs.items()
                }
            )
        assert profiles[0] == profiles[1]
