"""Unit tests for the declarative fault-plan layer: determinism first."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkDrop,
    NodeCrash,
    OOMSpike,
    Straggler,
)


class TestBuilders:
    def test_chaining_collects_all_kinds(self):
        plan = (
            FaultPlan(seed=1)
            .crash_node(2, at=0.001)
            .drop_links(at=0.002, count=3)
            .degrade_bandwidth(0.0, 1.0, 0.5)
            .oom_spike(at=0.003, count=2, node_id=1)
            .kernel_fault(at=0.004)
            .straggler(3, 0.0, 1.0, 4.0)
        )
        assert len(plan) == 6
        assert plan.by_kind(NodeCrash) == [NodeCrash(2, 0.001)]
        assert plan.by_kind(LinkDrop) == [LinkDrop(0.002, 3)]
        assert plan.by_kind(OOMSpike) == [OOMSpike(0.003, 2, 1)]
        assert plan.by_kind(Straggler) == [Straggler(3, 0.0, 1.0, 4.0)]
        assert "NodeCrash" in repr(plan)

    def test_specs_are_frozen(self):
        crash = NodeCrash(1, 0.5)
        with pytest.raises(AttributeError):
            crash.at = 0.9

    @pytest.mark.parametrize(
        "build",
        [
            lambda p: p.drop_links(at=0.0, count=0),
            lambda p: p.oom_spike(at=0.0, count=0),
            lambda p: p.kernel_fault(at=0.0, count=-1),
            lambda p: p.degrade_bandwidth(0.0, 1.0, 0.0),
            lambda p: p.degrade_bandwidth(0.0, 1.0, 1.5),
            lambda p: p.degrade_bandwidth(1.0, 1.0, 0.5),
            lambda p: p.straggler(0, 0.0, 1.0, 0.5),
            lambda p: p.straggler(0, 1.0, 0.5, 2.0),
        ],
    )
    def test_invalid_specs_rejected(self, build):
        with pytest.raises(ValueError):
            build(FaultPlan())


class TestSeededSampling:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=7).scatter_link_drops(5, 1.0).scatter_kernel_faults(4, 1.0, [0, 1])
        b = FaultPlan(seed=7).scatter_link_drops(5, 1.0).scatter_kernel_faults(4, 1.0, [0, 1])
        assert a.faults == b.faults

    def test_different_seed_different_schedule(self):
        a = FaultPlan(seed=7).scatter_link_drops(8, 1.0)
        b = FaultPlan(seed=8).scatter_link_drops(8, 1.0)
        assert a.faults != b.faults

    def test_scatter_respects_horizon(self):
        plan = FaultPlan(seed=3).scatter_link_drops(20, 0.25)
        assert all(0.0 <= f.at < 0.25 for f in plan.by_kind(LinkDrop))


class TestInjectorDeterminism:
    def test_consumable_counters(self):
        injector = FaultInjector(FaultPlan().drop_links(at=0.0, count=2))
        assert injector.take_link_fault(0.001)
        assert injector.take_link_fault(0.002)
        assert not injector.take_link_fault(0.003)  # exhausted
        assert injector.summary() == {"link-drop": 2}

    def test_faults_not_due_do_not_fire(self):
        injector = FaultInjector(FaultPlan().oom_spike(at=0.5, count=1))
        assert not injector.take_oom(0, now=0.1)
        assert injector.take_oom(0, now=0.6)

    def test_targeted_fault_skips_other_nodes(self):
        injector = FaultInjector(FaultPlan().kernel_fault(at=0.0, count=1, node_id=2))
        assert not injector.take_kernel_fault(0, now=0.1)
        assert injector.take_kernel_fault(2, now=0.1)

    def test_crashes_fire_once(self):
        injector = FaultInjector(FaultPlan().crash_node(1, at=0.01))
        assert injector.due_crashes(0.005) == []
        assert injector.due_crashes(0.02) == [1]
        assert injector.due_crashes(0.03) == []

    def test_window_faults_compose(self):
        plan = (
            FaultPlan()
            .degrade_bandwidth(0.0, 1.0, 0.5)
            .degrade_bandwidth(0.5, 1.0, 0.5)
            .straggler(1, 0.0, 1.0, 3.0)
        )
        injector = FaultInjector(plan)
        assert injector.bandwidth_factor(0.25) == pytest.approx(0.5)
        assert injector.bandwidth_factor(0.75) == pytest.approx(0.25)
        assert injector.bandwidth_factor(2.0) == pytest.approx(1.0)
        assert injector.compute_slowdown(1, 0.5) == pytest.approx(3.0)
        assert injector.compute_slowdown(0, 0.5) == pytest.approx(1.0)
