"""The unified deadline / DNF mechanism, across every executor."""

import pytest

from repro.columnar import Schema, Table
from repro.core import (
    Deadline,
    DeadlineExceededError,
    DidNotFinishError,
    SiriusEngine,
)
from repro.gpu.clock import SimClock
from repro.gpu.specs import A100_40G
from repro.hosts import ClickLite, CpuEngine, MiniDoris
from repro.plan import PlanBuilder, col, lit
from repro.tpch import generate_tpch, tpch_query

SCHEMA = Schema([("k", "int64"), ("v", "float64")])


@pytest.fixture
def data():
    return {
        "t": Table.from_pydict(
            {"k": list(range(2000)), "v": [float(i) for i in range(2000)]}, SCHEMA
        )
    }


@pytest.fixture
def plan():
    return PlanBuilder.read("t", SCHEMA).filter(col("v") > lit(10.0)).build()


class TestDeadlineUnit:
    def test_anchored_at_construction(self):
        clock = SimClock()
        clock.advance(1.0)
        deadline = Deadline(0.5, clock)
        assert deadline.started_at == pytest.approx(1.0)
        assert deadline.expires_at == pytest.approx(1.5)
        assert deadline.remaining(1.2) == pytest.approx(0.3)
        assert not deadline.expired(1.5)
        assert deadline.expired(1.51)

    def test_check_raises_past_deadline(self):
        clock = SimClock()
        deadline = Deadline(0.1, clock)
        deadline.check(clock)  # fine at t=0
        clock.advance(0.2)
        with pytest.raises(DeadlineExceededError) as info:
            deadline.check(clock)
        assert info.value.budget_s == pytest.approx(0.1)
        assert info.value.elapsed_s == pytest.approx(0.2)

    def test_projected_check_fires_before_work(self):
        clock = SimClock()
        deadline = Deadline(0.1, clock)
        deadline.check_projected(clock, 0.05)  # would finish in time
        with pytest.raises(DeadlineExceededError):
            deadline.check_projected(clock, 0.2)
        assert clock.now == 0.0  # nothing was charged

    def test_dnf_is_the_common_base(self):
        assert issubclass(DeadlineExceededError, DidNotFinishError)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0, SimClock())
        with pytest.raises(ValueError):
            Deadline(None, SimClock())  # envelope needs >=1 dimension

    def test_memory_ceiling_dimension(self):
        from repro.core import MemoryBudgetExceededError

        deadline = Deadline(None, SimClock(), max_intermediate_rows=100)
        deadline.check_rows(100)  # at the ceiling is fine
        with pytest.raises(MemoryBudgetExceededError) as info:
            deadline.check_rows(101)
        assert issubclass(MemoryBudgetExceededError, DidNotFinishError)
        assert info.value.rows == 101 and info.value.limit == 100
        # A memory-only envelope never expires on time.
        assert not deadline.expired(1e9)


class TestEngineDeadlines:
    def test_sirius_pipeline_executor_enforces_deadline(self, data, plan):
        engine = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0)
        with pytest.raises(DeadlineExceededError):
            engine.execute(plan, data, deadline_s=1e-12)

    def test_deadline_not_absorbed_by_fallback(self, data, plan):
        """DNF is an answer, not a failure the degradation ladder should
        hide: a host executor must NOT be invoked for a blown deadline."""
        engine = SiriusEngine.for_spec(
            A100_40G,
            memory_limit_gb=1.0,
            host_executor=lambda p: CpuEngine().execute(p, data),
        )
        with pytest.raises(DeadlineExceededError):
            engine.execute(plan, data, deadline_s=1e-12)
        assert engine.fallback.fallback_count == 0

    def test_sirius_generous_deadline_completes(self, data, plan):
        engine = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0)
        out = engine.execute(plan, data, deadline_s=10.0)
        assert out.num_rows == 1989

    def test_cpu_engine_enforces_deadline(self, data, plan):
        engine = CpuEngine()
        with pytest.raises(DeadlineExceededError):
            engine.execute(plan, data, deadline_s=1e-12)
        out = engine.execute(plan, data, deadline_s=10.0)
        assert out.num_rows == 1989


class TestClickLiteQ9:
    """Q9's written-order cross join DNFs through the deadline — the old
    row-budget guard is off (``max_intermediate_rows=None``)."""

    @pytest.fixture(scope="class")
    def tpch(self):
        return generate_tpch(sf=0.01)

    def make_click(self, tpch, deadline_s):
        click = ClickLite(max_intermediate_rows=None, deadline_s=deadline_s)
        click.load_tables(tpch)
        return click

    def test_q9_exceeds_tight_deadline_without_materialising(self, tpch):
        click = self.make_click(tpch, deadline_s=0.0001)
        with pytest.raises(DeadlineExceededError) as info:
            click.execute(tpch_query(9, for_clickhouse=True))
        assert info.value.budget_s == pytest.approx(0.0001)
        # The projected check aborted before the clock ground through the
        # cross join: simulated time never passed the (tiny) deadline by
        # more than one kernel.
        assert click.device.clock.now < 0.05

    def test_q9_completes_under_generous_deadline(self, tpch):
        click = self.make_click(tpch, deadline_s=30.0)
        result = click.execute(tpch_query(9, for_clickhouse=True))
        assert result.table.num_rows > 0

    def test_one_deadline_separates_q6_from_q9(self, tpch):
        # A scan-heavy query fits comfortably inside the budget Q9 blows.
        click = self.make_click(tpch, deadline_s=0.0004)
        result = click.execute(tpch_query(6, for_clickhouse=True))
        assert result.table.num_rows == 1
        with pytest.raises(DeadlineExceededError):
            click.execute(tpch_query(9, for_clickhouse=True))


class TestDistributedDeadline:
    @pytest.fixture(scope="class")
    def doris(self):
        db = MiniDoris(num_nodes=2, mode="doris")
        db.load_tables(generate_tpch(sf=0.01))
        return db

    def test_distributed_dnf(self, doris):
        with pytest.raises(DeadlineExceededError):
            doris.execute(tpch_query(6), deadline_s=1e-9)

    def test_distributed_generous_deadline_completes(self, doris):
        result = doris.execute(tpch_query(6), deadline_s=60.0)
        assert result.table.num_rows == 1

    def test_constructor_default_deadline(self):
        db = MiniDoris(num_nodes=2, mode="doris", deadline_s=1e-9)
        db.load_tables(generate_tpch(sf=0.01))
        with pytest.raises(DeadlineExceededError):
            db.execute(tpch_query(6))
