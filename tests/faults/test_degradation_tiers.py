"""Tier-ordering tests for the degradation ladder.

The contract under test: OOM escalates through GPU-resident remedies in
cost order — the cheap spill+batched retry, then full partitioned
out-of-core execution — then the per-pipeline CPU tier (when wired), then
the whole-plan host fallback, and only then raises — with exactly one
enriched event recorded per degraded query.
"""

import pytest

from repro.columnar import Schema, Table
from repro.core import SiriusEngine
from repro.faults import FaultInjector, FaultPlan
from repro.gpu import OutOfDeviceMemory
from repro.gpu.specs import A100_40G
from repro.hosts import CpuEngine
from repro.plan import PlanBuilder, col, lit

SCHEMA = Schema([("k", "int64"), ("v", "float64")])


@pytest.fixture
def data():
    return {
        "t": Table.from_pydict(
            {"k": list(range(2000)), "v": [float(i) for i in range(2000)]}, SCHEMA
        )
    }


@pytest.fixture
def plan():
    return PlanBuilder.read("t", SCHEMA).filter(col("v") > lit(10.0)).build()


def inject(engine: SiriusEngine, fault_plan: FaultPlan) -> FaultInjector:
    injector = FaultInjector(fault_plan)
    injector.attach_device(engine.device)
    return injector


class TestRetrySpillTier:
    def test_oom_spike_retried_on_gpu(self, data, plan):
        """A transient OOM is absorbed by the out-of-core retry; the query
        never leaves the GPU and the profile stays valid."""
        engine = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0, enable_spill=False)
        inject(engine, FaultPlan().oom_spike(at=0.0, count=1))
        out = engine.execute(plan, data)
        assert out.num_rows == 1989
        assert engine.fallback.fallback_count == 1
        event = engine.fallback.events[0]
        assert event.tier == "gpu-retry-spill"
        assert event.tiers_attempted == ("gpu-retry-spill",)
        assert event.exception_type == "OutOfDeviceMemory"
        assert engine.last_profile is not None  # result was produced on GPU

    def test_retry_restores_engine_configuration(self, data, plan):
        engine = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0, enable_spill=False)
        inject(engine, FaultPlan().oom_spike(at=0.0, count=1))
        engine.execute(plan, data)
        assert engine.buffer_manager.enable_spill is False
        assert engine.batch_rows is None

    def test_event_enrichment(self, data, plan):
        engine = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0, enable_spill=False)
        inject(engine, FaultPlan().oom_spike(at=0.0, count=1))
        engine.execute(plan, data)
        event = engine.fallback.events[0]
        assert event.plan_fingerprint not in ("", "unknown")
        assert len(event.plan_fingerprint) == 12
        assert event.sim_time is not None and event.sim_time >= 0.0
        # Same plan -> same fingerprint (it identifies the plan, not the run).
        inject(engine, FaultPlan().oom_spike(at=0.0, count=1))
        engine.execute(plan, data)
        assert engine.fallback.events[1].plan_fingerprint == event.plan_fingerprint


class TestTierOrdering:
    def test_persistent_oom_cascades_to_host(self, data, plan):
        """Device truly too small: the spill retry fails too, so the query
        lands on the host — one event, original exception preserved."""
        engine = SiriusEngine.for_spec(
            A100_40G,
            memory_limit_gb=0.00003,
            enable_spill=False,
            host_executor=lambda p: CpuEngine().execute(p, data),
        )
        out = engine.execute(plan, data)
        assert out.num_rows == 1989
        assert engine.fallback.fallback_count == 1
        event = engine.fallback.events[0]
        assert event.tier == "cpu-plan"
        assert event.tiers_attempted == ("gpu-retry-spill", "gpu-spill", "cpu-plan")
        assert event.exception_type == "OutOfDeviceMemory"

    def test_cpu_pipeline_tier_runs_before_host(self, data, plan):
        host_calls = []

        def host(p):
            host_calls.append(p)
            return CpuEngine().execute(p, data)

        engine = SiriusEngine.for_spec(
            A100_40G,
            memory_limit_gb=0.00003,
            enable_spill=False,
            host_executor=host,
            pipeline_cpu_executor=lambda p, catalog: CpuEngine().execute(p, catalog),
        )
        out = engine.execute(plan, data)
        assert out.num_rows == 1989
        assert host_calls == []  # absorbed one tier earlier
        event = engine.fallback.events[0]
        assert event.tier == "cpu-pipeline"
        assert event.tiers_attempted == ("gpu-retry-spill", "gpu-spill", "cpu-pipeline")

    def test_unsupported_feature_skips_gpu_retry(self, data, plan):
        """Only OOM triggers the out-of-core retry; feature gaps go
        straight to the CPU tiers."""
        engine = SiriusEngine.for_spec(
            A100_40G,
            memory_limit_gb=1.0,
            host_executor=lambda p: CpuEngine().execute(p, data),
        )
        engine.execute(plan, {})  # table absent on the GPU path
        event = engine.fallback.events[0]
        assert event.tiers_attempted == ("cpu-plan",)

    def test_exhausted_ladder_raises_original(self, data, plan):
        engine = SiriusEngine.for_spec(
            A100_40G, memory_limit_gb=0.00003, enable_spill=False
        )
        with pytest.raises(OutOfDeviceMemory):
            engine.execute(plan, data)
        assert engine.fallback.fallback_count == 1
        event = engine.fallback.events[0]
        assert event.tier == "raise"
        assert event.tiers_attempted == ("gpu-retry-spill", "gpu-spill")


class TestTransientKernelFaults:
    def test_faults_below_limit_absorbed_by_relaunch(self, data, plan):
        engine = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0)
        inject(engine, FaultPlan().kernel_fault(at=0.0, count=2))
        out = engine.execute(plan, data)
        assert out.num_rows == 1989
        assert engine.device.kernel_relaunches == 2
        assert engine.fallback.fallback_count == 0

    def test_persistent_kernel_fault_falls_back(self, data, plan):
        engine = SiriusEngine.for_spec(
            A100_40G,
            memory_limit_gb=1.0,
            host_executor=lambda p: CpuEngine().execute(p, data),
        )
        inject(engine, FaultPlan().kernel_fault(at=0.0, count=10))
        out = engine.execute(plan, data)
        assert out.num_rows == 1989
        event = engine.fallback.events[0]
        assert event.exception_type == "TransientKernelError"
        assert event.tiers_attempted == ("cpu-plan",)

    def test_relaunches_still_charge_the_clock(self, data, plan):
        clean = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0)
        clean.execute(plan, data)
        faulted = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0)
        inject(faulted, FaultPlan().kernel_fault(at=0.0, count=2))
        faulted.execute(plan, data)
        assert faulted.device.clock.now > clean.device.clock.now


class TestSummary:
    def test_summary_groups_by_tier(self, data, plan):
        engine = SiriusEngine.for_spec(
            A100_40G,
            memory_limit_gb=0.00003,
            enable_spill=False,
            host_executor=lambda p: CpuEngine().execute(p, data),
        )
        engine.execute(plan, data)
        engine.execute(plan, data)
        report = engine.fallback.summary()
        assert "2 degraded queries" in report
        assert "tier cpu-plan: 2" in report
        assert "OutOfDeviceMemory x2" in report

    def test_summary_empty(self):
        engine = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0)
        assert engine.fallback.summary() == "no degraded queries"
