"""Unit tests for logical dtypes and scalar conversions."""

import datetime

import numpy as np
import pytest

from repro.columnar import (
    BOOL,
    DATE32,
    FLOAT64,
    INT32,
    INT64,
    STRING,
    common_numeric_type,
    date_to_days,
    days_to_date,
    dtype_from_name,
)


class TestDTypeLookup:
    def test_canonical_names_resolve(self):
        assert dtype_from_name("int64") is INT64
        assert dtype_from_name("float64") is FLOAT64
        assert dtype_from_name("string") is STRING
        assert dtype_from_name("bool") is BOOL

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("BIGINT", INT64),
            ("integer", INT32),
            ("DOUBLE", FLOAT64),
            ("decimal", FLOAT64),
            ("VARCHAR", STRING),
            ("date", DATE32),
            ("boolean", BOOL),
        ],
    )
    def test_sql_aliases(self, alias, expected):
        assert dtype_from_name(alias) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            dtype_from_name("uuid")


class TestDTypeProperties:
    def test_numeric_flags(self):
        assert INT64.is_numeric and FLOAT64.is_numeric and INT32.is_numeric
        assert not STRING.is_numeric and not DATE32.is_numeric

    def test_integer_flags(self):
        assert INT32.is_integer and INT64.is_integer
        assert not FLOAT64.is_integer

    def test_itemsizes_match_numpy(self):
        for t in (BOOL, INT32, INT64, FLOAT64, DATE32):
            assert t.itemsize == np.dtype(t.numpy_dtype).itemsize

    def test_string_physical_type_is_codes(self):
        assert STRING.numpy_dtype == np.dtype(np.int32)


class TestDateConversion:
    def test_epoch_is_day_zero(self):
        assert date_to_days(datetime.date(1970, 1, 1)) == 0

    def test_round_trip(self):
        d = datetime.date(1998, 9, 2)
        assert days_to_date(date_to_days(d)) == d

    def test_iso_string_accepted(self):
        assert date_to_days("1995-01-01") == date_to_days(datetime.date(1995, 1, 1))

    def test_pre_epoch_dates(self):
        d = datetime.date(1969, 12, 31)
        assert date_to_days(d) == -1
        assert days_to_date(-1) == d


class TestNumericPromotion:
    def test_float_wins(self):
        assert common_numeric_type(INT64, FLOAT64) is FLOAT64
        assert common_numeric_type(FLOAT64, INT32) is FLOAT64

    def test_wider_int_wins(self):
        assert common_numeric_type(INT32, INT64) is INT64
        assert common_numeric_type(INT32, INT32) is INT32

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError):
            common_numeric_type(STRING, INT64)
