"""Unit tests for Schema and Table."""

import numpy as np
import pytest

from repro.columnar import (
    Field,
    INT64,
    FLOAT64,
    Schema,
    Table,
    column_from_pylist,
    concat_tables,
)


@pytest.fixture
def small():
    schema = Schema([("k", "int64"), ("v", "float64"), ("s", "string")])
    return Table.from_pydict(
        {"k": [1, 2, 3], "v": [1.5, 2.5, 3.5], "s": ["a", None, "c"]}, schema
    )


class TestSchema:
    def test_lookup(self):
        s = Schema([("a", "int64"), ("b", "string")])
        assert s.index_of("b") == 1
        assert s.field("a").dtype is INT64
        assert "a" in s and "z" not in s

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([("a", "int64"), ("a", "string")])

    def test_equality(self):
        assert Schema([("a", "int64")]) == Schema([Field("a", INT64)])
        assert Schema([("a", "int64")]) != Schema([("a", "float64")])


class TestTableConstruction:
    def test_round_trip(self, small):
        assert small.to_pydict()["k"] == [1, 2, 3]
        assert small.num_rows == 3 and small.num_columns == 3

    def test_ragged_rejected(self):
        schema = Schema([("a", "int64"), ("b", "int64")])
        with pytest.raises(ValueError):
            Table(schema, [column_from_pylist([1], INT64), column_from_pylist([1, 2], INT64)])

    def test_dtype_mismatch_rejected(self):
        schema = Schema([("a", "int64")])
        with pytest.raises(TypeError):
            Table(schema, [column_from_pylist([1.0], FLOAT64)])

    def test_empty(self):
        t = Table.empty(Schema([("a", "int64")]))
        assert t.num_rows == 0


class TestTableOps:
    def test_select_reorders(self, small):
        t = small.select(["s", "k"])
        assert t.schema.names() == ["s", "k"]

    def test_take_rows(self, small):
        t = small.take(np.array([2, 0]))
        assert t.to_pydict()["k"] == [3, 1]

    def test_mask_rows(self, small):
        t = small.mask(np.array([True, False, True]))
        assert t.to_pydict()["v"] == [1.5, 3.5]

    def test_with_column_appends(self, small):
        t = small.with_column("w", column_from_pylist([9, 9, 9], INT64))
        assert t.num_columns == 4
        assert t["w"].to_pylist() == [9, 9, 9]

    def test_with_column_replaces(self, small):
        t = small.with_column("k", column_from_pylist([7, 7, 7], INT64))
        assert t.num_columns == 3
        assert t["k"].to_pylist() == [7, 7, 7]

    def test_rename(self, small):
        t = small.rename(["x", "y", "z"])
        assert t.schema.names() == ["x", "y", "z"]
        with pytest.raises(ValueError):
            small.rename(["only_one"])

    def test_to_rows(self, small):
        rows = small.to_rows()
        assert rows[0] == (1, 1.5, "a")
        assert rows[1][2] is None

    def test_pretty_renders_nulls(self, small):
        text = small.pretty()
        assert "NULL" in text and "k" in text


class TestConcat:
    def test_concat_preserves_order_and_values(self, small):
        both = concat_tables([small, small])
        assert both.num_rows == 6
        assert both.to_pydict()["k"] == [1, 2, 3, 1, 2, 3]
        assert both.to_pydict()["s"] == ["a", None, "c", "a", None, "c"]

    def test_concat_rejects_mismatched_schema(self, small):
        other = Table.from_pydict({"k": [1]}, Schema([("k", "int64")]))
        with pytest.raises(ValueError):
            concat_tables([small, other])

    def test_concat_string_dictionaries_merge(self):
        s1 = Table.from_pydict({"s": ["a", "b"]}, Schema([("s", "string")]))
        s2 = Table.from_pydict({"s": ["c", "a"]}, Schema([("s", "string")]))
        out = concat_tables([s1, s2])
        assert out.to_pydict()["s"] == ["a", "b", "c", "a"]
