"""Unit tests for the RPQ columnar file format."""

import pytest

from repro.columnar import Schema, Table, read_table, write_table


@pytest.fixture
def mixed_table():
    schema = Schema(
        [("id", "int64"), ("price", "float64"), ("day", "date"), ("name", "string"), ("ok", "bool")]
    )
    return Table.from_pydict(
        {
            "id": [1, 2, None, 4],
            "price": [9.5, None, 7.25, 0.0],
            "day": ["1995-01-01", "1996-02-02", "1997-03-03", None],
            "name": ["alpha", "beta", None, "alpha"],
            "ok": [True, False, True, None],
        },
        schema,
    )


class TestRoundTrip:
    def test_values_survive(self, tmp_path, mixed_table):
        path = tmp_path / "t.rpq"
        write_table(mixed_table, path)
        back = read_table(path)
        assert back.to_pydict() == mixed_table.to_pydict()

    def test_schema_survives(self, tmp_path, mixed_table):
        path = tmp_path / "t.rpq"
        write_table(mixed_table, path)
        back = read_table(path)
        assert back.schema == mixed_table.schema

    def test_empty_table(self, tmp_path):
        t = Table.empty(Schema([("a", "int64"), ("s", "string")]))
        path = tmp_path / "empty.rpq"
        write_table(t, path)
        back = read_table(path)
        assert back.num_rows == 0
        assert back.schema == t.schema

    def test_reported_size_matches_file(self, tmp_path, mixed_table):
        path = tmp_path / "t.rpq"
        size = write_table(mixed_table, path)
        assert size == path.stat().st_size > 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.rpq"
        path.write_bytes(b"NOPE" + b"\0" * 16)
        with pytest.raises(ValueError, match="not an RPQ file"):
            read_table(path)
