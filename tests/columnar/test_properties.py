"""Property-based tests on the columnar substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import (
    Column,
    INT64,
    Schema,
    Table,
    column_from_pylist,
    read_table,
    write_table,
)

maybe_ints = st.lists(st.one_of(st.none(), st.integers(-(2**40), 2**40)), max_size=60)
maybe_strings = st.lists(
    st.one_of(st.none(), st.text(alphabet=st.characters(codec="utf-8", exclude_characters="\n"), max_size=12)),
    max_size=60,
)


class TestColumnProperties:
    @given(maybe_ints)
    def test_int_pylist_round_trip(self, values):
        col = column_from_pylist(values, INT64)
        assert col.to_pylist() == values

    @given(maybe_strings)
    def test_string_dictionary_round_trip(self, values):
        col = Column.from_strings(values)
        assert col.to_pylist() == values

    @given(maybe_strings)
    def test_string_dictionary_sorted_invariant(self, values):
        col = Column.from_strings(values)
        d = list(col.dictionary)
        assert d == sorted(d)

    @given(maybe_ints, st.randoms())
    def test_take_matches_python_indexing(self, values, rng):
        col = column_from_pylist(values, INT64)
        if not values:
            return
        indices = [rng.randrange(len(values)) for _ in range(len(values))]
        taken = col.take(np.array(indices))
        assert taken.to_pylist() == [values[i] for i in indices]

    @given(maybe_ints)
    def test_mask_matches_python_filter(self, values):
        col = column_from_pylist(values, INT64)
        keep = np.array([v is not None and v % 2 == 0 for v in values], dtype=bool)
        masked = col.mask(keep)
        assert masked.to_pylist() == [v for v, k in zip(values, keep) if k]

    @given(maybe_ints)
    def test_null_count_matches(self, values):
        col = column_from_pylist(values, INT64)
        assert col.null_count == sum(v is None for v in values)


class TestIOProperties:
    @settings(max_examples=25)
    @given(ints=maybe_ints, strings=maybe_strings)
    def test_file_round_trip(self, ints, strings):
        import tempfile
        from pathlib import Path

        n = min(len(ints), len(strings))
        schema = Schema([("i", "int64"), ("s", "string")])
        table = Table.from_pydict({"i": ints[:n], "s": strings[:n]}, schema)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.rpq"
            write_table(table, path)
            assert read_table(path).to_pydict() == table.to_pydict()
