"""Unit tests for host columns: construction, nulls, strings, transforms."""

import datetime

import numpy as np
import pytest

from repro.columnar import (
    BOOL,
    Column,
    DATE32,
    FLOAT64,
    INT64,
    STRING,
    column_from_pylist,
)


class TestConstruction:
    def test_from_pylist_int(self):
        c = column_from_pylist([1, 2, 3], INT64)
        assert len(c) == 3
        assert c.to_pylist() == [1, 2, 3]

    def test_from_pylist_with_nulls(self):
        c = column_from_pylist([1.5, None, 3.5], FLOAT64)
        assert c.null_count == 1
        assert c.to_pylist() == [1.5, None, 3.5]

    def test_all_valid_mask_normalised_away(self):
        c = Column(INT64, np.arange(4), validity=np.ones(4, dtype=bool))
        assert c.validity is None

    def test_dates_from_iso_strings(self):
        c = column_from_pylist(["1995-06-17", datetime.date(1998, 9, 2)], DATE32)
        assert c.to_pylist() == [datetime.date(1995, 6, 17), datetime.date(1998, 9, 2)]

    def test_two_dimensional_data_rejected(self):
        with pytest.raises(ValueError):
            Column(INT64, np.zeros((2, 2)))

    def test_validity_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Column(INT64, np.arange(3), validity=np.ones(4, dtype=bool))

    def test_string_requires_dictionary(self):
        with pytest.raises(ValueError):
            Column(STRING, np.zeros(2, dtype=np.int32))

    def test_non_string_rejects_dictionary(self):
        with pytest.raises(ValueError):
            Column(INT64, np.arange(2), dictionary=np.array(["a"], dtype=object))


class TestStringColumns:
    def test_dictionary_encoding_round_trip(self):
        values = ["cherry", "apple", "cherry", None, "banana"]
        c = Column.from_strings(values)
        assert c.to_pylist() == values

    def test_dictionary_is_sorted(self):
        c = Column.from_strings(["z", "a", "m", "a"])
        assert list(c.dictionary) == sorted(c.dictionary)

    def test_shared_values_share_codes(self):
        c = Column.from_strings(["x", "y", "x"])
        assert c.data[0] == c.data[2]

    def test_decoded_returns_none_for_nulls(self):
        c = Column.from_strings(["a", None])
        decoded = c.decoded()
        assert decoded[0] == "a" and decoded[1] is None

    def test_compact_dictionary_after_filter(self):
        c = Column.from_strings(["a", "b", "c", "d"])
        filtered = c.mask(np.array([True, False, True, False]))
        compacted = filtered.compact_dictionary()
        assert len(compacted.dictionary) == 2
        assert compacted.to_pylist() == ["a", "c"]


class TestTransforms:
    def test_take(self):
        c = column_from_pylist([10, 20, 30], INT64)
        assert c.take(np.array([2, 0])).to_pylist() == [30, 10]

    def test_take_preserves_nulls(self):
        c = column_from_pylist([10, None, 30], INT64)
        assert c.take(np.array([1, 1, 2])).to_pylist() == [None, None, 30]

    def test_mask(self):
        c = column_from_pylist([1, 2, 3, 4], INT64)
        assert c.mask(np.array([True, False, True, False])).to_pylist() == [1, 3]

    def test_slice(self):
        c = column_from_pylist(list(range(10)), INT64)
        assert c.slice(3, 4).to_pylist() == [3, 4, 5, 6]

    def test_cast_int_to_float(self):
        c = column_from_pylist([1, 2], INT64).cast(FLOAT64)
        assert c.dtype is FLOAT64
        assert c.to_pylist() == [1.0, 2.0]

    def test_cast_string_to_int(self):
        c = Column.from_strings(["42", "7"]).cast(INT64)
        assert c.to_pylist() == [42, 7]

    def test_cast_int_to_string(self):
        c = column_from_pylist([42, 7], INT64).cast(STRING)
        assert c.to_pylist() == ["42", "7"]

    def test_cast_identity_returns_self(self):
        c = column_from_pylist([1], INT64)
        assert c.cast(INT64) is c


class TestAccounting:
    def test_nbytes_counts_validity(self):
        no_nulls = column_from_pylist([1, 2, 3, 4], INT64)
        with_nulls = column_from_pylist([1, None, 3, 4], INT64)
        assert with_nulls.nbytes == no_nulls.nbytes + 4  # bool mask bytes

    def test_bool_column_element_access(self):
        c = column_from_pylist([True, False, None], BOOL)
        assert c[0] is True and c[1] is False and c[2] is None
