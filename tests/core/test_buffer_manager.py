"""Unit tests for Sirius' buffer manager: caching, spilling, conversions."""

import numpy as np
import pytest

from repro.columnar import Schema, Table
from repro.core import BufferManager
from repro.gpu import Device, GH200, OutOfDeviceMemory


def make_table(rows: int, name_prefix="v") -> Table:
    schema = Schema([("a", "int64"), ("b", "float64")])
    return Table.from_pydict(
        {"a": list(range(rows)), "b": [float(i) for i in range(rows)]}, schema
    )


@pytest.fixture
def device():
    return Device(GH200, memory_limit_gb=0.001)  # 1 MB: 500 KB caching


@pytest.fixture
def bm(device):
    return BufferManager(device)


class TestCaching:
    def test_cold_then_hot(self, bm):
        t = make_table(100)
        g1 = bm.get_table("t", t)
        g2 = bm.get_table("t", t)
        assert g1 is g2
        assert bm.cold_loads == 1 and bm.hot_hits == 1

    def test_cold_load_charges_transfer(self, bm, device):
        before = device.htod_bytes
        bm.get_table("t", make_table(100))
        assert device.htod_bytes > before
        hot_before = device.htod_bytes
        bm.get_table("t", make_table(100))
        assert device.htod_bytes == hot_before  # hot runs move nothing

    def test_drop_releases_device_memory(self, bm, device):
        bm.get_table("t", make_table(1000))
        used = device.caching_region.used
        assert used > 0
        bm.drop("t")
        assert device.caching_region.used == 0

    def test_clear(self, bm):
        bm.get_table("a", make_table(10))
        bm.get_table("b", make_table(10))
        bm.clear()
        assert bm.cached_tables() == []


class TestSpilling:
    def test_lru_spill_under_pressure(self, bm):
        # Each table is ~16 KB x ... fill past 500 KB to force spills.
        for i in range(40):
            bm.get_table(f"t{i}", make_table(2000))
        assert bm.spills > 0
        assert bm.pinned_host_bytes > 0

    def test_spilled_table_comes_back(self, bm):
        big = make_table(12000)  # ~192 KB each
        bm.get_table("a", big)
        bm.get_table("b", big)
        bm.get_table("c", big)  # evicts "a"
        assert bm.spills >= 1
        again = bm.get_table("a", big)  # unspill
        assert bm.unspills >= 1
        assert len(again.columns[0]) == 12000

    def test_spill_disabled_raises(self, device):
        bm = BufferManager(device, enable_spill=False)
        with pytest.raises(OutOfDeviceMemory):
            for i in range(40):
                bm.get_table(f"t{i}", make_table(2000))

    def test_table_larger_than_region_raises_even_with_spill(self, bm):
        with pytest.raises(OutOfDeviceMemory):
            bm.get_table("huge", make_table(200_000))  # ~3.2 MB > 500 KB

    def test_failed_load_leaks_nothing(self, bm, device):
        with pytest.raises(OutOfDeviceMemory):
            bm.get_table("huge", make_table(200_000))
        assert device.caching_region.used == 0


class TestIndexConversion:
    """The paper's one non-zero-copy conversion: uint64 <-> int32 row ids."""

    def test_round_trip(self, bm):
        engine_ids = np.array([0, 5, 17], dtype=np.uint64)
        kernel_ids = bm.engine_indices_to_kernel(engine_ids)
        assert kernel_ids.dtype == np.int32
        back = bm.kernel_indices_to_engine(kernel_ids)
        assert back.dtype == np.uint64
        assert back.tolist() == engine_ids.tolist()

    def test_null_sentinel_round_trip(self, bm):
        kernel_ids = np.array([3, -1, 7], dtype=np.int32)
        engine_ids = bm.kernel_indices_to_engine(kernel_ids)
        assert engine_ids[1] == np.uint64(2**64 - 1)
        assert bm.engine_indices_to_kernel(engine_ids).tolist() == [3, -1, 7]

    def test_wrong_dtype_rejected(self, bm):
        with pytest.raises(TypeError):
            bm.engine_indices_to_kernel(np.array([1, 2], dtype=np.int64))

    def test_overflowing_index_rejected(self, bm):
        too_big = np.array([2**40], dtype=np.uint64)
        with pytest.raises(OverflowError):
            bm.engine_indices_to_kernel(too_big)

    def test_conversion_is_charged(self, bm, device):
        before = device.kernel_count
        bm.engine_indices_to_kernel(np.arange(10, dtype=np.uint64))
        assert device.kernel_count == before + 1

    def test_stats_keys(self, bm):
        stats = bm.stats()
        assert {"cold_loads", "hot_hits", "spills", "caching_capacity"} <= set(stats)


class TestEvictionAvoidsInFlightPrefetch:
    """Regression: ``_evict_one`` must prefer quiescent residents over
    entries whose prefetched chunks are still landing on the copy stream
    — evicting those forces a host-blocking stream join and throws away
    the copy just issued."""

    def fitted(self, n_tables: float, rows: int = 1000):
        table_bytes = make_table(rows).nbytes
        limit_gb = (table_bytes * n_tables * 2) / (1024**3)  # 50% split
        device = Device(GH200, memory_limit_gb=limit_gb)
        return device, BufferManager(device, overlap=True)

    def test_quiescent_entry_spilled_instead_of_prefetch(self):
        device, bm = self.fitted(2.2)
        tables = {name: make_table(1000) for name in ("a", "b", "c")}
        assert bm.prefetch("b", tables["b"])  # in flight, and LRU
        bm.get_table("a", tables["a"])
        bm.complete_loads()  # pipeline-end join: "a" is now quiescent
        bm.get_table("c", tables["c"])  # needs an eviction
        # "b" was LRU but still in flight: the quiescent "a" went instead.
        assert bm._cache["a"].location == "pinned"
        assert bm._cache["b"].location == "device"
        assert "b" in bm._in_flight  # never force-synced
        assert bm._cache["c"].location == "device"

    def test_in_flight_entry_is_last_resort_and_synced(self):
        device, bm = self.fitted(1.2)
        tables = {"a": make_table(1000), "b": make_table(1000)}
        assert bm.prefetch("a", tables["a"])
        bm.get_table("b", tables["b"])  # only candidate is in flight
        assert bm._cache["a"].location == "pinned"
        assert "a" not in bm._in_flight  # synced before the spill
        assert bm.spills == 1
