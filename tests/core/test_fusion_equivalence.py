"""The fusion equivalence gate: ``fusion=True`` must be invisible.

Pipeline fusion (collapsing streaming runs into compiled :class:`FusedOp`
regions) is a pure cost-model optimisation — the compiled closures call
the exact same kernels as the interpreter, so every observable *result*
must be byte-identical to the unfused engine while the modeled kernel
count and wall time strictly shrink on streaming-heavy queries.

The gate:

* all 22 TPC-H queries, fused vs unfused, raw column buffers compared
  byte-for-byte;
* a 50-case battery sample under the same comparison;
* the ``busy_s`` partition invariant holds for fused runs (every clock
  advance still lands in exactly one measured operator region);
* the fused-plan verifier reports zero findings on every fused plan;
* the runtime sanitizer is clean executing under fusion;
* a hypothesis property re-checks fused == unfused over random plans.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import verify_fused_plan
from repro.core import SiriusEngine
from repro.core.planner import compile_plan
from repro.gpu.specs import GH200
from repro.obs import Tracer
from repro.sql import SqlPlanner, TableStats
from repro.tpch import TPCH_SCHEMAS, generate_tpch, tpch_query
from tests.core.test_random_plans import normalise, plans, tables

SF = 0.01


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=SF)


@pytest.fixture(scope="module")
def planner(data):
    stats = {}
    for name, t in data.items():
        distinct = {
            f.name: int(len(np.unique(c.data))) for f, c in zip(t.schema, t.columns)
        }
        stats[name] = TableStats(TPCH_SCHEMAS[name], t.num_rows, distinct)
    return SqlPlanner(stats)


@pytest.fixture(scope="module")
def plain(data):
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=8.0)
    engine.warm_cache(data)
    return engine


@pytest.fixture(scope="module")
def fused(data):
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=8.0, fusion=True)
    engine.warm_cache(data)
    return engine


def raw_bytes(table):
    """Raw host-column payloads: strictest possible equality."""
    out = []
    for c in table.columns:
        out.append(
            (
                np.asarray(c.data).tobytes(),
                None if c.validity is None else np.asarray(c.validity).tobytes(),
                None
                if getattr(c, "dictionary", None) is None
                else tuple(c.dictionary.tolist()),
            )
        )
    return out


class TestTpchByteIdentity:
    @pytest.mark.parametrize("q", range(1, 23))
    def test_fused_matches_unfused(self, q, data, planner, plain, fused):
        plan = planner.plan_sql(tpch_query(q))
        a = plain.execute(plan, data)
        b = fused.execute(plan, data)
        assert a.schema == b.schema
        assert raw_bytes(a) == raw_bytes(b)

    def test_fusion_reduces_modeled_cost_on_streaming_queries(
        self, data, planner, plain, fused
    ):
        """Q1 and Q6 are the paper's streaming-bound queries: fusion must
        strictly shrink both the kernel count and the modeled wall time,
        and record the intermediate bytes it stopped charging for."""
        for q in (1, 6):
            plan = planner.plan_sql(tpch_query(q))
            plain.execute(plan, data)
            unfused_profile = plain.last_profile
            fused.execute(plan, data)
            fused_profile = fused.last_profile
            assert fused_profile.kernel_count < unfused_profile.kernel_count
            assert fused_profile.sim_seconds < unfused_profile.sim_seconds
            assert fused_profile.fused_kernels > 0
            assert fused_profile.fusion_saved_bytes > 0
            assert unfused_profile.fused_kernels == 0
            assert unfused_profile.fusion_saved_bytes == 0


class TestFusedPlanVerifier:
    @pytest.mark.parametrize("q", range(1, 23))
    def test_zero_findings(self, q, planner):
        physical = compile_plan(planner.plan_sql(tpch_query(q)), fusion=True)
        assert physical.fusion
        findings = verify_fused_plan(physical)
        assert findings == [], [str(f) for f in findings]

    def test_unfused_plan_operator_lists_are_seed_shaped(self, planner):
        """fusion=False compiles the exact seed operator classes."""
        from repro.core.operators.fused import FusedOp

        physical = compile_plan(planner.plan_sql(tpch_query(1)))
        assert not physical.fusion
        for pipeline in physical.pipelines:
            assert not any(isinstance(op, FusedOp) for op in pipeline.operators)


class TestBatterySample:
    def test_fifty_battery_cases_byte_identical(self, plain, fused):
        from repro.bench.baselines.battery import SCALE_FACTOR, battery_cases
        from repro.hosts import MiniDuck

        bdata = generate_tpch(sf=SCALE_FACTOR, seed=19920101)
        host = MiniDuck()
        host.load_tables(bdata)
        cases = battery_cases()[:50]
        assert len(cases) == 50
        for case in cases:
            plan = host.plan(case.sql)
            a = plain.execute(plan, bdata)
            b = fused.execute(plan, bdata)
            assert a.schema == b.schema, case.sql
            assert raw_bytes(a) == raw_bytes(b), case.sql


class TestBusyPartitionUnderFusion:
    @pytest.mark.parametrize("q", [1, 3, 6])
    def test_operator_busy_time_partitions_query_time(self, q, data, planner):
        tracer = Tracer()
        engine = SiriusEngine.for_spec(
            GH200, memory_limit_gb=8.0, fusion=True, tracer=tracer
        )
        engine.execute(planner.plan_sql(tpch_query(q)), data)
        spans = engine.last_profile.spans
        (query,) = [s for s in spans if s.kind == "query"]
        operators = [s for s in spans if s.kind == "operator"]
        assert operators
        busy = sum(s.attributes["busy_s"] for s in operators)
        assert math.isclose(busy, query.duration, rel_tol=1e-9, abs_tol=1e-12)
        # Fused regions show up as single operator spans.
        assert any(s.name.startswith("Fused[") for s in operators)


class TestSanitizedFusion:
    @pytest.mark.parametrize("q", [1, 6])
    def test_sanitizer_clean(self, q, data, planner):
        from repro.analysis.sanitizers.cli import sanitized_query_check

        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=8.0, fusion=True)
        report = sanitized_query_check(engine, planner.plan_sql(tpch_query(q)), data)
        assert report.ok, [str(f) for f in report.findings]


class TestRandomPlanFusion:
    @settings(max_examples=80, deadline=None)
    @given(data=tables(), plan=plans())
    def test_fused_equals_unfused(self, data, plan):
        plain = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        fused = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0, fusion=True)
        a = plain.execute(plan, data)
        b = fused.execute(plan, data)
        assert a.schema == b.schema
        assert raw_bytes(a) == raw_bytes(b)

    @settings(max_examples=40, deadline=None)
    @given(data=tables(), plan=plans())
    def test_fused_plans_verify_clean(self, data, plan):
        physical = compile_plan(plan, fusion=True)
        assert verify_fused_plan(physical) == []

    @settings(max_examples=30, deadline=None)
    @given(data=tables(), plan=plans(), batch=st.integers(1, 17))
    def test_batched_fusion_equals_whole(self, data, plan, batch):
        """Fusion composes with chunked execution (zero-row chunks and
        all): batched+fused == whole+unfused, row for row."""
        whole = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        batched = SiriusEngine.for_spec(
            GH200, memory_limit_gb=1.0, batch_rows=batch, fusion=True
        )
        assert sorted(normalise(whole.execute(plan, data))) == sorted(
            normalise(batched.execute(plan, data))
        )


class TestEstimatorFusionPricing:
    @pytest.mark.parametrize("q", [1, 3, 6])
    def test_fused_estimate_never_worse(self, q, data, planner):
        from repro.gpu.device import Device
        from repro.sched.estimator import estimate_plan

        device = Device(GH200)
        plan = planner.plan_sql(tpch_query(q))
        base = estimate_plan(plan, data, device)
        opt = estimate_plan(plan, data, device, fusion=True)
        assert opt.service_s <= base.service_s
        assert opt.working_set_bytes == base.working_set_bytes
        assert opt.rows == base.rows

    def test_fused_estimate_strictly_better_on_q6(self, data, planner):
        from repro.gpu.device import Device
        from repro.sched.estimator import estimate_plan

        device = Device(GH200)
        plan = planner.plan_sql(tpch_query(6))
        base = estimate_plan(plan, data, device)
        opt = estimate_plan(plan, data, device, fusion=True)
        assert opt.service_s < base.service_s
