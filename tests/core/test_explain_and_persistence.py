"""Tests for EXPLAIN ANALYZE, the filter-into-scan pass, and persistence."""

import pytest

from repro.columnar import Schema, Table
from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import MiniDuck
from repro.plan import FilterRel, PlanBuilder, ReadRel, col, lit
from repro.sql.optimizer import push_filters_into_scans
from repro.tpch import generate_tpch

SCHEMA = Schema([("k", "int64"), ("v", "float64")])


@pytest.fixture
def data():
    return {
        "t": Table.from_pydict(
            {"k": list(range(100)), "v": [float(i) for i in range(100)]}, SCHEMA
        )
    }


class TestExplainAnalyze:
    def test_reports_every_operator(self, data):
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        plan = (
            PlanBuilder.read("t", SCHEMA)
            .filter(col("v") > lit(10.0))
            .aggregate(groups=["k"], aggs=[("sum", "v", "s")])
            .sort([("s", False)])
            .limit(5)
            .build()
        )
        text = engine.explain_analyze(plan, data)
        assert "Pipeline 0" in text
        assert "Filter" in text and "GroupBy" in text and "TopN" in text
        assert "us" in text and "rows=" in text

    def test_operator_timings_sum_close_to_total(self, data):
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        plan = PlanBuilder.read("t", SCHEMA).filter(col("v") > lit(0.0)).build()
        engine.execute(plan, data)
        profile = engine.last_profile
        op_total = sum(t.seconds for t in profile.operator_timings)
        # Scan/cold-load time lives outside operator scopes; operator time
        # must not exceed the query total.
        assert op_total <= profile.sim_seconds + 1e-12

    def test_fallback_message(self):
        from repro.hosts import CpuEngine

        big = {
            "t": Table.from_pydict(
                {"k": list(range(10_000)), "v": [float(i) for i in range(10_000)]},
                SCHEMA,
            )
        }
        engine = SiriusEngine.for_spec(
            GH200,
            memory_limit_gb=0.00003,  # ~15 KB caching: cannot hold 160 KB
            enable_spill=False,
            host_executor=lambda p: CpuEngine().execute(p, big),
        )
        plan = PlanBuilder.read("t", SCHEMA).build()
        assert "fell back" in engine.explain_analyze(plan, big)


class TestFilterIntoScan:
    def test_filter_fused(self):
        plan = PlanBuilder.read("t", SCHEMA).filter(col("v") > lit(1.0)).build()
        fused = push_filters_into_scans(plan.root)
        assert isinstance(fused, ReadRel)
        assert fused.filter_expr is not None

    def test_stacked_filters_conjoin(self):
        plan = (
            PlanBuilder.read("t", SCHEMA)
            .filter(col("v") > lit(1.0))
            .filter(col("k") < lit(50))
            .build()
        )
        fused = push_filters_into_scans(plan.root)
        assert isinstance(fused, ReadRel)
        assert fused.filter_expr.func == "and"

    def test_fused_results_identical(self, data):
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        plan = PlanBuilder.read("t", SCHEMA).filter(col("v") > lit(42.0)).build()
        from repro.plan import Plan

        fused = Plan(push_filters_into_scans(plan.root))
        assert engine.execute(plan, data).to_pydict() == engine.execute(fused, data).to_pydict()

    def test_non_scan_filters_untouched(self):
        plan = (
            PlanBuilder.read("t", SCHEMA)
            .aggregate(groups=["k"], aggs=[("sum", "v", "s")])
            .filter(col("s") > lit(1.0))
            .build()
        )
        fused = push_filters_into_scans(plan.root)
        assert isinstance(fused, FilterRel)  # HAVING-style filter stays


class TestPersistence:
    def test_save_and_open_round_trip(self, tmp_path):
        data = generate_tpch(sf=0.005)
        db = MiniDuck()
        db.load_tables(data)
        db.save(tmp_path / "warehouse")

        reopened = MiniDuck.open(tmp_path / "warehouse")
        assert set(reopened.tables) == set(data)
        before = db.execute("select count(*) as n from lineitem").table.to_pydict()
        after = reopened.execute("select count(*) as n from lineitem").table.to_pydict()
        assert before == after

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MiniDuck.open(tmp_path / "nope")

    def test_queries_after_reopen_match(self, tmp_path):
        data = generate_tpch(sf=0.005)
        db = MiniDuck()
        db.load_tables(data)
        db.save(tmp_path / "wh")
        reopened = MiniDuck.open(tmp_path / "wh")
        sql = (
            "select l_returnflag, sum(l_quantity) as q from lineitem "
            "group by l_returnflag order by l_returnflag"
        )
        assert (
            db.execute(sql).table.to_pydict() == reopened.execute(sql).table.to_pydict()
        )
