"""Differential fuzzing: random plans, GPU engine vs CPU engine.

hypothesis generates random (but valid) plan trees over random tables;
both independent engines must produce identical results.  This is the
widest correctness net in the suite — it routinely exercises operator
combinations no hand-written test covers.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Schema, Table
from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import CpuEngine
from repro.plan import PlanBuilder, col, lit
from repro.sql.optimizer import optimize_plan

SCHEMA = Schema([("k", "int64"), ("g", "int64"), ("v", "float64"), ("s", "string")])
DIM_SCHEMA = Schema([("k", "int64"), ("w", "int64")])


@st.composite
def tables(draw):
    n = draw(st.integers(0, 40))
    rng_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(rng_seed)
    fact = Table.from_pydict(
        {
            "k": rng.integers(0, 12, n).tolist(),
            "g": rng.integers(0, 4, n).tolist(),
            "v": np.round(rng.uniform(-50, 50, n), 3).tolist(),
            "s": [draw(st.sampled_from(["a", "b", "c", "dd"])) for _ in range(n)],
        },
        SCHEMA,
    )
    m = draw(st.integers(0, 15))
    dim = Table.from_pydict(
        {
            "k": rng.integers(0, 12, m).tolist(),
            "w": rng.integers(0, 100, m).tolist(),
        },
        DIM_SCHEMA,
    )
    return {"fact": fact, "dim": dim}


@st.composite
def plans(draw):
    builder = PlanBuilder.read("fact", SCHEMA)

    if draw(st.booleans()):
        column = draw(st.sampled_from(["k", "g", "v"]))
        op = draw(st.sampled_from(["__gt__", "__le__", "__eq__", "__ne__"]))
        threshold = draw(st.integers(-10, 10))
        builder = builder.filter(getattr(col(column), op)(lit(float(threshold))))

    join_type = draw(st.sampled_from([None, "inner", "left", "semi", "anti"]))
    if join_type is not None:
        builder = builder.join(PlanBuilder.read("dim", DIM_SCHEMA), join_type, [("k", "k")])

    shape = draw(st.sampled_from(["none", "groupby", "global", "distinct"]))
    if shape == "groupby":
        agg_op = draw(st.sampled_from(["sum", "min", "max", "count", "avg"]))
        builder = builder.aggregate(
            groups=["g"], aggs=[(agg_op, "v", "m"), ("count", None, "n")]
        ).sort([("g", True)])
    elif shape == "global":
        builder = builder.aggregate(groups=[], aggs=[("sum", "v", "total")])
    elif shape == "distinct":
        builder = builder.project([("g", "g"), ("s", "s")])
        from repro.plan import AggregateRel

        builder = PlanBuilder(AggregateRel(builder.relation, [0, 1], []))
        builder = builder.sort([("g", True), ("s", True)])
    else:
        builder = builder.sort([("k", True), ("v", True), ("s", True)])
        if draw(st.booleans()):
            builder = builder.limit(draw(st.integers(0, 10)))
    return builder.build()


def normalise(table):
    rows = []
    for row in table.to_rows():
        rows.append(tuple(f"{v:.6g}" if isinstance(v, float) else repr(v) for v in row))
    return rows


class TestRandomPlanDifferential:
    @settings(max_examples=120, deadline=None)
    @given(data=tables(), plan=plans())
    def test_gpu_equals_cpu(self, data, plan):
        gpu = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        cpu = CpuEngine()
        left = normalise(gpu.execute(plan, data))
        right = normalise(cpu.execute(plan, data))
        # Sorted comparison: ties in sort keys may break differently.
        assert sorted(left) == sorted(right)

    @settings(max_examples=60, deadline=None)
    @given(data=tables(), plan=plans())
    def test_optimizer_preserves_semantics(self, data, plan):
        rows = {name: t.num_rows for name, t in data.items()}
        optimized = optimize_plan(plan, rows)
        cpu = CpuEngine()
        assert sorted(normalise(cpu.execute(optimized, data))) == sorted(
            normalise(cpu.execute(plan, data))
        )

    @settings(max_examples=40, deadline=None)
    @given(data=tables(), plan=plans(), batch=st.integers(1, 17))
    def test_batched_execution_equals_whole(self, data, plan, batch):
        whole = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        batched = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0, batch_rows=batch)
        assert sorted(normalise(whole.execute(plan, data))) == sorted(
            normalise(batched.execute(plan, data))
        )
