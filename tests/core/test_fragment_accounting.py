"""Hypothesis interleavings over the spill-fragment tier.

Partition fragments (``put_fragment`` / ``spill_fragment`` /
``get_fragment`` / ``drop_fragment``) walk device -> pinned host ->
simulated disk.  Random interleavings of those operations must preserve
the accounting invariants the profile's spill section and the admission
controller's footprint cap both rely on:

* every counter is non-negative, cumulative ones never decrease;
* ``pinned_fragment_bytes`` / ``disk_fragment_bytes`` equal the byte
  totals of the fragments actually sitting in those tiers;
* ``live_fragments`` equals the number of registered fragments;
* a fragment's contents survive any number of spill/unspill hops.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Schema, Table
from repro.core import BufferManager
from repro.gpu import Device, GH200
from repro.kernels import GTable

SCHEMA = Schema([("a", "int64"), ("b", "float64")])
NAMES = ["f0", "f1", "f2", "f3"]


def make_table(rows: int, offset: int = 0) -> Table:
    return Table.from_pydict(
        {
            "a": list(range(offset, offset + rows)),
            "b": [float(i) * 0.5 for i in range(rows)],
        },
        SCHEMA,
    )


def fresh_manager(pinned_budget: int | None = None) -> BufferManager:
    device = Device(GH200, memory_limit_gb=0.01)
    bm = BufferManager(device)
    bm.pinned_fragment_budget = pinned_budget
    return bm


def tier_bytes(bm: BufferManager, location: str) -> int:
    return sum(
        frag.nbytes
        for frag in bm._fragments.values()
        if frag.location == location
    )


def check_invariants(bm: BufferManager) -> None:
    stats = bm.spill_stats()
    for key, value in stats.items():
        assert value >= 0, f"{key} went negative: {value}"
    assert stats["pinned_fragment_bytes"] == tier_bytes(bm, "pinned")
    assert stats["disk_fragment_bytes"] == tier_bytes(bm, "disk")
    assert stats["live_fragments"] == len(bm._fragments)
    # Cumulative traffic counters cover at least the current tier totals.
    assert stats["spilled_bytes"] >= stats["disk_fragment_bytes"]


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["put", "spill", "get", "drop"]),
        st.sampled_from(NAMES),
    ),
    min_size=1,
    max_size=40,
)


class TestFragmentInterleavings:
    @given(ops=ops_strategy)
    @settings(max_examples=50, deadline=None)
    def test_accounting_invariants_hold(self, ops):
        bm = fresh_manager()
        contents = {}
        last_spilled = 0
        last_unspilled = 0
        for i, (op, name) in enumerate(ops):
            if op == "put":
                host = make_table(50, offset=i)
                bm.put_fragment(name, GTable.from_host(bm.device, host))
                contents[name] = host.to_rows()
            elif op == "spill":
                if name in bm._fragments:
                    bm.spill_fragment(name)
            elif op == "get":
                if name in bm._fragments:
                    got = bm.get_fragment(name)
                    assert bm.fragment_location(name) == "device"
                    assert got.to_host().to_rows() == contents[name]
            elif op == "drop":
                bm.drop_fragment(name)
                contents.pop(name, None)
            check_invariants(bm)
            stats = bm.spill_stats()
            assert stats["spilled_bytes"] >= last_spilled
            assert stats["unspilled_bytes"] >= last_unspilled
            last_spilled = stats["spilled_bytes"]
            last_unspilled = stats["unspilled_bytes"]
        bm.clear_fragments()
        stats = bm.spill_stats()
        assert stats["live_fragments"] == 0
        assert stats["pinned_fragment_bytes"] == 0
        assert stats["disk_fragment_bytes"] == 0

    @given(ops=ops_strategy)
    @settings(max_examples=25, deadline=None)
    def test_tiny_pinned_budget_demotes_to_disk(self, ops):
        """With a one-fragment pinned budget, spilling a second fragment
        demotes the LRU pinned one to disk — and every fragment still
        promotes back to the device intact."""
        bm = fresh_manager(pinned_budget=make_table(50).nbytes)
        contents = {}
        for i, (op, name) in enumerate(ops):
            if op == "put":
                host = make_table(50, offset=i)
                bm.put_fragment(name, GTable.from_host(bm.device, host))
                contents[name] = host.to_rows()
            elif op in ("spill", "drop") and name in bm._fragments:
                if op == "spill":
                    bm.spill_fragment(name)
                else:
                    bm.drop_fragment(name)
                    contents.pop(name, None)
            elif op == "get" and name in bm._fragments:
                assert bm.get_fragment(name).to_host().to_rows() == contents[name]
            check_invariants(bm)
            assert bm.fragment_pinned_bytes <= bm.pinned_fragment_budget
        for name in list(bm._fragments):
            assert bm.get_fragment(name).to_host().to_rows() == contents[name]
