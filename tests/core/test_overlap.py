"""Copy/compute overlap on the single-node engine.

Off by default: a default-configured engine must never touch the copy
stream and its outputs stay byte-identical to the seed.  On, cold runs
get strictly faster with identical results (the hidden copy time shows
up in the profile), and hot runs are unaffected either way.
"""

import pytest

from repro.core import SiriusEngine
from repro.gpu.specs import A100_40G, GH200
from repro.hosts import MiniDuck
from repro.tpch import generate_tpch, tpch_query

SF = 0.02
SEED = 7


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=SF, seed=SEED)


@pytest.fixture(scope="module")
def host(data):
    duck = MiniDuck()
    duck.load_tables(data)
    return duck


class TestOverlapOffIsInert:
    def test_default_run_issues_no_stream_work(self, data, host):
        engine = SiriusEngine.for_spec(GH200)
        engine.execute(host.plan(tpch_query(6)), data)  # cold
        engine.execute(host.plan(tpch_query(6)), data)  # hot
        stats = engine.buffer_manager.stats()
        assert stats["prefetches"] == 0
        assert stats["prefetch_hits"] == 0
        assert engine.device.clock.stream_stats() == {}
        assert engine.last_profile.overlap_hidden_s == 0.0
        assert engine.last_profile.stream_busy == {}
        assert engine.last_profile.overlap_efficiency() == 0.0


class TestOverlapHidesColdLoads:
    @pytest.mark.parametrize("q", [1, 3, 6])
    def test_cold_run_faster_with_identical_rows(self, q, data, host):
        plan = host.plan(tpch_query(q))
        baseline = SiriusEngine.for_spec(A100_40G)
        expected = baseline.execute(plan, data)
        overlapped = SiriusEngine.for_spec(A100_40G, overlap=True)
        result = overlapped.execute(plan, data)
        assert result.to_rows() == expected.to_rows()
        assert (
            overlapped.last_profile.sim_seconds < baseline.last_profile.sim_seconds
        )
        assert overlapped.last_profile.overlap_hidden_s > 0.0
        assert overlapped.last_profile.stream_busy.get("copy", 0.0) > 0.0
        assert 0.0 < overlapped.last_profile.overlap_efficiency() <= 1.0

    def test_hot_runs_match_the_baseline_exactly(self, data, host):
        """Overlap only changes cold loads: once the cache is warm, the
        simulated time is float-identical to the default engine's."""
        plan = host.plan(tpch_query(6))
        baseline = SiriusEngine.for_spec(A100_40G)
        overlapped = SiriusEngine.for_spec(A100_40G, overlap=True)
        for engine in (baseline, overlapped):
            engine.execute(plan, data)  # cold
            engine.execute(plan, data)  # hot
        assert (
            overlapped.last_profile.sim_seconds
            == baseline.last_profile.sim_seconds
        )

    def test_overlap_is_deterministic(self, data, host):
        plan = host.plan(tpch_query(3))
        times = []
        for _ in range(2):
            engine = SiriusEngine.for_spec(A100_40G, overlap=True)
            engine.execute(plan, data)
            times.append(engine.last_profile.sim_seconds)
        assert times[0] == times[1]

    def test_multi_scan_query_prefetches_the_next_pipeline(self, data, host):
        """Q3 scans three base tables across pipelines: with overlap on,
        the executor prefetches upcoming scans and the loads land as
        prefetch hits."""
        engine = SiriusEngine.for_spec(A100_40G, overlap=True)
        engine.execute(host.plan(tpch_query(3)), data)
        stats = engine.buffer_manager.stats()
        assert stats["prefetches"] > 0
        assert stats["prefetch_hits"] == stats["prefetches"]

    def test_warm_cache_fully_lands_overlapped_loads(self, data):
        """warm_cache must leave nothing in flight: "warm" means resident,
        so later timed windows never absorb deferred copies."""
        engine = SiriusEngine.for_spec(A100_40G, overlap=True)
        engine.warm_cache(data)
        bm = engine.buffer_manager
        assert not bm._in_flight and not bm._must_sync
