"""Buffer-manager correctness under interleaved multi-query access.

Two queries alternate ``get_table`` calls against a caching region that
cannot hold every table: LRU order must reflect the *interleaved* access
sequence (not per-query order), spill/unspill cycles must round-trip, and
the contention-aware eviction pass must prefer tables last touched by a
query that is no longer in flight.
"""


from repro.columnar import Schema, Table
from repro.core import BufferManager
from repro.gpu import Device, GH200

SCHEMA = Schema([("a", "int64"), ("b", "float64")])


def make_table(rows: int) -> Table:
    return Table.from_pydict(
        {"a": list(range(rows)), "b": [float(i) for i in range(rows)]}, SCHEMA
    )


def fitted_device(n_tables_resident: float, rows: int = 1000) -> Device:
    """Device whose caching region holds ~n_tables_resident such tables."""
    table_bytes = make_table(rows).nbytes
    limit_gb = (table_bytes * n_tables_resident * 2) / (1024**3)  # 50% split
    return Device(GH200, memory_limit_gb=limit_gb)


def locations(bm: BufferManager) -> dict:
    return {name: bm._cache[name].location for name in bm.cached_tables()}


class TestInterleavedLru:
    def test_lru_order_follows_interleaved_access(self):
        """Region fits 2 tables; q1 and q2 alternate over 3.  The spill
        victim must always be the least recently used across *both*
        queries' accesses."""
        device = fitted_device(2.2)
        bm = BufferManager(device)
        tables = {name: make_table(1000) for name in ("a", "b", "c")}

        device.query_owner = "q1"
        bm.get_table("a", tables["a"])
        device.query_owner = "q2"
        bm.get_table("b", tables["b"])
        device.query_owner = "q1"
        bm.get_table("c", tables["c"])  # evicts "a" (LRU), not "b"
        assert locations(bm) == {"a": "pinned", "b": "device", "c": "device"}
        assert bm.spills == 1

        # q2 touches "b" (hot), then q1 reloads "a": victim is now "c".
        device.query_owner = "q2"
        bm.get_table("b", tables["b"])
        device.query_owner = "q1"
        bm.get_table("a", tables["a"])
        assert locations(bm) == {"a": "device", "b": "device", "c": "pinned"}
        assert bm.spills == 2
        assert bm.unspills == 1
        assert bm._cache["a"].last_user == "q1"
        assert bm._cache["b"].last_user == "q2"

    def test_spill_unspill_round_trip_preserves_contents(self):
        device = fitted_device(1.2)
        bm = BufferManager(device)
        t_a, t_b = make_table(1000), make_table(1000)
        g_a = bm.get_table("a", t_a)
        first_rows = g_a.to_host().to_rows()
        bm.get_table("b", t_b)  # spills "a"
        assert locations(bm)["a"] == "pinned"
        g_a2 = bm.get_table("a", t_a)  # unspill (spills "b")
        assert g_a2.to_host().to_rows() == first_rows
        assert bm.unspills == 1

    def test_alternating_queries_thrash_counts_balance(self):
        """Pathological alternation over a one-table region: every access
        after the first is an unspill, and spills stay one ahead."""
        device = fitted_device(1.2)
        bm = BufferManager(device)
        tables = {"a": make_table(1000), "b": make_table(1000)}
        for i in range(6):
            device.query_owner = "q1" if i % 2 == 0 else "q2"
            name = "a" if i % 2 == 0 else "b"
            bm.get_table(name, tables[name])
        assert bm.cold_loads == 2
        assert bm.unspills == 4
        assert bm.spills == 5


class TestContentionAwareEviction:
    def test_prefers_tables_of_finished_queries(self):
        device = fitted_device(2.2)
        bm = BufferManager(device)
        tables = {name: make_table(1000) for name in ("a", "b", "c")}

        device.query_owner = "done-query"
        bm.get_table("a", tables["a"])
        device.query_owner = "live-query"
        bm.get_table("b", tables["b"])
        # Oldest entry "a" belongs to a finished query; plain LRU would
        # pick it anyway.  Make "b" the LRU victim instead, then check the
        # contention pass skips it because its user is still in flight.
        device.query_owner = "done-query"
        bm.get_table("a", tables["a"])  # "b" is now LRU
        bm.active_queries = {"live-query"}
        device.query_owner = "live-query"
        bm.get_table("c", tables["c"])
        # "a" (user finished) was spilled even though "b" was LRU.
        assert locations(bm) == {"a": "pinned", "b": "device", "c": "device"}
        assert bm.contention_avoided_evictions == 1

    def test_falls_back_to_lru_when_all_users_live(self):
        device = fitted_device(2.2)
        bm = BufferManager(device)
        tables = {name: make_table(1000) for name in ("a", "b", "c")}
        device.query_owner = "q1"
        bm.get_table("a", tables["a"])
        device.query_owner = "q2"
        bm.get_table("b", tables["b"])
        bm.active_queries = {"q1", "q2"}
        bm.get_table("c", tables["c"])
        # Progress beats fairness: plain LRU evicts "a".
        assert locations(bm)["a"] == "pinned"
        assert bm.contention_avoided_evictions == 0

    def test_none_mode_is_plain_lru(self):
        device = fitted_device(2.2)
        bm = BufferManager(device)
        tables = {name: make_table(1000) for name in ("a", "b", "c")}
        for name in ("a", "b", "c"):
            bm.get_table(name, tables[name])
        assert locations(bm)["a"] == "pinned"
        assert bm.contention_avoided_evictions == 0
        assert bm.stats()["contention_avoided_evictions"] == 0
