"""Out-of-core partitioned execution (the graceful-spill path).

``SiriusEngine(out_of_core=True)`` runs joins and group-bys as radix
partitions whose fragments spill through the tiered store instead of
falling back off the GPU.  These tests pin:

* correctness — every TPC-H query agrees with the in-core engine
  (up to float summation order: partitioning reorders join outputs);
* the acceptance scenario — an over-HBM Q9 completes *on the GPU tier*
  (no fallback, no rejection) with spill activity in the profile;
* observability — the profile's spill section and the fallback events'
  memory context (watermark, attempted spill bytes);
* defaults — with the flag off and comfortable memory, nothing spills
  and the profile's spill section stays empty.
"""

import numpy as np
import pytest

from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.sql import SqlPlanner, TableStats
from repro.tpch import TPCH_SCHEMAS, generate_tpch, tpch_query

SF = 0.01
# Pool size (GB) at which Q9's working set exceeds device memory at this
# scale — the benchmarks sweep a curve; here one point pins the behaviour.
OVER_HBM_GB = 0.015


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=SF)


@pytest.fixture(scope="module")
def planner(data):
    stats = {}
    for name, t in data.items():
        distinct = {
            f.name: int(len(np.unique(c.data))) for f, c in zip(t.schema, t.columns)
        }
        stats[name] = TableStats(TPCH_SCHEMAS[name], t.num_rows, distinct)
    return SqlPlanner(stats)


@pytest.fixture(scope="module")
def in_core(data):
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=8.0)
    engine.warm_cache(data)
    return engine


@pytest.fixture(scope="module")
def ooc(data):
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=8.0, out_of_core=True)
    engine.warm_cache(data)
    return engine


def normalise(table):
    """Rows as tuples with tolerant float representation (partitioned
    execution reorders the floating-point sums)."""
    out = []
    for row in table.to_rows():
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:.6g}")
            else:
                cells.append(repr(value))
        out.append(tuple(cells))
    out.sort()
    return out


class TestOutOfCoreCorrectness:
    @pytest.mark.parametrize("q", range(1, 23))
    def test_matches_in_core_engine(self, data, planner, in_core, ooc, q):
        plan = planner.plan_sql(tpch_query(q))
        expected = in_core.execute(plan, data)
        got = ooc.execute(plan, data)
        assert normalise(got) == normalise(expected)

    def test_partitioned_path_leaves_pool_stable(self, data, planner, ooc):
        """Every partition fragment and intermediate chunk is released:
        repeated queries leave the same residual footprint (just the
        final output awaiting the next pool reset) and zero fragments."""
        plan = planner.plan_sql(tpch_query(9))
        ooc.execute(plan, data)
        first = ooc.device.processing_pool.stats().in_use
        ooc.execute(plan, data)
        assert ooc.device.processing_pool.stats().in_use == first
        assert ooc.buffer_manager.spill_stats()["live_fragments"] == 0


class TestOverHbmCompletion:
    """The acceptance scenario: working set > device memory, GPU tier."""

    def test_q9_completes_on_gpu_without_fallback(self, data, planner, in_core):
        plan = planner.plan_sql(tpch_query(9))
        expected = in_core.execute(plan, data)

        engine = SiriusEngine.for_spec(
            GH200, memory_limit_gb=OVER_HBM_GB, out_of_core=True
        )
        got = engine.execute(plan, data)
        profile = engine.last_profile
        # First attempt finished on the GPU: no ladder walk, no events.
        assert profile.fallback_tier is None
        assert engine.fallback.fallback_count == 0
        assert normalise(got) == normalise(expected)
        # The spill machinery really engaged, and the profile says so.
        assert profile.spill["spilled_bytes"] > 0
        assert profile.spill["fragment_spills"] > 0
        assert profile.spill["unspilled_bytes"] > 0
        # Whatever was spilled out was brought back before finishing.
        assert engine.buffer_manager.spill_stats()["live_fragments"] == 0

    def test_same_pool_without_flag_needs_the_ladder(self, data, planner):
        """Contrast: the identical over-HBM run with the flag off only
        survives via the degradation ladder, and its fallback events carry
        the memory context (watermark + attempted spill bytes)."""
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=OVER_HBM_GB)
        engine.execute(planner.plan_sql(tpch_query(9)), data)
        profile = engine.last_profile
        assert profile.fallback_tier is not None
        assert engine.fallback.fallback_count >= 1
        event = engine.fallback.events[0]
        assert event.exception_type == "OutOfDeviceMemory"
        assert event.memory_watermark is not None and event.memory_watermark > 0
        assert event.spill_bytes_attempted is not None
        assert event.spill_bytes_attempted >= 0


class TestDefaultsUnchanged:
    def test_flag_off_profile_has_no_spill_section(self, data, planner, in_core):
        in_core.execute(planner.plan_sql(tpch_query(6)), data)
        assert in_core.last_profile.spill == {}
        assert in_core.out_of_core is False

    def test_flag_off_by_default(self):
        assert SiriusEngine.for_spec(GH200).out_of_core is False

    def test_profile_spill_section_serialises(self, data, planner):
        engine = SiriusEngine.for_spec(
            GH200, memory_limit_gb=OVER_HBM_GB, out_of_core=True
        )
        engine.execute(planner.plan_sql(tpch_query(9)), data)
        snapshot = engine.last_profile.to_dict()
        assert snapshot["spill"]["spilled_bytes"] > 0
