"""Regressions for the streaming expression path.

Two bug classes fixed alongside the fusion work:

* **bare-literal dtype threading** — ``evaluate_to_column`` used to drop
  the projection's declared dtype when the expression was a bare
  ``Literal``, so a literal whose python value's natural dtype differed
  from the declared field dtype (e.g. ``Literal(1, FLOAT64)``)
  materialised a wrongly-typed column that disagreed with the plan
  schema.  ``ProjectOp`` now threads each output field's dtype through.
* **zero-row chunks** — batched execution can hand any operator or sink
  a chunk with no rows (a filter that kills a whole batch); every
  downstream consumer must pass it through without tripping.
"""

import numpy as np
import pytest

from repro.columnar import FLOAT64, INT64, Schema, Table
from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import CpuEngine
from repro.plan import PlanBuilder
from repro.plan.expressions import FieldRef, Literal
from repro.plan.relations import ProjectRel


@pytest.fixture
def engines():
    return (
        SiriusEngine.for_spec(GH200, memory_limit_gb=1.0),
        SiriusEngine.for_spec(GH200, memory_limit_gb=1.0, fusion=True),
        CpuEngine(),
    )


SCHEMA = Schema([("k", "int64"), ("v", "float64")])


def small_catalog(n=10):
    return {
        "t": Table.from_pydict(
            {"k": list(range(n)), "v": [float(i) / 2 for i in range(n)]}, SCHEMA
        )
    }


class TestBareLiteralDtype:
    def test_explicitly_typed_literal_matches_declared_schema(self, engines):
        """A FLOAT64 literal holding a python int must come back float64
        on every engine (the old GPU path produced an int64 column that
        contradicted the plan schema)."""
        data = small_catalog()
        builder = PlanBuilder.read("t", SCHEMA)
        rel = ProjectRel(
            builder.relation, [FieldRef(0), Literal(1, FLOAT64)], ["k", "one"]
        )
        plan = PlanBuilder(rel).build()
        declared = plan.root.output_schema().fields[1].dtype
        assert declared is FLOAT64
        for engine in engines:
            result = engine.execute(plan, data)
            col = result["one"]
            assert result.schema.fields[1].dtype is FLOAT64
            assert np.asarray(col.data).dtype == np.float64, type(engine).__name__
            assert col.to_pylist() == [1.0] * 10

    def test_sql_literal_projection_through_parser_and_planner(self):
        """Full front-to-back: parse SQL with bare literal projections,
        plan, and execute on GPU (fused and unfused) and CPU — schemas
        and values must agree everywhere."""
        from repro.hosts import MiniDuck

        data = small_catalog()
        host = MiniDuck()
        host.load_tables(data)
        plan = host.plan("SELECT k, 2.5 AS half, 7 AS seven FROM t WHERE k < 3")
        declared = {f.name: f.dtype for f in plan.root.output_schema()}
        results = []
        for engine in (
            SiriusEngine.for_spec(GH200, memory_limit_gb=1.0),
            SiriusEngine.for_spec(GH200, memory_limit_gb=1.0, fusion=True),
            CpuEngine(),
        ):
            result = engine.execute(plan, data)
            for f in result.schema:
                assert f.dtype is declared[f.name]
            results.append(
                sorted(tuple(row) for row in result.to_rows())
            )
        assert results[0] == results[1] == results[2]
        assert results[0][0] == (0, 2.5, 7)


class TestZeroRowChunks:
    @pytest.mark.parametrize("fusion", [False, True])
    def test_whole_batches_filtered_away(self, fusion):
        """batch_rows smaller than the table guarantees some batches
        filter to zero rows; group-by, global agg, join, and sort sinks
        must all absorb them."""
        n = 2000
        data = {
            "t": Table.from_pydict(
                {"k": list(range(n)), "v": [1.0] * n}, SCHEMA
            )
        }
        engine = SiriusEngine.for_spec(
            GH200, memory_limit_gb=1.0, batch_rows=300, fusion=fusion
        )
        cpu = CpuEngine()

        base = PlanBuilder.read("t", SCHEMA)
        from repro.plan import col, lit

        cases = [
            base.filter(col("k") < lit(5))
            .aggregate(groups=["k"], aggs=[("sum", "v", "s")])
            .sort([("k", True)])
            .build(),
            base.filter(col("k") < lit(0))
            .aggregate(groups=[], aggs=[("count", None, "n")])
            .build(),
            base.filter(col("k") < lit(0)).sort([("k", True)]).build(),
            base.filter(col("k") < lit(3))
            .join(PlanBuilder.read("t", SCHEMA).filter(col("k") < lit(0)), "left", [("k", "k")])
            .build(),
        ]
        for plan in cases:
            gpu_rows = sorted(map(tuple, engine.execute(plan, data).to_rows()))
            cpu_rows = sorted(map(tuple, cpu.execute(plan, data).to_rows()))
            assert gpu_rows == cpu_rows

    @pytest.mark.parametrize("fusion", [False, True])
    def test_empty_input_table(self, fusion):
        data = {"t": Table.empty(SCHEMA)}
        engine = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0, fusion=fusion)
        from repro.plan import col, lit

        plan = (
            PlanBuilder.read("t", SCHEMA)
            .filter(col("k") > lit(0))
            .aggregate(groups=["k"], aggs=[("sum", "v", "s")])
            .build()
        )
        assert engine.execute(plan, data).num_rows == 0

    def test_mask_table_zero_rows(self):
        from repro.gpu import Device, GH200 as SPEC
        from repro.kernels import GTable, mask_table

        dev = Device(SPEC)
        empty = GTable.from_host(dev, Table.empty(SCHEMA))
        out = mask_table(empty, np.array([], dtype=bool))
        assert out.num_rows == 0
        assert out.schema == empty.schema

    def test_fused_op_zero_row_chunk(self):
        from repro.core.operators.fused import FusedOp
        from repro.core.operators.streaming import FilterOp, ProjectOp
        from repro.gpu import Device, GH200 as SPEC
        from repro.kernels import GTable
        from repro.plan.expressions import ScalarCall

        dev = Device(SPEC)

        class Ctx:
            device = dev

        empty = GTable.from_host(dev, Table.empty(SCHEMA))
        cond = ScalarCall("lt", [FieldRef(0), Literal(10, INT64)])
        op = FusedOp(
            [
                FilterOp(cond, SCHEMA),
                ProjectOp(
                    [ScalarCall("multiply", [FieldRef(1), Literal(2.0, FLOAT64)])],
                    ["d"],
                    Schema([("d", "float64")]),
                ),
            ]
        )
        out = op.process(Ctx(), empty, {})
        assert out.num_rows == 0
        assert [f.name for f in out.schema] == ["d"]
