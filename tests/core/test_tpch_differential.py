"""The flagship correctness test: all 22 TPC-H queries, GPU vs CPU engine.

The Sirius GPU engine (kernel library + pipeline executor) and the host
CPU engine are two independent implementations of the same plan IR; they
must agree on every query, with and without the optimizer passes, and
under batched execution.
"""


import pytest

from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import CpuEngine
from repro.sql import SqlPlanner, TableStats
from repro.sql.optimizer import optimize_plan
from repro.tpch import TPCH_SCHEMAS, generate_tpch, tpch_query

SF = 0.01


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=SF)


@pytest.fixture(scope="module")
def planner(data):
    import numpy as np

    stats = {}
    for name, t in data.items():
        distinct = {
            f.name: int(len(np.unique(c.data))) for f, c in zip(t.schema, t.columns)
        }
        stats[name] = TableStats(TPCH_SCHEMAS[name], t.num_rows, distinct)
    return SqlPlanner(stats)


@pytest.fixture(scope="module")
def sirius(data):
    engine = SiriusEngine.for_spec(GH200, memory_limit_gb=8.0)
    engine.warm_cache(data)
    return engine


@pytest.fixture(scope="module")
def cpu():
    return CpuEngine()


def normalise(table):
    """Rows as tuples with tolerant float representation."""
    out = []
    for row in table.to_rows():
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:.6g}")
            else:
                cells.append(repr(value))
        out.append(tuple(cells))
    return out


def assert_equivalent(left, right, ordered):
    lhs, rhs = normalise(left), normalise(right)
    if not ordered:
        lhs, rhs = sorted(lhs), sorted(rhs)
    assert lhs == rhs


@pytest.mark.parametrize("q", range(1, 23))
def test_gpu_matches_cpu(q, data, planner, sirius, cpu):
    plan = planner.plan_sql(tpch_query(q))
    gpu_result = sirius.execute(plan, data)
    cpu_result = cpu.execute(plan, data)
    assert_equivalent(gpu_result, cpu_result, ordered=False)
    assert gpu_result.schema == cpu_result.schema


@pytest.mark.parametrize("q", [1, 3, 6, 10, 13, 18])
def test_optimized_plan_matches_unoptimized(q, data, planner, sirius, cpu):
    raw = planner.plan_sql(tpch_query(q))
    optimized = optimize_plan(raw, {n: t.num_rows for n, t in data.items()})
    assert_equivalent(
        sirius.execute(optimized, data), cpu.execute(raw, data), ordered=False
    )


@pytest.mark.parametrize("q", [1, 4, 6, 12])
def test_batched_execution_matches(q, data, planner, cpu):
    batched = SiriusEngine.for_spec(GH200, memory_limit_gb=8.0, batch_rows=7000)
    plan = planner.plan_sql(tpch_query(q))
    assert_equivalent(
        batched.execute(plan, data), cpu.execute(plan, data), ordered=False
    )


def test_clickhouse_rewrites_match_originals(data, planner, cpu):
    """The decorrelated rewrites must be semantically identical."""
    from repro.tpch import CLICKHOUSE_REWRITES

    for q in sorted(CLICKHOUSE_REWRITES):
        original = cpu.execute(planner.plan_sql(tpch_query(q)), data)
        rewritten = cpu.execute(planner.plan_sql(CLICKHOUSE_REWRITES[q]), data)
        assert_equivalent(original, rewritten, ordered=False)


def test_row_counts_are_plausible(data, planner, sirius):
    """Sanity anchors on well-understood queries."""
    q1 = sirius.execute(planner.plan_sql(tpch_query(1)), data)
    assert q1.num_rows == 4  # 2 return flags x 2 line statuses
    q6 = sirius.execute(planner.plan_sql(tpch_query(6)), data)
    assert q6.num_rows == 1
    assert q6["revenue"].to_pylist()[0] > 0
