"""Integration tests for the Sirius engine: plans in, correct tables out."""

import datetime

import pytest

from repro.columnar import Schema, Table
from repro.core import SiriusEngine, compile_plan
from repro.gpu.specs import GH200
from repro.plan import PlanBuilder, col, lit

SCHEMA = Schema(
    [("k", "int64"), ("grp", "string"), ("v", "float64"), ("d", "date")]
)


@pytest.fixture
def data():
    table = Table.from_pydict(
        {
            "k": [1, 2, 3, 4, 5, 6],
            "grp": ["a", "b", "a", "b", "a", "c"],
            "v": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
            "d": [
                "1995-01-01", "1995-06-01", "1996-01-01",
                "1996-06-01", "1997-01-01", "1997-06-01",
            ],
        },
        SCHEMA,
    )
    dims = Table.from_pydict(
        {"k": [2, 4, 6, 8], "label": ["two", "four", "six", "eight"]},
        Schema([("k", "int64"), ("label", "string")]),
    )
    return {"facts": table, "dims": dims}


@pytest.fixture
def engine():
    return SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)


def read(name="facts", schema=SCHEMA):
    return PlanBuilder.read(name, schema)


class TestRelationalCoverage:
    def test_filter_project(self, engine, data):
        plan = (
            read().filter(col("v") >= lit(30.0))
            .project([("k", "k"), (col("v") / lit(10.0), "tens")])
            .build()
        )
        out = engine.execute(plan, data)
        assert out.to_pydict() == {"k": [3, 4, 5, 6], "tens": [3.0, 4.0, 5.0, 6.0]}

    def test_date_filter(self, engine, data):
        plan = read().filter(col("d") < lit(datetime.date(1996, 1, 1))).build()
        assert engine.execute(plan, data).num_rows == 2

    def test_groupby_sum_avg_count(self, engine, data):
        plan = (
            read()
            .aggregate(
                groups=["grp"],
                aggs=[("sum", "v", "s"), ("avg", "v", "m"), ("count", None, "n")],
            )
            .sort([("grp", True)])
            .build()
        )
        out = engine.execute(plan, data).to_pydict()
        assert out == {
            "grp": ["a", "b", "c"],
            "s": [90.0, 60.0, 60.0],
            "m": [30.0, 30.0, 60.0],
            "n": [3, 2, 1],
        }

    def test_global_aggregate(self, engine, data):
        plan = read().aggregate(groups=[], aggs=[("sum", "v", "total"), ("max", "v", "hi")]).build()
        out = engine.execute(plan, data).to_pydict()
        assert out == {"total": [210.0], "hi": [60.0]}

    def test_inner_join_gathers_both_sides(self, engine, data):
        plan = (
            read()
            .join(PlanBuilder.read("dims", data["dims"].schema), "inner", [("k", "k")])
            .project([("label", "label"), ("v", "v")])
            .sort([("v", True)])
            .build()
        )
        out = engine.execute(plan, data).to_pydict()
        assert out == {"label": ["two", "four", "six"], "v": [20.0, 40.0, 60.0]}

    def test_semi_and_anti_join(self, engine, data):
        dims = PlanBuilder.read("dims", data["dims"].schema)
        semi = read().join(dims, "semi", [("k", "k")]).build()
        anti = read().join(dims, "anti", [("k", "k")]).build()
        assert engine.execute(semi, data).num_rows == 3
        assert engine.execute(anti, data).num_rows == 3

    def test_left_join_produces_nulls(self, engine, data):
        plan = (
            read()
            .join(PlanBuilder.read("dims", data["dims"].schema), "left", [("k", "k")])
            .project([("k", "k"), ("label", "label")])
            .sort([("k", True)])
            .build()
        )
        out = engine.execute(plan, data).to_pydict()
        assert out["label"] == [None, "two", None, "four", None, "six"]

    def test_topn(self, engine, data):
        plan = read().sort([("v", False)]).limit(2).build()
        out = engine.execute(plan, data)
        assert out["v"].to_pylist() == [60.0, 50.0]

    def test_case_expression(self, engine, data):
        expr = col("grp") == lit("a")
        from repro.plan import NamedExpr

        case = NamedExpr("call", "case", [expr, col("v"), lit(0.0)])
        plan = read().aggregate(groups=[], aggs=[("sum", case, "a_only")]).build()
        assert engine.execute(plan, data).to_pydict() == {"a_only": [90.0]}


class TestEngineMechanics:
    def test_profile_populated(self, engine, data):
        plan = read().filter(col("v") > lit(0.0)).build()
        engine.execute(plan, data)
        profile = engine.last_profile
        assert profile.sim_seconds > 0
        assert profile.kernel_count > 0
        assert profile.pipelines_run >= 1
        assert "filter" in profile.breakdown

    def test_pool_reset_between_queries(self, engine, data):
        plan = read().sort([("v", True)]).build()
        engine.execute(plan, data)
        used_after_first = engine.device.processing_pool.in_use
        engine.execute(plan, data)
        # The pool was recycled, not grown, between queries.
        assert engine.device.processing_pool.in_use <= used_after_first * 1.5

    def test_explain_physical_shows_pipelines(self, engine, data):
        plan = (
            read()
            .join(PlanBuilder.read("dims", data["dims"].schema), "inner", [("k", "k")])
            .aggregate(groups=["grp"], aggs=[("count", None, "n")])
            .build()
        )
        text = engine.explain_physical(plan)
        assert "HashJoinBuild" in text and "GroupBy" in text
        assert text.count("P") >= 3  # at least three pipelines

    def test_batched_execution_identical(self, data):
        plan = (
            read()
            .aggregate(groups=["grp"], aggs=[("sum", "v", "s")])
            .sort([("grp", True)])
            .build()
        )
        whole = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)
        batched = SiriusEngine.for_spec(GH200, memory_limit_gb=1.0, batch_rows=2)
        assert (
            whole.execute(plan, data).to_pydict()
            == batched.execute(plan, data).to_pydict()
        )

    def test_stats_counters(self, engine, data):
        plan = read().build()
        engine.execute(plan, data)
        engine.execute(plan, data)
        stats = engine.stats()
        assert stats["queries_executed"] == 2
        assert stats["hot_hits"] >= 1

    def test_empty_table_queries(self, engine):
        empty = {"facts": Table.empty(SCHEMA)}
        plan = (
            read()
            .filter(col("v") > lit(0.0))
            .aggregate(groups=["grp"], aggs=[("sum", "v", "s")])
            .build()
        )
        out = engine.execute(plan, empty)
        assert out.num_rows == 0

    def test_compile_plan_slot_consumers(self, data):
        plan = (
            read()
            .join(PlanBuilder.read("dims", data["dims"].schema), "inner", [("k", "k")])
            .build()
        )
        physical = compile_plan(plan)
        consumers = physical.slot_consumers()
        assert all(count >= 1 for count in consumers.values())
