"""Tests for graceful fallback and the operator-implementation registry."""

import pytest

from repro.columnar import Schema, Table
from repro.core import SiriusEngine
from repro.core.operators.base import OperatorRegistry
from repro.gpu.specs import A100_40G
from repro.hosts import CpuEngine
from repro.plan import PlanBuilder, col, lit

SCHEMA = Schema([("k", "int64"), ("v", "float64")])


@pytest.fixture
def data():
    return {
        "t": Table.from_pydict(
            {"k": list(range(2000)), "v": [float(i) for i in range(2000)]}, SCHEMA
        )
    }


class TestFallback:
    def test_oom_falls_back_to_host(self, data):
        engine = SiriusEngine.for_spec(
            A100_40G,
            memory_limit_gb=0.00003,  # ~30 KB: cannot hold the table
            enable_spill=False,
            host_executor=lambda plan: CpuEngine().execute(plan, data),
        )
        plan = PlanBuilder.read("t", SCHEMA).filter(col("v") > lit(10.0)).build()
        out = engine.execute(plan, data)
        assert out.num_rows == 1989
        assert engine.fallback.fallback_count == 1
        assert engine.fallback.events[0].exception_type == "OutOfDeviceMemory"

    def test_missing_table_falls_back(self, data):
        calls = []

        def host(plan):
            calls.append(plan)
            return CpuEngine().execute(plan, data)

        engine = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0, host_executor=host)
        plan = PlanBuilder.read("t", SCHEMA).build()
        engine.execute(plan, {})  # table absent on the GPU path
        assert len(calls) == 1

    def test_no_host_executor_reraises(self, data):
        engine = SiriusEngine.for_spec(
            A100_40G, memory_limit_gb=0.00003, enable_spill=False
        )
        plan = PlanBuilder.read("t", SCHEMA).build()
        with pytest.raises(Exception):
            engine.execute(plan, data)
        assert engine.fallback.fallback_count == 1  # event recorded anyway

    def test_profile_cleared_after_fallback(self, data):
        engine = SiriusEngine.for_spec(
            A100_40G,
            memory_limit_gb=0.00003,
            enable_spill=False,
            host_executor=lambda plan: CpuEngine().execute(plan, data),
        )
        plan = PlanBuilder.read("t", SCHEMA).build()
        engine.execute(plan, data)
        assert engine.last_profile is None  # GPU profile would be misleading


class TestRegistry:
    def test_register_and_use(self):
        reg = OperatorRegistry()
        reg.register("join", "a", object(), make_active=True)
        reg.register("join", "b", object())
        assert reg.active_implementations()["join"] == "a"
        reg.use("join", "b")
        assert reg.active_implementations()["join"] == "b"

    def test_unknown_impl_rejected(self):
        reg = OperatorRegistry()
        reg.register("join", "a", object())
        with pytest.raises(KeyError):
            reg.use("join", "missing")

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            OperatorRegistry().get("teleport")

    def test_available_lists_all(self):
        reg = OperatorRegistry()
        reg.register("groupby", "x", object())
        reg.register("groupby", "y", object())
        assert sorted(reg.available("groupby")) == ["x", "y"]

    def test_engine_swap_changes_results_not_values(self, data):
        engine = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0)
        other = PlanBuilder.read("t", SCHEMA)
        plan = (
            PlanBuilder.read("t", SCHEMA)
            .join(other, "inner", [("k", "k")])
            .aggregate(groups=[], aggs=[("count", None, "n")])
            .build()
        )
        baseline = engine.execute(plan, data).to_pydict()
        engine.use_implementation("join", "custom")
        assert engine.execute(plan, data).to_pydict() == baseline

    def test_engine_rejects_unknown_impl(self, data):
        engine = SiriusEngine.for_spec(A100_40G, memory_limit_gb=1.0)
        with pytest.raises(KeyError):
            engine.use_implementation("join", "fpga")
