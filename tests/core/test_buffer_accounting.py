"""Buffer-manager accounting regressions and stats invariants.

Pins the three accounting bugs fixed alongside the copy/compute-overlap
work:

* dropping (or clearing) a *spilled* entry must release its
  ``pinned_host_bytes`` — previously the counter stayed inflated forever;
* repeated spill/unspill cycles must not re-count
  ``compressed_saved_bytes`` (the cumulative-savings counter reflects
  first loads only);
* spill traffic streams from/to pinned host memory and is priced as
  such (see ``TestPinnedTransferPricing`` in tests/gpu for the rate).

Plus a hypothesis interleaving of ``get_table``/``drop`` under a live
``active_queries`` set asserting the stats invariants that the fixes
restore: no counter ever goes negative, and ``pinned_host_bytes`` always
equals the bytes of the currently-spilled entries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Schema, Table
from repro.core import BufferManager
from repro.gpu import Device, GH200

SCHEMA = Schema([("a", "int64"), ("b", "float64")])


def make_table(rows: int) -> Table:
    return Table.from_pydict(
        {"a": list(range(rows)), "b": [float(i) for i in range(rows)]}, SCHEMA
    )


def fitted_device(n_tables_resident: float, rows: int = 1000) -> Device:
    """Device whose caching region holds ~n_tables_resident such tables."""
    table_bytes = make_table(rows).nbytes
    limit_gb = (table_bytes * n_tables_resident * 2) / (1024**3)  # 50% split
    return Device(GH200, memory_limit_gb=limit_gb)


class TestDropAccounting:
    def test_drop_spilled_entry_releases_pinned_bytes(self):
        device = fitted_device(1.2)
        bm = BufferManager(device)
        bm.get_table("a", make_table(1000))
        bm.get_table("b", make_table(1000))  # spills "a"
        assert bm._cache["a"].location == "pinned"
        assert bm.pinned_host_bytes > 0
        bm.drop("a")
        assert bm.pinned_host_bytes == 0
        assert bm.cached_tables() == ["b"]

    def test_clear_with_spilled_entries_zeroes_pinned_bytes(self):
        device = fitted_device(1.2)
        bm = BufferManager(device)
        for name in ("a", "b", "c"):
            bm.get_table(name, make_table(1000))
        spilled = [e for e in bm._cache.values() if e.location == "pinned"]
        assert len(spilled) == 2
        bm.clear()
        assert bm.pinned_host_bytes == 0
        assert bm.cached_tables() == []
        assert device.caching_region.used == 0

    def test_drop_device_entry_leaves_pinned_bytes_alone(self):
        device = fitted_device(1.2)
        bm = BufferManager(device)
        bm.get_table("a", make_table(1000))
        bm.get_table("b", make_table(1000))  # spills "a"
        before = bm.pinned_host_bytes
        bm.drop("b")  # device-resident: frees device bytes only
        assert bm.pinned_host_bytes == before
        bm.drop("a")
        assert bm.pinned_host_bytes == 0

    def test_drop_unknown_name_is_a_noop(self):
        bm = BufferManager(fitted_device(1.2))
        bm.drop("never-loaded")
        assert bm.pinned_host_bytes == 0


class TestCompressedSavingsCountedOnce:
    def test_unspill_does_not_recount_savings(self):
        device = Device(GH200, memory_limit_gb=1.0)
        bm = BufferManager(device, compress_cache=True)
        table = make_table(1000)
        bm.get_table("a", table)
        saved_once = bm.compressed_saved_bytes
        assert saved_once > 0  # the int64 column is packable
        for _ in range(3):
            bm._spill(bm._cache["a"])
            bm.get_table("a", table)  # unspill round-trip
        assert bm.unspills == 3
        assert bm.compressed_saved_bytes == saved_once

    def test_savings_accumulate_across_distinct_tables(self):
        bm = BufferManager(Device(GH200, memory_limit_gb=1.0), compress_cache=True)
        bm.get_table("a", make_table(1000))
        saved_one = bm.compressed_saved_bytes
        bm.get_table("b", make_table(1000))
        assert bm.compressed_saved_bytes == 2 * saved_one

    def test_natural_thrash_keeps_savings_at_first_load_level(self):
        """Eviction-driven spill/unspill cycles (not direct _spill calls):
        the counter still reflects one first-load per table."""
        # Size the region off the *packed* footprint so two compressed
        # tables cannot both be resident.
        probe = BufferManager(Device(GH200, memory_limit_gb=1.0), compress_cache=True)
        packed_nbytes = probe.get_table("a", make_table(1000)).nbytes
        limit_gb = (packed_nbytes * 1.2 * 2) / (1024**3)
        bm = BufferManager(Device(GH200, memory_limit_gb=limit_gb), compress_cache=True)
        tables = {"a": make_table(1000), "b": make_table(1000)}
        bm.get_table("a", tables["a"])
        bm.get_table("b", tables["b"])
        saved_two = bm.compressed_saved_bytes
        for i in range(2, 8):
            name = "a" if i % 2 == 0 else "b"
            bm.get_table(name, tables[name])
        assert bm.spills >= 3 and bm.unspills >= 3
        assert bm.compressed_saved_bytes == saved_two


NAMES = ("a", "b", "c", "d")
TABLES = {name: make_table(1000) for name in NAMES}

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["get", "drop"]),
        st.sampled_from(NAMES),
        st.sampled_from(["q1", "q2"]),
    ),
    min_size=1,
    max_size=40,
)


class TestStatsInvariants:
    @given(ops=ops_strategy)
    @settings(max_examples=50, deadline=None)
    def test_interleaved_ops_keep_accounting_consistent(self, ops):
        """Any interleaving of loads, hits, drops, and the spills they
        force (region fits ~2 of 4 tables) keeps the counters coherent."""
        device = fitted_device(2.2)
        bm = BufferManager(device)
        bm.active_queries = {"q1"}
        for op, name, user in ops:
            device.query_owner = user
            if op == "get":
                bm.get_table(name, TABLES[name])
            else:
                bm.drop(name)
        stats = bm.stats()
        assert all(v >= 0 for v in stats.values()), stats
        live_pinned = sum(
            e.nbytes for e in bm._cache.values() if e.location == "pinned"
        )
        assert bm.pinned_host_bytes == live_pinned
        assert all(
            e.gtable is not None
            for e in bm._cache.values()
            if e.location == "device"
        )
        bm.clear()
        assert bm.pinned_host_bytes == 0
        assert device.caching_region.used == 0

    @given(ops=ops_strategy)
    @settings(max_examples=25, deadline=None)
    def test_interleaved_ops_with_overlap_on(self, ops):
        """The same invariants hold in overlap mode, where loads leave
        in-flight copy-stream events behind."""
        device = fitted_device(2.2)
        bm = BufferManager(device, overlap=True)
        for op, name, user in ops:
            device.query_owner = user
            if op == "get":
                bm.get_table(name, TABLES[name])
            else:
                bm.drop(name)
        bm.complete_loads()
        stats = bm.stats()
        assert all(v >= 0 for v in stats.values()), stats
        live_pinned = sum(
            e.nbytes for e in bm._cache.values() if e.location == "pinned"
        )
        assert bm.pinned_host_bytes == live_pinned
        bm.clear()
        assert bm.pinned_host_bytes == 0
        assert device.caching_region.used == 0
        assert not bm._in_flight and not bm._must_sync
