"""Tests for the TPC-H data generator: determinism, spec shapes, integrity."""

import datetime

import numpy as np
import pytest

from repro.tpch import TABLE_BASE_ROWS, TPCH_SCHEMAS, generate_table, generate_tpch


@pytest.fixture(scope="module")
def db():
    return generate_tpch(sf=0.01)


class TestShapesAndDeterminism:
    def test_all_tables_present_with_schemas(self, db):
        assert set(db) == set(TPCH_SCHEMAS)
        for name, table in db.items():
            assert table.schema == TPCH_SCHEMAS[name]

    def test_row_counts_scale(self, db):
        assert db["region"].num_rows == 5
        assert db["nation"].num_rows == 25
        assert db["supplier"].num_rows == int(TABLE_BASE_ROWS["supplier"] * 0.01)
        assert db["partsupp"].num_rows == 4 * db["part"].num_rows

    def test_deterministic(self):
        a = generate_table("orders", sf=0.005)
        b = generate_table("orders", sf=0.005)
        assert a.to_pydict() == b.to_pydict()

    def test_seed_changes_data(self):
        a = generate_table("orders", sf=0.005, seed=1)
        b = generate_table("orders", sf=0.005, seed=2)
        assert a.to_pydict() != b.to_pydict()

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            generate_table("fact_sales", 0.01)

    def test_lineitem_orders_consistent(self):
        orders = generate_table("orders", sf=0.005)
        lineitem = generate_table("lineitem", sf=0.005)
        assert set(lineitem["l_orderkey"].to_pylist()) <= set(orders["o_orderkey"].to_pylist())


class TestReferentialIntegrity:
    def test_nation_region_keys(self, db):
        assert set(db["nation"]["n_regionkey"].to_pylist()) <= set(
            db["region"]["r_regionkey"].to_pylist()
        )

    def test_customer_nation_keys(self, db):
        assert set(db["customer"]["c_nationkey"].to_pylist()) <= set(range(25))

    def test_orders_reference_customers(self, db):
        custkeys = set(db["customer"]["c_custkey"].to_pylist())
        assert set(db["orders"]["o_custkey"].to_pylist()) <= custkeys

    def test_lineitem_partsupp_pairs_exist(self, db):
        """Every (l_partkey, l_suppkey) must exist in partsupp - Q9 joins
        on the pair."""
        ps = set(
            zip(db["partsupp"]["ps_partkey"].to_pylist(), db["partsupp"]["ps_suppkey"].to_pylist())
        )
        li = set(
            zip(db["lineitem"]["l_partkey"].to_pylist(), db["lineitem"]["l_suppkey"].to_pylist())
        )
        assert li <= ps

    def test_each_part_has_four_suppliers(self, db):
        pk = np.asarray(db["partsupp"]["ps_partkey"].to_pylist())
        __, counts = np.unique(pk, return_counts=True)
        assert (counts == 4).all()


class TestValueDistributions:
    def test_order_dates_in_spec_range(self, db):
        dates = db["orders"]["o_orderdate"].to_pylist()
        assert min(dates) >= datetime.date(1992, 1, 1)
        assert max(dates) <= datetime.date(1998, 8, 2)

    def test_lineitem_date_ordering(self, db):
        ship = db["lineitem"]["l_shipdate"].to_pylist()
        receipt = db["lineitem"]["l_receiptdate"].to_pylist()
        assert all(r > s for s, r in zip(ship, receipt))

    def test_discounts_and_taxes(self, db):
        d = db["lineitem"]["l_discount"].to_pylist()
        assert 0.0 <= min(d) and max(d) <= 0.10
        t = db["lineitem"]["l_tax"].to_pylist()
        assert max(t) <= 0.08

    def test_quantity_range(self, db):
        q = db["lineitem"]["l_quantity"].to_pylist()
        assert min(q) >= 1 and max(q) <= 50

    def test_returnflag_consistent_with_receipt(self, db):
        cutoff = datetime.date(1995, 6, 17)
        flags = db["lineitem"]["l_returnflag"].to_pylist()
        receipts = db["lineitem"]["l_receiptdate"].to_pylist()
        for f, r in zip(flags[:500], receipts[:500]):
            if r > cutoff:
                assert f == "N"
            else:
                assert f in ("R", "A")

    def test_query_pattern_selectivities(self, db):
        """The comment/name seeds the filter-heavy queries need exist."""
        p_names = db["part"]["p_name"].to_pylist()
        assert any("green" in n for n in p_names)  # Q9
        o_comments = db["orders"]["o_comment"].to_pylist()
        assert any("special" in c and "requests" in c for c in o_comments)  # Q13
        s_comments = db["supplier"]["s_comment"].to_pylist()
        assert any("Customer" in c and "Complaints" in c for c in s_comments)  # Q16

    def test_market_segments(self, db):
        segments = set(db["customer"]["c_mktsegment"].to_pylist())
        assert "BUILDING" in segments and len(segments) == 5

    def test_totalprice_matches_lineitems(self, db):
        """o_totalprice must equal the sum over the order's lineitems."""
        li = db["lineitem"]
        key = np.asarray(li["l_orderkey"].to_pylist())
        price = np.asarray(li["l_extendedprice"].to_pylist())
        tax = np.asarray(li["l_tax"].to_pylist())
        disc = np.asarray(li["l_discount"].to_pylist())
        per_line = price * (1 + tax) * (1 - disc)
        orders = db["orders"]
        expected = {}
        for k, v in zip(key, per_line):
            expected[k] = expected.get(k, 0.0) + v
        for okey, total in list(
            zip(orders["o_orderkey"].to_pylist(), orders["o_totalprice"].to_pylist())
        )[:200]:
            assert total == pytest.approx(expected[okey], abs=0.02)
