"""Tests for the TPC-H query catalog."""

import pytest

from repro.tpch import CLICKHOUSE_REWRITES, TPCH_QUERIES, tpch_query


class TestCatalog:
    def test_all_22_present(self):
        assert sorted(TPCH_QUERIES) == list(range(1, 23))

    def test_unknown_number_rejected(self):
        with pytest.raises(KeyError):
            tpch_query(23)

    def test_clickhouse_unsupported_raises(self):
        with pytest.raises(ValueError, match="not supported"):
            tpch_query(21, for_clickhouse=True)

    def test_rewrites_cover_correlated_queries(self):
        # Every correlated query except Q21 (unsupported outright) has a
        # decorrelated rewrite.
        assert set(CLICKHOUSE_REWRITES) == {2, 4, 17, 20, 22}

    def test_rewrites_substituted(self):
        assert tpch_query(17, for_clickhouse=True) == CLICKHOUSE_REWRITES[17]
        assert tpch_query(1, for_clickhouse=True) == TPCH_QUERIES[1]

    @pytest.mark.parametrize("q", sorted(CLICKHOUSE_REWRITES))
    def test_rewrites_have_no_correlation_keywords(self, q):
        text = CLICKHOUSE_REWRITES[q].lower()
        assert "exists" not in text

    def test_validation_parameters_match_spec(self):
        assert "BUILDING" in TPCH_QUERIES[3]
        assert "date '1995-03-15'" in TPCH_QUERIES[3]
        assert "0.05 and 0.07" in TPCH_QUERIES[6]
        assert "'%green%'" in TPCH_QUERIES[9]
        assert "Brand#23" in TPCH_QUERIES[17]
        assert "SAUDI ARABIA" in TPCH_QUERIES[21]
