"""Unit tests for the plan IR: expressions, relations, validation, JSON."""

import datetime

import pytest

from repro.columnar import BOOL, DATE32, FLOAT64, INT64, Schema, STRING
from repro.plan import (
    AggregateCall,
    AggregateRel,
    FieldRef,
    FilterRel,
    JoinRel,
    Literal,
    Plan,
    PlanBuilder,
    PlanValidationError,
    ProjectRel,
    ReadRel,
    ScalarCall,
    col,
    expr_from_dict,
    infer_type,
    lit,
)

SCHEMA = Schema(
    [("k", "int64"), ("price", "float64"), ("d", "date"), ("name", "string")]
)


class TestExpressionTyping:
    def test_field_ref(self):
        assert infer_type(FieldRef(1), SCHEMA) is FLOAT64

    def test_literal_types(self):
        assert Literal(3).dtype is INT64
        assert Literal(3.5).dtype is FLOAT64
        assert Literal("x").dtype is STRING
        assert Literal(datetime.date(1995, 1, 1)).dtype is DATE32
        assert Literal(True).dtype is BOOL

    def test_comparison_is_boolean(self):
        e = ScalarCall("le", [FieldRef(1), Literal(5.0)])
        assert infer_type(e, SCHEMA) is BOOL

    def test_arith_promotes(self):
        e = ScalarCall("add", [FieldRef(0), Literal(1.0)])
        assert infer_type(e, SCHEMA) is FLOAT64

    def test_divide_always_float(self):
        e = ScalarCall("divide", [FieldRef(0), Literal(2)])
        assert infer_type(e, SCHEMA) is FLOAT64

    def test_date_arithmetic(self):
        e = ScalarCall("subtract", [FieldRef(2), Literal(90)])
        assert infer_type(e, SCHEMA) is DATE32

    def test_aggregate_types(self):
        assert infer_type(AggregateCall("count_star", None), SCHEMA) is INT64
        assert infer_type(AggregateCall("avg", FieldRef(0)), SCHEMA) is FLOAT64
        assert infer_type(AggregateCall("sum", FieldRef(0)), SCHEMA) is INT64
        assert infer_type(AggregateCall("sum", FieldRef(1)), SCHEMA) is FLOAT64
        assert infer_type(AggregateCall("min", FieldRef(3)), SCHEMA) is STRING

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            ScalarCall("sqrt", [FieldRef(0)])

    def test_out_of_range_field(self):
        with pytest.raises(IndexError):
            infer_type(FieldRef(99), SCHEMA)


class TestRelationSchemas:
    def test_read_projection(self):
        r = ReadRel("t", SCHEMA, projection=["name", "k"])
        assert r.output_schema().names() == ["name", "k"]

    def test_read_unknown_projection_rejected(self):
        with pytest.raises(KeyError):
            ReadRel("t", SCHEMA, projection=["ghost"])

    def test_join_schema_concatenates(self):
        left = ReadRel("a", Schema([("x", "int64")]))
        right = ReadRel("b", Schema([("y", "int64")]))
        j = JoinRel(left, right, "inner", [0], [0])
        assert j.output_schema().names() == ["x", "y"]

    def test_semi_join_keeps_left_only(self):
        left = ReadRel("a", Schema([("x", "int64")]))
        right = ReadRel("b", Schema([("y", "int64")]))
        j = JoinRel(left, right, "semi", [0], [0])
        assert j.output_schema().names() == ["x"]

    def test_aggregate_schema(self):
        read = ReadRel("t", SCHEMA)
        agg = AggregateRel(read, [3], [(AggregateCall("sum", FieldRef(1)), "total")])
        out = agg.output_schema()
        assert out.names() == ["name", "total"]
        assert out.field("total").dtype is FLOAT64


class TestValidation:
    def test_valid_plan_passes(self):
        plan = (
            PlanBuilder.read("t", SCHEMA)
            .filter(col("price") > lit(10.0))
            .aggregate(groups=["name"], aggs=[("sum", "price", "total")])
            .build()
        )
        assert plan.output_schema().names() == ["name", "total"]

    def test_non_boolean_filter_rejected(self):
        rel = FilterRel(ReadRel("t", SCHEMA), FieldRef(1))
        with pytest.raises(PlanValidationError, match="not boolean"):
            Plan(rel).validate()

    def test_field_out_of_range_rejected(self):
        rel = FilterRel(ReadRel("t", SCHEMA), ScalarCall("eq", [FieldRef(9), Literal(1)]))
        with pytest.raises(PlanValidationError, match="out of range"):
            Plan(rel).validate()

    def test_join_type_mismatch_rejected(self):
        left = ReadRel("a", Schema([("x", "string")]))
        right = ReadRel("b", Schema([("y", "int64")]))
        rel = JoinRel(left, right, "inner", [0], [0])
        with pytest.raises(PlanValidationError, match="type mismatch"):
            Plan(rel).validate()

    def test_duplicate_project_names_rejected(self):
        rel = ProjectRel(ReadRel("t", SCHEMA), [FieldRef(0), FieldRef(1)], ["a", "a"])
        with pytest.raises(PlanValidationError, match="duplicate"):
            Plan(rel).validate()


class TestSerialization:
    def make_plan(self):
        return (
            PlanBuilder.read("t", SCHEMA)
            .filter((col("d") <= lit(datetime.date(1998, 9, 2))) & (col("name").like("A%")))
            .project([(col("price") * lit(0.9), "discounted"), ("name", "name")])
            .aggregate(groups=["name"], aggs=[("sum", "discounted", "total"), ("count", None, "n")])
            .sort([("total", False)])
            .limit(5)
            .build()
        )

    def test_json_round_trip(self):
        plan = self.make_plan()
        back = Plan.from_json(plan.to_json())
        assert back.to_dict() == plan.to_dict()
        back.validate()

    def test_round_trip_preserves_schema(self):
        plan = self.make_plan()
        back = Plan.from_json(plan.to_json())
        assert back.output_schema() == plan.output_schema()

    def test_date_literals_survive_json(self):
        e = Literal(datetime.date(1995, 3, 15))
        back = expr_from_dict(e.to_dict())
        assert back.value == datetime.date(1995, 3, 15)

    def test_explain_renders_tree(self):
        text = self.make_plan().explain()
        assert "Read(t)" in text and "Aggregate" in text


class TestBuilderSugar:
    def test_operator_overloads(self):
        expr = (col("k") + lit(1)) * lit(2) >= lit(10)
        resolved = expr.resolve(SCHEMA)
        assert infer_type(resolved, SCHEMA) is BOOL

    def test_between_and_isin(self):
        plan = (
            PlanBuilder.read("t", SCHEMA)
            .filter(col("price").between(1.0, 9.0) & col("name").isin(["a", "b"]))
            .build()
        )
        plan.validate()

    def test_exchange_builder(self):
        b = PlanBuilder.read("t", SCHEMA).exchange("shuffle", keys=["k"])
        plan = b.build()
        assert plan.root.kind == "shuffle"
