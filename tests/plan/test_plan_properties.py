"""Property-based tests on the plan IR: random expression/plan round-trips."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Schema
from repro.plan import (
    FieldRef,
    Literal,
    Plan,
    PlanBuilder,
    ScalarCall,
    col,
    expr_from_dict,
    lit,
)

SCHEMA = Schema([("a", "int64"), ("b", "float64"), ("c", "string"), ("d", "date")])

literals = st.one_of(
    st.integers(-(2**40), 2**40),
    st.floats(-1e12, 1e12, allow_nan=False),
    st.text(max_size=10),
    st.booleans(),
    st.dates(datetime.date(1900, 1, 1), datetime.date(2100, 1, 1)),
)


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return FieldRef(draw(st.integers(0, 3)))
        return Literal(draw(literals))
    func = draw(
        st.sampled_from(["add", "subtract", "multiply", "eq", "lt", "and", "or"])
    )
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return ScalarCall(func, [left, right])


class TestExpressionRoundTrip:
    @settings(max_examples=150)
    @given(expressions())
    def test_dict_round_trip(self, expr):
        back = expr_from_dict(expr.to_dict())
        assert back.to_dict() == expr.to_dict()
        assert back == expr

    @settings(max_examples=80)
    @given(expressions())
    def test_json_round_trip_via_plan(self, expr):
        import json

        payload = json.dumps(expr.to_dict())
        assert expr_from_dict(json.loads(payload)) == expr


@st.composite
def simple_plans(draw):
    builder = PlanBuilder.read("t", SCHEMA)
    n_filters = draw(st.integers(0, 2))
    for _ in range(n_filters):
        column = draw(st.sampled_from(["a", "b"]))
        builder = builder.filter(col(column) > lit(draw(st.integers(-5, 5))))
    if draw(st.booleans()):
        builder = builder.aggregate(
            groups=["c"], aggs=[(draw(st.sampled_from(["sum", "min", "max"])), "b", "m")]
        )
    if draw(st.booleans()):
        schema = builder.schema()
        builder = builder.sort([(schema.names()[0], draw(st.booleans()))])
    if draw(st.booleans()):
        builder = builder.limit(draw(st.integers(0, 100)))
    return builder.build()


class TestPlanRoundTrip:
    @settings(max_examples=100)
    @given(simple_plans())
    def test_json_round_trip(self, plan):
        back = Plan.from_json(plan.to_json())
        assert back.to_dict() == plan.to_dict()
        back.validate()

    @settings(max_examples=60)
    @given(simple_plans())
    def test_output_schema_stable(self, plan):
        back = Plan.from_json(plan.to_json())
        assert back.output_schema() == plan.output_schema()

    @settings(max_examples=60)
    @given(simple_plans())
    def test_optimizer_keeps_schema(self, plan):
        from repro.sql.optimizer import optimize_plan

        optimized = optimize_plan(plan, {"t": 1000})
        assert optimized.output_schema() == plan.output_schema()
