"""Tests for the single-node hosts: MiniDuck, its extension hook, ClickLite."""

import pytest

from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import (
    ClickLite,
    CpuEngine,
    DidNotFinishError,
    MiniDuck,
    SiriusExtension,
    UnsupportedQueryError,
)
from repro.tpch import generate_tpch, tpch_query


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=0.01)


@pytest.fixture
def duck(data):
    db = MiniDuck()
    db.load_tables(data)
    return db


class TestMiniDuck:
    def test_sql_round_trip(self, duck):
        out = duck.execute("select count(*) as n from nation")
        assert out.table.to_pydict() == {"n": [25]}
        assert out.engine == "miniduck-cpu"

    def test_plan_is_optimized(self, duck):
        plan = duck.plan("select n_name from nation where n_regionkey = 1")
        # Projection pruning must have reached the scan.
        assert '"projection": ["n_name", "n_regionkey"]' in plan.to_json() or \
               '"projection": ["n_regionkey", "n_name"]' in plan.to_json()

    def test_distinct_statistics_cached(self, duck):
        duck._stats()
        first = dict(duck._distinct_cache)
        duck._stats()
        assert duck._distinct_cache.keys() == first.keys()

    def test_extension_receives_substrait_json(self, duck, data):
        received = []

        class Probe:
            name = "probe"

            def execute_substrait(self, plan_json, catalog):
                received.append(plan_json)
                from repro.plan import Plan

                return CpuEngine().execute(Plan.from_json(plan_json), catalog)

        duck.install_extension(Probe())
        assert duck.active_engine == "probe"
        out = duck.execute("select count(*) as n from region")
        assert out.table.to_pydict() == {"n": [5]}
        assert received and '"rel": "read"' in received[0]

    def test_uninstall_restores_cpu(self, duck):
        duck.install_extension(SiriusExtension(SiriusEngine.for_spec(GH200, memory_limit_gb=1.0)))
        duck.uninstall_extension()
        assert duck.active_engine == "miniduck-cpu"


class TestSiriusDropIn:
    def test_same_results_both_engines(self, data):
        cpu_db = MiniDuck()
        cpu_db.load_tables(data)
        gpu_db = MiniDuck()
        gpu_db.load_tables(data)
        sirius = SiriusEngine.for_spec(GH200, memory_limit_gb=8.0)
        gpu_db.install_extension(SiriusExtension(sirius, fallback_engine=CpuEngine()))

        sql = tpch_query(3)
        cpu_rows = cpu_db.execute(sql).table.to_rows()
        gpu_rows = gpu_db.execute(sql).table.to_rows()
        assert len(cpu_rows) == len(gpu_rows)
        for a, b in zip(cpu_rows, gpu_rows):
            assert a[0] == b[0]  # ordered query: keys align

    def test_extension_reports_profile(self, data):
        db = MiniDuck()
        db.load_tables(data)
        ext = SiriusExtension(SiriusEngine.for_spec(GH200, memory_limit_gb=8.0))
        db.install_extension(ext)
        out = db.execute("select sum(l_quantity) as q from lineitem")
        assert out.sim_seconds > 0
        assert ext.plans_received == 1
        assert ext.stats()["plans_received"] == 1


class TestClickLite:
    @pytest.fixture
    def click(self, data):
        db = ClickLite()
        db.load_tables(data)
        return db

    def test_runs_rewritten_queries(self, click):
        out = click.execute(tpch_query(4, for_clickhouse=True))
        assert out.table.num_rows == 5

    def test_rejects_correlated_subqueries(self, click):
        with pytest.raises(UnsupportedQueryError):
            click.execute(tpch_query(17))  # original, correlated form

    def test_q21_flagged_unsupported(self, click):
        assert not click.supports_tpch(21)
        with pytest.raises(ValueError):
            tpch_query(21, for_clickhouse=True)

    def test_row_budget_causes_dnf(self, data):
        strict = ClickLite(max_intermediate_rows=1000)
        strict.load_tables(data)
        with pytest.raises(DidNotFinishError):
            strict.execute(tpch_query(9, for_clickhouse=True))

    def test_join_order_is_as_written(self, click, data):
        duck = MiniDuck()
        duck.load_tables(data)
        # Written order puts customer first; MiniDuck reorders, ClickLite not.
        sql = "select count(*) as n from customer, orders where c_custkey = o_custkey"
        click_out = click.execute(sql)
        duck_out = duck.execute(sql)
        assert click_out.table.to_pydict() == duck_out.table.to_pydict()
