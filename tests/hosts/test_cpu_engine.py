"""Unit tests for the host CPU engine (independent of the GPU path)."""

import datetime

import pytest

from repro.columnar import Schema, Table
from repro.hosts import CpuEngine, CpuEvalError, DidNotFinishError
from repro.plan import PlanBuilder, col, lit

SCHEMA = Schema([("k", "int64"), ("s", "string"), ("v", "float64"), ("d", "date")])


@pytest.fixture
def data():
    return {
        "t": Table.from_pydict(
            {
                "k": [1, 2, 3, 4],
                "s": ["alpha", "beta", "alpha", None],
                "v": [1.5, 2.5, None, 4.5],
                "d": ["1995-01-01", "1996-01-01", "1997-01-01", "1998-01-01"],
            },
            SCHEMA,
        ),
        "u": Table.from_pydict(
            {"k": [2, 3, 5], "w": [20, 30, 50]}, Schema([("k", "int64"), ("w", "int64")])
        ),
    }


@pytest.fixture
def engine():
    return CpuEngine()


def run(engine, builder, data):
    return engine.execute(builder.build(), data)


class TestRelationalBasics:
    def test_scan(self, engine, data):
        out = run(engine, PlanBuilder.read("t", SCHEMA), data)
        assert out.num_rows == 4

    def test_filter_null_is_false(self, engine, data):
        out = run(engine, PlanBuilder.read("t", SCHEMA).filter(col("v") > lit(2.0)), data)
        assert out["k"].to_pylist() == [2, 4]  # NULL comparison drops row 3

    def test_project_expression(self, engine, data):
        out = run(
            engine,
            PlanBuilder.read("t", SCHEMA).project([(col("v") * lit(2.0), "dbl")]),
            data,
        )
        assert out["dbl"].to_pylist() == [3.0, 5.0, None, 9.0]

    def test_string_predicates(self, engine, data):
        out = run(
            engine, PlanBuilder.read("t", SCHEMA).filter(col("s").like("alp%")), data
        )
        assert out.num_rows == 2

    def test_date_arithmetic(self, engine, data):
        out = run(
            engine,
            PlanBuilder.read("t", SCHEMA).filter(
                col("d") < lit(datetime.date(1996, 6, 1))
            ),
            data,
        )
        assert out.num_rows == 2

    def test_inner_join(self, engine, data):
        out = run(
            engine,
            PlanBuilder.read("t", SCHEMA)
            .join(PlanBuilder.read("u", data["u"].schema), "inner", [("k", "k")])
            .project([("k", "k"), ("w", "w")]),
            data,
        )
        assert sorted(zip(out["k"].to_pylist(), out["w"].to_pylist())) == [(2, 20), (3, 30)]

    def test_left_join_nulls(self, engine, data):
        out = run(
            engine,
            PlanBuilder.read("t", SCHEMA)
            .join(PlanBuilder.read("u", data["u"].schema), "left", [("k", "k")])
            .project([("k", "k"), ("w", "w")])
            .sort([("k", True)]),
            data,
        )
        assert out["w"].to_pylist() == [None, 20, 30, None]

    def test_groupby_skips_nulls(self, engine, data):
        out = run(
            engine,
            PlanBuilder.read("t", SCHEMA)
            .aggregate(groups=["s"], aggs=[("sum", "v", "sv"), ("count", "v", "cv")])
            .sort([("s", True)]),
            data,
        )
        d = out.to_pydict()
        assert d["s"] == ["alpha", "beta", None]
        assert d["sv"] == [1.5, 2.5, 4.5]

    def test_global_aggregate(self, engine, data):
        out = run(
            engine,
            PlanBuilder.read("t", SCHEMA).aggregate(
                groups=[], aggs=[("avg", "v", "m"), ("count", None, "n")]
            ),
            data,
        )
        assert out.to_pydict() == {"m": [pytest.approx(8.5 / 3)], "n": [4]}

    def test_limit_offset(self, engine, data):
        out = run(engine, PlanBuilder.read("t", SCHEMA).sort([("k", True)]).limit(2), data)
        assert out["k"].to_pylist() == [1, 2]


class TestEngineBehaviours:
    def test_sim_time_accumulates(self, engine, data):
        run(engine, PlanBuilder.read("t", SCHEMA), data)
        assert engine.last_sim_seconds > 0
        assert engine.queries_executed == 1

    def test_missing_table_raises(self, engine):
        with pytest.raises(CpuEvalError, match="not found"):
            run(engine, PlanBuilder.read("t", SCHEMA), {})

    def test_row_budget_enforced(self, data):
        engine = CpuEngine(max_intermediate_rows=5)
        cross = PlanBuilder.read("t", SCHEMA).join(
            PlanBuilder.read("u", data["u"].schema), "inner", []
        )
        with pytest.raises(DidNotFinishError):
            run(engine, cross, data)

    def test_cross_join_within_budget(self, engine, data):
        cross = PlanBuilder.read("t", SCHEMA).join(
            PlanBuilder.read("u", data["u"].schema), "inner", []
        )
        assert run(engine, cross, data).num_rows == 12

    def test_materialize_joins_charges_more(self, data):
        plain = CpuEngine()
        materializing = CpuEngine(materialize_joins=True)
        builder = PlanBuilder.read("t", SCHEMA).join(
            PlanBuilder.read("u", data["u"].schema), "inner", [("k", "k")]
        )
        run(plain, builder, data)
        run(materializing, builder, data)
        assert materializing.last_sim_seconds > plain.last_sim_seconds
