"""Property tests on the exchange data plane: conservation + placement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Schema, Table
from repro.distributed import Cluster, DistributedExecutor, ExchangeSpec, Fragment
from repro.distributed.engine import _partition_ids
from repro.gpu.specs import M7I_CPU
from repro.gpu.device import Device
from repro.hosts import CpuEngine
from repro.plan import ReadRel

SCHEMA = Schema([("k", "int64"), ("v", "float64")])


def make_cluster(n=4):
    return Cluster(num_nodes=n, device_factory=lambda c: Device(M7I_CPU, clock=c))


def run_fragments(cluster, fragments, catalogs):
    engines = [CpuEngine(node.device) for node in cluster.nodes]
    for node, catalog in zip(cluster.nodes, catalogs):
        node.catalog.update(catalog)
    executor = DistributedExecutor(cluster, lambda nid, plan, cat: engines[nid].execute(plan, cat))
    return executor.run(fragments)


def node_tables(values_per_node):
    return [
        {"t": Table.from_pydict(
            {"k": vals, "v": [float(v) for v in vals]}, SCHEMA
        )}
        for vals in values_per_node
    ]


class TestShuffleConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 30), max_size=25), min_size=4, max_size=4
        )
    )
    def test_shuffle_preserves_multiset(self, per_node):
        """A shuffle must move every row exactly once: the union of received
        partitions equals the union of inputs."""
        cluster = make_cluster(4)
        read = ReadRel("t", SCHEMA)
        spec = ExchangeSpec(0, "shuffle", [0], SCHEMA)
        fragments = [
            Fragment(0, read, spec, "all", []),
            Fragment(1, ReadRel("__ex0", SCHEMA), None, "all", [0]),
        ]
        # The final "all" fragment returns node 0's share; inspect the temp
        # tables through a probing executor instead.
        received = []

        def executor_fn(nid, plan, catalog):
            table = CpuEngine(cluster.nodes[nid].device).execute(plan, catalog)
            if plan.root.table_name == "__ex0":
                received.append((nid, table))
            return table

        for node, catalog in zip(cluster.nodes, node_tables(per_node)):
            node.catalog.update(catalog)
        DistributedExecutor(cluster, executor_fn).run(fragments)

        sent = sorted(v for vals in per_node for v in vals)
        got = sorted(v for _, t in received for v in t["k"].to_pylist())
        assert got == sent

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=60))
    def test_partition_ids_stable_and_in_range(self, values):
        t = Table.from_pydict({"k": values, "v": [0.0] * len(values)}, SCHEMA)
        ids1 = _partition_ids(t, [0], 4)
        ids2 = _partition_ids(t, [0], 4)
        assert (ids1 == ids2).all()
        assert ids1.min() >= 0 and ids1.max() < 4

    def test_equal_keys_land_together_across_tables(self):
        a = Table.from_pydict({"k": [5, 9], "v": [0.0, 0.0]}, SCHEMA)
        b = Table.from_pydict({"k": [9, 5], "v": [1.0, 1.0]}, SCHEMA)
        ia = _partition_ids(a, [0], 4)
        ib = _partition_ids(b, [0], 4)
        assert ia[0] == ib[1] and ia[1] == ib[0]


class TestMergeAndBroadcast:
    def test_merge_collects_everything_on_coordinator(self):
        cluster = make_cluster(3)
        read = ReadRel("t", SCHEMA)
        spec = ExchangeSpec(0, "merge", [], SCHEMA)
        fragments = [
            Fragment(0, read, spec, "all", []),
            Fragment(1, ReadRel("__ex0", SCHEMA), None, "coordinator", [0]),
        ]
        catalogs = node_tables([[1, 2], [3], [4, 5, 6]])
        result = run_fragments(cluster, fragments, catalogs)
        assert sorted(result.table["k"].to_pylist()) == [1, 2, 3, 4, 5, 6]

    def test_broadcast_replicates_to_all(self):
        cluster = make_cluster(3)
        read = ReadRel("t", SCHEMA)
        spec = ExchangeSpec(0, "broadcast", [], SCHEMA)
        counts = []

        def executor_fn(nid, plan, catalog):
            table = CpuEngine(cluster.nodes[nid].device).execute(plan, catalog)
            if plan.root.table_name == "__ex0":
                counts.append(table.num_rows)
            return table

        fragments = [
            Fragment(0, read, spec, "all", []),
            Fragment(1, ReadRel("__ex0", SCHEMA), None, "all", [0]),
        ]
        for node, catalog in zip(cluster.nodes, node_tables([[1], [2, 3], [4]])):
            node.catalog.update(catalog)
        DistributedExecutor(cluster, executor_fn).run(fragments)
        assert counts == [4, 4, 4]  # every node sees the full table

    def test_exchange_charges_wire_time(self):
        cluster = make_cluster(2)
        read = ReadRel("t", SCHEMA)
        spec = ExchangeSpec(0, "shuffle", [0], SCHEMA)
        fragments = [
            Fragment(0, read, spec, "all", []),
            Fragment(1, ReadRel("__ex0", SCHEMA), None, "all", [0]),
        ]
        catalogs = node_tables([list(range(1000)), list(range(1000, 2000))])
        result = run_fragments(cluster, fragments, catalogs)
        assert result.exchange_seconds > 0
        assert result.exchanged_bytes > 0
