"""Unit tests for the cluster substrate: partitioning, nodes, clocks."""

import pytest

from repro.columnar import Schema, Table
from repro.distributed import Cluster, PARTITION_KEYS, partition_table
from repro.gpu import Device
from repro.gpu.specs import A100_40G
from repro.tpch import generate_tpch


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=0.01)


class TestPartitioning:
    def test_partitions_cover_all_rows(self):
        t = Table.from_pydict(
            {"k": list(range(100)), "v": [float(i) for i in range(100)]},
            Schema([("k", "int64"), ("v", "float64")]),
        )
        parts = partition_table(t, "k", 4)
        assert sum(p.num_rows for p in parts) == 100

    def test_same_key_same_partition(self):
        t = Table.from_pydict(
            {"k": [7, 7, 11, 11]}, Schema([("k", "int64")])
        )
        parts = partition_table(t, "k", 3)
        homes = [i for i, p in enumerate(parts) if 7 in p["k"].to_pylist()]
        assert len(homes) == 1

    def test_string_partition_key_rejected(self):
        t = Table.from_pydict({"s": ["a"]}, Schema([("s", "string")]))
        with pytest.raises(ValueError):
            partition_table(t, "s", 2)

    def test_co_partitioning_of_equal_keys(self):
        """Rows with equal key values land on the same node across tables -
        the property that makes co-located joins correct."""
        a = Table.from_pydict({"k": list(range(50))}, Schema([("k", "int64")]))
        b = Table.from_pydict({"k": list(range(0, 50, 5))}, Schema([("k", "int64")]))
        pa = partition_table(a, "k", 4)
        pb = partition_table(b, "k", 4)
        for node in range(4):
            assert set(pb[node]["k"].to_pylist()) <= set(pa[node]["k"].to_pylist())


class TestCluster:
    def test_default_is_four_a100s(self):
        cluster = Cluster()
        assert cluster.num_nodes == 4
        assert all(n.device.spec.name == A100_40G.name for n in cluster.nodes)

    def test_load_replicates_small_tables(self, data):
        cluster = Cluster(num_nodes=4)
        cluster.load_tables(data)
        for node in cluster.nodes:
            assert node.catalog["nation"].num_rows == 25  # replicated
        lineitem_total = sum(n.catalog["lineitem"].num_rows for n in cluster.nodes)
        assert lineitem_total == data["lineitem"].num_rows  # partitioned

    def test_partitioning_of(self, data):
        cluster = Cluster()
        cluster.load_tables(data)
        assert cluster.partitioning_of("nation") is None
        assert cluster.partitioning_of("orders") == PARTITION_KEYS["orders"]

    def test_heartbeat_membership(self):
        cluster = Cluster(num_nodes=3)
        assert len(cluster.active_nodes()) == 3
        assert all(n.alive for n in cluster.nodes)

    def test_silent_node_excluded_after_timeout(self):
        """Liveness is heartbeat *staleness*, not node-internal state: a
        node that stops beating drops out once the timeout elapses."""
        cluster = Cluster(num_nodes=3, heartbeat_timeout_s=0.1)
        cluster.nodes[2].crash()
        for node in cluster.nodes:
            node.clock.advance(0.05)
        cluster.beat_all()  # node 2 is dead and stays silent
        assert len(cluster.active_nodes()) == 3  # silence not yet stale
        for node in cluster.nodes:
            node.clock.advance(0.2)
        cluster.beat_all()
        active = cluster.active_nodes()
        assert [n.uid for n in active] == [0, 1]

    def test_heartbeat_does_not_resurrect(self):
        cluster = Cluster(num_nodes=2, heartbeat_timeout_s=0.1)
        cluster.nodes[1].crash()
        cluster.nodes[1].clock.advance(1.0)
        cluster.nodes[1].heartbeat()  # must be a no-op once dead
        assert cluster.nodes[1].last_heartbeat == 0.0

    def test_remove_nodes_renumbers_but_keeps_uids(self):
        cluster = Cluster(num_nodes=4)
        cluster.remove_nodes([1])
        assert [n.node_id for n in cluster.nodes] == [0, 1, 2]
        assert [n.uid for n in cluster.nodes] == [0, 2, 3]
        assert cluster.communicator.world_size == 3

    def test_coordinator_not_evictable(self):
        cluster = Cluster(num_nodes=2)
        with pytest.raises(RuntimeError, match="coordinator"):
            cluster.remove_nodes([0])

    def test_independent_clocks_align_on_barrier(self):
        cluster = Cluster(num_nodes=2)
        cluster.nodes[0].clock.advance(5.0)
        assert cluster.nodes[1].clock.now == 0.0
        latest = cluster.align_clocks(category="exchange")
        assert latest == 5.0
        assert cluster.nodes[1].clock.now == 5.0
        assert cluster.nodes[1].clock.bucket("exchange") == 5.0

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            Cluster(num_nodes=0)

    def test_custom_device_factory(self):
        from repro.gpu.specs import M7I_CPU

        cluster = Cluster(num_nodes=2, device_factory=lambda c: Device(M7I_CPU, clock=c))
        assert all(not n.device.is_gpu for n in cluster.nodes)
