"""Unit tests for distributed plan fragmentation."""


from repro.columnar import Schema
from repro.distributed import DistributedPlanner
from repro.plan import AggregateRel, PlanBuilder, col, lit

FACTS = Schema([("k", "int64"), ("g", "int64"), ("v", "float64")])
DIMS = Schema([("k", "int64"), ("name", "string")])

PARTITIONING = {"facts": "k", "dims": None, "other_facts": "g"}


def planner(**kwargs):
    return DistributedPlanner(lambda t: PARTITIONING.get(t), **kwargs)


def fragment_kinds(fragments):
    return [f.output.kind if f.output else "result" for f in fragments]


class TestScanFilterProject:
    def test_partitioned_scan_merges_at_the_end(self):
        plan = PlanBuilder.read("facts", FACTS).filter(col("v") > lit(0.0)).build()
        frags = planner().plan(plan.root)
        assert fragment_kinds(frags) == ["merge", "result"]
        assert frags[-1].runs_on == "coordinator"

    def test_replicated_scan_runs_once(self):
        plan = PlanBuilder.read("dims", DIMS).build()
        frags = planner().plan(plan.root)
        assert fragment_kinds(frags) == ["result"]
        assert frags[0].runs_on == "coordinator"


class TestJoins:
    def test_replicated_build_side_join_is_local(self):
        plan = (
            PlanBuilder.read("facts", FACTS)
            .join(PlanBuilder.read("dims", DIMS), "inner", [("k", "k")])
            .build()
        )
        frags = planner().plan(plan.root)
        # Local join then merge: no shuffle fragment.
        assert "shuffle" not in fragment_kinds(frags)

    def test_non_colocated_join_shuffles_misplaced_side(self):
        plan = (
            PlanBuilder.read("facts", FACTS)
            .join(PlanBuilder.read("other_facts", FACTS), "inner", [("k", "k")])
            .build()
        )
        frags = planner().plan(plan.root)
        # other_facts is partitioned on g, joined on k: one shuffle needed.
        assert fragment_kinds(frags).count("shuffle") == 1

    def test_colocated_join_needs_no_exchange(self):
        plan = (
            PlanBuilder.read("facts", FACTS)
            .join(PlanBuilder.read("facts", FACTS), "inner", [("k", "k")])
            .build()
        )
        frags = planner().plan(plan.root)
        assert "shuffle" not in fragment_kinds(frags)

    def test_broadcast_mode_ships_build_side_and_centralises(self):
        plan = (
            PlanBuilder.read("facts", FACTS)
            .join(PlanBuilder.read("other_facts", FACTS), "inner", [("g", "k")])
            .build()
        )
        frags = planner(prefer_broadcast_joins=True).plan(plan.root)
        kinds = fragment_kinds(frags)
        assert "broadcast" in kinds
        assert frags[-1].runs_on == "coordinator"

    def test_consumed_exchanges_derived_from_plan(self):
        plan = (
            PlanBuilder.read("facts", FACTS)
            .join(PlanBuilder.read("other_facts", FACTS), "inner", [("k", "k")])
            .build()
        )
        frags = planner().plan(plan.root)
        producing = {f.output.exchange_id for f in frags if f.output}
        consumed = {e for f in frags for e in f.consumes}
        assert consumed <= producing
        assert consumed  # somebody reads something


class TestAggregates:
    def test_grouped_aggregate_two_phase(self):
        plan = (
            PlanBuilder.read("facts", FACTS)
            .aggregate(groups=["g"], aggs=[("sum", "v", "s"), ("count", None, "n")])
            .build()
        )
        frags = planner().plan(plan.root)
        assert "shuffle" in fragment_kinds(frags)
        # Partial + final aggregates exist.
        agg_count = sum(
            1
            for f in frags
            for rel in _walk(f.plan)
            if isinstance(rel, AggregateRel)
        )
        assert agg_count == 2

    def test_groups_on_partition_key_single_phase(self):
        plan = (
            PlanBuilder.read("facts", FACTS)
            .aggregate(groups=["k"], aggs=[("sum", "v", "s")])
            .build()
        )
        frags = planner().plan(plan.root)
        assert "shuffle" not in fragment_kinds(frags)

    def test_global_aggregate_merges_partials(self):
        plan = PlanBuilder.read("facts", FACTS).aggregate(
            groups=[], aggs=[("sum", "v", "s")]
        ).build()
        frags = planner().plan(plan.root)
        assert fragment_kinds(frags) == ["merge", "result"]

    def test_avg_decomposed_into_sum_and_count(self):
        plan = (
            PlanBuilder.read("facts", FACTS)
            .aggregate(groups=["g"], aggs=[("avg", "v", "m")])
            .build()
        )
        frags = planner().plan(plan.root)
        partial = next(
            rel
            for f in frags
            for rel in _walk(f.plan)
            if isinstance(rel, AggregateRel) and len(rel.measures) == 2
        )
        ops = sorted(a.op for a, _ in partial.measures)
        assert ops == ["count", "sum"]

    def test_distinct_aggregate_shuffles_rows(self):
        plan = (
            PlanBuilder.read("facts", FACTS)
            .aggregate(groups=["g"], aggs=[("count_distinct", "v", "d")])
            .build()
        )
        frags = planner().plan(plan.root)
        assert "shuffle" in fragment_kinds(frags)
        # Exactly one aggregate: no partial phase for DISTINCT.
        agg_count = sum(
            1 for f in frags for rel in _walk(f.plan) if isinstance(rel, AggregateRel)
        )
        assert agg_count == 1


class TestSortLimit:
    def test_topn_local_then_final(self):
        plan = PlanBuilder.read("facts", FACTS).sort([("v", False)]).limit(5).build()
        frags = planner().plan(plan.root)
        assert fragment_kinds(frags) == ["merge", "result"]
        assert frags[-1].runs_on == "coordinator"


def _walk(rel):
    yield rel
    for child in rel.inputs:
        yield from _walk(child)
