"""Tests for the multi-GPU-per-node extension (§3.4)."""

import pytest

from repro.distributed import Cluster
from repro.gpu import Communicator, INFINIBAND_NDR, NVLINK_P2P, SimClock
from repro.hosts import MiniDoris, MiniDuck
from repro.tpch import generate_tpch, tpch_query

GB = 1_000_000_000


class TestHeterogeneousCommunicator:
    def make_comm(self):
        clocks = [SimClock() for _ in range(4)]
        # Ranks 0,1 share host A; 2,3 share host B.
        def fabric_for(i, j):
            return NVLINK_P2P if i // 2 == j // 2 else None

        return clocks, Communicator(clocks, INFINIBAND_NDR, fabric_for=fabric_for)

    def test_intra_host_link_selected(self):
        _, comm = self.make_comm()
        assert comm.link(0, 1) is NVLINK_P2P
        assert comm.link(0, 2) is INFINIBAND_NDR

    def test_intra_host_shuffle_is_cheaper(self):
        clocks1, comm1 = self.make_comm()
        # Same bytes, all over the network.
        clocks2 = [SimClock() for _ in range(4)]
        comm2 = Communicator(clocks2, INFINIBAND_NDR)
        matrix = [[0, 10 * GB, 0, 0], [0, 0, 0, 0], [0, 0, 0, 10 * GB], [0, 0, 0, 0]]
        comm1.all_to_all(matrix)  # both transfers are intra-host
        comm2.all_to_all(matrix)
        assert clocks1[0].now < clocks2[0].now

    def test_broadcast_paced_by_slowest_receiver(self):
        _, comm = self.make_comm()
        seconds = comm.broadcast(0, 50 * GB)
        # Rank 2/3 sit across InfiniBand (50 GB/s): ~1 s, not NVLink speed.
        assert seconds == pytest.approx(1.0, rel=0.01)


class TestMultiGpuCluster:
    def test_rank_layout(self):
        cluster = Cluster(num_nodes=2, gpus_per_node=2)
        assert cluster.num_nodes == 4  # ranks
        assert [n.host_id for n in cluster.nodes] == [0, 0, 1, 1]

    def test_single_gpu_cluster_has_uniform_fabric(self):
        cluster = Cluster(num_nodes=2, gpus_per_node=1)
        assert cluster.communicator.link(0, 1) is INFINIBAND_NDR

    def test_partitions_span_all_ranks(self):
        data = generate_tpch(sf=0.01)
        cluster = Cluster(num_nodes=2, gpus_per_node=2)
        cluster.load_tables(data)
        totals = sum(n.catalog["lineitem"].num_rows for n in cluster.nodes)
        assert totals == data["lineitem"].num_rows

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            Cluster(num_nodes=2, gpus_per_node=0)


class TestMultiGpuQueries:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_tpch(sf=0.02)

    def test_results_match_single_node(self, data):
        reference = MiniDuck()
        reference.load_tables(data)
        db = MiniDoris(num_nodes=2, mode="sirius", gpus_per_node=2)
        db.load_tables(data)
        db.warm_caches()
        for q in (1, 3, 6):
            dist = db.execute(tpch_query(q))
            single = reference.execute(tpch_query(q))
            def norm(t):
                return sorted(
                    tuple(f"{v:.6g}" if isinstance(v, float) else repr(v) for v in r)
                    for r in t.to_rows()
                )

            assert norm(dist.table) == norm(single.table)

    def test_more_gpus_reduce_compute_time(self, data):
        one = MiniDoris(num_nodes=4, mode="sirius", gpus_per_node=1)
        two = MiniDoris(num_nodes=4, mode="sirius", gpus_per_node=2)
        for db in (one, two):
            db.load_tables(data)
            db.warm_caches()
        r1 = one.execute(tpch_query(1))
        r2 = two.execute(tpch_query(1))
        assert r2.compute_seconds < r1.compute_seconds
