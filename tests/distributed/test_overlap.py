"""Exchange/compute overlap on the distributed engine.

With ``overlap=True`` MiniDoris pipelines shuffle sends behind fragment
compute: Q3 (the Table-2 shuffle-bound query) must get strictly faster,
its exchange *fraction* must not grow, and the result rows must be
identical to the synchronous run.  Off by default and byte-identical to
the seed when off (pinned by the golden-profile tests).
"""

import pytest

from repro.hosts import MiniDoris
from repro.tpch import generate_tpch, tpch_query


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=0.02)


def cluster(data, overlap: bool) -> MiniDoris:
    db = MiniDoris(num_nodes=4, mode="sirius", overlap=overlap)
    db.load_tables(data)
    db.warm_caches()
    return db


def normalise(table):
    rows = []
    for row in table.to_rows():
        rows.append(tuple(f"{v:.6g}" if isinstance(v, float) else repr(v) for v in row))
    return sorted(rows)


class TestExchangeOverlap:
    def test_q3_faster_with_identical_rows(self, data):
        baseline = cluster(data, overlap=False).execute(tpch_query(3))
        overlapped = cluster(data, overlap=True).execute(tpch_query(3))
        assert normalise(overlapped.table) == normalise(baseline.table)
        assert overlapped.total_seconds < baseline.total_seconds
        assert overlapped.profile.overlap_hidden_s > 0.0

    def test_q3_exchange_fraction_does_not_grow(self, data):
        baseline = cluster(data, overlap=False).execute(tpch_query(3))
        overlapped = cluster(data, overlap=True).execute(tpch_query(3))
        base_frac = baseline.profile.table2_fractions()["exchange"]
        over_frac = overlapped.profile.table2_fractions()["exchange"]
        assert over_frac <= base_frac
        assert overlapped.exchanged_bytes == baseline.exchanged_bytes

    def test_overlap_run_is_deterministic(self, data):
        first = cluster(data, overlap=True).execute(tpch_query(3))
        second = cluster(data, overlap=True).execute(tpch_query(3))
        assert second.total_seconds == first.total_seconds
        assert second.exchange_seconds == first.exchange_seconds

    def test_overlap_off_reports_no_hidden_time(self, data):
        result = cluster(data, overlap=False).execute(tpch_query(3))
        assert result.profile.overlap_hidden_s == 0.0
