"""Integration tests: distributed execution matches single-node results."""

import pytest

from repro.hosts import MiniDoris, MiniDuck
from repro.tpch import generate_tpch, tpch_query


@pytest.fixture(scope="module")
def data():
    return generate_tpch(sf=0.02)


@pytest.fixture(scope="module")
def reference(data):
    duck = MiniDuck()
    duck.load_tables(data)
    return duck


def normalise(table):
    rows = []
    for row in table.to_rows():
        rows.append(tuple(f"{v:.6g}" if isinstance(v, float) else repr(v) for v in row))
    return sorted(rows)


@pytest.fixture(scope="module")
def doris(data):
    db = MiniDoris(num_nodes=4, mode="doris")
    db.load_tables(data)
    return db


@pytest.fixture(scope="module")
def sirius_cluster(data):
    db = MiniDoris(num_nodes=4, mode="sirius")
    db.load_tables(data)
    db.warm_caches()
    return db


@pytest.fixture(scope="module")
def clickhouse(data):
    db = MiniDoris(num_nodes=4, mode="clickhouse")
    db.load_tables(data)
    return db


class TestCorrectness:
    @pytest.mark.parametrize("q", [1, 3, 6])
    def test_doris_matches_single_node(self, q, doris, reference):
        dist = doris.execute(tpch_query(q))
        single = reference.execute(tpch_query(q))
        assert normalise(dist.table) == normalise(single.table)

    @pytest.mark.parametrize("q", [1, 3, 6])
    def test_sirius_cluster_matches_single_node(self, q, sirius_cluster, reference):
        dist = sirius_cluster.execute(tpch_query(q))
        single = reference.execute(tpch_query(q))
        assert normalise(dist.table) == normalise(single.table)

    @pytest.mark.parametrize("q", [1, 3, 6])
    def test_clickhouse_cluster_matches_single_node(self, q, clickhouse, reference):
        dist = clickhouse.execute(tpch_query(q, for_clickhouse=True))
        single = reference.execute(tpch_query(q))
        assert normalise(dist.table) == normalise(single.table)

    def test_additional_queries_also_distribute(self, doris, reference):
        # Beyond the paper's supported subset: Q4 (semi join) and Q12.
        for q in (4, 12):
            dist = doris.execute(tpch_query(q))
            single = reference.execute(tpch_query(q))
            assert normalise(dist.table) == normalise(single.table)

    def test_avg_supported_in_distributed_mode(self, doris, reference):
        """§3.4: the paper's prototype lacks avg in distributed mode; this
        reproduction implements the sum/count decomposition extension."""
        sql = "select l_returnflag, avg(l_quantity) as aq from lineitem group by l_returnflag order by l_returnflag"
        dist = doris.execute(sql)
        single = reference.execute(sql)
        assert normalise(dist.table) == normalise(single.table)


class TestAccounting:
    def test_breakdown_sums_to_total(self, sirius_cluster):
        res = sirius_cluster.execute(tpch_query(1))
        parts = res.compute_seconds + res.exchange_seconds + res.other_seconds
        assert parts == pytest.approx(res.total_seconds, rel=1e-6)

    def test_exchange_bytes_counted_for_q3(self, sirius_cluster):
        res = sirius_cluster.execute(tpch_query(3))
        assert res.exchanged_bytes > 0

    def test_q1_moves_almost_nothing(self, sirius_cluster):
        res = sirius_cluster.execute(tpch_query(1))
        # Only partial aggregates cross the wire.
        assert res.exchanged_bytes < 100_000

    def test_temp_tables_deregistered(self, sirius_cluster):
        sirius_cluster.execute(tpch_query(3))
        for engine in sirius_cluster._node_engines:
            cached = engine.buffer_manager.cached_tables()
            assert not any(name.startswith("__ex") for name in cached)

    def test_node_stats_available(self, sirius_cluster):
        stats = sirius_cluster.node_stats()
        assert len(stats) == 4

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            MiniDoris(mode="quantum")


class TestPredicateTransfer:
    """§3.4 predicate transfer (the paper's named shuffle optimisation)."""

    @pytest.mark.parametrize("q", [1, 3, 6])
    def test_results_identical(self, q, data, reference):
        db = MiniDoris(num_nodes=4, mode="sirius", predicate_transfer=True)
        db.load_tables(data)
        db.warm_caches()
        dist = db.execute(tpch_query(q))
        single = reference.execute(tpch_query(q))
        assert normalise(dist.table) == normalise(single.table)

    def test_reduces_exchange_volume(self, data, sirius_cluster):
        pt = MiniDoris(num_nodes=4, mode="sirius", predicate_transfer=True)
        pt.load_tables(data)
        pt.warm_caches()
        baseline = sirius_cluster.execute(tpch_query(3))
        transferred = pt.execute(tpch_query(3))
        assert transferred.exchanged_bytes < baseline.exchanged_bytes
