"""Satellite: plan-digest normalization regression tests.

Alias spelling, whitespace, and measure naming must not change either
key; literal values must change the result key but not the plan key.
"""

from repro.fleet import plan_digest
from repro.tpch import tpch_query


class TestAliasNormalization:
    def test_output_aliases_do_not_change_either_key(self, host):
        a = plan_digest(host.plan("SELECT l_orderkey AS k, l_quantity AS q FROM lineitem"))
        b = plan_digest(host.plan("SELECT l_orderkey AS key2, l_quantity AS qty FROM lineitem"))
        assert a.plan_key == b.plan_key
        assert a.result_key == b.result_key

    def test_aggregate_measure_aliases_do_not_change_either_key(self, host):
        a = plan_digest(
            host.plan("SELECT sum(l_quantity) AS total FROM lineitem")
        )
        b = plan_digest(
            host.plan("SELECT sum(l_quantity) AS grand_total FROM lineitem")
        )
        assert a.plan_key == b.plan_key
        assert a.result_key == b.result_key

    def test_whitespace_and_case_do_not_change_either_key(self, host):
        a = plan_digest(host.plan("SELECT l_orderkey FROM lineitem WHERE l_quantity > 10"))
        b = plan_digest(
            host.plan(
                "select   l_orderkey\n  from lineitem\n  where l_quantity > 10"
            )
        )
        assert a.plan_key == b.plan_key
        assert a.result_key == b.result_key


class TestLiteralParameterization:
    def test_differing_literals_share_plan_key_but_not_result_key(self, host):
        a = plan_digest(host.plan("SELECT l_orderkey FROM lineitem WHERE l_quantity > 10"))
        b = plan_digest(host.plan("SELECT l_orderkey FROM lineitem WHERE l_quantity > 20"))
        assert a.plan_key == b.plan_key  # one shape, two parameterizations
        assert a.result_key != b.result_key  # different answers

    def test_literal_dtype_still_distinguishes_plan_keys(self, host):
        a = plan_digest(host.plan("SELECT l_orderkey FROM lineitem WHERE l_quantity > 10"))
        b = plan_digest(host.plan("SELECT l_orderkey FROM lineitem WHERE l_quantity > 10.5"))
        # int64 vs float64 comparison lowers to different literal dtypes:
        # not the same parameterized shape.
        assert a.plan_key != b.plan_key


class TestStructureAndDependencies:
    def test_different_shapes_differ_in_both_keys(self, host):
        a = plan_digest(host.plan("SELECT l_orderkey FROM lineitem WHERE l_quantity > 10"))
        b = plan_digest(host.plan("SELECT l_orderkey FROM lineitem"))
        assert a.plan_key != b.plan_key
        assert a.result_key != b.result_key

    def test_base_tables_are_recorded_for_invalidation(self, host):
        d = plan_digest(host.plan(tpch_query(3)))
        assert set(d.tables) == {"customer", "orders", "lineitem"}

    def test_same_plan_object_is_stable(self, host):
        p = host.plan(tpch_query(6))
        assert plan_digest(p) == plan_digest(p)

    def test_tpch_queries_have_distinct_digests(self, plans):
        keys = {plan_digest(p).result_key for p in plans.values()}
        assert len(keys) == len(plans)
