"""The fleet scheduler: fleet-of-1 byte identity, the two-tier cache in
anger (alias relabeling, invalidation, parameterized plan reuse), and
same-seed determinism for every routing policy."""

import random

import pytest

from repro.core import SiriusEngine
from repro.fleet import (
    FleetScheduler,
    FleetWorkloadDriver,
    engine_factory,
)
from repro.gpu.specs import GH200
from repro.sched import JobState, ServingScheduler
from repro.tpch import tpch_query

SEED = 19920101


def normalise(table):
    return sorted(
        tuple(f"{v:.6g}" if isinstance(v, float) else repr(v) for v in row)
        for row in table.to_rows()
    )


def arrival_schedule(plans, n=12, rate=3000.0):
    rng = random.Random("fleet-identity")
    t = 0.0
    out = []
    numbers = sorted(plans)
    for _ in range(n):
        t += rng.expovariate(rate)
        out.append((rng.choice(numbers), t))
    return out


class TestFleetOfOneIdentity:
    """A fleet of one replica with every feature off IS a solo scheduler."""

    @pytest.mark.parametrize("policy", ["fifo", "fair", "sjf"])
    def test_serving_report_is_byte_identical(self, data, plans, policy):
        schedule = arrival_schedule(plans)

        solo_engine = SiriusEngine.for_spec(GH200)
        solo_engine.warm_cache(data)
        solo = ServingScheduler(solo_engine, policy=policy, streams=4, seed=SEED)
        for i, (n, t) in enumerate(schedule):
            solo.submit(plans[n], data, label=f"q{i}", arrival_s=t)
        solo_report = solo.run()

        fleet = FleetScheduler(
            engine_factory(GH200, warm=data),
            replicas=1,
            policy=policy,
            streams=4,
            seed=SEED,
        )
        for i, (n, t) in enumerate(schedule):
            fleet.submit(plans[n], data, label=f"q{i}", arrival_s=t)
        report = fleet.run()

        assert report.replicas[0]["report"] == solo_report.to_dict()
        assert report.counters["completed"] == solo_report.counters["completed"]

    def test_results_match_solo_execution(self, data, plans):
        fleet = FleetScheduler(engine_factory(GH200, warm=data), replicas=1)
        job = fleet.submit(plans[6], data)
        fleet.run()
        solo = SiriusEngine.for_spec(GH200)
        solo.warm_cache(data)
        assert normalise(job.table) == normalise(solo.execute(plans[6], data))


class TestResultCache:
    def test_repeat_query_hits_and_matches(self, data, plans):
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data), replicas=1, result_cache_bytes=1 << 24
        )
        first = fleet.submit(plans[6], data, arrival_s=0.0)
        second = fleet.submit(plans[6], data, arrival_s=1.0)
        report = fleet.run()
        assert not first.cache_hit and second.cache_hit
        assert normalise(first.table) == normalise(second.table)
        assert report.counters["cache_hits"] == 1
        assert report.result_cache["hits"] == 1
        # The hit completes at its arrival instant: zero added latency.
        assert second.latency_s == 0.0 and second.service_s == 0.0

    def test_alias_differing_query_hits_and_is_relabeled(self, data, host):
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data), replicas=1, result_cache_bytes=1 << 24
        )
        a = host.plan("SELECT sum(l_quantity) AS total FROM lineitem")
        b = host.plan("SELECT sum(l_quantity) AS grand_total FROM lineitem")
        first = fleet.submit(a, data, arrival_s=0.0)
        second = fleet.submit(b, data, arrival_s=1.0)
        fleet.run()
        assert second.cache_hit
        assert [f.name for f in first.table.schema] == ["total"]
        assert [f.name for f in second.table.schema] == ["grand_total"]
        assert normalise(first.table) == normalise(second.table)

    def test_differing_literals_do_not_hit(self, data, host):
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data), replicas=1, result_cache_bytes=1 << 24
        )
        a = host.plan("SELECT count(*) FROM lineitem WHERE l_quantity > 10")
        b = host.plan("SELECT count(*) FROM lineitem WHERE l_quantity > 40")
        fleet.submit(a, data, arrival_s=0.0)
        second = fleet.submit(b, data, arrival_s=1.0)
        report = fleet.run()
        assert not second.cache_hit
        assert report.result_cache["hits"] == 0

    def test_invalidation_before_the_run_is_harmless(self, data, plans):
        # A version bump before any routing just becomes the baseline the
        # first result is cached against: the repeat is a legitimate hit.
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data), replicas=1, result_cache_bytes=1 << 24
        )
        fleet.invalidate_table("lineitem")
        fleet.submit(plans[6], data, arrival_s=0.0)
        second = fleet.submit(plans[6], data, arrival_s=1.0)
        fleet.run()
        assert second.cache_hit

    def test_version_bump_between_runs_invalidates(self, data, plans):
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data), replicas=1, result_cache_bytes=1 << 24
        )
        fleet.submit(plans[6], data, arrival_s=0.0)

        bumped = {"done": False}
        original = fleet._route

        def route_and_bump(record, vt):
            original(record, vt)
            if not bumped["done"]:
                bumped["done"] = True
                fleet.invalidate_table("lineitem")

        fleet._route = route_and_bump
        second = fleet.submit(plans[6], data, arrival_s=1.0)
        report = fleet.run()
        # The first result completed against the pre-bump version and is
        # never inserted (or is dropped): the repeat must recompute.
        assert not second.cache_hit
        assert second.state == JobState.COMPLETED


class TestPlanCache:
    def test_parameterized_shapes_share_an_estimate(self, data, host):
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data), replicas=1, plan_cache_entries=16
        )
        a = host.plan("SELECT count(*) FROM lineitem WHERE l_quantity > 10")
        b = host.plan("SELECT count(*) FROM lineitem WHERE l_quantity > 40")
        ja = fleet.submit(a, data, arrival_s=0.0)
        jb = fleet.submit(b, data, arrival_s=1.0)
        report = fleet.run()
        assert report.plan_cache["misses"] == 1
        assert report.plan_cache["hits"] == 1
        # Both jobs ran with the same cached estimate object.
        assert ja.job.estimate is jb.job.estimate

    def test_plan_overhead_is_charged_on_miss_only(self, data, plans):
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data),
            replicas=1,
            plan_cache_entries=16,
            plan_overhead_s=0.5,
        )
        first = fleet.submit(plans[6], data, arrival_s=0.0)
        second = fleet.submit(plans[6], data, arrival_s=10.0)
        fleet.run()
        # Miss: the routed arrival is delayed by the planning overhead.
        assert first.job.arrival_s == pytest.approx(0.5)
        assert second.job.arrival_s == pytest.approx(10.0)


class TestDeterminism:
    """Satellite: same seed -> byte-identical fleet schedule and reports,
    for every routing policy."""

    def _run(self, data, mix, routing):
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data),
            replicas=3,
            routing=routing,
            seed=SEED,
            result_cache_bytes=1 << 22,
            plan_cache_entries=32,
        )
        driver = FleetWorkloadDriver(data, mix, seed=SEED)
        return driver.diurnal_open_loop(
            fleet, num_queries=20, base_qps=1000.0, peak_qps=20000.0, period_s=0.01
        )

    @pytest.mark.parametrize(
        "routing", ["round-robin", "least-outstanding", "placement"]
    )
    def test_same_seed_same_everything(self, data, mix, routing):
        first = self._run(data, mix, routing)
        second = self._run(data, mix, routing)
        assert first.schedule_digest == second.schedule_digest
        assert first.to_dict() == second.to_dict()
        for ra, rb in zip(first.replicas, second.replicas):
            assert ra["report"] == rb["report"]

    def test_different_seeds_differ(self, data, mix):
        first = self._run(data, mix, "round-robin")
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data), replicas=3, seed=SEED + 1
        )
        other = FleetWorkloadDriver(data, mix, seed=SEED + 1).diurnal_open_loop(
            fleet, num_queries=20, base_qps=1000.0, peak_qps=20000.0, period_s=0.01
        )
        assert other.schedule_digest != first.schedule_digest


class TestLifecycleGuards:
    def test_fleet_runs_exactly_once(self, data, plans):
        fleet = FleetScheduler(engine_factory(GH200, warm=data), replicas=1)
        fleet.submit(plans[6], data)
        fleet.run()
        with pytest.raises(RuntimeError, match="exactly one run"):
            fleet.run()

    def test_needs_at_least_one_replica(self, data):
        with pytest.raises(ValueError, match="at least one replica"):
            FleetScheduler(engine_factory(GH200, warm=data), replicas=0)
