"""Satellite: chaos — a node failure into one replica mid-query.

The router retries the victims on a survivor, the autoscaler backfills
the lost capacity, and every query's result matches the no-fault run.
"""

import pytest

from repro.faults import FaultPlan
from repro.fleet import (
    Autoscaler,
    FleetScheduler,
    ReplicaCrashError,
    engine_factory,
)
from repro.gpu.specs import GH200
from repro.sched import JobState

pytestmark = pytest.mark.chaos

CRASH_AT = 0.0003


def normalise(table):
    return sorted(
        tuple(f"{v:.6g}" if isinstance(v, float) else repr(v) for v in row)
        for row in table.to_rows()
    )


def run_fleet(data, plans, fault_plan=None, autoscaler=None, replicas=2):
    fleet = FleetScheduler(
        engine_factory(GH200, warm=data),
        replicas=replicas,
        routing="round-robin",
        fault_plan=fault_plan,
        autoscaler=autoscaler,
    )
    # A simultaneous batch guarantees in-flight work on every replica at
    # the crash instant.
    for i in range(12):
        fleet.submit(plans[(1, 3, 6)[i % 3]], data, label=f"q{i}", arrival_s=0.0)
    return fleet.run()


class TestCrashRetry:
    def test_victims_retry_on_survivor_and_results_match(self, data, plans):
        clean = run_fleet(data, plans)
        crashed = run_fleet(data, plans, FaultPlan().crash_node(0, at=CRASH_AT))

        assert crashed.counters["crashes"] == 1
        assert crashed.counters["retries"] >= 1
        # Every query still completes — on the survivor.
        expected = {j.seq: normalise(j.table) for j in clean.jobs}
        for job in crashed.jobs:
            assert job.state == JobState.COMPLETED, (job.label, job.error_name)
            assert normalise(job.table) == expected[job.seq]
            if job.retries:
                assert job.replica_id == 1  # rerouted off the crashed replica
                # The pre-crash wait is charged to the retried query.
                assert job.queue_wait_s >= CRASH_AT

    def test_crash_is_visible_in_the_replica_report(self, data, plans):
        report = run_fleet(data, plans, FaultPlan().crash_node(0, at=CRASH_AT))
        dead = report.replicas[0]
        assert dead["crashed"] and dead["retired_at"] == pytest.approx(CRASH_AT)
        # The crashed replica stops billing at the crash.
        assert report.replica_seconds < 2 * report.makespan_s

    def test_autoscaler_backfills_a_crashed_replica(self, data, plans):
        auto = Autoscaler(min_replicas=2, max_replicas=3, interval_s=0.001)
        report = run_fleet(
            data,
            plans,
            FaultPlan().crash_node(0, at=CRASH_AT),
            autoscaler=auto,
        )
        # A replacement spawned at the crash instant keeps the fleet at
        # its configured floor.
        assert report.counters["replicas_spawned"] == 3
        backfill = report.replicas[2]
        assert backfill["spawned_at"] == pytest.approx(CRASH_AT)
        assert all(j.state == JobState.COMPLETED for j in report.jobs)

    def test_all_replicas_crashed_fails_outstanding_work(self, data, plans):
        fault = FaultPlan().crash_node(0, at=CRASH_AT).crash_node(1, at=CRASH_AT)
        report = run_fleet(data, plans, fault)
        assert report.counters["crashes"] == 2
        failed = [j for j in report.jobs if j.state == JobState.FAILED]
        assert failed
        assert all(j.error_name == ReplicaCrashError.__name__ for j in failed)

    def test_crash_of_unknown_replica_is_a_noop(self, data, plans):
        report = run_fleet(data, plans, FaultPlan().crash_node(7, at=CRASH_AT))
        assert report.counters["crashes"] == 0
        assert all(j.state == JobState.COMPLETED for j in report.jobs)

    def test_crashed_run_is_deterministic(self, data, plans):
        fault = lambda: FaultPlan().crash_node(0, at=CRASH_AT)  # noqa: E731
        first = run_fleet(data, plans, fault())
        second = run_fleet(data, plans, fault())
        assert first.schedule_digest == second.schedule_digest
        assert first.to_dict() == second.to_dict()
