"""Shared fleet-test fixtures: a small TPC-H world and planned queries."""

import pytest

from repro.hosts import MiniDuck
from repro.sched import WorkloadQuery
from repro.tpch import generate_tpch, tpch_query

SF = 0.01
SEED = 19920101


@pytest.fixture(scope="package")
def data():
    return generate_tpch(sf=SF, seed=SEED)


@pytest.fixture(scope="package")
def host(data):
    h = MiniDuck()
    h.load_tables(data)
    return h


@pytest.fixture(scope="package")
def plans(host):
    return {n: host.plan(tpch_query(n)) for n in (1, 3, 6)}


@pytest.fixture(scope="package")
def mix(plans):
    return [WorkloadQuery(f"q{n}", p) for n, p in sorted(plans.items())]
