"""Routing policies: cycling, load balancing, and placement awareness."""

import pytest

from repro.fleet import (
    FleetScheduler,
    LeastOutstandingRouting,
    PlacementAwareRouting,
    RoundRobinRouting,
    engine_factory,
    make_routing,
)
from repro.gpu.specs import GH200


class _StubReplica:
    def __init__(self, rid, outstanding=0.0, hot=()):
        self.id = rid
        self.outstanding_cost = outstanding
        self._hot = set(hot)

    def hot_tables(self):
        return self._hot


class _StubTable:
    def __init__(self, nbytes):
        self.nbytes = nbytes


class TestRoundRobin:
    def test_cycles_in_id_order(self):
        routing = RoundRobinRouting()
        replicas = [_StubReplica(i) for i in range(3)]
        picks = [routing.select(replicas, (), {}).id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]


class TestLeastOutstanding:
    def test_picks_least_loaded_ties_to_lowest_id(self):
        routing = LeastOutstandingRouting()
        replicas = [
            _StubReplica(0, outstanding=5.0),
            _StubReplica(1, outstanding=1.0),
            _StubReplica(2, outstanding=1.0),
        ]
        assert routing.select(replicas, (), {}).id == 1


class TestPlacement:
    def test_prefers_replica_with_hot_base_tables(self):
        routing = PlacementAwareRouting()
        catalog = {"lineitem": _StubTable(1000), "orders": _StubTable(100)}
        replicas = [
            _StubReplica(0, hot=("orders",)),
            _StubReplica(1, hot=("lineitem",)),
            _StubReplica(2, hot=()),
        ]
        assert routing.select(replicas, ("lineitem",), catalog).id == 1
        assert routing.select(replicas, ("orders",), catalog).id == 0

    def test_falls_back_to_load_when_equally_warm(self):
        routing = PlacementAwareRouting()
        catalog = {"lineitem": _StubTable(1000)}
        replicas = [
            _StubReplica(0, outstanding=9.0, hot=("lineitem",)),
            _StubReplica(1, outstanding=2.0, hot=("lineitem",)),
        ]
        assert routing.select(replicas, ("lineitem",), catalog).id == 1


class TestMakeRouting:
    def test_by_name_and_passthrough(self):
        assert make_routing("round-robin").name == "round-robin"
        assert make_routing("least-outstanding").name == "least-outstanding"
        assert make_routing("placement").name == "placement"
        inst = RoundRobinRouting()
        assert make_routing(inst) is inst

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_routing("nope")


class TestRoutingIntegration:
    def test_round_robin_spreads_a_simultaneous_batch(self, data, plans):
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data), replicas=3, routing="round-robin"
        )
        for i in range(6):
            fleet.submit(plans[6], data, label=f"q{i}", arrival_s=0.0)
        report = fleet.run()
        by_replica = sorted(j.replica_id for j in report.jobs)
        assert by_replica == [0, 0, 1, 1, 2, 2]

    def test_placement_routes_to_the_warm_replica(self, data, plans):
        # Replica 0 is warm for everything; replicas 1 and 2 start cold.
        def factory(replica_id):
            warm = data if replica_id == 0 else None
            return engine_factory(GH200, warm=warm)(replica_id)

        fleet = FleetScheduler(factory, replicas=3, routing="placement")
        for i in range(4):
            fleet.submit(plans[6], data, label=f"q{i}", arrival_s=float(i))
        report = fleet.run()
        assert all(j.replica_id == 0 for j in report.jobs)
