"""Per-tenant token-bucket quotas: throttling, refill, and isolation —
one tenant's burst cannot starve another's steady trickle."""

import pytest

from repro.fleet import (
    FleetScheduler,
    TenantQuota,
    TenantTable,
    engine_factory,
)
from repro.gpu.specs import GH200
from repro.sched import JobState, TokenBucket


class TestTokenBucket:
    def test_burst_then_throttle_then_refill(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst exhausted
        assert bucket.try_take(0.1)  # 1 token refilled
        assert bucket.granted == 3 and bucket.throttled == 1

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=3)
        assert bucket.available(1000.0) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.5)


class TestTenantTable:
    def test_unconfigured_tenants_are_unlimited(self):
        table = TenantTable({"paid": TenantQuota(rate_per_s=1.0, burst=1)})
        for _ in range(50):
            assert table.admit("free", 0.0)
        assert table.throttled.get("free", 0) == 0

    def test_quota_throttles_and_counts(self):
        table = TenantTable({"t": TenantQuota(rate_per_s=1.0, burst=2)})
        assert table.admit("t", 0.0)
        assert table.admit("t", 0.0)
        assert not table.admit("t", 0.0)
        stats = table.stats()
        assert stats["t"]["submitted"] == 3
        assert stats["t"]["throttled"] == 1


class TestFleetQuotas:
    def test_defaults_off_nothing_throttled(self, data, plans):
        fleet = FleetScheduler(engine_factory(GH200, warm=data), replicas=1)
        for i in range(5):
            fleet.submit(plans[6], data, arrival_s=0.0, tenant=f"t{i % 2}")
        report = fleet.run()
        assert report.counters["throttled"] == 0

    def test_noisy_tenant_is_throttled_quiet_tenant_is_not(self, data, plans):
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data),
            replicas=1,
            quotas={"noisy": TenantQuota(rate_per_s=100.0, burst=2)},
        )
        noisy = [
            fleet.submit(
                plans[6], data, label=f"n{i}", arrival_s=1e-6 * i, tenant="noisy"
            )
            for i in range(8)
        ]
        quiet = [
            fleet.submit(
                plans[6], data, label=f"q{i}", arrival_s=1e-6 * i, tenant="quiet"
            )
            for i in range(8)
        ]
        report = fleet.run()
        throttled = [j for j in noisy if j.throttled]
        assert len(throttled) == 6  # burst of 2, negligible refill
        for job in throttled:
            assert job.state == JobState.REJECTED
            assert job.completion_s is not None
        for job in quiet:
            assert not job.throttled
            assert job.state == JobState.COMPLETED
        assert report.tenants["noisy"]["throttled"] == 6
        assert report.tenants["quiet"]["throttled"] == 0
        assert report.counters["rejected"] == 6

    def test_tokens_refill_on_the_virtual_timeline(self, data, plans):
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data),
            replicas=1,
            quotas={"t": TenantQuota(rate_per_s=10.0, burst=1)},
        )
        jobs = [
            fleet.submit(plans[6], data, arrival_s=t, tenant="t")
            for t in (0.0, 0.01, 0.2)  # 2nd inside refill window, 3rd after
        ]
        fleet.run()
        assert not jobs[0].throttled
        assert jobs[1].throttled
        assert not jobs[2].throttled
