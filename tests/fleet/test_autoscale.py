"""The reactive autoscaler: burst-driven scale-up, idle scale-down with
graceful drain (no query stranded), cooldowns, and cost accounting."""

import pytest

from repro.fleet import (
    Autoscaler,
    FleetScheduler,
    FleetWorkloadDriver,
    engine_factory,
)
from repro.gpu.specs import GH200
from repro.sched import JobState


class TestDecide:
    def test_scales_up_on_queue_pressure(self):
        a = Autoscaler(min_replicas=1, max_replicas=4, up_queue_wait_s=0.001)
        assert a.decide(0.0, 1, 0.01, 5, 1.0) == "up"

    def test_respects_max(self):
        a = Autoscaler(min_replicas=1, max_replicas=2, up_queue_wait_s=0.001)
        assert a.decide(0.0, 2, 0.01, 5, 1.0) is None

    def test_scales_down_when_idle(self):
        a = Autoscaler(min_replicas=1, max_replicas=4, down_utilization=0.5)
        assert a.decide(0.0, 3, 0.0, 0, 0.0) == "down"

    def test_respects_min(self):
        a = Autoscaler(min_replicas=2, max_replicas=4, down_utilization=0.5)
        assert a.decide(0.0, 2, 0.0, 0, 0.0) is None

    def test_cooldown_suppresses_actions(self):
        a = Autoscaler(min_replicas=1, max_replicas=4, cooldown_s=1.0)
        a.record(0.0, "up", 2, 0.01, 1.0)
        assert a.decide(0.5, 2, 0.01, 5, 1.0) is None
        assert a.decide(1.5, 2, 0.01, 5, 1.0) == "up"

    def test_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(min_replicas=0)
        with pytest.raises(ValueError):
            Autoscaler(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            Autoscaler(interval_s=0.0)


class TestReactiveScaling:
    def test_burst_scales_up_and_quiet_tail_scales_down(self, data, mix):
        auto = Autoscaler(
            min_replicas=1,
            max_replicas=4,
            up_queue_wait_s=0.0003,
            down_utilization=0.5,
            cooldown_s=0.0005,
            interval_s=0.0002,
        )
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data), replicas=1, autoscaler=auto
        )
        driver = FleetWorkloadDriver(data, mix, seed=19920101)
        report = driver.bursty_open_loop(
            fleet,
            num_queries=80,
            base_qps=200.0,
            burst_qps=50000.0,
            burst_every_s=0.05,
            burst_len_s=0.001,
        )
        assert report.counters["scale_ups"] >= 1
        assert report.counters["scale_downs"] >= 1
        assert report.counters["completed"] == 80
        # The scale decisions show up in the bill: more than one replica's
        # worth of lifetime, less than always-on max.
        makespan = report.makespan_s
        assert report.replica_seconds > makespan
        assert report.replica_seconds < 4 * makespan
        # Gauges flowed through obs.
        assert fleet.metrics.high_water("fleet.queue_wait") > 0.0
        assert fleet.metrics.high_water("fleet.utilization") > 0.0

    def test_drain_strands_no_query(self, data, plans):
        """A replica marked for scale-down finishes its in-flight work."""
        auto = Autoscaler(
            min_replicas=1,
            max_replicas=3,
            up_queue_wait_s=0.0001,
            down_utilization=0.9,  # aggressive: drain at the first lull
            cooldown_s=0.0002,
            interval_s=0.0001,
        )
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data), replicas=3, autoscaler=auto
        )
        # A burst, a gap long enough to trigger drains, another burst.
        for i in range(8):
            fleet.submit(plans[(1, 3, 6)[i % 3]], data, label=f"a{i}", arrival_s=0.0)
        for i in range(8):
            fleet.submit(
                plans[(1, 3, 6)[i % 3]], data, label=f"b{i}", arrival_s=0.05 + 1e-6 * i
            )
        report = fleet.run()
        assert report.counters["scale_downs"] >= 1
        for job in report.jobs:
            assert job.state == JobState.COMPLETED, (job.label, job.error_name)
        # Retired replicas really stopped billing at retirement.
        retired = [r for r in report.replicas if r["retired_at"] is not None]
        assert retired, "expected at least one drained replica"

    def test_draining_replica_takes_no_new_work(self, data, plans):
        auto = Autoscaler(
            min_replicas=1,
            max_replicas=2,
            up_queue_wait_s=1e9,  # never scale up
            down_utilization=0.9,
            cooldown_s=1e-7,
            interval_s=0.0001,
        )
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data),
            replicas=2,
            routing="round-robin",
            autoscaler=auto,
        )
        fleet.submit(plans[6], data, label="early", arrival_s=0.0)
        late = [
            fleet.submit(plans[6], data, label=f"late{i}", arrival_s=0.01 + 1e-5 * i)
            for i in range(4)
        ]
        report = fleet.run()
        assert report.counters["scale_downs"] >= 1
        drained = {
            r["id"] for r in report.replicas if r["retired_at"] is not None
        }
        survivors = {j.replica_id for j in late if not j.cache_hit}
        # Every post-drain query ran on a replica that was still routable.
        for job in late:
            assert job.state == JobState.COMPLETED
        assert survivors.isdisjoint(drained) or not drained
