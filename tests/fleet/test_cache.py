"""Satellite: result/plan cache unit tests plus the hypothesis property —
random put/get/invalidate sequences never exceed the byte budget, never
serve stale results after invalidation, and account every lookup as
exactly one hit or miss."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Schema, Table
from repro.fleet import PlanCache, ResultCache, TableVersions


def small_table(rows: int, tag: int = 0) -> Table:
    schema = Schema([("k", "int64"), ("v", "float64")])
    return Table.from_pydict(
        {"k": list(range(tag, tag + rows)), "v": [float(i) for i in range(rows)]},
        schema,
    )


class TestResultCacheBasics:
    def test_hit_after_insert(self):
        cache = ResultCache(1 << 20)
        t = small_table(4)
        assert cache.insert("k1", t, {"lineitem": 0})
        assert cache.lookup("k1", {"lineitem": 0}) is t
        assert cache.hits == 1 and cache.misses == 0

    def test_version_move_is_a_miss_and_drops_the_entry(self):
        cache = ResultCache(1 << 20)
        cache.insert("k1", small_table(4), {"lineitem": 0})
        assert cache.lookup("k1", {"lineitem": 1}) is None
        assert cache.invalidations == 1
        assert len(cache) == 0
        assert cache.bytes == 0

    def test_lru_eviction_under_byte_budget(self):
        t = small_table(8)
        cache = ResultCache(int(t.nbytes * 2.5))
        cache.insert("a", t, {})
        cache.insert("b", small_table(8, tag=100), {})
        cache.lookup("a", {})  # a is now most-recent
        cache.insert("c", small_table(8, tag=200), {})  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1
        assert cache.bytes <= cache.max_bytes

    def test_oversized_result_is_not_cached(self):
        t = small_table(64)
        cache = ResultCache(int(t.nbytes) - 1)
        assert not cache.insert("big", t, {})
        assert cache.oversized_rejects == 1
        assert len(cache) == 0

    def test_invalidate_table_drops_only_dependents(self):
        cache = ResultCache(1 << 20)
        cache.insert("a", small_table(2), {"lineitem": 0})
        cache.insert("b", small_table(2), {"orders": 0})
        assert cache.invalidate_table("lineitem") == 1
        assert "a" not in cache and "b" in cache

    def test_metrics_flow_through_obs(self):
        cache = ResultCache(1 << 20)
        cache.insert("a", small_table(2), {})
        cache.lookup("a", {})
        cache.lookup("zzz", {})
        m = cache.metrics
        assert m.counter_value("fleet.result_cache.hit") == 1
        assert m.counter_value("fleet.result_cache.miss") == 1
        assert m.gauge_value("fleet.result_cache.bytes") == cache.bytes


class TestPlanCacheBasics:
    def test_lru_entry_budget(self):
        cache = PlanCache(2)
        cache.insert("a", 1)
        cache.insert("b", 2)
        assert cache.lookup("a") == 1  # refresh a
        cache.insert("c", 3)  # evicts b
        assert cache.lookup("b") is None
        assert cache.lookup("c") == 3
        assert cache.evictions == 1

    def test_hit_miss_accounting(self):
        cache = PlanCache(4)
        cache.lookup("a")
        cache.insert("a", 1)
        cache.lookup("a")
        assert cache.hits == 1 and cache.misses == 1


class TestTableVersions:
    def test_bump_is_monotone(self):
        v = TableVersions()
        assert v.get("t") == 0
        assert v.bump("t") == 1
        assert v.bump("t") == 2
        assert v.snapshot(["t", "u"]) == {"t": 2, "u": 0}


# -- the hypothesis property -------------------------------------------------

_KEYS = ("alpha", "beta", "gamma", "delta")
_TABLES = ("lineitem", "orders")

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.sampled_from(_KEYS),
            st.integers(min_value=1, max_value=24),  # row count -> size
            st.sets(st.sampled_from(_TABLES)),
        ),
        st.tuples(st.just("get"), st.sampled_from(_KEYS)),
        st.tuples(st.just("invalidate"), st.sampled_from(_TABLES)),
    ),
    min_size=1,
    max_size=60,
)


class TestResultCacheProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops, budget_rows=st.integers(min_value=1, max_value=48))
    def test_budget_staleness_and_accounting(self, ops, budget_rows):
        unit = small_table(1).nbytes
        cache = ResultCache(int(unit * budget_rows))
        versions = TableVersions()
        # Model of what *must not* be served: (key, deps-at-insert).
        model: dict = {}
        lookups = 0
        for op in ops:
            if op[0] == "put":
                _, key, rows, deps = op
                table = small_table(rows)
                snap = versions.snapshot(deps)
                if cache.insert(key, table, snap):
                    model[key] = (table, dict(snap))
                else:
                    model.pop(key, None)
            elif op[0] == "get":
                _, key = op
                lookups += 1
                snap = versions.snapshot(_TABLES)
                got = cache.lookup(key, snap)
                if got is not None:
                    table, deps = model[key]
                    # Never a stale serve: every dep version must match.
                    assert all(snap[t] == v for t, v in deps.items())
                    assert got is table
            else:
                _, name = op
                versions.bump(name)
                cache.invalidate_table(name)
            # Invariant: resident bytes never exceed the budget, and the
            # byte gauge agrees with the entries.
            assert 0 <= cache.bytes <= cache.max_bytes
        assert cache.hits + cache.misses == lookups
