"""Tests for FOR + bit-packing compression (unit + property-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import DATE32, FLOAT64, INT64, column_from_pylist
from repro.kernels import pack_column, packable, unpack_column


class TestPackability:
    def test_int_column_packable(self):
        assert packable(column_from_pylist([1, 2, 3], INT64))

    def test_date_column_packable(self):
        assert packable(column_from_pylist(["1995-01-01"], DATE32))

    def test_nullable_not_packable(self):
        assert not packable(column_from_pylist([1, None], INT64))

    def test_float_not_packable(self):
        assert not packable(column_from_pylist([1.5], FLOAT64))

    def test_empty_not_packable(self):
        assert not packable(column_from_pylist([], INT64))

    def test_pack_rejects_unpackable(self):
        with pytest.raises(ValueError):
            pack_column(column_from_pylist([1.5], FLOAT64))


class TestRoundTrip:
    def test_small_round_trip(self):
        col = column_from_pylist([100, 105, 101, 100], INT64)
        packed = pack_column(col)
        assert unpack_column(packed).to_pylist() == [100, 105, 101, 100]

    def test_constant_column_uses_one_bit(self):
        col = column_from_pylist([7] * 1000, INT64)
        packed = pack_column(col)
        assert packed.bit_width == 1
        assert packed.packed_nbytes < col.nbytes / 20

    def test_negative_values(self):
        col = column_from_pylist([-50, -10, -50], INT64)
        assert unpack_column(pack_column(col)).to_pylist() == [-50, -10, -50]

    def test_dates_round_trip(self):
        col = column_from_pylist(["1992-01-01", "1998-08-02"], DATE32)
        assert unpack_column(pack_column(col)).to_pylist() == col.to_pylist()

    def test_tpch_style_keys_compress_well(self):
        """Dense keys (FOR removes the base) pack far below 8 bytes/row."""
        col = column_from_pylist(list(range(1_000_000, 1_010_000)), INT64)
        packed = pack_column(col)
        assert packed.ratio(col.nbytes) > 4.0

    @settings(max_examples=60)
    @given(st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=200))
    def test_property_round_trip(self, values):
        col = column_from_pylist(values, INT64)
        packed = pack_column(col)
        assert unpack_column(packed).to_pylist() == values

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=100))
    def test_property_packed_never_bigger_than_needed(self, values):
        col = column_from_pylist(values, INT64)
        packed = pack_column(col)
        span = max(values) - min(values)
        assert packed.bit_width <= max(span.bit_length(), 1)


class TestBufferManagerIntegration:
    def test_compressed_cache_uses_less_region(self):
        from repro.columnar import Schema, Table
        from repro.core import BufferManager
        from repro.gpu import Device, GH200

        table = Table.from_pydict(
            {"k": list(range(50_000))}, Schema([("k", "int64")])
        )
        plain_dev = Device(GH200, memory_limit_gb=0.01)
        packed_dev = Device(GH200, memory_limit_gb=0.01)
        BufferManager(plain_dev).get_table("t", table)
        bm = BufferManager(packed_dev, compress_cache=True)
        bm.get_table("t", table)
        assert packed_dev.caching_region.used < plain_dev.caching_region.used / 2
        assert bm.compressed_saved_bytes > 0

    def test_compressed_hot_access_charges_decompression(self):
        from repro.columnar import Schema, Table
        from repro.core import BufferManager
        from repro.gpu import Device, GH200

        table = Table.from_pydict({"k": list(range(10_000))}, Schema([("k", "int64")]))
        device = Device(GH200, memory_limit_gb=0.01)
        bm = BufferManager(device, compress_cache=True)
        bm.get_table("t", table)
        kernels_before = device.kernel_count
        bm.get_table("t", table)  # hot: pays a decompress pass
        assert device.kernel_count == kernels_before + 1

    def test_compressed_engine_results_identical(self):
        from repro.core import SiriusEngine
        from repro.gpu.specs import GH200 as SPEC
        from repro.plan import PlanBuilder
        from repro.tpch import generate_tpch

        data = generate_tpch(sf=0.005)
        plain = SiriusEngine.for_spec(SPEC, memory_limit_gb=1.0)
        packed = SiriusEngine.for_spec(SPEC, memory_limit_gb=1.0, compress_cache=True)
        plan = (
            PlanBuilder.read("orders", data["orders"].schema)
            .aggregate(groups=["o_orderpriority"], aggs=[("count", None, "n")])
            .sort([("o_orderpriority", True)])
            .build()
        )
        assert plain.execute(plan, data).to_pydict() == packed.execute(plan, data).to_pydict()
