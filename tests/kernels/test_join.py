"""Unit tests for the join kernels (inner/left/semi/anti, nulls, strings)."""



def pairs(result):
    return sorted(zip(result.left_indices.tolist(), result.right_indices.tolist()))


class TestInnerJoin:
    def test_basic_matches(self, make_gtable):
        from repro.kernels import inner_join

        left = make_gtable({"k": [1, 2, 2, 3]}, [("k", "int64")])
        right = make_gtable({"k": [2, 3, 4]}, [("k", "int64")])
        res = inner_join([left.column("k")], [right.column("k")])
        assert pairs(res) == [(1, 0), (2, 0), (3, 1)]

    def test_duplicates_produce_cross_product(self, make_gtable):
        from repro.kernels import inner_join

        left = make_gtable({"k": [7, 7]}, [("k", "int64")])
        right = make_gtable({"k": [7, 7, 7]}, [("k", "int64")])
        res = inner_join([left.column("k")], [right.column("k")])
        assert len(res) == 6

    def test_no_matches(self, make_gtable):
        from repro.kernels import inner_join

        left = make_gtable({"k": [1]}, [("k", "int64")])
        right = make_gtable({"k": [2]}, [("k", "int64")])
        assert len(inner_join([left.column("k")], [right.column("k")])) == 0

    def test_null_keys_never_match(self, make_gtable):
        from repro.kernels import inner_join

        left = make_gtable({"k": [1, None]}, [("k", "int64")])
        right = make_gtable({"k": [None, 1]}, [("k", "int64")])
        res = inner_join([left.column("k")], [right.column("k")])
        assert pairs(res) == [(0, 1)]

    def test_multi_key(self, make_gtable):
        from repro.kernels import inner_join

        left = make_gtable({"a": [1, 1, 2], "b": [10, 20, 10]}, [("a", "int64"), ("b", "int64")])
        right = make_gtable({"a": [1, 2], "b": [20, 10]}, [("a", "int64"), ("b", "int64")])
        res = inner_join(
            [left.column("a"), left.column("b")], [right.column("a"), right.column("b")]
        )
        assert pairs(res) == [(1, 0), (2, 1)]

    def test_string_keys_join_across_dictionaries(self, make_gtable):
        from repro.kernels import inner_join

        left = make_gtable({"s": ["apple", "pear"]}, [("s", "string")])
        right = make_gtable({"s": ["pear", "plum", "apple"]}, [("s", "string")])
        res = inner_join([left.column("s")], [right.column("s")])
        assert pairs(res) == [(0, 2), (1, 0)]

    def test_int32_index_type(self, make_gtable):
        from repro.kernels import inner_join
        import numpy as np

        left = make_gtable({"k": [1]}, [("k", "int64")])
        right = make_gtable({"k": [1]}, [("k", "int64")])
        res = inner_join([left.column("k")], [right.column("k")])
        assert res.left_indices.dtype == np.int32
        assert res.right_indices.dtype == np.int32

    def test_charges_build_and_probe_kernels(self, dev, make_gtable):
        from repro.kernels import inner_join

        left = make_gtable({"k": list(range(100))}, [("k", "int64")])
        right = make_gtable({"k": list(range(100))}, [("k", "int64")])
        before = dev.kernel_count
        inner_join([left.column("k")], [right.column("k")])
        assert dev.kernel_count == before + 2


class TestLeftJoin:
    def test_unmatched_left_rows_survive(self, make_gtable):
        from repro.kernels import left_join

        left = make_gtable({"k": [1, 2, 3]}, [("k", "int64")])
        right = make_gtable({"k": [2]}, [("k", "int64")])
        res = left_join([left.column("k")], [right.column("k")])
        assert pairs(res) == [(0, -1), (1, 0), (2, -1)]

    def test_null_left_keys_survive_unmatched(self, make_gtable):
        from repro.kernels import left_join

        left = make_gtable({"k": [None, 1]}, [("k", "int64")])
        right = make_gtable({"k": [1]}, [("k", "int64")])
        res = left_join([left.column("k")], [right.column("k")])
        assert pairs(res) == [(0, -1), (1, 0)]

    def test_every_left_row_appears_at_least_once(self, make_gtable):
        from repro.kernels import left_join

        left = make_gtable({"k": [5, 6, 7, 8]}, [("k", "int64")])
        right = make_gtable({"k": [6, 6, 9]}, [("k", "int64")])
        res = left_join([left.column("k")], [right.column("k")])
        assert set(res.left_indices.tolist()) == {0, 1, 2, 3}


class TestSemiAnti:
    def test_semi_returns_each_match_once(self, make_gtable):
        from repro.kernels import semi_join

        left = make_gtable({"k": [1, 2, 3]}, [("k", "int64")])
        right = make_gtable({"k": [2, 2, 2, 3]}, [("k", "int64")])
        assert semi_join([left.column("k")], [right.column("k")]).tolist() == [1, 2]

    def test_anti_is_complement_of_semi(self, make_gtable):
        from repro.kernels import anti_join, semi_join

        left = make_gtable({"k": [1, 2, 3, 4]}, [("k", "int64")])
        right = make_gtable({"k": [2, 4]}, [("k", "int64")])
        semi = set(semi_join([left.column("k")], [right.column("k")]).tolist())
        anti = set(anti_join([left.column("k")], [right.column("k")]).tolist())
        assert semi | anti == {0, 1, 2, 3}
        assert semi & anti == set()

    def test_anti_keeps_null_probe_rows(self, make_gtable):
        from repro.kernels import anti_join

        left = make_gtable({"k": [None, 2]}, [("k", "int64")])
        right = make_gtable({"k": [2]}, [("k", "int64")])
        assert anti_join([left.column("k")], [right.column("k")]).tolist() == [0]

    def test_empty_right_side(self, make_gtable):
        from repro.kernels import anti_join, semi_join

        left = make_gtable({"k": [1, 2]}, [("k", "int64")])
        right = make_gtable({"k": []}, [("k", "int64")])
        assert semi_join([left.column("k")], [right.column("k")]).tolist() == []
        assert anti_join([left.column("k")], [right.column("k")]).tolist() == [0, 1]
