"""Unit tests for sort, copying, and reduction kernels."""

import numpy as np
import pytest

from repro.kernels import (
    concat_gtables,
    gather_column,
    gather_table,
    mask_table,
    reduce_column,
    slice_table,
    sorted_order,
    top_n_order,
)


class TestSort:
    def test_single_key_ascending(self, make_gtable):
        g = make_gtable({"v": [3.0, 1.0, 2.0]}, [("v", "float64")])
        assert sorted_order([g.column("v")], [True]).tolist() == [1, 2, 0]

    def test_single_key_descending(self, make_gtable):
        g = make_gtable({"v": [3.0, 1.0, 2.0]}, [("v", "float64")])
        assert sorted_order([g.column("v")], [False]).tolist() == [0, 2, 1]

    def test_multi_key_priority(self, make_gtable):
        g = make_gtable(
            {"a": [1, 2, 1], "b": [9, 1, 3]}, [("a", "int64"), ("b", "int64")]
        )
        # primary a asc, secondary b desc
        assert sorted_order([g.column("a"), g.column("b")], [True, False]).tolist() == [0, 2, 1]

    def test_stability(self, make_gtable):
        g = make_gtable({"a": [1, 1, 1]}, [("a", "int64")])
        assert sorted_order([g.column("a")], [True]).tolist() == [0, 1, 2]

    def test_nulls_last_ascending(self, make_gtable):
        g = make_gtable({"v": [2.0, None, 1.0]}, [("v", "float64")])
        assert sorted_order([g.column("v")], [True]).tolist() == [2, 0, 1]

    def test_string_keys_sort_lexicographically(self, make_gtable):
        g = make_gtable({"s": ["pear", "apple", "fig"]}, [("s", "string")])
        order = sorted_order([g.column("s")], [True])
        decoded = g.column("s").decoded()[order]
        assert list(decoded) == ["apple", "fig", "pear"]

    def test_top_n_matches_sort_prefix(self, make_gtable):
        g = make_gtable({"v": [5.0, 1.0, 4.0, 2.0, 3.0]}, [("v", "float64")])
        full = sorted_order([g.column("v")], [False])
        top = top_n_order([g.column("v")], [False], 2)
        assert top.tolist() == full[:2].tolist()

    def test_mismatched_flags_rejected(self, make_gtable):
        g = make_gtable({"v": [1.0]}, [("v", "float64")])
        with pytest.raises(ValueError):
            sorted_order([g.column("v")], [True, False])


class TestGather:
    def test_gather_values(self, make_gtable):
        g = make_gtable({"v": [10, 20, 30]}, [("v", "int64")])
        out = gather_column(g.column("v"), np.array([2, 0, 1], dtype=np.int32))
        assert out.data.tolist() == [30, 10, 20]

    def test_gather_negative_index_yields_null(self, make_gtable):
        g = make_gtable({"v": [10, 20]}, [("v", "int64")])
        out = gather_column(g.column("v"), np.array([0, -1], dtype=np.int32))
        assert out.valid_mask().tolist() == [True, False]

    def test_gather_from_empty_column(self, make_gtable):
        g = make_gtable({"v": []}, [("v", "int64")])
        out = gather_column(g.column("v"), np.array([-1, -1], dtype=np.int32))
        assert len(out) == 2 and out.null_count == 2

    def test_gather_table_all_columns(self, make_gtable):
        g = make_gtable(
            {"a": [1, 2], "s": ["x", "y"]}, [("a", "int64"), ("s", "string")]
        )
        out = gather_table(g, np.array([1, 1, 0], dtype=np.int32))
        host = out.to_host(False).to_pydict()
        assert host == {"a": [2, 2, 1], "s": ["y", "y", "x"]}


class TestMaskSliceConcat:
    def test_mask_table(self, make_gtable):
        g = make_gtable({"a": [1, 2, 3]}, [("a", "int64")])
        out = mask_table(g, np.array([True, False, True]))
        assert out.to_host(False).to_pydict()["a"] == [1, 3]

    def test_slice_table(self, make_gtable):
        g = make_gtable({"a": list(range(10))}, [("a", "int64")])
        out = slice_table(g, 2, 3)
        assert out.to_host(False).to_pydict()["a"] == [2, 3, 4]

    def test_slice_clamps_to_end(self, make_gtable):
        g = make_gtable({"a": [1, 2]}, [("a", "int64")])
        assert slice_table(g, 1, 100).num_rows == 1

    def test_concat(self, make_gtable):
        g1 = make_gtable({"a": [1], "s": ["x"]}, [("a", "int64"), ("s", "string")])
        g2 = make_gtable({"a": [2], "s": ["y"]}, [("a", "int64"), ("s", "string")])
        out = concat_gtables([g1, g2])
        assert out.to_host(False).to_pydict() == {"a": [1, 2], "s": ["x", "y"]}

    def test_concat_keeps_dictionary_sorted(self, make_gtable):
        g1 = make_gtable({"s": ["zeta"]}, [("s", "string")])
        g2 = make_gtable({"s": ["alpha"]}, [("s", "string")])
        out = concat_gtables([g1, g2])
        d = list(out.columns[0].dictionary)
        assert d == sorted(d)


class TestReduce:
    @pytest.mark.parametrize(
        "op,expected",
        [("sum", 6.0), ("min", 1.0), ("max", 3.0), ("count", 3), ("mean", 2.0)],
    )
    def test_numeric_reductions(self, make_gtable, op, expected):
        g = make_gtable({"v": [1.0, 2.0, 3.0]}, [("v", "float64")])
        assert reduce_column(g.column("v"), op) == expected

    def test_nulls_skipped(self, make_gtable):
        g = make_gtable({"v": [1.0, None, 3.0]}, [("v", "float64")])
        assert reduce_column(g.column("v"), "sum") == 4.0
        assert reduce_column(g.column("v"), "count") == 2
        assert reduce_column(g.column("v"), "count_star") == 3

    def test_empty_sum_is_null(self, make_gtable):
        g = make_gtable({"v": []}, [("v", "float64")])
        assert reduce_column(g.column("v"), "sum") is None
        assert reduce_column(g.column("v"), "count") == 0

    def test_string_min(self, make_gtable):
        g = make_gtable({"s": ["pear", "apple"]}, [("s", "string")])
        assert reduce_column(g.column("s"), "min") == "apple"

    def test_count_distinct(self, make_gtable):
        g = make_gtable({"v": [1, 1, 2, None]}, [("v", "int64")])
        assert reduce_column(g.column("v"), "count_distinct") == 2

    def test_integer_sum_returns_int(self, make_gtable):
        g = make_gtable({"v": [1, 2]}, [("v", "int64")])
        result = reduce_column(g.column("v"), "sum")
        assert result == 3 and isinstance(result, int)
