"""NULL-semantics battery: garbage payloads under invalid rows must never
leak into results.

A NULL column slot has two parts: the validity bit and the payload.  The
payload under an invalid bit is *unspecified input* — real device buffers
carry whatever bytes were there before (the libcudf contract) — so every
compute kernel must (a) propagate validity correctly and (b) write a
canonical payload (zero / false / -1 string code) under its own invalid
outputs, never a function of the garbage.  These tests poison the
payloads explicitly (NaN, extreme ints) and check both properties per
operator.
"""

import numpy as np
import pytest

from repro.columnar import BOOL, DATE32, FLOAT64, INT64, STRING
from repro.kernels import GTable
from repro.kernels.compute import (
    absolute,
    binary_arith,
    case_when,
    cast_column,
    coalesce,
    compare,
    extract_date_part,
    fill_constant,
    in_list,
    is_null,
    logical_and,
    logical_not,
    logical_or,
    round_column,
    string_length,
    substring,
)
from repro.kernels.gtable import GColumn


@pytest.fixture
def poisoned(dev):
    """Columns whose invalid slots hold worst-case garbage payloads."""

    def make(dtype, data, validity):
        return GColumn.from_array(
            dev,
            dtype,
            np.asarray(data, dtype=dtype.numpy_dtype),
            np.asarray(validity, dtype=np.bool_),
        )

    return make


def assert_canonical(col, expected_valid, expected_values):
    """Validity matches; valid payloads match; invalid payloads canonical."""
    np.testing.assert_array_equal(col.valid_mask(), np.asarray(expected_valid))
    valid = col.valid_mask()
    got = col.data[valid]
    want = np.asarray(expected_values)[valid]
    if col.dtype is FLOAT64:
        np.testing.assert_allclose(got, want)
    else:
        np.testing.assert_array_equal(got, want)
    # Canonical payload under NULL: zero (numeric/bool) or negative code
    # (string).  Anything else is garbage that survived the kernel.
    invalid_payload = col.data[~valid]
    if col.dtype is STRING:
        assert (invalid_payload < 0).all()
    else:
        assert not invalid_payload.astype(np.bool_).any(), (
            f"garbage payload under NULL: {invalid_payload!r}"
        )


GARBAGE_F = [np.nan, np.inf, -np.inf, 1e308]
GARBAGE_I = [2**62, -(2**62), 7, -1]


class TestComparisonNulls:
    def test_compare_nan_under_invalid_does_not_match(self, poisoned):
        left = poisoned(FLOAT64, [1.0, np.nan, 3.0, np.inf], [True, False, True, False])
        right = poisoned(FLOAT64, [1.0, np.nan, 2.0, np.inf], [True, False, True, True])
        out = compare("eq", left, right)
        assert_canonical(out, [True, False, True, False], [True, False, False, False])

    def test_compare_scalar_with_poisoned_ints(self, poisoned):
        col = poisoned(INT64, GARBAGE_I, [False, False, True, True])
        out = compare("gt", col, 0)
        assert_canonical(out, [False, False, True, True], [False, False, True, False])


class TestArithmeticNulls:
    def test_binary_arith_zeroes_invalid_payloads(self, poisoned):
        left = poisoned(FLOAT64, GARBAGE_F, [False, True, True, False])
        right = poisoned(FLOAT64, [1.0, 2.0, 3.0, 4.0], [True, True, False, True])
        out = binary_arith("add", left, right)
        assert_canonical(
            out, [False, True, False, False], [0.0, np.inf + 2.0, 0.0, 0.0]
        )

    def test_divide_by_zero_and_nulls(self, poisoned):
        left = poisoned(FLOAT64, [8.0, np.nan, 6.0], [True, False, True])
        out = binary_arith("divide", left, poisoned(FLOAT64, [2.0, 3.0, 0.0], [True] * 3))
        assert_canonical(out, [True, False, False], [4.0, 0.0, 0.0])

    def test_absolute_and_round_scrub(self, poisoned):
        col = poisoned(FLOAT64, [-1.5, np.nan, 2.5, -np.inf], [True, False, True, False])
        assert_canonical(absolute(col), [True, False, True, False], [1.5, 0, 2.5, 0])
        assert_canonical(round_column(col), [True, False, True, False], [-2.0, 0, 2.0, 0])

    def test_cast_scrubs_payloads(self, poisoned):
        col = poisoned(FLOAT64, [1.9, np.nan, 3.1], [True, False, True])
        out = cast_column(col, INT64)
        assert out.dtype is INT64
        assert_canonical(out, [True, False, True], [1, 0, 3])


class TestLogicalNulls:
    def test_kleene_and_with_garbage_bool_payloads(self, poisoned):
        # Payload True under an invalid bit: AND with False must still be
        # False (known), AND with True must be NULL.
        left = poisoned(BOOL, [True, True, True], [False, False, True])
        right = poisoned(BOOL, [False, True, True], [True, True, True])
        out = logical_and(left, right)
        assert_canonical(out, [True, False, True], [False, False, True])

    def test_kleene_or_with_garbage_bool_payloads(self, poisoned):
        left = poisoned(BOOL, [True, False, False], [False, False, True])
        right = poisoned(BOOL, [True, False, True], [True, True, True])
        out = logical_or(left, right)
        assert_canonical(out, [True, False, True], [True, False, True])

    def test_not_propagates_null(self, poisoned):
        col = poisoned(BOOL, [True, True, False], [True, False, True])
        assert_canonical(logical_not(col), [True, False, True], [False, False, True])

    def test_is_null_ignores_payload(self, poisoned):
        col = poisoned(FLOAT64, GARBAGE_F, [False, True, False, True])
        out = is_null(col)
        assert_canonical(out, [True] * 4, [True, False, True, False])
        assert out.valid_mask().all()


class TestMembershipAndCase:
    def test_in_list_null_is_null_even_on_payload_match(self, poisoned):
        col = poisoned(INT64, [7, 7, 3], [True, False, True])
        out = in_list(col, [7])
        assert_canonical(out, [True, False, True], [True, False, False])

    def test_case_when_null_condition_falls_through(self, poisoned):
        cond = poisoned(BOOL, [True, True, False], [True, False, True])
        out = case_when(
            [cond],
            [poisoned(FLOAT64, [1.0, 2.0, 3.0], [True] * 3)],
            poisoned(FLOAT64, [9.0, 9.0, 9.0], [True] * 3),
        )
        # NULL condition is not-true: row 1 takes the default.
        assert_canonical(out, [True, True, True], [1.0, 9.0, 9.0])

    def test_coalesce_skips_garbage(self, poisoned):
        first = poisoned(FLOAT64, GARBAGE_F[:3], [False, False, False])
        second = poisoned(FLOAT64, [1.0, np.nan, 3.0], [True, False, True])
        out = coalesce([first, second, 0.5])
        assert_canonical(out, [True, True, True], [1.0, 0.5, 3.0])


class TestDateAndStringNulls:
    def test_extract_date_part_scrubs(self, poisoned):
        col = poisoned(DATE32, [8766, 2**30, 9131], [True, False, True])
        out = extract_date_part("year", col)
        assert_canonical(out, [True, False, True], [1994, 0, 1995])

    def test_string_kernels_ignore_negative_codes(self, make_gtable):
        g = make_gtable({"s": ["ab", None, "cdef"]}, [("s", "string")])
        col = g.columns[0]
        assert (col.data[~col.valid_mask()] < 0).all()
        out = string_length(col)
        assert_canonical(out, [True, False, True], [2, 0, 4])
        sub = substring(col, 1, 2)
        np.testing.assert_array_equal(sub.valid_mask(), [True, False, True])
        assert (sub.data[~sub.valid_mask()] < 0).all()


class TestFillConstant:
    def test_null_literal_dtype_threading(self, dev):
        """Satellite regression: a typed NULL/bare literal must honour the
        requested dtype instead of guessing from the python value."""
        col = fill_constant(dev, 4, 1, dtype=FLOAT64)
        assert col.dtype is FLOAT64
        assert col.data.dtype == np.float64
        untyped = fill_constant(dev, 4, 1)
        assert untyped.dtype is INT64
