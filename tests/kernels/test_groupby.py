"""Unit tests for group-by aggregation kernels."""

import pytest

from repro.kernels import AggSpec, groupby


def result_dict(gt, key_names=("key0",)):
    host = gt.to_host(charge_transfer=False).to_pydict()
    return host


class TestBasicAggregation:
    def test_sum_count(self, make_gtable):
        g = make_gtable(
            {"k": [1, 2, 2, 1], "v": [10.0, 20.0, 30.0, 5.0]},
            [("k", "int64"), ("v", "float64")],
        )
        out = groupby([g.column("k")], [
            AggSpec("sum", g.column("v"), "s"),
            AggSpec("count_star", None, "n"),
        ])
        d = result_dict(out)
        assert d["key0"] == [1, 2]
        assert d["s"] == [15.0, 50.0]
        assert d["n"] == [2, 2]

    def test_min_max(self, make_gtable):
        g = make_gtable(
            {"k": [1, 1, 2], "v": [3.0, -1.0, 7.0]}, [("k", "int64"), ("v", "float64")]
        )
        out = groupby([g.column("k")], [
            AggSpec("min", g.column("v"), "lo"),
            AggSpec("max", g.column("v"), "hi"),
        ])
        d = result_dict(out)
        assert d["lo"] == [-1.0, 7.0]
        assert d["hi"] == [3.0, 7.0]

    def test_mean(self, make_gtable):
        g = make_gtable({"k": [1, 1], "v": [2.0, 4.0]}, [("k", "int64"), ("v", "float64")])
        out = groupby([g.column("k")], [AggSpec("mean", g.column("v"), "m")])
        assert result_dict(out)["m"] == [3.0]

    def test_integer_sum_stays_integer(self, make_gtable):
        g = make_gtable({"k": [1, 1], "v": [2, 3]}, [("k", "int64"), ("v", "int64")])
        out = groupby([g.column("k")], [AggSpec("sum", g.column("v"), "s")])
        assert result_dict(out)["s"] == [5]

    def test_count_distinct(self, make_gtable):
        g = make_gtable(
            {"k": [1, 1, 1, 2], "v": [5, 5, 6, 5]}, [("k", "int64"), ("v", "int64")]
        )
        out = groupby([g.column("k")], [AggSpec("count_distinct", g.column("v"), "d")])
        assert result_dict(out)["d"] == [2, 1]


class TestNullSemantics:
    def test_null_values_skipped(self, make_gtable):
        g = make_gtable(
            {"k": [1, 1, 1], "v": [10.0, None, 20.0]}, [("k", "int64"), ("v", "float64")]
        )
        out = groupby([g.column("k")], [
            AggSpec("sum", g.column("v"), "s"),
            AggSpec("count", g.column("v"), "c"),
            AggSpec("count_star", None, "n"),
        ])
        d = result_dict(out)
        assert d["s"] == [30.0]
        assert d["c"] == [2]
        assert d["n"] == [3]

    def test_all_null_group_sums_to_null(self, make_gtable):
        g = make_gtable(
            {"k": [1, 2], "v": [None, 5.0]}, [("k", "int64"), ("v", "float64")]
        )
        out = groupby([g.column("k")], [AggSpec("sum", g.column("v"), "s")])
        assert result_dict(out)["s"] == [None, 5.0]

    def test_null_keys_form_one_group(self, make_gtable):
        g = make_gtable(
            {"k": [None, None, 1], "v": [1.0, 2.0, 3.0]}, [("k", "int64"), ("v", "float64")]
        )
        out = groupby([g.column("k")], [AggSpec("sum", g.column("v"), "s")])
        d = result_dict(out)
        assert sorted(x for x in d["s"]) == [3.0, 3.0]
        assert None in d["key0"]


class TestStringAndMultiKey:
    def test_string_keys(self, make_gtable):
        g = make_gtable(
            {"k": ["b", "a", "b"], "v": [1.0, 2.0, 3.0]}, [("k", "string"), ("v", "float64")]
        )
        out = groupby([g.column("k")], [AggSpec("sum", g.column("v"), "s")])
        d = result_dict(out)
        got = dict(zip(d["key0"], d["s"]))
        assert got == {"a": 2.0, "b": 4.0}

    def test_string_min_max_lexicographic(self, make_gtable):
        g = make_gtable(
            {"k": [1, 1, 1], "s": ["pear", "apple", "plum"]},
            [("k", "int64"), ("s", "string")],
        )
        out = groupby([g.column("k")], [
            AggSpec("min", g.column("s"), "lo"),
            AggSpec("max", g.column("s"), "hi"),
        ])
        d = result_dict(out)
        assert d["lo"] == ["apple"] and d["hi"] == ["plum"]

    def test_multi_key_groups(self, make_gtable):
        g = make_gtable(
            {"a": [1, 1, 2, 1], "b": ["x", "y", "x", "x"], "v": [1.0, 1.0, 1.0, 1.0]},
            [("a", "int64"), ("b", "string"), ("v", "float64")],
        )
        out = groupby([g.column("a"), g.column("b")], [AggSpec("count_star", None, "n")])
        d = result_dict(out)
        groups = set(zip(d["key0"], d["key1"], d["n"]))
        assert groups == {(1, "x", 2), (1, "y", 1), (2, "x", 1)}


class TestKernelStrategySelection:
    def test_string_keys_take_sort_path(self, dev, make_gtable):
        """Mirrors the paper: libcudf uses sort-based group-by for strings,
        which is slower - the simulated clock must show that."""
        # Use a group count above the contention threshold so the test
        # isolates sort-path vs hash-path (the low-cardinality contention
        # penalty is covered separately in the cost-model tests).
        n, groups = 20000, 5000
        num = make_gtable({"k": [i % groups for i in range(n)], "v": [1.0] * n},
                          [("k", "int64"), ("v", "float64")])
        t0 = dev.clock.now
        groupby([num.column("k")], [AggSpec("sum", num.column("v"), "s")])
        hash_time = dev.clock.now - t0

        strs = make_gtable({"k": [f"key{i % groups:06d}" for i in range(n)], "v": [1.0] * n},
                           [("k", "string"), ("v", "float64")])
        t0 = dev.clock.now
        groupby([strs.column("k")], [AggSpec("sum", strs.column("v"), "s")])
        sort_time = dev.clock.now - t0
        assert sort_time > hash_time

    def test_errors(self, make_gtable):
        g = make_gtable({"k": [1]}, [("k", "int64")])
        with pytest.raises(ValueError):
            groupby([], [AggSpec("count_star", None, "n")])
        with pytest.raises(ValueError):
            AggSpec("median", g.column("k"), "m")
        with pytest.raises(ValueError):
            AggSpec("sum", None, "s")
