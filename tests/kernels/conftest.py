"""Helpers for kernel tests: quick device-table construction."""

import pytest

from repro.columnar import Schema, Table
from repro.gpu import Device, GH200
from repro.kernels import GTable


@pytest.fixture
def dev():
    return Device(GH200, memory_limit_gb=2.0)


@pytest.fixture
def make_gtable(dev):
    """Factory: make_gtable({"k": [...]}, [("k", "int64"), ...]) -> GTable."""

    def factory(data, fields):
        table = Table.from_pydict(data, Schema(fields))
        return GTable.from_host(dev, table)

    return factory
