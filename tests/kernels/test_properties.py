"""Property-based tests: kernels vs brute-force reference implementations."""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Schema, Table
from repro.gpu import Device, GH200
from repro.kernels import (
    AggSpec,
    anti_join,
    factorize_keys,
    groupby,
    inner_join,
    left_join,
    semi_join,
    sorted_order,
)
from repro.kernels.gtable import GTable

keys_strategy = st.lists(st.one_of(st.none(), st.integers(0, 8)), min_size=0, max_size=40)


def gtable_from(values, name="k"):
    device = Device(GH200, memory_limit_gb=2.0)
    t = Table.from_pydict({name: values}, Schema([(name, "int64")]))
    return GTable.from_host(device, t)


class TestJoinAgainstNestedLoop:
    @settings(max_examples=60)
    @given(keys_strategy, keys_strategy)
    def test_inner_join_matches_nested_loop(self, left_vals, right_vals):
        left = gtable_from(left_vals)
        right = gtable_from(right_vals)
        res = inner_join([left.column("k")], [right.column("k")])
        got = sorted(zip(res.left_indices.tolist(), res.right_indices.tolist()))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left_vals)
            for j, rv in enumerate(right_vals)
            if lv is not None and rv is not None and lv == rv
        )
        assert got == expected

    @settings(max_examples=40)
    @given(keys_strategy, keys_strategy)
    def test_left_join_covers_all_left_rows(self, left_vals, right_vals):
        left = gtable_from(left_vals)
        right = gtable_from(right_vals)
        res = left_join([left.column("k")], [right.column("k")])
        match_count = defaultdict(int)
        for i, lv in enumerate(left_vals):
            for rv in right_vals:
                if lv is not None and rv is not None and lv == rv:
                    match_count[i] += 1
        expected_rows = sum(max(1, match_count[i]) for i in range(len(left_vals)))
        assert len(res) == expected_rows
        assert set(res.left_indices.tolist()) == set(range(len(left_vals)))

    @settings(max_examples=40)
    @given(keys_strategy, keys_strategy)
    def test_semi_anti_partition_left(self, left_vals, right_vals):
        left = gtable_from(left_vals)
        right = gtable_from(right_vals)
        semi = set(semi_join([left.column("k")], [right.column("k")]).tolist())
        anti = set(anti_join([left.column("k")], [right.column("k")]).tolist())
        assert semi | anti == set(range(len(left_vals)))
        assert not (semi & anti)
        right_set = {v for v in right_vals if v is not None}
        for i in semi:
            assert left_vals[i] in right_set


class TestGroupbyAgainstReference:
    @settings(max_examples=60)
    @given(st.lists(st.tuples(st.integers(0, 5), st.floats(-100, 100)), max_size=50))
    def test_sum_count_match_python(self, rows):
        keys = [k for k, _ in rows]
        vals = [v for _, v in rows]
        if not rows:
            return
        device = Device(GH200, memory_limit_gb=2.0)
        t = Table.from_pydict(
            {"k": keys, "v": vals}, Schema([("k", "int64"), ("v", "float64")])
        )
        g = GTable.from_host(device, t)
        out = groupby(
            [g.column("k")],
            [AggSpec("sum", g.column("v"), "s"), AggSpec("count_star", None, "n")],
        ).to_host(False).to_pydict()
        ref_sum = defaultdict(float)
        ref_n = defaultdict(int)
        for k, v in rows:
            ref_sum[k] += v
            ref_n[k] += 1
        got = {k: (pytest.approx(s, abs=1e-6), n) for k, s, n in zip(out["key0"], out["s"], out["n"])}
        assert set(got) == set(ref_sum)
        for k in ref_sum:
            assert ref_sum[k] == got[k][0]
            assert ref_n[k] == got[k][1]


class TestSortAgainstPython:
    @settings(max_examples=60)
    @given(st.lists(st.integers(-1000, 1000), max_size=60))
    def test_order_matches_python_sorted(self, values):
        if not values:
            return
        g = gtable_from(values, "v")
        order = sorted_order([g.column("v")], [True])
        assert [values[i] for i in order] == sorted(values)

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 5), max_size=40))
    def test_sort_is_permutation(self, values):
        if not values:
            return
        g = gtable_from(values, "v")
        order = sorted_order([g.column("v")], [False])
        assert sorted(order.tolist()) == list(range(len(values)))


class TestFactorizeKeys:
    @settings(max_examples=60)
    @given(keys_strategy, keys_strategy)
    def test_codes_agree_with_equality(self, left_vals, right_vals):
        if not left_vals or not right_vals:
            return
        left = gtable_from(left_vals)
        right = gtable_from(right_vals)
        lc, rc, _ = factorize_keys([left.column("k")], [right.column("k")])
        for i, lv in enumerate(left_vals):
            for j, rv in enumerate(right_vals):
                if lv is None or rv is None:
                    continue
                assert (lc[i] == rc[j]) == (lv == rv)

    @settings(max_examples=30)
    @given(keys_strategy)
    def test_nulls_match_mode_gives_no_sentinels(self, values):
        if not values:
            return
        g = gtable_from(values)
        codes, _, _ = factorize_keys([g.column("k")], nulls_match=True)
        assert (codes >= 0).all()
