"""Tests for the ASOF join extension kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import Schema, Table
from repro.gpu import Device, GH200
from repro.kernels import GTable, asof_join


def gtable(data, fields, dev=None):
    dev = dev or Device(GH200, memory_limit_gb=1.0)
    return GTable.from_host(dev, Table.from_pydict(data, Schema(fields)))


class TestBasicAsof:
    def test_latest_at_or_before(self):
        trades = gtable({"t": [3, 7, 10]}, [("t", "int64")])
        quotes = gtable({"t": [1, 5, 8]}, [("t", "int64")])
        res = asof_join(trades.column("t"), quotes.column("t"))
        assert res.left_indices.tolist() == [0, 1, 2]
        assert res.right_indices.tolist() == [0, 1, 2]

    def test_exact_timestamp_matches(self):
        left = gtable({"t": [5]}, [("t", "int64")])
        right = gtable({"t": [5]}, [("t", "int64")])
        res = asof_join(left.column("t"), right.column("t"))
        assert res.right_indices.tolist() == [0]

    def test_no_earlier_row_gives_null(self):
        left = gtable({"t": [1]}, [("t", "int64")])
        right = gtable({"t": [10]}, [("t", "int64")])
        res = asof_join(left.column("t"), right.column("t"))
        assert res.right_indices.tolist() == [-1]

    def test_unsorted_right_side_handled(self):
        left = gtable({"t": [6]}, [("t", "int64")])
        right = gtable({"t": [9, 2, 5]}, [("t", "int64")])
        res = asof_join(left.column("t"), right.column("t"))
        assert res.right_indices.tolist() == [2]  # t=5 is the latest <= 6

    def test_string_time_rejected(self):
        left = gtable({"t": ["a"]}, [("t", "string")])
        right = gtable({"t": ["b"]}, [("t", "string")])
        with pytest.raises(TypeError):
            asof_join(left.column("t"), right.column("t"))


class TestPartitionedAsof:
    def test_by_keys_partition_matches(self):
        dev = Device(GH200, memory_limit_gb=1.0)
        left = gtable(
            {"sym": [1, 1, 2], "t": [10, 20, 10]},
            [("sym", "int64"), ("t", "int64")],
            dev,
        )
        right = gtable(
            {"sym": [1, 2, 2], "t": [5, 8, 15]},
            [("sym", "int64"), ("t", "int64")],
            dev,
        )
        res = asof_join(
            left.column("t"), right.column("t"),
            [left.column("sym")], [right.column("sym")],
        )
        # sym=1 rows match right row 0; sym=2 at t=10 matches right row 1.
        assert res.right_indices.tolist() == [0, 0, 1]

    def test_cross_partition_never_matches(self):
        dev = Device(GH200, memory_limit_gb=1.0)
        left = gtable({"sym": [1], "t": [100]}, [("sym", "int64"), ("t", "int64")], dev)
        right = gtable({"sym": [2], "t": [50]}, [("sym", "int64"), ("t", "int64")], dev)
        res = asof_join(
            left.column("t"), right.column("t"),
            [left.column("sym")], [right.column("sym")],
        )
        assert res.right_indices.tolist() == [-1]

    def test_mismatched_by_keys_rejected(self):
        dev = Device(GH200, memory_limit_gb=1.0)
        left = gtable({"t": [1]}, [("t", "int64")], dev)
        right = gtable({"t": [1]}, [("t", "int64")], dev)
        with pytest.raises(ValueError):
            asof_join(left.column("t"), right.column("t"), [left.column("t")], [])


class TestAsofProperty:
    @settings(max_examples=50)
    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=30),
        st.lists(st.integers(0, 100), min_size=1, max_size=30),
    )
    def test_matches_reference_scan(self, left_times, right_times):
        dev = Device(GH200, memory_limit_gb=1.0)
        left = gtable({"t": left_times}, [("t", "int64")], dev)
        right = gtable({"t": right_times}, [("t", "int64")], dev)
        res = asof_join(left.column("t"), right.column("t"))
        for i, lt in enumerate(left_times):
            candidates = [(rt, j) for j, rt in enumerate(right_times) if rt <= lt]
            got = res.right_indices[i]
            if not candidates:
                assert got == -1
            else:
                best_time = max(rt for rt, _ in candidates)
                assert right_times[got] == best_time
