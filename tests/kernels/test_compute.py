"""Unit tests for elementwise compute kernels."""

import datetime


from repro.columnar import FLOAT64, INT64, STRING
from repro.kernels import (
    binary_arith,
    case_when,
    cast_column,
    coalesce,
    compare,
    contains,
    extract_date_part,
    fill_constant,
    hash_partition_ids,
    in_list,
    is_null,
    like,
    logical_and,
    logical_not,
    logical_or,
    substring,
)


class TestArithmetic:
    def test_column_scalar_add(self, make_gtable):
        g = make_gtable({"v": [1.0, 2.0]}, [("v", "float64")])
        out = binary_arith("add", g.column("v"), 10.0)
        assert out.data.tolist() == [11.0, 12.0]

    def test_column_column_multiply(self, make_gtable):
        g = make_gtable({"a": [2.0, 3.0], "b": [4.0, 5.0]}, [("a", "float64"), ("b", "float64")])
        out = binary_arith("multiply", g.column("a"), g.column("b"))
        assert out.data.tolist() == [8.0, 15.0]

    def test_divide_always_float(self, make_gtable):
        g = make_gtable({"a": [7, 8]}, [("a", "int64")])
        out = binary_arith("divide", g.column("a"), 2)
        assert out.dtype is FLOAT64
        assert out.data.tolist() == [3.5, 4.0]

    def test_divide_by_zero_is_null(self, make_gtable):
        g = make_gtable({"a": [1.0], "b": [0.0]}, [("a", "float64"), ("b", "float64")])
        out = binary_arith("divide", g.column("a"), g.column("b"))
        assert out.valid_mask().tolist() == [False]

    def test_null_propagates(self, make_gtable):
        g = make_gtable({"a": [1.0, None]}, [("a", "float64")])
        out = binary_arith("add", g.column("a"), 1.0)
        assert out.valid_mask().tolist() == [True, False]

    def test_date_minus_days(self, make_gtable):
        g = make_gtable({"d": ["1998-12-01"]}, [("d", "date")])
        out = binary_arith("subtract", g.column("d"), 90)
        assert out.to_host(False).to_pylist() == [datetime.date(1998, 9, 2)]


class TestComparison:
    def test_numeric_compare(self, make_gtable):
        g = make_gtable({"v": [1.0, 5.0, 3.0]}, [("v", "float64")])
        out = compare("gt", g.column("v"), 2.5)
        assert out.data.tolist() == [False, True, True]

    def test_date_compare_with_literal(self, make_gtable):
        g = make_gtable({"d": ["1995-01-01", "1997-06-15"]}, [("d", "date")])
        out = compare("lt", g.column("d"), datetime.date(1996, 1, 1))
        assert out.data.tolist() == [True, False]

    def test_string_scalar_compare(self, make_gtable):
        g = make_gtable({"s": ["BRAZIL", "FRANCE"]}, [("s", "string")])
        out = compare("eq", g.column("s"), "BRAZIL")
        assert out.data.tolist() == [True, False]

    def test_string_scalar_compare_flipped(self, make_gtable):
        g = make_gtable({"s": ["b", "d"]}, [("s", "string")])
        # scalar < column: "c" < col
        out = compare("lt", "c", g.column("s"))
        assert out.data.tolist() == [False, True]

    def test_string_column_column_compare(self, make_gtable):
        g = make_gtable(
            {"a": ["x", "y"], "b": ["x", "z"]}, [("a", "string"), ("b", "string")]
        )
        out = compare("eq", g.column("a"), g.column("b"))
        assert out.data.tolist() == [True, False]

    def test_null_comparison_invalid(self, make_gtable):
        g = make_gtable({"v": [None, 2.0]}, [("v", "float64")])
        out = compare("eq", g.column("v"), 2.0)
        assert out.valid_mask().tolist() == [False, True]


class TestLogic:
    def test_kleene_and(self, make_gtable):
        g = make_gtable(
            {"a": [True, False, None], "b": [None, None, None]},
            [("a", "bool"), ("b", "bool")],
        )
        out = logical_and(g.column("a"), g.column("b"))
        # TRUE AND NULL = NULL; FALSE AND NULL = FALSE; NULL AND NULL = NULL
        assert out.valid_mask().tolist() == [False, True, False]
        assert out.data[1] == False  # noqa: E712

    def test_kleene_or(self, make_gtable):
        g = make_gtable(
            {"a": [True, False, None], "b": [None, None, None]},
            [("a", "bool"), ("b", "bool")],
        )
        out = logical_or(g.column("a"), g.column("b"))
        # TRUE OR NULL = TRUE; FALSE OR NULL = NULL
        assert out.valid_mask().tolist() == [True, False, False]
        assert out.data[0] == True  # noqa: E712

    def test_not(self, make_gtable):
        g = make_gtable({"a": [True, False, None]}, [("a", "bool")])
        out = logical_not(g.column("a"))
        assert out.data.tolist()[:2] == [False, True]
        assert out.valid_mask().tolist() == [True, True, False]

    def test_is_null(self, make_gtable):
        g = make_gtable({"a": [1, None]}, [("a", "int64")])
        assert is_null(g.column("a")).data.tolist() == [False, True]
        assert is_null(g.column("a"), negate=True).data.tolist() == [True, False]


class TestPredicates:
    def test_in_list_numeric(self, make_gtable):
        g = make_gtable({"v": [1, 2, 3]}, [("v", "int64")])
        assert in_list(g.column("v"), [1, 3]).data.tolist() == [True, False, True]

    def test_in_list_strings(self, make_gtable):
        g = make_gtable({"s": ["a", "b", "c"]}, [("s", "string")])
        assert in_list(g.column("s"), ["b", "c"]).data.tolist() == [False, True, True]

    def test_like_prefix_suffix(self, make_gtable):
        g = make_gtable(
            {"s": ["PROMO BURNISHED", "STANDARD BRASS", "PROMO PLATED"]}, [("s", "string")]
        )
        assert like(g.column("s"), "PROMO%").data.tolist() == [True, False, True]
        assert like(g.column("s"), "%BRASS").data.tolist() == [False, True, False]

    def test_like_underscore(self, make_gtable):
        g = make_gtable({"s": ["cat", "cart"]}, [("s", "string")])
        assert like(g.column("s"), "ca_").data.tolist() == [True, False]

    def test_not_like(self, make_gtable):
        g = make_gtable({"s": ["special request", "ordinary"]}, [("s", "string")])
        assert like(g.column("s"), "%special%", negate=True).data.tolist() == [False, True]

    def test_contains(self, make_gtable):
        g = make_gtable({"s": ["hello world", "goodbye"]}, [("s", "string")])
        assert contains(g.column("s"), "world").data.tolist() == [True, False]

    def test_like_regex_chars_escaped(self, make_gtable):
        g = make_gtable({"s": ["a.b", "axb"]}, [("s", "string")])
        assert like(g.column("s"), "a.b").data.tolist() == [True, False]


class TestConditionals:
    def test_case_when(self, make_gtable):
        g = make_gtable({"v": [1.0, 5.0, 9.0]}, [("v", "float64")])
        c1 = compare("lt", g.column("v"), 3.0)
        c2 = compare("lt", g.column("v"), 7.0)
        out = case_when([c1, c2], [10.0, 20.0], 30.0)
        assert out.data.tolist() == [10.0, 20.0, 30.0]

    def test_case_first_match_wins(self, make_gtable):
        g = make_gtable({"v": [1.0]}, [("v", "float64")])
        c1 = compare("lt", g.column("v"), 100.0)
        c2 = compare("lt", g.column("v"), 100.0)
        out = case_when([c1, c2], [1.0, 2.0], 3.0)
        assert out.data.tolist() == [1.0]

    def test_coalesce(self, make_gtable):
        g = make_gtable({"a": [None, 2.0], "b": [1.5, 9.0]}, [("a", "float64"), ("b", "float64")])
        out = coalesce([g.column("a"), g.column("b")])
        assert out.data.tolist() == [1.5, 2.0]


class TestDatesStringsCasts:
    def test_extract_parts(self, make_gtable):
        g = make_gtable({"d": ["1995-09-17"]}, [("d", "date")])
        assert extract_date_part("year", g.column("d")).data.tolist() == [1995]
        assert extract_date_part("month", g.column("d")).data.tolist() == [9]
        assert extract_date_part("day", g.column("d")).data.tolist() == [17]

    def test_substring(self, make_gtable):
        g = make_gtable({"s": ["ABCDEF", "XY"]}, [("s", "string")])
        out = substring(g.column("s"), 1, 2)
        assert out.to_host(False).to_pylist() == ["AB", "XY"]

    def test_cast_int_to_float(self, make_gtable):
        g = make_gtable({"v": [1, 2]}, [("v", "int64")])
        out = cast_column(g.column("v"), FLOAT64)
        assert out.dtype is FLOAT64

    def test_cast_string_to_int(self, make_gtable):
        g = make_gtable({"s": ["11", "42"]}, [("s", "string")])
        out = cast_column(g.column("s"), INT64)
        assert out.data.tolist() == [11, 42]

    def test_fill_constant(self, dev):
        out = fill_constant(dev, 3, 7)
        assert out.data.tolist() == [7, 7, 7]
        s = fill_constant(dev, 2, "hi", STRING)
        assert s.to_host(False).to_pylist() == ["hi", "hi"]


class TestHashPartition:
    def test_partition_ids_in_range(self, make_gtable):
        g = make_gtable({"k": list(range(100))}, [("k", "int64")])
        ids = hash_partition_ids([g.column("k")], 4)
        assert ids.min() >= 0 and ids.max() < 4

    def test_equal_keys_same_partition(self, make_gtable):
        g = make_gtable({"k": [5, 5, 9, 9]}, [("k", "int64")])
        ids = hash_partition_ids([g.column("k")], 8)
        assert ids[0] == ids[1] and ids[2] == ids[3]

    def test_string_keys_deterministic(self, make_gtable):
        g1 = make_gtable({"s": ["a", "b", "c"]}, [("s", "string")])
        g2 = make_gtable({"s": ["c", "a", "b"]}, [("s", "string")])
        ids1 = hash_partition_ids([g1.column("s")], 4)
        ids2 = hash_partition_ids([g2.column("s")], 4)
        assert ids1[0] == ids2[1]  # "a" hashes identically
        assert ids1[2] == ids2[0]  # "c" too
