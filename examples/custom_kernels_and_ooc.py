#!/usr/bin/env python3
"""Advanced engine features: kernel swapping, out-of-core, fallback.

Demonstrates three §3.2/§3.4 mechanisms:

1. **operator implementation registry** — switch the group-by between
   libcudf's (sort-based for strings) and a custom hash kernel, and the
   join between hash and sort-merge, without touching the plan;
2. **out-of-core execution** — a device with a deliberately tiny memory
   limit spills cached tables to pinned host memory and streams pipelines
   in batches, still producing exact results;
3. **graceful CPU fallback** — an engine without spilling falls back to
   the host CPU engine when the device cannot hold the data.

Run:  python examples/custom_kernels_and_ooc.py
"""

from repro.core import SiriusEngine
from repro.gpu.specs import A100_40G, GH200
from repro.hosts import CpuEngine, MiniDuck
from repro.tpch import generate_tpch, tpch_query


def main() -> None:
    data = generate_tpch(sf=0.05)
    host = MiniDuck()
    host.load_tables(data)

    # --- 1. implementation registry -------------------------------------
    plan = host.plan(tpch_query(10))  # string-keyed group-by
    engine = SiriusEngine.for_spec(GH200)
    engine.warm_cache(data)
    print("Operator implementations available:",
          {k: engine.registry.available(k) for k in ("join", "groupby")})
    for impl in ("libcudf", "custom"):
        engine.use_implementation("groupby", impl)
        result = engine.execute(plan, data)
        print(
            f"Q10 with {impl:7s} group-by: {engine.last_profile.sim_seconds*1000:7.3f} ms "
            f"({result.num_rows} rows)"
        )

    # --- 2. out-of-core: tiny device + batched pipelines -----------------
    # The SF-0.05 database is ~35 MB but the caching region only gets
    # ~32 MB: warming every table forces the LRU spill path (tables
    # shuttle between device and pinned host memory over PCIe), and
    # pipelines stream in 20k-row batches (3.4's out-of-core execution).
    small = SiriusEngine.for_spec(
        A100_40G,
        memory_limit_gb=0.4,
        caching_fraction=0.08,
        batch_rows=20_000,
        enable_spill=True,
    )
    small.warm_cache(data)
    plan1 = host.plan(tpch_query(1))
    result = small.execute(plan1, data)
    stats = small.buffer_manager.stats()
    print(
        f"\nOut-of-core Q1 with a 32 MB caching region: {result.num_rows} rows, "
        f"{stats['spills']} spills, {stats['pinned_host_bytes']/1e6:.1f} MB pinned"
    )

    reference = SiriusEngine.for_spec(GH200)
    assert result.to_pydict() == reference.execute(plan1, data).to_pydict()
    print("out-of-core result identical to the in-memory run")

    # --- 3. graceful CPU fallback ----------------------------------------
    strict = SiriusEngine.for_spec(
        A100_40G, memory_limit_gb=0.004, enable_spill=False,
        host_executor=lambda p: CpuEngine().execute(p, data),
    )
    result = strict.execute(plan1, data)  # device OOMs -> host engine runs it
    print(
        f"\n4 MB device fell back to the host engine "
        f"({strict.fallback.fallback_count} fallback events): {result.num_rows} rows"
    )
    print("last fallback reason:", strict.fallback.events[-1].reason[:80])


if __name__ == "__main__":
    main()
