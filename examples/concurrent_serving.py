#!/usr/bin/env python3
"""Concurrent multi-query serving on one simulated GPU.

Walks the serving subsystem (repro.sched) end to end:

1. serve a mixed TPC-H workload (Q1/Q3/Q6) on one engine with four
   worker streams and round-robin fair-share scheduling;
2. show the throughput win over running the same queries back to back;
3. compare FIFO vs shortest-expected-cost-first p50 latency under a
   bursty open-loop arrival process;
4. demonstrate admission control: a bounded wait queue, working-set
   gating, and a deadline that expires *while queued* (charged against
   the budget, so the query is never admitted with a fresh deadline).

Everything is deterministic: same seed, same schedule, same report.

Run:  python examples/concurrent_serving.py [sf]
"""

import sys

from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import MiniDuck
from repro.sched import (
    AdmissionController,
    ServingScheduler,
    WorkloadDriver,
    WorkloadQuery,
    estimate_plan,
)
from repro.tpch import generate_tpch, tpch_query

SF = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
SEED = 19920101


def fresh_engine(data):
    engine = SiriusEngine.for_spec(GH200)
    engine.warm_cache(data)  # hot runs, like the paper's methodology
    return engine


def main():
    data = generate_tpch(sf=SF, seed=SEED)
    host = MiniDuck()
    host.load_tables(data)
    mix = [WorkloadQuery(f"q{n}", host.plan(tpch_query(n))) for n in (1, 3, 6)]

    # -- 1. serialized baseline: the same queries, back to back ------------
    engine = fresh_engine(data)
    serialized = 0.0
    for q in mix:
        engine.execute(q.plan, data)
        serialized += engine.last_profile.sim_seconds

    # -- 2. concurrent serving: four streams, fair-share -------------------
    engine = fresh_engine(data)
    sched = ServingScheduler(engine, policy="fair", streams=4, seed=SEED)
    for q in mix:
        sched.submit(q.plan, data, label=q.label, arrival_s=0.0)
    report = sched.run()
    print(report.summary())
    print(
        f"\nserialized back-to-back: {serialized * 1e3:.3f} ms sim; "
        f"concurrent makespan: {report.makespan_s * 1e3:.3f} ms sim "
        f"({serialized / report.makespan_s:.2f}x)\n"
    )

    # -- 3. FIFO vs SJF under a bursty open-loop workload -------------------
    for policy in ("fifo", "sjf"):
        engine = fresh_engine(data)
        driver = WorkloadDriver(engine, data, mix, seed=SEED)
        rep = driver.open_loop(
            num_queries=24, rate_qps=8000.0, policy=policy, streams=2
        )
        p50 = rep.latency["total_s"]["p50"]
        print(
            f"open loop @8000 q/s, policy={policy:4s}: "
            f"p50={p50 * 1e3:.3f} ms  p99={rep.latency['total_s']['p99'] * 1e3:.3f} ms  "
            f"throughput={rep.throughput_qps:.0f} q/s"
        )

    # -- 4. a deadline spent entirely in the admission queue ----------------
    # Admission headroom sized so the first query's reservation fills it:
    # the second query waits in the queue while the first runs, and its
    # whole (tiny) deadline budget is consumed by queue wait.
    engine = fresh_engine(data)
    pool = engine.device.processing_pool
    big = estimate_plan(mix[0].plan, data, engine.device)
    admission = AdmissionController(
        pool, headroom_fraction=(big.working_set_bytes + 16) / pool.capacity
    )
    sched = ServingScheduler(
        engine, policy="fifo", streams=1, seed=SEED, admission=admission
    )
    sched.submit(mix[0].plan, data, label="big", arrival_s=0.0)
    sched.submit(
        mix[2].plan, data, label="doomed", arrival_s=0.0, deadline_s=1e-7
    )
    report = sched.run()
    doomed = next(j for j in report.jobs if j.label == "doomed")
    print(
        f"\ndeadline-in-queue demo: job {doomed.label!r} -> {doomed.state} "
        f"({type(doomed.error).__name__}), queue wait charged: "
        f"{doomed.queue_wait_s * 1e6:.2f} us of a "
        f"{doomed.deadline_s * 1e6:.2f} us budget"
    )


if __name__ == "__main__":
    main()
