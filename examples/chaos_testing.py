#!/usr/bin/env python3
"""Chaos testing the distributed warehouse with seeded fault injection.

Walks the fault model end to end on a 4-node Sirius cluster:

1. a node crash mid-query — heartbeat-timeout detection, eviction,
   re-partitioning, fragment re-execution on the survivors;
2. NCCL link drops — exchange retry with exponential backoff;
3. persistent device-OOM spikes — degradation down the tier ladder to
   the per-pipeline CPU standby engine;
4. a deadline DNF — the unified resource envelope aborting a query.

Every fault is scheduled on the simulated clock by a seeded FaultPlan,
so each run replays exactly.

Run:  python examples/chaos_testing.py [sf]
"""

import sys

from repro.faults import FaultPlan
from repro.hosts import MiniDoris, MiniDuck, NodeFailureError
from repro.core import DidNotFinishError
from repro.tpch import generate_tpch, tpch_query


def normalise(table):
    """Float-tolerant row multiset (summation order differs across
    cluster sizes, so the last ulp of aggregates may too)."""
    return sorted(
        tuple(f"{v:.6g}" if isinstance(v, float) else repr(v) for v in row)
        for row in table.to_rows()
    )


def fresh_cluster(data, **kwargs):
    db = MiniDoris(num_nodes=4, mode="sirius", **kwargs)
    db.load_tables(data)
    db.warm_caches()
    return db


def main() -> None:
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    print(f"TPC-H SF {sf}, 4-node Sirius cluster\n")
    data = generate_tpch(sf=sf)

    reference = MiniDuck()
    reference.load_tables(data)
    want = normalise(reference.execute(tpch_query(3)).table)

    # -- 1. node crash mid-query ------------------------------------------
    print("=== node crash mid-query ===")
    db = fresh_cluster(data, heartbeat_timeout_s=0.005)
    injector = db.install_faults(FaultPlan(seed=42).crash_node(2, at=2e-4))
    result = db.execute(tpch_query(3))
    got = normalise(result.table)
    print(f"Q3 finished on {db.cluster.num_nodes} survivors, "
          f"results match fault-free: {got == want}")
    for event in db.event_log:
        print(f"  {event}")
    print(f"  faults fired: {injector.summary()}")

    # -- 2. link drops on the exchange fabric -----------------------------
    print("\n=== transient link drops ===")
    db = fresh_cluster(data)
    db.install_faults(FaultPlan(seed=7).drop_links(at=0.0, count=3))
    result = db.execute(tpch_query(3))
    print(f"Q3 completed; {result.exchange_retries} collectives retried "
          f"(backoff charged to the clock):")
    for retry in result.retry_events:
        print(f"  retry {retry.attempt} of {retry.kind} after "
              f"{retry.backoff_s * 1e6:.0f} us backoff at t={retry.sim_time * 1e3:.3f} ms")

    # -- 3. OOM spikes -> tiered degradation ------------------------------
    print("\n=== persistent device OOM on node 1 ===")
    db = fresh_cluster(data)
    db.install_faults(FaultPlan(seed=3).oom_spike(at=0.0, count=8, node_id=1))
    db.execute(tpch_query(6))
    print(db._node_engines[1].fallback.summary())
    for event in db._node_engines[1].fallback.events:
        print(f"  plan {event.plan_fingerprint}: {event.exception_type} "
              f"-> tier {event.tier} (tried {', '.join(event.tiers_attempted)})")

    # -- 4. deadline DNF ---------------------------------------------------
    print("\n=== deadline ===")
    db = fresh_cluster(data)
    try:
        db.execute(tpch_query(1), deadline_s=1e-6)
    except DidNotFinishError as exc:
        print(f"Q1 under a 1 us deadline: DNF ({exc})")

    # -- 5. losing the coordinator is fatal --------------------------------
    print("\n=== coordinator loss ===")
    db = fresh_cluster(data, heartbeat_timeout_s=0.005)
    db.install_faults(FaultPlan().crash_node(0, at=2e-4))
    try:
        db.execute(tpch_query(1))
    except (RuntimeError, NodeFailureError) as exc:
        print(f"unrecoverable, as in Doris: {exc}")


if __name__ == "__main__":
    main()
