#!/usr/bin/env python3
"""Distributed TPC-H on a 4-node cluster (a compact Table 2 run).

Shows the paper's §3.3 query lifecycle: the MiniDoris coordinator plans
and fragments each query; compute nodes execute fragments locally —
either with the Doris CPU engine, or (in sirius mode) with per-node Sirius
engines on A100 GPUs exchanging data through the NCCL-style exchange
service layer.

Run:  python examples/distributed_doris.py [sf]
"""

import sys

from repro.bench import DistributedHarness
from repro.plan import Plan
from repro.tpch import tpch_query


def main() -> None:
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"Building three 4-node clusters over TPC-H SF {sf} ...")
    harness = DistributedHarness(sf=sf, num_nodes=4)

    # Peek at how Q3 is fragmented for the Sirius cluster: the paper's
    # Table 2 discussion notes that the Doris plan shuffles both orders
    # and lineitem, making Q3 exchange-bound.
    print("\nQ3 fragment plan (sirius mode):")
    for fragment in harness.sirius.plan_fragments(tpch_query(3)):
        print(f"- {fragment.describe()}")
        for line in Plan(fragment.plan).explain().splitlines():
            print(f"    {line}")

    result = harness.run()
    print("\nTable 2 - distributed TPC-H (simulated times):")
    print(result.table())

    q3 = result.row(3)
    print(
        f"\nQ3 moved {q3.exchanged_bytes / 1e6:.2f} MB between nodes; "
        f"exchange is {q3.sirius_exchange_s / q3.sirius_s:.0%} of Sirius' total - "
        "the bottleneck the paper identifies."
    )
    q1 = result.row(1)
    print(
        f"Q1: GPU compute is only {q1.sirius_compute_s / q1.sirius_s:.0%} of the total; "
        "the coordinator/control-plane ('other') dominates, as in the paper."
    )


if __name__ == "__main__":
    main()
