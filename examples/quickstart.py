#!/usr/bin/env python3
"""Quickstart: drop-in GPU acceleration for an embedded SQL database.

This walks the paper's core user story end to end:

1. spin up MiniDuck (the DuckDB role) and load a small TPC-H database;
2. run SQL on its own CPU engine;
3. install the Sirius extension — *zero changes to the host* — and run the
   same SQL on the (simulated) GH200 GPU;
4. look at the speedup and the Figure-5-style operator breakdown.

Run:  python examples/quickstart.py
"""

from repro.core import SiriusEngine
from repro.gpu.specs import GH200
from repro.hosts import CpuEngine, MiniDuck, SiriusExtension
from repro.tpch import generate_tpch

SQL = """
select
    l_returnflag,
    l_linestatus,
    sum(l_quantity) as sum_qty,
    sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
    avg(l_discount) as avg_disc,
    count(*) as count_order
from lineitem
where l_shipdate <= date '1998-12-01' - interval '90' day
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus
"""


def main() -> None:
    print("Generating TPC-H at scale factor 0.05 ...")
    data = generate_tpch(sf=0.05)

    db = MiniDuck()
    db.load_tables(data)

    print(f"\n-- running on {db.active_engine} --")
    cpu_result = db.execute(SQL)
    print(cpu_result.table.pretty())
    print(f"simulated time: {cpu_result.sim_seconds * 1000:.3f} ms")

    # Drop-in acceleration: the host database is unchanged; it just hands
    # its optimised plans (as Substrait JSON) to the extension.
    sirius = SiriusEngine.for_spec(GH200)
    db.install_extension(SiriusExtension(sirius, fallback_engine=CpuEngine()))
    sirius.warm_cache(data)  # hot-run methodology, like the paper

    print(f"\n-- running on {db.active_engine} --")
    gpu_result = db.execute(SQL)
    print(gpu_result.table.pretty())
    print(f"simulated time: {gpu_result.sim_seconds * 1000:.3f} ms")
    print(f"speedup: {cpu_result.sim_seconds / gpu_result.sim_seconds:.2f}x")

    print("\nGPU operator breakdown (Figure-5 style):")
    total = sum(gpu_result.profile.breakdown.values())
    for category, seconds in sorted(
        gpu_result.profile.breakdown.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {category:12s} {seconds * 1e6:9.1f} us  ({seconds / total:5.1%})")

    print("\nEngine statistics:")
    for key, value in sirius.stats().items():
        print(f"  {key}: {value}")

    assert cpu_result.table.to_pydict().keys() == gpu_result.table.to_pydict().keys()
    print("\nCPU and GPU engines returned identical schemas - done.")


if __name__ == "__main__":
    main()
