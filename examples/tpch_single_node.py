#!/usr/bin/env python3
"""Single-node TPC-H comparison (a compact Figure 4 + Figure 5 run).

Runs a subset of TPC-H on the three single-node engines — MiniDuck (the
DuckDB role), ClickLite (the ClickHouse role), and Sirius-accelerated
MiniDuck — on cost-normalised devices, then prints the end-to-end table
and the Sirius operator breakdown bars.

Run:  python examples/tpch_single_node.py [sf] [q1,q2,...]
e.g.  python examples/tpch_single_node.py 0.1 1,3,6,9,13,21
"""

import sys

from repro.bench import SingleNodeHarness


def main() -> None:
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    if len(sys.argv) > 2:
        queries = [int(q) for q in sys.argv[2].split(",")]
    else:
        queries = [1, 3, 5, 6, 9, 10, 13, 18, 21]

    print(f"Preparing engines at TPC-H scale factor {sf} ...")
    harness = SingleNodeHarness(sf=sf)
    result = harness.run(queries=queries)

    print("\nFigure 4 (subset) - simulated hot-run times, cost-normalised devices:")
    print(result.figure4_table())

    print(f"\n{result.figure5_table()}")

    print(
        f"\nSirius geomean speedup: {result.speedup_vs_duckdb:.2f}x vs MiniDuck, "
        f"{result.speedup_vs_clickhouse:.2f}x vs ClickLite"
    )
    dnf = [t.query for t in result.timings if t.clickhouse_status == "dnf"]
    unsupported = [t.query for t in result.timings if t.clickhouse_status == "unsupported"]
    if dnf:
        print(f"ClickLite did not finish: {['Q%d' % q for q in dnf]}")
    if unsupported:
        print(f"ClickLite unsupported:    {['Q%d' % q for q in unsupported]}")


if __name__ == "__main__":
    main()
