"""Counters and gauges for the observability layer.

Counters accumulate (bytes shuffled, buffers freed, chunks pushed);
gauges track a current value plus its high-water mark (pool bytes in
use, cached-table count).  Like spans, metrics never touch a clock.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Counter", "Gauge", "MetricSet"]


@dataclass
class Counter:
    """A monotonically accumulating value."""

    name: str
    value: float = 0.0

    def add(self, delta: float = 1) -> None:
        self.value += delta


@dataclass
class Gauge:
    """A current value with a high-water mark."""

    name: str
    value: float = 0.0
    high_water: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value


class MetricSet:
    """A named collection of counters and gauges."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}

    def count(self, name: str, value: float = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.add(value)

    def gauge(self, name: str, value: float) -> None:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        gauge.set(value)

    def counter_value(self, name: str) -> float:
        counter = self.counters.get(name)
        return counter.value if counter is not None else 0.0

    def gauge_value(self, name: str) -> float:
        gauge = self.gauges.get(name)
        return gauge.value if gauge is not None else 0.0

    def high_water(self, name: str) -> float:
        gauge = self.gauges.get(name)
        return gauge.high_water if gauge is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "high_water": g.high_water}
                for n, g in sorted(self.gauges.items())
            },
        }

    def __repr__(self) -> str:
        return f"MetricSet(counters={len(self.counters)}, gauges={len(self.gauges)})"
