"""Structured tracing on the simulated clock.

The observability layer records **hierarchical spans** — query → pipeline
→ operator on a single node; query → fragment → exchange → collective in
the distributed engine — with attributes (rows, bytes moved, device-memory
watermarks, fallback tiers) and point-in-time **events** (exchange
retries, kernel relaunches, degradations).

Two implementations share one duck-typed interface:

* :data:`NULL_TRACER` — the default everywhere.  Every method is a no-op
  and allocates nothing, so instrumented hot paths cost one attribute
  lookup plus an empty call when tracing is off; simulated results and
  rendered benchmark output are byte-identical with or without it.
* :class:`Tracer` — records spans against :class:`~repro.gpu.clock.SimClock`
  timestamps.  Tracing never advances any clock: enabling it cannot move
  a simulated nanosecond (the overhead guarantee the golden tests pin).

Timestamps are read from whichever clock a span is opened against, so a
distributed trace carries spans from several clock domains.  Parent/child
nesting is only meaningful *within* one domain (node clocks drift apart
between collectives, exactly like real distributed tracing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .metrics import MetricSet

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


@dataclass
class SpanEvent:
    """A point-in-time annotation on a span (retry, fallback, fault)."""

    name: str
    sim_time: float
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "sim_time": self.sim_time, **self.attributes}


@dataclass
class Span:
    """One traced interval of simulated time."""

    span_id: int
    parent_id: int | None
    name: str
    kind: str  # "query" | "pipeline" | "operator" | "fragment" | "exchange" | "collective" | ...
    start: float
    end: float | None = None
    attributes: dict = field(default_factory=dict)
    events: list = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def nests_within(self, parent: "Span", tol: float = 1e-12) -> bool:
        """Interval containment check (used by the property tests)."""
        if parent.end is None or self.end is None:
            return False
        return self.start >= parent.start - tol and self.end <= parent.end + tol

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "events": [e.to_dict() for e in self.events],
        }


class _NullSpan:
    """Reusable no-op span handle; also the null context manager."""

    __slots__ = ()
    is_recording = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attributes) -> None:
        pass

    def event(self, name: str, **attributes) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: records nothing, costs (almost) nothing."""

    enabled = False

    def span(self, name: str, kind: str = "span", clock=None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def record_span(
        self, name: str, kind: str, start: float, end: float, parent=None, **attributes
    ) -> None:
        pass

    def event(self, name: str, sim_time: float = 0.0, **attributes) -> None:
        pass

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def mark(self) -> int:
        return 0

    def spans_since(self, mark: int) -> tuple:
        return ()

    def find_events(self, name: str) -> tuple:
        return ()


NULL_TRACER = NullTracer()


class _SpanHandle:
    """Context manager binding one open :class:`Span` to its clock."""

    __slots__ = ("tracer", "span", "clock")
    is_recording = True

    def __init__(self, tracer: "Tracer", span: Span, clock):
        self.tracer = tracer
        self.span = span
        self.clock = clock

    def __enter__(self) -> "_SpanHandle":
        self.span.start = self.clock.now
        self.tracer._open(self.span)
        return self

    def __exit__(self, *exc) -> bool:
        self.span.end = self.clock.now
        self.tracer._close(self.span)
        return False

    def set(self, **attributes) -> None:
        self.span.attributes.update(attributes)

    def event(self, name: str, **attributes) -> None:
        self.span.events.append(SpanEvent(name, self.clock.now, attributes))


class Tracer:
    """Records spans, events, and metrics for one simulated run.

    A tracer may be shared across layers (engine, exchange, hosts) and
    across clock domains; spans opened while another span is open become
    its children (execution is sequential under the simulated clock, so a
    single stack gives the correct tree).

    Args:
        clock: Default clock for spans/events that do not pass their own.
    """

    enabled = True

    def __init__(self, clock=None):
        self.clock = clock
        self.spans: list[Span] = []
        self.root_events: list[SpanEvent] = []
        self.metrics = MetricSet()
        self._stack: list[Span] = []
        self._next_id = 1

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, kind: str = "span", clock=None, **attributes) -> _SpanHandle:
        """Open a span as a context manager; closed (end stamped) on exit,
        including exceptional exit."""
        clock = clock if clock is not None else self.clock
        if clock is None:
            raise ValueError(f"span {name!r} needs a clock (tracer has no default)")
        span = Span(0, None, name, kind, 0.0, attributes=dict(attributes))
        return _SpanHandle(self, span, clock)

    def record_span(
        self, name: str, kind: str, start: float, end: float, parent=None, **attributes
    ) -> Span:
        """Insert a completed span retroactively with an explicit interval.

        Used where intervals interleave and cannot bracket a ``with`` block
        (per-operator time inside a chunked pipeline, collectives whose
        start is only known as ``max(arrivals)``).  ``parent`` may be a
        span handle; by default the innermost open span is the parent.
        """
        if parent is not None:
            parent_id = parent.span.span_id if isinstance(parent, _SpanHandle) else parent.span_id
        else:
            parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(
            self._take_id(), parent_id, name, kind, start, end, attributes=dict(attributes)
        )
        self.spans.append(span)
        return span

    def _open(self, span: Span) -> None:
        span.span_id = self._take_id()
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self.spans.append(span)
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        # Tolerate exception-unwound children left on the stack.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    def _take_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    # -- events & metrics ----------------------------------------------------

    def event(self, name: str, sim_time: float | None = None, **attributes) -> None:
        """Attach an event to the innermost open span (root list otherwise)."""
        if sim_time is None:
            if self.clock is not None:
                sim_time = self.clock.now
            else:
                sim_time = self._stack[-1].start if self._stack else 0.0
        event = SpanEvent(name, sim_time, attributes)
        if self._stack:
            self._stack[-1].events.append(event)
        else:
            self.root_events.append(event)

    def count(self, name: str, value: float = 1) -> None:
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    # -- queries -------------------------------------------------------------

    def mark(self) -> int:
        """Bookmark the span list; pair with :meth:`spans_since`."""
        return len(self.spans)

    def spans_since(self, mark: int) -> list[Span]:
        return self.spans[mark:]

    def find_events(self, name: str) -> list[SpanEvent]:
        """All events with the given name, across every span plus roots."""
        found = [e for s in self.spans for e in s.events if e.name == name]
        found.extend(e for e in self.root_events if e.name == name)
        return found

    def span_tree(self, root: Span) -> list[Span]:
        """``root`` plus every recorded descendant, in recording order."""
        keep = {root.span_id}
        out = [root]
        for span in self.spans:
            if span.parent_id in keep and span.span_id not in keep:
                keep.add(span.span_id)
                out.append(span)
        return out

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "spans": [s.to_dict() for s in self.spans],
            "events": [e.to_dict() for e in self.root_events],
            "metrics": self.metrics.to_dict(),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self.spans)}, open={len(self._stack)})"
