"""Per-query profiles: the aggregation layer over spans and clock buckets.

A :class:`QueryProfile` is the one structure every harness consumes:

* the single-node executor fills the Figure-5 attribution (per-category
  clock buckets plus per-operator timings);
* the distributed executor fills the Table-2 decomposition (compute vs
  exchange vs other/coordinator time, exchanged bytes, retry counts);
* when a real :class:`~repro.obs.Tracer` is installed, the profile also
  carries the query's span tree and the device-memory high-water mark.

``to_json()`` is the ``--trace`` export format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["OperatorTiming", "QueryProfile"]


@dataclass
class OperatorTiming:
    """Simulated time spent in one operator of one pipeline."""

    pipeline: int
    operator: str
    category: str
    seconds: float
    rows_out: int

    def to_dict(self) -> dict:
        return {
            "pipeline": self.pipeline,
            "operator": self.operator,
            "category": self.category,
            "seconds": self.seconds,
            "rows_out": self.rows_out,
        }


@dataclass
class QueryProfile:
    """Timing and counters for one query execution."""

    sim_seconds: float = 0.0
    breakdown: dict = field(default_factory=dict)  # category -> seconds
    kernel_count: int = 0
    pipelines_run: int = 0
    chunks_processed: int = 0
    output_rows: int = 0
    operator_timings: list = field(default_factory=list)
    # Observability extensions (defaults keep pre-tracing constructors valid).
    label: str = ""
    compute_seconds: float | None = None  # Table-2 split; derived if unset
    exchange_seconds: float | None = None
    other_seconds: float | None = None
    exchanged_bytes: int = 0
    retries: int = 0
    fallback_tier: str | None = None
    device_mem_peak: int = 0
    spans: list = field(default_factory=list)  # Span objects; empty w/ null tracer
    # Copy/compute overlap (async streams): per-stream busy seconds during
    # this query, and how much of that stream time ran hidden behind host
    # compute.  Both zero/empty when overlap mode is off.
    stream_busy: dict = field(default_factory=dict)  # stream name -> seconds
    overlap_hidden_s: float = 0.0
    # Out-of-core spill activity during this query (deltas of the buffer
    # manager's fragment counters); empty unless partitions actually moved.
    spill: dict = field(default_factory=dict)
    # Pipeline fusion (``SiriusEngine(fusion=True)``): how many fused
    # regions launched and how many intermediate-materialisation bytes the
    # cost model stopped charging for.  Both zero when fusion is off.
    fused_kernels: int = 0
    fusion_saved_bytes: int = 0

    def breakdown_fractions(self) -> dict:
        total = sum(self.breakdown.values())
        if total == 0:
            return {k: 0.0 for k in self.breakdown}
        return {k: v / total for k, v in self.breakdown.items()}

    # -- Table-2 decomposition ----------------------------------------------

    def table2_split(self) -> dict[str, float]:
        """Compute / exchange / other seconds, exactly as Table 2 reports.

        Distributed runs fill the three fields explicitly (the coordinator
        overhead is "other"); for a single-node profile the split is
        derived: exchange from its clock bucket (zero when the exchange
        layer is bypassed), everything else is compute.
        """
        if self.compute_seconds is not None:
            return {
                "compute": self.compute_seconds,
                "exchange": self.exchange_seconds or 0.0,
                "other": self.other_seconds or 0.0,
            }
        exchange = self.breakdown.get("exchange", 0.0)
        return {
            "compute": max(self.sim_seconds - exchange, 0.0),
            "exchange": exchange,
            "other": 0.0,
        }

    def overlap_efficiency(self) -> float:
        """Fraction of issued stream time hidden behind host compute
        (1.0 = fully overlapped copies, 0.0 = fully exposed or no streams)."""
        total = sum(self.stream_busy.values())
        if total <= 0.0:
            return 0.0
        return self.overlap_hidden_s / total

    def table2_fractions(self) -> dict[str, float]:
        split = self.table2_split()
        total = sum(split.values())
        if total == 0:
            return {k: 0.0 for k in split}
        return {k: v / total for k, v in split.items()}

    # -- span access ---------------------------------------------------------

    def span_events(self, name: str | None = None) -> list:
        """Events across the profile's spans, optionally filtered by name."""
        events = [e for s in self.spans for e in s.events]
        if name is not None:
            events = [e for e in events if e.name == name]
        return events

    def operator_spans(self) -> list:
        return [s for s in self.spans if s.kind == "operator"]

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        out = self._base_dict()
        # Fusion counters appear only when fusion actually fired, keeping
        # fusion-off trace exports byte-identical to the pre-fusion format.
        if self.fused_kernels or self.fusion_saved_bytes:
            out["fused_kernels"] = self.fused_kernels
            out["fusion_saved_bytes"] = self.fusion_saved_bytes
        return out

    def _base_dict(self) -> dict:
        return {
            "label": self.label,
            "sim_seconds": self.sim_seconds,
            "breakdown": dict(self.breakdown),
            "table2_split": self.table2_split(),
            "table2_fractions": self.table2_fractions(),
            "kernel_count": self.kernel_count,
            "pipelines_run": self.pipelines_run,
            "chunks_processed": self.chunks_processed,
            "output_rows": self.output_rows,
            "exchanged_bytes": self.exchanged_bytes,
            "retries": self.retries,
            "fallback_tier": self.fallback_tier,
            "device_mem_peak": self.device_mem_peak,
            "stream_busy": dict(self.stream_busy),
            "overlap_hidden_s": self.overlap_hidden_s,
            "overlap_efficiency": self.overlap_efficiency(),
            "spill": dict(self.spill),
            "operator_timings": [t.to_dict() for t in self.operator_timings],
            "spans": [s.to_dict() for s in self.spans],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def explain_analyze(self) -> str:
        """EXPLAIN ANALYZE-style report: per-operator simulated time."""
        lines = [
            f"total {self.sim_seconds * 1000:.3f} ms, "
            f"{self.kernel_count} kernels, {self.pipelines_run} pipelines, "
            f"{self.output_rows} rows out"
        ]
        current = None
        for t in self.operator_timings:
            if t.pipeline != current:
                lines.append(f"Pipeline {t.pipeline}:")
                current = t.pipeline
            lines.append(
                f"  {t.operator:<50s} {t.seconds * 1e6:10.1f} us"
                f"  [{t.category}]  rows={t.rows_out}"
            )
        return "\n".join(lines)
