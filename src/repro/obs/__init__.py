"""repro.obs: tracing, metrics, and per-query profiles.

The observability subsystem of the reproduction.  Everything is built on
the simulated clock and records **without advancing it** — enabling a
tracer cannot change a single simulated timing, which the golden-profile
tests pin down.

Entry points:

* :class:`Tracer` / :data:`NULL_TRACER` — span recording (the default
  null tracer makes all instrumentation free);
* :class:`MetricSet` (:class:`Counter`, :class:`Gauge`) — aggregates;
* :class:`QueryProfile` — the per-query report (Figure-5 breakdown,
  Table-2 compute/exchange/other split, span tree, JSON export).
"""

from .metrics import Counter, Gauge, MetricSet
from .profile import OperatorTiming, QueryProfile
from .tracer import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "MetricSet",
    "NULL_TRACER",
    "NullTracer",
    "OperatorTiming",
    "QueryProfile",
    "Span",
    "SpanEvent",
    "Tracer",
]
