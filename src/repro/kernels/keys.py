"""Key factorization shared by the join and group-by kernels.

Hash joins and hash aggregations both reduce (possibly multi-column,
possibly string) keys to dense integer codes.  This module performs that
reduction consistently across *two* tables at once so the codes are
directly comparable — which is what a shared hash function gives libcudf.

Null semantics differ by consumer and are explicit:

* joins: ``nulls_match=False`` — a NULL key never equals anything,
  including another NULL (SQL join semantics); such rows get code ``-1``;
* group-by: ``nulls_match=True`` — NULLs form one ordinary group
  (SQL ``GROUP BY`` semantics).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .gtable import GColumn

__all__ = ["factorize_keys", "radix_partition_ids", "NULL_CODE"]

NULL_CODE = np.int64(-1)


def radix_partition_ids(
    keys: Sequence[GColumn], num_partitions: int, level: int = 0
) -> np.ndarray:
    """Salted per-row partition ids for out-of-core radix partitioning.

    Delegates to the exchange layer's :func:`~repro.kernels.compute
    .hash_partition_ids` so partition routing and shuffle routing share
    one hash function; ``level`` salts recursion depths so a bucket that
    was too large at depth ``L`` spreads across children at ``L+1``.
    Rows whose keys are equal always receive the same id, which is what
    makes per-partition joins and group-bys exact.
    """
    from .compute import hash_partition_ids

    return hash_partition_ids(keys, num_partitions, level=level)


def _column_values(col: GColumn) -> np.ndarray:
    """Comparable value array for one column (decoded strings as objects)."""
    if col.dtype.is_string:
        # Compare by dictionary *values*: two tables have different dicts.
        return col.decoded()
    return col.data


def _column_mask(col: GColumn) -> np.ndarray:
    mask = col.valid_mask()
    if col.dtype.is_string:
        mask = mask & (col.data >= 0)
    return mask


def factorize_keys(
    left: Sequence[GColumn],
    right: Sequence[GColumn] = (),
    nulls_match: bool = False,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Reduce key columns to dense int64 codes, consistently across sides.

    Args:
        left: Key columns of the first table.
        right: Key columns of the second table (same count and comparable
            types); empty for single-table use (group-by).
        nulls_match: Whether NULL keys receive their own ordinary code
            (group-by) or the never-matching ``-1`` (join).

    Returns:
        ``(left_codes, right_codes, num_distinct)`` — int64 code arrays for
        each side (``right_codes`` empty if no right columns) and an upper
        bound on the number of distinct combined codes.
    """
    if not left:
        raise ValueError("factorize_keys needs at least one key column")
    if right and len(left) != len(right):
        raise ValueError("both sides must have the same number of key columns")
    n_left = len(left[0])
    n_right = len(right[0]) if right else 0

    combined = np.zeros(n_left + n_right, dtype=np.int64)
    any_null = np.zeros(n_left + n_right, dtype=np.bool_)
    running_card = 1

    for idx, lcol in enumerate(left):
        rcol = right[idx] if right else None
        values = _column_values(lcol)
        mask = _column_mask(lcol)
        if rcol is not None:
            values = np.concatenate([values, _column_values(rcol)])
            mask = np.concatenate([mask, _column_mask(rcol)])
        codes = np.zeros(len(values), dtype=np.int64)
        if bool(mask.any()):
            _, inverse = np.unique(values[mask], return_inverse=True)
            codes[mask] = inverse.astype(np.int64)
        card = int(codes[mask].max()) + 1 if bool(mask.any()) else 0
        # NULLs take a dedicated fresh code so they form their own group
        # (group-by) and never collide with a real value.
        codes[~mask] = card
        has_null = bool((~mask).any())
        col_card = card + (1 if has_null else 0)
        col_card = max(col_card, 1)
        combined = combined * np.int64(col_card) + codes
        any_null |= ~mask
        running_card *= col_card
        if running_card > 2**40:
            # Re-densify mid-way so many / high-cardinality key columns
            # cannot overflow the int64 combination.
            _, inv = np.unique(combined, return_inverse=True)
            combined = inv.astype(np.int64)
            running_card = int(combined.max()) + 1 if len(combined) else 1

    # Re-densify the combined codes across both sides.
    uniq, inverse = np.unique(combined, return_inverse=True)
    dense = inverse.astype(np.int64)
    if not nulls_match:
        dense[any_null] = NULL_CODE
    dense_l = dense[:n_left].copy()
    dense_r = dense[n_left:].copy()
    return dense_l, dense_r, len(uniq)
