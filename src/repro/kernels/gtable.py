"""Device-resident columns and tables (the kernel library's data model).

``GColumn``/``GTable`` mirror libcudf's ``column``/``table``: typed device
buffers plus an optional validity mask.  Strings keep the dictionary
encoding of the host format (codes on device, dictionary as metadata), but
for *cost purposes* a string column charges its logical character traffic —
libcudf streams actual characters through string kernels, and that is what
makes string-heavy queries (Q10, Q13, Q18) expensive in the paper.

Host <-> device conversion charges interconnect time on the owning device;
this is the cold-run cost the paper's measurement section excludes by
reporting hot runs (Sirius' buffer manager caches the device tables).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..columnar import Column, DType, Field, Schema, Table
from ..gpu.buffer import DeviceBuffer
from ..gpu.device import Device

__all__ = ["GColumn", "GTable", "NULL_INDEX"]

# libcudf-style sentinel for "no matching row" in join gather maps.
NULL_INDEX = np.int32(-1)


class GColumn:
    """One device-resident column."""

    __slots__ = ("dtype", "buffer", "validity", "dictionary", "device")

    def __init__(
        self,
        dtype: DType,
        buffer: DeviceBuffer,
        validity: DeviceBuffer | None = None,
        dictionary: np.ndarray | None = None,
    ):
        self.dtype = dtype
        self.buffer = buffer
        self.validity = validity
        self.dictionary = dictionary
        self.device: Device = buffer.device

    # -- construction -----------------------------------------------------

    @classmethod
    def from_array(
        cls,
        device: Device,
        dtype: DType,
        data: np.ndarray,
        validity: np.ndarray | None = None,
        dictionary: np.ndarray | None = None,
        region: str = "processing",
    ) -> "GColumn":
        """Place arrays on ``device`` without charging transfer time (used
        for kernel outputs, which are born on the device)."""
        buf = device.new_buffer(np.ascontiguousarray(data, dtype=dtype.numpy_dtype), region)
        vbuf = None
        if validity is not None and not bool(validity.all()):
            vbuf = device.new_buffer(np.ascontiguousarray(validity, dtype=np.bool_), region)
        return cls(dtype, buf, vbuf, dictionary)

    @classmethod
    def from_host(cls, device: Device, column: Column, region: str = "processing") -> "GColumn":
        """Copy a host column to the device, charging the interconnect."""
        device.htod(column.nbytes)
        return cls.from_array(
            device, column.dtype, column.data, column.is_valid_mask(), column.dictionary, region
        )

    # -- properties ---------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        return self.buffer.array

    def __len__(self) -> int:
        return len(self.buffer)

    @property
    def nbytes(self) -> int:
        total = self.buffer.nbytes
        if self.validity is not None:
            total += self.validity.nbytes
        return total

    @property
    def traffic_bytes(self) -> int:
        """Logical bytes a kernel streams when it touches every row.

        For strings this is the decoded character volume (plus codes), which
        is what a non-dictionary engine like libcudf actually moves.
        """
        if self.dtype.is_string and len(self) > 0 and self.dictionary is not None:
            if len(self.dictionary) > 0:
                avg_len = sum(len(str(s)) for s in self.dictionary) / len(self.dictionary)
            else:
                avg_len = 0.0
            return int(len(self) * avg_len) + self.buffer.nbytes
        return self.nbytes

    def valid_mask(self) -> np.ndarray:
        if self.validity is None:
            return np.ones(len(self), dtype=np.bool_)
        return self.validity.array

    @property
    def null_count(self) -> int:
        if self.validity is None:
            return 0
        return int((~self.validity.array).sum())

    def decoded(self) -> np.ndarray:
        """Object array of decoded strings (NULL -> None)."""
        if not self.dtype.is_string:
            raise TypeError("decoded() is only defined for string columns")
        out = np.empty(len(self), dtype=object)
        valid = self.valid_mask() & (self.data >= 0)
        out[valid] = self.dictionary[self.data[valid]]
        out[~valid] = None
        return out

    # -- lifecycle -----------------------------------------------------------

    def free(self) -> None:
        self.buffer.free()
        if self.validity is not None:
            self.validity.free()

    def to_host(self, charge_transfer: bool = True) -> Column:
        """Copy back to a host column (deep copy, charging the link)."""
        if charge_transfer:
            self.device.dtoh(self.nbytes)
        validity = None if self.validity is None else self.validity.array.copy()
        return Column(self.dtype, self.data.copy(), validity, self.dictionary)

    def __repr__(self) -> str:
        return f"GColumn<{self.dtype}>[{len(self)}]"


class GTable:
    """A device-resident table: schema + GColumns sharing a device."""

    __slots__ = ("schema", "columns", "device")

    def __init__(self, schema: Schema, columns: Sequence[GColumn], device: Device):
        columns = list(columns)
        if len(columns) != len(schema):
            raise ValueError("column count does not match schema")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged GTable: lengths {sorted(lengths)}")
        self.schema = schema
        self.columns = list(columns)
        self.device = device

    @classmethod
    def from_host(cls, device: Device, table: Table, region: str = "processing") -> "GTable":
        cols: list[GColumn] = []
        try:
            for c in table.columns:
                cols.append(GColumn.from_host(device, c, region))
        except BaseException:
            # Atomic load: release partially-allocated columns so an OOM
            # mid-table cannot leak device memory (the buffer manager
            # retries after evicting).
            for col in cols:
                col.free()
            raise
        return cls(table.schema, cols, device)

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(self.columns[0])

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self.columns)

    @property
    def traffic_bytes(self) -> int:
        return sum(c.traffic_bytes for c in self.columns)

    def column(self, name: str) -> GColumn:
        return self.columns[self.schema.index_of(name)]

    def select(self, names: Sequence[str]) -> "GTable":
        """Project columns by name (buffer sharing — no copy, no charge)."""
        schema = Schema([self.schema.field(n) for n in names])
        return GTable(schema, [self.column(n) for n in names], self.device)

    def with_column(self, name: str, column: GColumn) -> "GTable":
        if name in self.schema:
            cols = list(self.columns)
            cols[self.schema.index_of(name)] = column
            return GTable(self.schema, cols, self.device)
        schema = Schema(list(self.schema.fields) + [Field(name, column.dtype)])
        return GTable(schema, self.columns + [column], self.device)

    def rename(self, names: Sequence[str]) -> "GTable":
        if len(names) != self.num_columns:
            raise ValueError("rename needs one name per column")
        schema = Schema([Field(n, f.dtype) for n, f in zip(names, self.schema)])
        return GTable(schema, self.columns, self.device)

    def free(self) -> None:
        for c in self.columns:
            c.free()

    def to_host(self, charge_transfer: bool = True) -> Table:
        return Table(self.schema, [c.to_host(charge_transfer) for c in self.columns])

    def __repr__(self) -> str:
        return f"GTable[{self.num_rows} rows x {self.num_columns} cols on {self.device.spec.name}]"
