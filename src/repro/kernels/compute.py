"""Elementwise expression kernels: arithmetic, comparison, logic, strings.

The engine's expression evaluator lowers each expression node onto one of
these kernels.  Conventions:

* operands are :class:`GColumn` or Python scalars (at least one column);
* NULL propagates through arithmetic and comparisons;
* AND/OR use Kleene three-valued logic (``FALSE AND NULL = FALSE``);
* string predicates are evaluated once per *dictionary entry* and mapped
  through the codes — the payoff of dictionary encoding — but are charged
  as full character-stream kernels, which is what libcudf (no dictionary
  by default) pays and what makes Q13's low-selectivity NOT LIKE expensive
  in the paper.
"""

from __future__ import annotations

import re
from datetime import date
from typing import Any, Sequence

import numpy as np

from ..columnar import BOOL, DATE32, FLOAT64, INT64, STRING, DType
from ..columnar.dtypes import common_numeric_type, date_to_days
from ..gpu.costmodel import KernelClass
from .gtable import GColumn

__all__ = [
    "binary_arith",
    "compare",
    "logical_and",
    "logical_or",
    "logical_not",
    "is_null",
    "in_list",
    "case_when",
    "coalesce",
    "extract_date_part",
    "like",
    "contains",
    "substring",
    "string_case",
    "string_length",
    "concat_strings",
    "absolute",
    "round_column",
    "cast_column",
    "fill_constant",
    "hash_partition_ids",
]

_ARITH_OPS = {
    "add": np.add,
    "subtract": np.subtract,
    "multiply": np.multiply,
    "divide": np.divide,
    "modulo": np.mod,
}

_CMP_OPS = {
    "eq": np.equal,
    "ne": np.not_equal,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
}


def _device_of(*operands):
    for op in operands:
        if isinstance(op, GColumn):
            return op.device
    raise TypeError("at least one operand must be a GColumn")


def _rows_of(*operands) -> int:
    for op in operands:
        if isinstance(op, GColumn):
            return len(op)
    raise TypeError("at least one operand must be a GColumn")


def _traffic(*operands) -> int:
    return sum(op.traffic_bytes for op in operands if isinstance(op, GColumn))


def _scalar_to_raw(value: Any) -> Any:
    """Convert a Python scalar to its physical representation."""
    if isinstance(value, date):
        return date_to_days(value)
    return value


def _values_and_mask(operand, rows: int):
    """Physical value array + validity mask for a column or broadcast scalar."""
    if isinstance(operand, GColumn):
        return operand.data, operand.valid_mask()
    raw = _scalar_to_raw(operand)
    if raw is None:
        return np.zeros(rows), np.zeros(rows, dtype=np.bool_)
    return np.full(rows, raw), np.ones(rows, dtype=np.bool_)


def _dtype_of(operand) -> DType:
    if isinstance(operand, GColumn):
        return operand.dtype
    raw = _scalar_to_raw(operand)
    if raw is None:
        return INT64  # typed NULL default, matching Literal(None)
    if isinstance(raw, bool):
        return BOOL
    if isinstance(raw, int):
        return INT64
    if isinstance(raw, float):
        return FLOAT64
    if isinstance(raw, str):
        return STRING
    raise TypeError(f"unsupported scalar {operand!r}")


def binary_arith(op: str, left, right) -> GColumn:
    """Arithmetic between columns/scalars.  Division always yields float64
    (SQL decimal semantics in this reproduction); date +/- integer yields
    date32; date - date yields int64 days."""
    if op not in _ARITH_OPS:
        raise ValueError(f"unknown arithmetic op {op!r}")
    device = _device_of(left, right)
    rows = _rows_of(left, right)
    lv, lm = _values_and_mask(left, rows)
    rv, rm = _values_and_mask(right, rows)
    ldt, rdt = _dtype_of(left), _dtype_of(right)

    if op == "divide":
        out_dtype = FLOAT64
        with np.errstate(divide="ignore", invalid="ignore"):
            data = np.divide(lv.astype(np.float64), rv.astype(np.float64))
        valid = lm & rm & (np.asarray(rv) != 0)
        data = np.where(valid, data, 0.0)
    else:
        if ldt is DATE32 and rdt.is_integer and op in ("add", "subtract"):
            out_dtype = DATE32
        elif ldt is DATE32 and rdt is DATE32 and op == "subtract":
            out_dtype = INT64
        else:
            out_dtype = common_numeric_type(ldt, rdt)
        data = _ARITH_OPS[op](lv.astype(np.float64), rv.astype(np.float64))
        valid = lm & rm
        # Canonicalise NULL slots to zero before the cast: garbage inputs
        # (NaN under an invalid slot) would otherwise survive as undefined
        # payload bytes in the output.
        data = np.where(valid, data, 0.0).astype(out_dtype.numpy_dtype)

    device.launch(KernelClass.STREAM, _traffic(left, right), data.nbytes, rows)
    return GColumn.from_array(device, out_dtype, data, valid)


def compare(op: str, left, right) -> GColumn:
    """Comparison producing a nullable boolean column."""
    if op not in _CMP_OPS:
        raise ValueError(f"unknown comparison {op!r}")
    device = _device_of(left, right)
    rows = _rows_of(left, right)
    ldt, rdt = _dtype_of(left), _dtype_of(right)

    if ldt.is_string or rdt.is_string:
        data, valid = _compare_strings(op, left, right, rows)
        device.launch(KernelClass.STRING, _traffic(left, right), rows, rows)
    else:
        lv, lm = _values_and_mask(left, rows)
        rv, rm = _values_and_mask(right, rows)
        valid = lm & rm
        # Scrub payloads under NULL slots: comparing garbage (e.g. NaN
        # left behind by an outer-join gather) can yield True with
        # valid=False, which astype(bool) consumers would surface.
        data = _CMP_OPS[op](lv, rv) & valid
        device.launch(KernelClass.STREAM, _traffic(left, right), rows, rows)
    return GColumn.from_array(device, BOOL, data, valid)


def _compare_strings(op: str, left, right, rows: int):
    if left is None or right is None:
        # NULL comparand: the result is NULL on every row.
        return np.zeros(rows, dtype=np.bool_), np.zeros(rows, dtype=np.bool_)
    if isinstance(left, GColumn) and isinstance(right, GColumn):
        lvals, rvals = left.decoded(), right.decoded()
        valid = left.valid_mask() & right.valid_mask()
        valid &= np.array([v is not None for v in lvals]) & np.array(
            [v is not None for v in rvals]
        )
        data = np.zeros(rows, dtype=np.bool_)
        idx = np.flatnonzero(valid)
        data[idx] = [_py_cmp(op, lvals[i], rvals[i]) for i in idx]
        return data, valid
    col, scalar, flipped = (
        (left, right, False) if isinstance(left, GColumn) else (right, left, True)
    )
    # Evaluate the predicate once per dictionary entry, map through codes.
    dictionary = col.dictionary if col.dictionary is not None else np.array([], object)
    effective_op = _flip(op) if flipped else op
    hits = np.array(
        [_py_cmp(effective_op, str(s), scalar) for s in dictionary], dtype=np.bool_
    )
    valid = col.valid_mask() & (col.data >= 0)
    data = np.zeros(rows, dtype=np.bool_)
    data[valid] = hits[col.data[valid]]
    return data, valid


def _py_cmp(op: str, a: str, b: str) -> bool:
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    return a >= b


def _flip(op: str) -> str:
    return {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}.get(op, op)


def _bool_parts(operand, rows: int):
    """(value, valid) arrays for a boolean column/scalar under 3VL."""
    if isinstance(operand, GColumn):
        if not operand.dtype.is_boolean:
            raise TypeError("logical ops need boolean operands")
        return operand.data.astype(np.bool_), operand.valid_mask()
    if operand is None:
        return np.zeros(rows, dtype=np.bool_), np.zeros(rows, dtype=np.bool_)
    return np.full(rows, bool(operand)), np.ones(rows, dtype=np.bool_)


def logical_and(left, right) -> GColumn:
    """Kleene AND: FALSE dominates NULL."""
    device = _device_of(left, right)
    rows = _rows_of(left, right)
    lv, lm = _bool_parts(left, rows)
    rv, rm = _bool_parts(right, rows)
    data = lv & rv
    false_l = lm & ~lv
    false_r = rm & ~rv
    valid = (lm & rm) | false_l | false_r
    device.launch(KernelClass.STREAM, _traffic(left, right), rows, rows)
    return GColumn.from_array(device, BOOL, data & valid, valid)


def logical_or(left, right) -> GColumn:
    """Kleene OR: TRUE dominates NULL."""
    device = _device_of(left, right)
    rows = _rows_of(left, right)
    lv, lm = _bool_parts(left, rows)
    rv, rm = _bool_parts(right, rows)
    true_l = lm & lv
    true_r = rm & rv
    data = true_l | true_r
    valid = (lm & rm) | true_l | true_r
    device.launch(KernelClass.STREAM, _traffic(left, right), rows, rows)
    return GColumn.from_array(device, BOOL, data, valid)


def logical_not(operand: GColumn) -> GColumn:
    device = operand.device
    rows = len(operand)
    v, m = _bool_parts(operand, rows)
    device.launch(KernelClass.STREAM, operand.traffic_bytes, rows, rows)
    return GColumn.from_array(device, BOOL, ~v & m, m)


def is_null(operand: GColumn, negate: bool = False) -> GColumn:
    device = operand.device
    rows = len(operand)
    mask = operand.valid_mask()
    if operand.dtype.is_string:
        mask = mask & (operand.data >= 0)
    data = mask if negate else ~mask
    device.launch(KernelClass.STREAM, rows, rows, rows)
    return GColumn.from_array(device, BOOL, data, np.ones(rows, dtype=np.bool_))


def in_list(column: GColumn, values: Sequence[Any]) -> GColumn:
    """SQL ``IN (literal, ...)``."""
    device = column.device
    rows = len(column)
    if column.dtype.is_string:
        targets = {str(v) for v in values}
        dictionary = column.dictionary if column.dictionary is not None else np.array([], object)
        hits = np.array([str(s) in targets for s in dictionary], dtype=np.bool_)
        valid = column.valid_mask() & (column.data >= 0)
        data = np.zeros(rows, dtype=np.bool_)
        data[valid] = hits[column.data[valid]]
        device.launch(KernelClass.STRING, column.traffic_bytes, rows, rows)
    else:
        raw = np.array([_scalar_to_raw(v) for v in values])
        valid = column.valid_mask()
        data = np.isin(column.data, raw) & valid  # scrub NULL-slot payloads
        device.launch(KernelClass.STREAM, column.traffic_bytes, rows, rows)
    return GColumn.from_array(device, BOOL, data, valid)


def case_when(conditions: Sequence[GColumn], results: Sequence, default) -> GColumn:
    """CASE WHEN c1 THEN r1 ... ELSE default END.

    Conditions are boolean columns (NULL condition = no match); results and
    default are columns or scalars of a common type.
    """
    if len(conditions) != len(results):
        raise ValueError("one result per condition required")
    device = _device_of(*conditions)
    rows = _rows_of(*conditions)
    out_dtype = _result_dtype(list(results) + [default])
    if out_dtype.is_string:
        return _case_when_strings(device, rows, conditions, results, default)
    data = np.zeros(rows, dtype=out_dtype.numpy_dtype)
    dv, dm = _values_and_mask(default, rows) if default is not None else (
        np.zeros(rows), np.zeros(rows, dtype=np.bool_)
    )
    data[:] = dv.astype(out_dtype.numpy_dtype)
    valid = dm.copy()
    decided = np.zeros(rows, dtype=np.bool_)
    for cond, result in zip(conditions, results):
        fire = cond.data.astype(np.bool_) & cond.valid_mask() & ~decided
        rv, rm = _values_and_mask(result, rows)
        data[fire] = rv.astype(out_dtype.numpy_dtype)[fire] if hasattr(rv, "__getitem__") else rv
        valid[fire] = rm[fire]
        decided |= fire
    data = np.where(valid, data, 0).astype(out_dtype.numpy_dtype)  # scrub NULL slots
    device.launch(
        KernelClass.STREAM, _traffic(*conditions) + rows * out_dtype.itemsize, rows, rows
    )
    return GColumn.from_array(device, out_dtype, data, valid)


def _case_when_strings(device, rows, conditions, results, default) -> GColumn:
    out = np.empty(rows, dtype=object)
    out[:] = default if isinstance(default, (str, type(None))) else None
    if isinstance(default, GColumn):
        out[:] = default.decoded()
    decided = np.zeros(rows, dtype=np.bool_)
    for cond, result in zip(conditions, results):
        fire = cond.data.astype(np.bool_) & cond.valid_mask() & ~decided
        if isinstance(result, GColumn):
            decoded = result.decoded()
            out[fire] = decoded[fire]
        else:
            out[fire] = result
        decided |= fire
    device.launch(KernelClass.STRING, rows * 16, rows * 16, rows)
    return _encode_strings(device, out)


def coalesce(operands: Sequence) -> GColumn:
    """First non-NULL value across operands."""
    device = _device_of(*[o for o in operands if isinstance(o, GColumn)])
    rows = _rows_of(*[o for o in operands if isinstance(o, GColumn)])
    out_dtype = _result_dtype(list(operands))
    if out_dtype.is_string:
        # Codes from different dictionaries don't compose; merge decoded.
        out = np.full(rows, None, dtype=object)
        for op in operands:
            if isinstance(op, GColumn):
                decoded = op.decoded()
                fill = np.array([v is None for v in out]) & np.array(
                    [v is not None for v in decoded]
                )
                out[fill] = decoded[fill]
            elif op is not None:
                out[np.array([v is None for v in out])] = str(op)
        device.launch(KernelClass.STRING, _traffic(*operands), rows, rows)
        return _encode_strings(device, out)
    data = np.zeros(rows, dtype=out_dtype.numpy_dtype)
    valid = np.zeros(rows, dtype=np.bool_)
    for op in operands:
        v, m = _values_and_mask(op, rows)
        fill = m & ~valid
        data[fill] = v.astype(out_dtype.numpy_dtype)[fill]
        valid |= m
    device.launch(KernelClass.STREAM, _traffic(*operands), rows, rows)
    return GColumn.from_array(device, out_dtype, data, valid)


def _result_dtype(operands: Sequence) -> DType:
    for op in operands:
        if isinstance(op, GColumn):
            return op.dtype
    for op in operands:
        if op is not None:
            return _dtype_of(op)
    return INT64  # all-NULL: typed NULL default, matching Literal(None)


def extract_date_part(part: str, column: GColumn) -> GColumn:
    """EXTRACT(YEAR|MONTH|DAY FROM date_column) -> int64."""
    if column.dtype is not DATE32:
        raise TypeError("extract requires a date32 column")
    device = column.device
    rows = len(column)
    days = column.data.astype("datetime64[D]")
    if part == "year":
        out = days.astype("datetime64[Y]").astype(np.int64) + 1970
    elif part == "month":
        months = days.astype("datetime64[M]").astype(np.int64)
        out = months % 12 + 1
    elif part == "day":
        months = days.astype("datetime64[M]")
        out = (days - months.astype("datetime64[D]")).astype(np.int64) + 1
    else:
        raise ValueError(f"unsupported date part {part!r}")
    valid = column.valid_mask()
    out = np.where(valid, out, 0)  # scrub NULL-slot payloads
    device.launch(KernelClass.STREAM, column.nbytes, rows * 8, rows)
    return GColumn.from_array(device, INT64, out, valid)


def _like_to_regex(pattern: str, escape: str | None = None) -> re.Pattern:
    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape is not None and ch == escape and i + 1 < len(pattern):
            # ESCAPE'd character matches literally, including % and _.
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def like(
    column: GColumn, pattern: str, negate: bool = False, escape: str | None = None
) -> GColumn:
    """SQL LIKE on a string column (dictionary-evaluated, char-charged)."""
    if not column.dtype.is_string:
        raise TypeError("LIKE requires a string column")
    device = column.device
    rows = len(column)
    regex = _like_to_regex(pattern, escape)
    dictionary = column.dictionary if column.dictionary is not None else np.array([], object)
    hits = np.array([regex.match(str(s)) is not None for s in dictionary], dtype=np.bool_)
    if negate:
        hits = ~hits
    valid = column.valid_mask() & (column.data >= 0)
    data = np.zeros(rows, dtype=np.bool_)
    data[valid] = hits[column.data[valid]]
    device.launch(KernelClass.STRING, column.traffic_bytes, rows, rows)
    return GColumn.from_array(device, BOOL, data, valid)


def contains(column: GColumn, needle: str, negate: bool = False) -> GColumn:
    """Substring containment (LIKE '%needle%' fast path)."""
    return like(column, f"%{needle}%", negate)


def substring(column: GColumn, start: int, length: int) -> GColumn:
    """1-based SQL SUBSTRING over a string column."""
    if not column.dtype.is_string:
        raise TypeError("substring requires a string column")
    device = column.device
    dictionary = column.dictionary if column.dictionary is not None else np.array([], object)
    mapped = np.array([str(s)[start - 1 : start - 1 + length] for s in dictionary], dtype=object)
    device.launch(KernelClass.STRING, column.traffic_bytes, column.traffic_bytes, len(column))
    # Re-encode: mapped dictionary may contain duplicates and lose order.
    uniques, remap = np.unique(mapped, return_inverse=True) if len(mapped) else (
        np.array([], object), np.array([], np.int64)
    )
    valid = column.valid_mask() & (column.data >= 0)
    codes = np.full(len(column), -1, dtype=np.int32)
    codes[valid] = remap[column.data[valid]].astype(np.int32)
    return GColumn.from_array(device, STRING, codes, valid, uniques)


def string_case(column: GColumn, upper: bool) -> GColumn:
    """UPPER/LOWER over a string column (dictionary-mapped, re-encoded)."""
    if not column.dtype.is_string:
        raise TypeError("upper/lower require a string column")
    device = column.device
    rows = len(column)
    dictionary = column.dictionary if column.dictionary is not None else np.array([], object)
    mapped = np.array(
        [str(s).upper() if upper else str(s).lower() for s in dictionary], dtype=object
    )
    device.launch(KernelClass.STRING, column.traffic_bytes, column.traffic_bytes, rows)
    # Case folding can merge dictionary entries; re-encode.
    uniques, remap = (
        np.unique(mapped, return_inverse=True)
        if len(mapped)
        else (np.array([], object), np.array([], np.int64))
    )
    valid = column.valid_mask() & (column.data >= 0)
    codes = np.full(rows, -1, dtype=np.int32)
    codes[valid] = remap[column.data[valid]].astype(np.int32)
    return GColumn.from_array(device, STRING, codes, valid, uniques)


def string_length(column: GColumn) -> GColumn:
    """LENGTH of a string column -> int64 (dictionary-mapped)."""
    if not column.dtype.is_string:
        raise TypeError("length requires a string column")
    device = column.device
    rows = len(column)
    dictionary = column.dictionary if column.dictionary is not None else np.array([], object)
    lengths = np.array([len(str(s)) for s in dictionary], dtype=np.int64)
    valid = column.valid_mask() & (column.data >= 0)
    out = np.zeros(rows, dtype=np.int64)
    out[valid] = lengths[column.data[valid]]
    device.launch(KernelClass.STRING, column.traffic_bytes, rows * 8, rows)
    return GColumn.from_array(device, INT64, out, valid)


def concat_strings(operands: Sequence) -> GColumn:
    """Row-wise string concatenation; NULL if any operand is NULL."""
    device = _device_of(*[o for o in operands if isinstance(o, GColumn)])
    rows = _rows_of(*[o for o in operands if isinstance(o, GColumn)])
    parts = []
    for op in operands:
        if isinstance(op, GColumn):
            if not op.dtype.is_string:
                raise TypeError("concat requires string operands")
            parts.append(op.decoded())
        elif op is None:
            parts.append(np.full(rows, None, dtype=object))
        else:
            parts.append(np.full(rows, str(op), dtype=object))
    out = np.empty(rows, dtype=object)
    for i in range(rows):
        vals = [p[i] for p in parts]
        out[i] = None if any(v is None for v in vals) else "".join(str(v) for v in vals)
    device.launch(KernelClass.STRING, _traffic(*operands), rows * 16, rows)
    return _encode_strings(device, out)


def absolute(column: GColumn) -> GColumn:
    """ABS over a numeric column."""
    if not column.dtype.is_numeric:
        raise TypeError("abs requires a numeric column")
    device = column.device
    rows = len(column)
    valid = column.valid_mask()
    data = np.where(valid, np.abs(column.data), 0).astype(column.dtype.numpy_dtype)
    device.launch(KernelClass.STREAM, column.nbytes, data.nbytes, rows)
    return GColumn.from_array(device, column.dtype, data, valid)


def round_column(column: GColumn, digits: int = 0) -> GColumn:
    """ROUND to ``digits`` decimal places -> float64."""
    if not column.dtype.is_numeric:
        raise TypeError("round requires a numeric column")
    device = column.device
    rows = len(column)
    valid = column.valid_mask()
    data = np.where(valid, np.round(column.data.astype(np.float64), digits), 0.0)
    device.launch(KernelClass.STREAM, column.nbytes, rows * 8, rows)
    return GColumn.from_array(device, FLOAT64, data, valid)


def cast_column(column: GColumn, target: DType) -> GColumn:
    """Cast between logical types (numeric widening/narrowing, date<->int)."""
    device = column.device
    if target is column.dtype:
        return column
    if column.dtype.is_string or target.is_string:
        host = column.to_host(charge_transfer=False).cast(target)
        device.launch(KernelClass.STRING, column.traffic_bytes, host.nbytes, len(column))
        return GColumn.from_array(device, target, host.data, host.is_valid_mask(), host.dictionary)
    valid = column.valid_mask()
    # Scrub before the cast: casting garbage payloads (NaN -> int) is
    # undefined and would leave non-canonical bytes under NULL slots.
    data = np.where(valid, column.data, 0).astype(target.numpy_dtype)
    device.launch(KernelClass.STREAM, column.nbytes, data.nbytes, len(column))
    return GColumn.from_array(device, target, data, valid)


def fill_constant(device, rows: int, value: Any, dtype: DType | None = None) -> GColumn:
    """Materialise a broadcast scalar as a device column (None -> all-NULL)."""
    dtype = dtype if dtype is not None else _dtype_of(value)
    if value is None:
        if dtype.is_string:
            codes = np.full(rows, -1, dtype=np.int32)
            return GColumn.from_array(
                device, STRING, codes, np.zeros(rows, dtype=np.bool_), np.array([], object)
            )
        data = np.zeros(rows, dtype=dtype.numpy_dtype)
        device.launch(KernelClass.STREAM, 0, data.nbytes, rows)
        return GColumn.from_array(device, dtype, data, np.zeros(rows, dtype=np.bool_))
    if dtype.is_string:
        codes = np.zeros(rows, dtype=np.int32)
        return GColumn.from_array(device, STRING, codes, None, np.array([str(value)], object))
    raw = _scalar_to_raw(value)
    data = np.full(rows, raw, dtype=dtype.numpy_dtype)
    device.launch(KernelClass.STREAM, 0, data.nbytes, rows)
    return GColumn.from_array(device, dtype, data)


def hash_partition_ids(
    keys: Sequence[GColumn], num_partitions: int, level: int = 0
) -> np.ndarray:
    """Deterministic partition id per row from the key columns.

    Used by the exchange layer's shuffle: every engine (Sirius and the
    hosts) uses this same function so partitioning agrees across nodes.

    ``level`` salts the accumulator so recursive radix partitioning
    (out-of-core joins and group-bys) redistributes at depth ``L+1`` the
    rows that landed in one bucket at depth ``L``.  ``level=0`` is the
    unsalted shuffle hash, bit-identical to the pre-out-of-core output.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    if level < 0:
        raise ValueError("level must be non-negative")
    rows = _rows_of(*keys)
    salt = (level * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    acc = np.full(rows, np.uint64(salt), dtype=np.uint64)
    for col in keys:
        if col.dtype.is_string:
            # Hash dictionary entries once with a process-stable FNV-1a,
            # then map through the codes.
            dictionary = col.dictionary if col.dictionary is not None else np.array([], object)
            dict_hashes = np.array([_fnv1a(str(s)) for s in dictionary], dtype=np.uint64)
            vals = np.zeros(rows, dtype=np.uint64)
            valid = col.valid_mask() & (col.data >= 0)
            vals[valid] = dict_hashes[col.data[valid]]
        else:
            vals = col.data.astype(np.int64).view(np.uint64) if col.data.dtype != np.uint64 else col.data
            vals = vals.astype(np.uint64)
        acc = acc * np.uint64(1099511628211) + vals  # FNV-ish mix
    keys[0].device.launch(KernelClass.STREAM, _traffic(*keys), rows * 4, rows)
    return (acc % np.uint64(num_partitions)).astype(np.int32)


def _fnv1a(text: str) -> int:
    """Process-stable 64-bit FNV-1a (Python's hash() is salted per run)."""
    acc = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


def _encode_strings(device, values: np.ndarray) -> GColumn:
    mask = np.array([v is not None for v in values], dtype=np.bool_)
    present = values[mask].astype(object) if bool(mask.any()) else np.array([], object)
    uniques, inverse = (
        np.unique(present, return_inverse=True)
        if len(present)
        else (np.array([], object), np.array([], np.int64))
    )
    codes = np.full(len(values), -1, dtype=np.int32)
    codes[mask] = inverse.astype(np.int32)
    return GColumn.from_array(device, STRING, codes, mask, uniques)
