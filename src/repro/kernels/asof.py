"""ASOF join kernel — one of §3.4's "advanced SQL operators" extensions.

``asof_join`` matches each left row with the *latest* right row whose
"time" value does not exceed the left row's (the classic AS OF backward
join used for market-data style queries), optionally within equality
partitions (``by`` keys).  Returns libcudf-style int32 gather maps with
``-1`` for left rows that have no match.

Charged as a sort over the right side plus a probe over the left — the
cost shape of a real GPU asof implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..gpu.costmodel import KernelClass
from .gtable import GColumn
from .join import JoinResult
from .keys import factorize_keys

__all__ = ["asof_join"]


def asof_join(
    left_time: GColumn,
    right_time: GColumn,
    left_by: Sequence[GColumn] = (),
    right_by: Sequence[GColumn] = (),
) -> JoinResult:
    """Backward ASOF join: for each left row, the latest right row with
    ``right_time <= left_time`` (within matching ``by`` keys, if given).

    Args:
        left_time: Ordered-comparable column (numeric or date).
        right_time: Same type family as ``left_time``.
        left_by / right_by: Optional equality partition keys.

    Returns:
        :class:`JoinResult` pairing every left index with its match
        (right index ``-1`` when none exists).
    """
    if left_time.dtype.is_string or right_time.dtype.is_string:
        raise TypeError("ASOF join requires ordered numeric/date time columns")
    if len(left_by) != len(right_by):
        raise ValueError("asof_join needs matching numbers of by-keys")

    device = left_time.device
    n_left, n_right = len(left_time), len(right_time)

    if left_by:
        lcodes, rcodes, _ = factorize_keys(list(left_by), list(right_by))
    else:
        lcodes = np.zeros(n_left, dtype=np.int64)
        rcodes = np.zeros(n_right, dtype=np.int64)

    lt = left_time.data.astype(np.float64)
    rt = right_time.data.astype(np.float64)
    lvalid = left_time.valid_mask() & (lcodes >= 0)
    rvalid = right_time.valid_mask() & (rcodes >= 0)

    # Sort the right side by (partition, time); binary-search each left row.
    order = np.lexsort((rt, rcodes))
    sorted_codes = rcodes[order]
    sorted_times = rt[order]
    # Build composite search keys: partition-major, time-minor.  Times are
    # mapped to dense ranks so the composite stays integral and exact.
    all_times = np.concatenate([sorted_times, lt])
    _, time_ranks = np.unique(all_times, return_inverse=True)
    r_ranks = time_ranks[: len(sorted_times)].astype(np.int64)
    l_ranks = time_ranks[len(sorted_times):].astype(np.int64)
    span = int(time_ranks.max()) + 2
    composite_right = sorted_codes * span + r_ranks
    composite_left = lcodes * span + l_ranks

    pos = np.searchsorted(composite_right, composite_left, side="right") - 1
    matched = pos >= 0
    # The found row must be in the same partition (and valid).
    same_part = np.zeros(n_left, dtype=bool)
    safe = np.where(matched, pos, 0)
    same_part[matched] = sorted_codes[safe[matched]] == lcodes[matched]
    valid_right = np.ones(n_left, dtype=bool)
    valid_right[matched] = rvalid[order][safe[matched]]
    ok = matched & same_part & lvalid & valid_right

    right_idx = np.full(n_left, -1, dtype=np.int64)
    right_idx[ok] = order[pos[ok]]
    left_idx = np.arange(n_left, dtype=np.int64)

    device.launch(
        KernelClass.SORT,
        right_time.traffic_bytes + sum(k.traffic_bytes for k in right_by),
        n_right * 8,
        n_right,
    )
    device.launch(
        KernelClass.HASH_PROBE,
        left_time.traffic_bytes + sum(k.traffic_bytes for k in left_by),
        n_left * 8,
        n_left,
    )
    return JoinResult(left_idx, right_idx)
