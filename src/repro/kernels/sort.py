"""Sort kernels: stable multi-key ordering.

Returns an int32 permutation like libcudf's ``sorted_order``.  String keys
compare by dictionary code — valid because the kernel library maintains
lexicographically sorted dictionaries.  NULLs order last under ASC and
first under DESC (PostgreSQL/DuckDB default).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..gpu.costmodel import KernelClass
from .gtable import GColumn

__all__ = ["sorted_order", "top_n_order"]


def _sort_key(col: GColumn, ascending: bool) -> np.ndarray:
    """Build a float64/int64 sortable key with NULLs pushed to the end."""
    data = col.data.astype(np.float64)
    valid = col.valid_mask()
    if col.dtype.is_string:
        valid = valid & (col.data >= 0)
    if not ascending:
        data = -data
    # NULLS LAST for the requested direction: +inf sorts after everything.
    data = np.where(valid, data, np.inf)
    return data


def sorted_order(keys: Sequence[GColumn], ascending: Sequence[bool]) -> np.ndarray:
    """Stable permutation ordering rows by ``keys`` (first key primary)."""
    if len(keys) != len(ascending):
        raise ValueError("need one direction flag per key")
    if not keys:
        raise ValueError("sorted_order requires at least one key")
    device = keys[0].device
    rows = len(keys[0])
    # np.lexsort's *last* key is primary.
    sort_keys = [_sort_key(k, a) for k, a in zip(keys, ascending)]
    order = np.lexsort(list(reversed(sort_keys))).astype(np.int32)
    device.launch(
        KernelClass.SORT,
        sum(k.traffic_bytes for k in keys),
        rows * 4,
        rows,
    )
    return order


def top_n_order(keys: Sequence[GColumn], ascending: Sequence[bool], n: int) -> np.ndarray:
    """Permutation of the first ``n`` rows in sort order (ORDER BY + LIMIT).

    A real engine uses a heap-based top-k; we charge the cheaper cost of a
    selection pass plus a small sort, and slice the full stable order.
    """
    if not keys:
        raise ValueError("top_n_order requires at least one key")
    device = keys[0].device
    rows = len(keys[0])
    sort_keys = [_sort_key(k, a) for k, a in zip(keys, ascending)]
    order = np.lexsort(list(reversed(sort_keys))).astype(np.int32)
    device.launch(
        KernelClass.STREAM,
        sum(k.traffic_bytes for k in keys),
        min(n, rows) * 4,
        rows,
    )
    if n < rows:
        device.launch(KernelClass.SORT, min(n, rows) * 8 * len(keys), min(n, rows) * 4, min(n, rows))
    return order[:n]
