"""Lightweight integer compression for the caching region (§3.4).

The paper lists "lightweight compression techniques to mitigate GPU memory
capacity limitations" (citing FastLanes and tile-based GPU compression) as
a planned optimisation.  This module implements the classic combination
those schemes build on:

* **frame of reference (FOR)** — values are stored as deltas from the
  column minimum;
* **bit-packing** — deltas are packed at the minimal bit width.

``pack_column`` really packs bits (NumPy ``packbits`` on a width-trimmed
bit matrix) and ``unpack`` reproduces the exact input, so compression
ratios in benchmarks are genuine, not estimated.  The buffer manager uses
the packed size for caching-region accounting and charges a decompression
kernel when a compressed column is touched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..columnar import Column, DType

__all__ = ["PackedColumn", "pack_column", "unpack_column", "packable"]


@dataclass
class PackedColumn:
    """A FOR + bit-packed integer column."""

    payload: np.ndarray  # uint8 packed bits
    bit_width: int
    reference: int  # frame of reference (column minimum)
    length: int
    dtype: DType

    @property
    def packed_nbytes(self) -> int:
        return int(self.payload.nbytes) + 16  # payload + header

    def ratio(self, original_nbytes: int) -> float:
        """Compression ratio (original / packed)."""
        if self.packed_nbytes == 0:
            return 1.0
        return original_nbytes / self.packed_nbytes


def packable(column: Column) -> bool:
    """Only non-null fixed-width integer-like columns are packed (dates
    included; floats and strings pass through uncompressed)."""
    return (
        (column.dtype.is_integer or column.dtype.is_temporal)
        and column.validity is None
        and len(column) > 0
    )


def pack_column(column: Column) -> PackedColumn:
    """FOR + bit-pack an integer column.

    Raises:
        ValueError: If the column is not packable.
    """
    if not packable(column):
        raise ValueError("column is not packable (nullable, empty, or non-integer)")
    values = column.data.astype(np.int64)
    reference = int(values.min())
    deltas = (values - reference).astype(np.uint64)
    max_delta = int(deltas.max())
    bit_width = max(max_delta.bit_length(), 1)

    # Build an (n, bit_width) bit matrix, most significant bit first.
    shifts = np.arange(bit_width - 1, -1, -1, dtype=np.uint64)
    bits = ((deltas[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    payload = np.packbits(bits.reshape(-1))
    return PackedColumn(payload, bit_width, reference, len(values), column.dtype)


def unpack_column(packed: PackedColumn) -> Column:
    """Exact inverse of :func:`pack_column`."""
    total_bits = packed.length * packed.bit_width
    bits = np.unpackbits(packed.payload)[:total_bits]
    if packed.length == 0:
        data = np.zeros(0, dtype=np.int64)
    else:
        matrix = bits.reshape(packed.length, packed.bit_width).astype(np.uint64)
        shifts = np.arange(packed.bit_width - 1, -1, -1, dtype=np.uint64)
        deltas = (matrix << shifts[None, :]).sum(axis=1)
        data = deltas.astype(np.int64) + packed.reference
    return Column(packed.dtype, data.astype(packed.dtype.numpy_dtype))
