"""Row-movement kernels: gather, boolean masking, slicing, concatenation.

These follow libcudf's copying module.  ``gather`` accepts the int32 index
arrays joins produce; a ``-1`` index yields a NULL output row (how outer
join results materialise).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..columnar import Field, Schema
from ..gpu.costmodel import KernelClass
from .gtable import GColumn, GTable

__all__ = [
    "gather_column",
    "gather_table",
    "mask_table",
    "concat_gtables",
    "scatter_to_partitions",
    "slice_table",
]


def gather_column(column: GColumn, indices: np.ndarray, charge: bool = True) -> GColumn:
    """Gather rows of ``column`` at ``indices`` (int32; -1 -> NULL)."""
    device = column.device
    indices = np.asarray(indices)
    null_out = indices < 0
    safe = np.where(null_out, 0, indices)
    if len(column) == 0:
        data = np.zeros(len(indices), dtype=column.dtype.numpy_dtype)
        validity = np.zeros(len(indices), dtype=np.bool_)
    else:
        data = column.data[safe]
        validity = column.valid_mask()[safe]
        validity = validity & ~null_out
    if charge:
        device.launch(
            KernelClass.GATHER,
            column.traffic_bytes + indices.nbytes,
            int(len(indices) * max(column.dtype.itemsize, 1)),
            len(indices),
        )
    return GColumn.from_array(device, column.dtype, data, validity, column.dictionary)


def gather_table(table: GTable, indices: np.ndarray) -> GTable:
    """Gather whole rows of ``table``; one gather kernel per column."""
    cols = [gather_column(c, indices) for c in table.columns]
    return GTable(table.schema, cols, table.device)


def mask_table(table: GTable, keep: np.ndarray) -> GTable:
    """Apply a boolean mask to every column (libcudf apply_boolean_mask).

    Charged as one streaming pass over the table plus the compacted output.
    """
    keep = np.asarray(keep, dtype=np.bool_)
    device = table.device
    out_rows = int(keep.sum())
    device.launch(
        KernelClass.STREAM,
        table.traffic_bytes + keep.nbytes,
        int(table.traffic_bytes * (out_rows / max(table.num_rows, 1))),
        table.num_rows,
    )
    cols = []
    for c in table.columns:
        data = c.data[keep]
        validity = c.valid_mask()[keep]
        cols.append(GColumn.from_array(device, c.dtype, data, validity, c.dictionary))
    return GTable(table.schema, cols, device)


def slice_table(table: GTable, start: int, length: int) -> GTable:
    """Zero-ish-copy row slice (used by LIMIT); charges only output bytes."""
    device = table.device
    end = min(start + length, table.num_rows)
    cols = []
    for c in table.columns:
        data = c.data[start:end]
        validity = c.valid_mask()[start:end]
        cols.append(GColumn.from_array(device, c.dtype, data, validity, c.dictionary))
    device.launch(KernelClass.STREAM, 0, sum(c.nbytes for c in cols), end - start)
    return GTable(table.schema, cols, device)


def scatter_to_partitions(
    table: GTable, part_ids: np.ndarray, num_partitions: int
) -> list[GTable | None]:
    """Scatter rows into per-partition tables (libcudf ``partition``).

    Charged as one scatter pass over the whole table — a radix
    partitioning kernel reads each row once and writes it to its bucket,
    regardless of fan-out.  Empty partitions come back as ``None`` so
    callers can skip them without allocating empty tables.
    """
    device = table.device
    part_ids = np.asarray(part_ids)
    device.launch(
        KernelClass.SCATTER,
        table.traffic_bytes + part_ids.nbytes,
        table.traffic_bytes,
        table.num_rows,
    )
    out: list[GTable | None] = []
    for p in range(num_partitions):
        rows = np.flatnonzero(part_ids == p)
        if len(rows) == 0:
            out.append(None)
            continue
        cols = [
            GColumn.from_array(
                device, c.dtype, c.data[rows], c.valid_mask()[rows], c.dictionary
            )
            for c in table.columns
        ]
        out.append(GTable(table.schema, cols, device))
    return out


def concat_gtables(tables: Sequence[GTable]) -> GTable:
    """Vertically concatenate device tables with matching schemas.

    String columns re-encode against a merged dictionary (libcudf
    concatenates character buffers; we charge the equivalent traffic).
    """
    tables = [t for t in tables if t is not None]
    if not tables:
        raise ValueError("concat_gtables needs at least one table")
    device = tables[0].device
    schema = tables[0].schema
    for t in tables[1:]:
        if t.schema.dtypes() != schema.dtypes():
            raise ValueError("concat_gtables: mismatched schemas")
    total_rows = sum(t.num_rows for t in tables)
    total_bytes = sum(t.traffic_bytes for t in tables)
    device.launch(KernelClass.STREAM, total_bytes, total_bytes, total_rows)
    out_cols = []
    for i, field in enumerate(schema):
        parts = [t.columns[i] for t in tables]
        if field.dtype.is_string:
            decoded = np.concatenate([p.decoded() for p in parts])
            mask = np.array([v is not None for v in decoded], dtype=np.bool_)
            uniques, inverse = (
                np.unique(decoded[mask].astype(object), return_inverse=True)
                if bool(mask.any())
                else (np.array([], dtype=object), np.array([], dtype=np.int64))
            )
            codes = np.full(len(decoded), -1, dtype=np.int32)
            codes[mask] = inverse.astype(np.int32)
            out_cols.append(GColumn.from_array(device, field.dtype, codes, mask, uniques))
        else:
            data = np.concatenate([p.data for p in parts])
            validity = np.concatenate([p.valid_mask() for p in parts])
            out_cols.append(GColumn.from_array(device, field.dtype, data, validity))
    return GTable(Schema([Field(f.name, f.dtype) for f in schema]), out_cols, device)
