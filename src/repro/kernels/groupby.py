"""Group-by aggregation kernels.

Mirrors the two libcudf strategies the paper's Figure 5 analysis leans on:

* **hash-based** group-by for fixed-width keys, with a GPU memory-contention
  penalty when the number of distinct groups is small (Q1's four groups);
* **sort-based** group-by whenever any key is a string (Q10, Q16, Q18) —
  libcudf's default for strings, noted by the paper as "less performant
  than hash-based group-by".

Supported aggregations: sum, min, max, count (valid), count_star,
count_distinct, and mean (sum/count fused here for convenience).

String min/max rely on the dictionary invariant maintained throughout the
kernel library: dictionaries are lexicographically sorted, so code order is
value order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..columnar import Field, INT64, FLOAT64, Schema
from ..gpu.costmodel import KernelClass
from .copying import scatter_to_partitions
from .gtable import GColumn, GTable
from .keys import factorize_keys, radix_partition_ids

__all__ = ["AggSpec", "groupby", "partition_groupby_input", "AGG_OPS"]


def partition_groupby_input(
    table: GTable,
    group_indices: "tuple[int, ...] | list[int]",
    num_partitions: int,
    level: int = 0,
) -> "list[GTable | None]":
    """Radix-partition a group-by input by its grouping keys.

    Every row of a group hashes to the same bucket, so aggregating each
    bucket independently and concatenating the results is exact — the
    out-of-core aggregation never merges partial states across buckets.
    """
    keys = [table.columns[i] for i in group_indices]
    ids = radix_partition_ids(keys, num_partitions, level=level)
    return scatter_to_partitions(table, ids, num_partitions)

AGG_OPS = ("sum", "min", "max", "count", "count_star", "count_distinct", "mean")


@dataclass(frozen=True)
class AggSpec:
    """One requested aggregation.

    Attributes:
        op: One of :data:`AGG_OPS`.
        column: Input column; ``None`` only for ``count_star``.
        name: Output column name.
    """

    op: str
    column: GColumn | None
    name: str

    def __post_init__(self):
        if self.op not in AGG_OPS:
            raise ValueError(f"unknown aggregation {self.op!r}")
        if self.column is None and self.op != "count_star":
            raise ValueError(f"aggregation {self.op} requires an input column")


def groupby(keys: list[GColumn], aggs: list[AggSpec], force_hash: bool = False) -> GTable:
    """Aggregate ``aggs`` grouped by ``keys``; returns keys + agg columns.

    NULL key values form a single ordinary group (SQL semantics); NULL
    input values are skipped by every aggregate.

    Args:
        keys: Grouping key columns.
        aggs: Aggregations to compute.
        force_hash: Charge the hash-based strategy even for string keys —
            models a *custom* kernel that hashes strings directly instead
            of libcudf's sort-based fallback (an optimisation the paper's
            Figure 5 discussion motivates).
    """
    if not keys:
        raise ValueError("groupby requires at least one key; use reduce for global aggregates")
    device = keys[0].device
    codes, _, _ = factorize_keys(keys, nulls_match=True)
    uniq_codes, first_idx, gids = np.unique(codes, return_index=True, return_inverse=True)
    num_groups = len(uniq_codes)
    rows = len(codes)

    key_bytes = sum(k.traffic_bytes for k in keys)
    value_bytes = sum(a.column.traffic_bytes for a in aggs if a.column is not None)
    sort_based = any(k.dtype.is_string for k in keys) and not force_hash
    kclass = KernelClass.GROUPBY_SORT if sort_based else KernelClass.GROUPBY_HASH
    device.launch(
        kclass,
        key_bytes + value_bytes,
        num_groups * 8 * (len(keys) + len(aggs)),
        rows,
        num_groups=num_groups,
    )

    out_cols: list[GColumn] = []
    out_fields: list[Field] = []
    for key in keys:
        data = key.data[first_idx]
        validity = key.valid_mask()[first_idx]
        out_cols.append(
            GColumn.from_array(device, key.dtype, data, validity, key.dictionary)
        )
    for agg in aggs:
        col, dtype = _aggregate(device, agg, gids, num_groups)
        out_cols.append(col)
        out_fields.append(Field(agg.name, dtype))

    key_fields = [Field(f"key{i}", k.dtype) for i, k in enumerate(keys)]
    schema = Schema(key_fields + out_fields)
    return GTable(schema, out_cols, device)


def _aggregate(device, agg: AggSpec, gids: np.ndarray, num_groups: int):
    """Compute one aggregation; returns (GColumn, output DType)."""
    if agg.op == "count_star":
        counts = np.bincount(gids, minlength=num_groups).astype(np.int64)
        return GColumn.from_array(device, INT64, counts), INT64

    col = agg.column
    valid = col.valid_mask()
    if col.dtype.is_string:
        valid = valid & (col.data >= 0)

    if agg.op == "count":
        counts = np.bincount(gids[valid], minlength=num_groups).astype(np.int64)
        return GColumn.from_array(device, INT64, counts), INT64

    if agg.op == "count_distinct":
        vals = col.data[valid]
        sub_gids = gids[valid]
        if len(vals):
            _, value_codes = np.unique(vals, return_inverse=True)
            pairs = sub_gids.astype(np.int64) * (value_codes.max() + 1) + value_codes
            uniq_pairs = np.unique(pairs)
            counts = np.bincount(
                (uniq_pairs // (value_codes.max() + 1)).astype(np.int64),
                minlength=num_groups,
            ).astype(np.int64)
        else:
            counts = np.zeros(num_groups, dtype=np.int64)
        return GColumn.from_array(device, INT64, counts), INT64

    # sum / min / max / mean: value aggregations that skip NULLs and yield
    # NULL for all-NULL groups.
    group_has_value = np.zeros(num_groups, dtype=np.bool_)
    np.logical_or.at(group_has_value, gids[valid], True)

    if agg.op in ("sum", "mean"):
        sums = np.bincount(gids[valid], weights=col.data[valid].astype(np.float64),
                           minlength=num_groups)
        if agg.op == "mean":
            counts = np.bincount(gids[valid], minlength=num_groups)
            out = np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)
            return GColumn.from_array(device, FLOAT64, out, group_has_value), FLOAT64
        if col.dtype.is_integer:
            data = np.round(sums).astype(np.int64)
            return GColumn.from_array(device, INT64, data, group_has_value), INT64
        return GColumn.from_array(device, FLOAT64, sums, group_has_value), FLOAT64

    # min / max via sort + reduceat (works for every fixed-width dtype;
    # string columns aggregate on codes thanks to the sorted-dictionary
    # invariant).
    reducer = np.minimum if agg.op == "min" else np.maximum
    vals = col.data[valid]
    sub_gids = gids[valid]
    out = np.zeros(num_groups, dtype=col.data.dtype)
    if len(vals):
        order = np.argsort(sub_gids, kind="stable")
        sorted_gids = sub_gids[order]
        sorted_vals = vals[order]
        boundaries = np.flatnonzero(np.diff(sorted_gids)) + 1
        starts = np.concatenate([[0], boundaries])
        reduced = reducer.reduceat(sorted_vals, starts)
        present = sorted_gids[starts]
        out[present] = reduced
    return (
        GColumn.from_array(device, col.dtype, out, group_has_value, col.dictionary),
        col.dtype,
    )
