"""Column reductions (global aggregates without GROUP BY).

These return Python scalars; NULLs are skipped per SQL semantics, and an
all-NULL (or empty) input reduces to ``None`` for sum/min/max/mean.
"""

from __future__ import annotations

import numpy as np

from ..columnar.dtypes import days_to_date
from ..gpu.costmodel import KernelClass
from .gtable import GColumn

__all__ = ["reduce_column"]


def reduce_column(column: GColumn, op: str):
    """Reduce ``column`` with ``op`` in
    {sum, min, max, count, count_star, count_distinct, mean}."""
    device = column.device
    device.launch(KernelClass.STREAM, column.traffic_bytes, 8, len(column))
    valid = column.valid_mask()
    if column.dtype.is_string:
        valid = valid & (column.data >= 0)

    if op == "count_star":
        return int(len(column))
    if op == "count":
        return int(valid.sum())

    values = column.data[valid]
    if op == "count_distinct":
        return int(len(np.unique(values)))
    if len(values) == 0:
        return None
    if op == "sum":
        total = values.astype(np.float64).sum()
        return int(round(total)) if column.dtype.is_integer else float(total)
    if op == "mean":
        return float(values.astype(np.float64).mean())
    if op in ("min", "max"):
        raw = values.min() if op == "min" else values.max()
        if column.dtype.is_string:
            return str(column.dictionary[int(raw)])
        if column.dtype.is_temporal:
            return days_to_date(int(raw))
        return int(raw) if column.dtype.is_integer else float(raw)
    raise ValueError(f"unknown reduction {op!r}")
