"""Join kernels: hash joins returning libcudf-style int32 gather maps.

Like libcudf, joins here return *row indices* rather than materialised
tables; Sirius' operators gather the payload columns afterwards.  Also like
libcudf, the indices are **int32** — the host engine uses uint64 row ids,
and the buffer manager pays a conversion copy at the boundary (§3.2.3 of
the paper calls this out as the one non-zero-copy conversion).

The simulated hash join charges:

* a ``HASH_BUILD`` kernel over the build side's key bytes, and
* a ``HASH_PROBE`` kernel over the probe side's key bytes plus the output
  index bytes,

which is the traffic pattern of a real GPU hash join.  The actual matching
runs as a sort + binary-search join in NumPy (same output, different
constant factors — simulated time comes from the cost model, not from
NumPy's runtime).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..gpu.costmodel import KernelClass
from .copying import scatter_to_partitions
from .gtable import GColumn, GTable, NULL_INDEX
from .keys import NULL_CODE, factorize_keys, radix_partition_ids

__all__ = [
    "inner_join",
    "left_join",
    "semi_join",
    "anti_join",
    "partition_join_side",
    "JoinResult",
]


def partition_join_side(
    table: GTable,
    key_indices: Sequence[int],
    num_partitions: int,
    level: int = 0,
) -> list[GTable | None]:
    """Radix-partition one side of a hash join by its equi-join keys.

    Both sides partitioned with the same ``(num_partitions, level)``
    route every matching pair into the same bucket, so an out-of-core
    join is exactly the union of the per-bucket joins (Grace hash join).
    Charged as one partition-id pass plus one scatter pass.
    """
    keys = [table.columns[i] for i in key_indices]
    ids = radix_partition_ids(keys, num_partitions, level=level)
    return scatter_to_partitions(table, ids, num_partitions)


class JoinResult:
    """Gather maps produced by a join: ``left_indices[i]`` pairs with
    ``right_indices[i]``; ``-1`` marks a non-match (outer joins)."""

    __slots__ = ("left_indices", "right_indices")

    def __init__(self, left_indices: np.ndarray, right_indices: np.ndarray):
        self.left_indices = left_indices.astype(np.int32)
        self.right_indices = right_indices.astype(np.int32)

    def __len__(self) -> int:
        return len(self.left_indices)


def _match_ranges(build_codes: np.ndarray, probe_codes: np.ndarray):
    """For each probe code, locate its run of equal build codes.

    Returns ``(order, lo, hi)`` where ``order`` sorts the build codes and
    ``[lo[i], hi[i])`` is the matching slice in the sorted array (empty for
    nulls and misses).
    """
    order = np.argsort(build_codes, kind="stable")
    sorted_codes = build_codes[order]
    lo = np.searchsorted(sorted_codes, probe_codes, side="left")
    hi = np.searchsorted(sorted_codes, probe_codes, side="right")
    # Null probe keys never match.
    nulls = probe_codes == NULL_CODE
    hi = np.where(nulls, lo, hi)
    # Null build keys sort first; skip them by clamping lo.
    n_null_build = int((build_codes == NULL_CODE).sum())
    if n_null_build:
        lo = np.maximum(lo, n_null_build)
        hi = np.maximum(hi, lo)
    return order, lo, hi


def _expand(order: np.ndarray, lo: np.ndarray, hi: np.ndarray):
    """Expand per-probe match ranges into (probe_idx, build_idx) pairs."""
    counts = hi - lo
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(lo), dtype=np.int64), counts)
    if total == 0:
        return probe_idx, np.empty(0, dtype=np.int64), counts
    starts = np.repeat(lo, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    build_pos = starts + offsets
    return probe_idx, order[build_pos], counts


# Hash tables carry slack (load factor) plus an 8-byte row payload per
# entry; constructing one writes substantially more than the raw key bytes.
# This is why engines build on the smaller side — and why the ClickHouse
# baseline, which never swaps sides, degrades on join-heavy queries.
HASH_TABLE_EXPANSION = 2.5


def _charge(build_keys, probe_keys, out_rows: int) -> None:
    device = build_keys[0].device
    build_bytes = sum(k.traffic_bytes for k in build_keys)
    probe_bytes = sum(k.traffic_bytes for k in probe_keys)
    build_rows = len(build_keys[0])
    probe_rows = len(probe_keys[0])
    table_bytes = int(HASH_TABLE_EXPANSION * (build_bytes + 8 * build_rows))
    device.launch(KernelClass.HASH_BUILD, build_bytes, table_bytes, build_rows)
    # Each probe reads its keys plus one hash-table bucket (~32 B).
    device.launch(KernelClass.HASH_PROBE, probe_bytes + 32 * probe_rows, out_rows * 8, probe_rows)


def inner_join(left_keys: Sequence[GColumn], right_keys: Sequence[GColumn]) -> JoinResult:
    """Inner equi-join; returns all matching (left, right) index pairs.

    The smaller side plays the hash-table build role for cost purposes,
    matching the planner behaviour of real engines.
    """
    lcodes, rcodes, _ = factorize_keys(left_keys, right_keys, nulls_match=False)
    build_on_right = len(rcodes) <= len(lcodes)
    if build_on_right:
        order, lo, hi = _match_ranges(rcodes, lcodes)
        probe_idx, build_idx, _ = _expand(order, lo, hi)
        left_idx, right_idx = probe_idx, build_idx
        _charge(right_keys, left_keys, len(probe_idx))
    else:
        order, lo, hi = _match_ranges(lcodes, rcodes)
        probe_idx, build_idx, _ = _expand(order, lo, hi)
        left_idx, right_idx = build_idx, probe_idx
        _charge(left_keys, right_keys, len(probe_idx))
    return JoinResult(left_idx, right_idx)


def left_join(left_keys: Sequence[GColumn], right_keys: Sequence[GColumn]) -> JoinResult:
    """Left outer equi-join: unmatched left rows appear once with right
    index ``-1`` (to be gathered as NULLs)."""
    lcodes, rcodes, _ = factorize_keys(left_keys, right_keys, nulls_match=False)
    order, lo, hi = _match_ranges(rcodes, lcodes)
    probe_idx, build_idx, counts = _expand(order, lo, hi)
    unmatched = np.flatnonzero(counts == 0)
    left_idx = np.concatenate([probe_idx, unmatched])
    right_idx = np.concatenate(
        [build_idx, np.full(len(unmatched), NULL_INDEX, dtype=np.int64)]
    )
    _charge(right_keys, left_keys, len(left_idx))
    return JoinResult(left_idx, right_idx)


def semi_join(left_keys: Sequence[GColumn], right_keys: Sequence[GColumn]) -> np.ndarray:
    """Left semi-join: int32 indices of left rows with >= 1 right match."""
    lcodes, rcodes, _ = factorize_keys(left_keys, right_keys, nulls_match=False)
    __, lo, hi = _match_ranges(rcodes, lcodes)
    matched = np.flatnonzero(hi > lo).astype(np.int32)
    _charge(right_keys, left_keys, len(matched))
    return matched


def anti_join(left_keys: Sequence[GColumn], right_keys: Sequence[GColumn]) -> np.ndarray:
    """Left anti-join: int32 indices of left rows with no right match.

    NULL probe keys have no match and therefore *are* returned, matching
    the NOT EXISTS (not the NOT IN) semantics Sirius' planner emits.
    """
    lcodes, rcodes, _ = factorize_keys(left_keys, right_keys, nulls_match=False)
    __, lo, hi = _match_ranges(rcodes, lcodes)
    unmatched = np.flatnonzero(hi == lo).astype(np.int32)
    _charge(right_keys, left_keys, len(unmatched))
    return unmatched
