"""Kernel library: the libcudf stand-in executing on simulated devices."""

from .compute import (
    binary_arith,
    case_when,
    cast_column,
    coalesce,
    compare,
    contains,
    extract_date_part,
    fill_constant,
    hash_partition_ids,
    in_list,
    is_null,
    like,
    logical_and,
    logical_not,
    logical_or,
    substring,
)
from .asof import asof_join
from .compression import PackedColumn, pack_column, packable, unpack_column
from .copying import (
    concat_gtables,
    gather_column,
    gather_table,
    mask_table,
    scatter_to_partitions,
    slice_table,
)
from .groupby import AGG_OPS, AggSpec, groupby, partition_groupby_input
from .gtable import GColumn, GTable, NULL_INDEX
from .join import (
    JoinResult,
    anti_join,
    inner_join,
    left_join,
    partition_join_side,
    semi_join,
)
from .keys import factorize_keys, radix_partition_ids
from .reduce import reduce_column
from .sort import sorted_order, top_n_order

__all__ = [
    "AGG_OPS",
    "AggSpec",
    "GColumn",
    "GTable",
    "JoinResult",
    "NULL_INDEX",
    "anti_join",
    "asof_join",
    "binary_arith",
    "case_when",
    "cast_column",
    "coalesce",
    "compare",
    "concat_gtables",
    "contains",
    "extract_date_part",
    "factorize_keys",
    "fill_constant",
    "gather_column",
    "gather_table",
    "groupby",
    "hash_partition_ids",
    "in_list",
    "inner_join",
    "is_null",
    "left_join",
    "like",
    "logical_and",
    "logical_not",
    "logical_or",
    "PackedColumn",
    "pack_column",
    "packable",
    "unpack_column",
    "mask_table",
    "partition_groupby_input",
    "partition_join_side",
    "radix_partition_ids",
    "reduce_column",
    "scatter_to_partitions",
    "semi_join",
    "slice_table",
    "sorted_order",
    "substring",
    "top_n_order",
]
