"""The simulated cluster: nodes, per-node clocks/devices, data partitioning.

Reproduces the paper's 4xA100 setup: each node owns one execution device
(a GPU for Sirius mode, a CPU for the Doris baseline) and a horizontal
partition of every large table; small tables are replicated.  Nodes run in
parallel — each has its own :class:`~repro.gpu.clock.SimClock` — and the
exchange layer's collectives are the only synchronisation points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..columnar import Table
from ..gpu.clock import SimClock
from ..gpu.device import Device
from ..gpu.nccl import Communicator, Fabric, INFINIBAND_NDR, NVLINK_P2P
from ..gpu.specs import A100_40G

__all__ = ["ClusterNode", "Cluster", "partition_table", "REPLICATED_TABLES"]

# TPC-H tables small enough that every node keeps a full copy (standard
# distributed-warehouse practice; Doris calls these "replicated" tables).
REPLICATED_TABLES = frozenset({"region", "nation", "supplier", "part", "partsupp", "customer"})

# Hash-partition key per distributed table.  These follow Doris-style
# defaults (distribute facts by their foreign keys): orders by customer,
# lineitem by part.  Joining orders with lineitem on orderkey therefore
# requires shuffling *both* sides — exactly the Q3 exchange pattern the
# paper's Table 2 breakdown observes.
PARTITION_KEYS = {
    "orders": "o_custkey",
    "lineitem": "l_partkey",
    "customer": "c_custkey",
    "part": "p_partkey",
    "partsupp": "ps_partkey",
    "supplier": "s_suppkey",
}


def partition_table(table: Table, key: str, num_partitions: int) -> list[Table]:
    """Hash-partition a host table on ``key`` into ``num_partitions`` parts.

    Uses a stable modulo hash of the key column so that co-partitioned
    tables (orders/lineitem on orderkey) land matching rows on the same
    node — which is what makes their join local.
    """
    col = table.column(key)
    if col.dtype.is_string:
        raise ValueError("partitioning on string keys is not supported")
    ids = (col.data.astype(np.int64) % num_partitions + num_partitions) % num_partitions
    return [table.mask(ids == p) for p in range(num_partitions)]


@dataclass
class ClusterNode:
    """One execution rank: a device plus its local table partitions.

    With the multi-GPU extension several ranks share a host (``host_id``);
    they exchange over NVLink peer links instead of the network.
    """

    node_id: int
    device: Device
    catalog: dict[str, Table] = field(default_factory=dict)
    alive: bool = True
    last_heartbeat: float = 0.0
    host_id: int = 0

    @property
    def clock(self) -> SimClock:
        return self.device.clock

    def heartbeat(self) -> None:
        """Refresh liveness (the coordinator's control-plane bookkeeping)."""
        self.last_heartbeat = self.clock.now
        self.alive = True


class Cluster:
    """A fixed group of nodes with a shared fabric."""

    def __init__(
        self,
        num_nodes: int = 4,
        device_factory: Callable[[SimClock], Device] | None = None,
        fabric: Fabric = INFINIBAND_NDR,
        gpus_per_node: int = 1,
        intra_node_fabric: Fabric | None = None,
    ):
        """
        Args:
            num_nodes: Host count (the paper uses 4).
            device_factory: Builds each rank's device around a fresh clock;
                defaults to A100-40G GPUs (the paper's cluster).
            fabric: Inter-host interconnect (default: 4x NDR InfiniBand).
            gpus_per_node: Ranks per host (§3.4's multi-GPU extension);
                total execution ranks = ``num_nodes * gpus_per_node``.
            intra_node_fabric: Link between ranks sharing a host (default:
                NVLink peer-to-peer).
        """
        if num_nodes < 1 or gpus_per_node < 1:
            raise ValueError("cluster needs at least one node and one device per node")
        if device_factory is None:
            device_factory = lambda clock: Device(A100_40G, clock=clock)
        self.gpus_per_node = gpus_per_node
        self.nodes = []
        for rank in range(num_nodes * gpus_per_node):
            node = ClusterNode(rank, device_factory(SimClock()), host_id=rank // gpus_per_node)
            self.nodes.append(node)
        self.fabric = fabric
        intra = intra_node_fabric if intra_node_fabric is not None else NVLINK_P2P

        def fabric_for(i: int, j: int):
            if self.nodes[i].host_id == self.nodes[j].host_id:
                return intra
            return None  # default inter-host fabric

        self.communicator = Communicator(
            [n.clock for n in self.nodes],
            fabric,
            fabric_for=fabric_for if gpus_per_node > 1 else None,
        )

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def load_tables(self, tables: Mapping[str, Table]) -> None:
        """Distribute a database: partition large tables, replicate small."""
        for name, table in tables.items():
            if name in REPLICATED_TABLES or name not in PARTITION_KEYS:
                for node in self.nodes:
                    node.catalog[name] = table
            else:
                parts = partition_table(table, PARTITION_KEYS[name], self.num_nodes)
                for node, part in zip(self.nodes, parts):
                    node.catalog[name] = part

    def partitioning_of(self, table_name: str) -> str | None:
        """The partition column of a distributed table (None = replicated)."""
        if table_name in REPLICATED_TABLES:
            return None
        return PARTITION_KEYS.get(table_name)

    def active_nodes(self) -> list[ClusterNode]:
        """Heartbeat-checked membership (the coordinator's view)."""
        for node in self.nodes:
            node.heartbeat()
        return [n for n in self.nodes if n.alive]

    def max_clock(self) -> float:
        return max(n.clock.now for n in self.nodes)

    def align_clocks(self, category: str | None = None) -> float:
        """Barrier: advance every node to the latest local time."""
        latest = self.max_clock()
        for node in self.nodes:
            node.clock.advance_to(latest, category)
        return latest
