"""The simulated cluster: nodes, per-node clocks/devices, data partitioning.

Reproduces the paper's 4xA100 setup: each node owns one execution device
(a GPU for Sirius mode, a CPU for the Doris baseline) and a horizontal
partition of every large table; small tables are replicated.  Nodes run in
parallel — each has its own :class:`~repro.gpu.clock.SimClock` — and the
exchange layer's collectives are the only synchronisation points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..columnar import Table
from ..gpu.clock import SimClock
from ..gpu.device import Device
from ..gpu.nccl import Communicator, Fabric, INFINIBAND_NDR, NVLINK_P2P
from ..gpu.specs import A100_40G

__all__ = ["ClusterNode", "Cluster", "partition_table", "REPLICATED_TABLES"]

# TPC-H tables small enough that every node keeps a full copy (standard
# distributed-warehouse practice; Doris calls these "replicated" tables).
REPLICATED_TABLES = frozenset({"region", "nation", "supplier", "part", "partsupp", "customer"})

# Hash-partition key per distributed table.  These follow Doris-style
# defaults (distribute facts by their foreign keys): orders by customer,
# lineitem by part.  Joining orders with lineitem on orderkey therefore
# requires shuffling *both* sides — exactly the Q3 exchange pattern the
# paper's Table 2 breakdown observes.
PARTITION_KEYS = {
    "orders": "o_custkey",
    "lineitem": "l_partkey",
    "customer": "c_custkey",
    "part": "p_partkey",
    "partsupp": "ps_partkey",
    "supplier": "s_suppkey",
}


def partition_table(table: Table, key: str, num_partitions: int) -> list[Table]:
    """Hash-partition a host table on ``key`` into ``num_partitions`` parts.

    Uses a stable modulo hash of the key column so that co-partitioned
    tables (orders/lineitem on orderkey) land matching rows on the same
    node — which is what makes their join local.
    """
    col = table.column(key)
    if col.dtype.is_string:
        raise ValueError("partitioning on string keys is not supported")
    ids = (col.data.astype(np.int64) % num_partitions + num_partitions) % num_partitions
    return [table.mask(ids == p) for p in range(num_partitions)]


@dataclass
class ClusterNode:
    """One execution rank: a device plus its local table partitions.

    With the multi-GPU extension several ranks share a host (``host_id``);
    they exchange over NVLink peer links instead of the network.

    ``node_id`` is the node's current rank (renumbered when membership
    changes); ``uid`` is the stable identity assigned at birth, which is
    what fault plans and the coordinator's event log refer to.
    """

    node_id: int
    device: Device
    catalog: dict[str, Table] = field(default_factory=dict)
    alive: bool = True
    last_heartbeat: float = 0.0
    host_id: int = 0
    uid: int = -1

    def __post_init__(self) -> None:
        if self.uid < 0:
            self.uid = self.node_id

    @property
    def clock(self) -> SimClock:
        return self.device.clock

    def heartbeat(self) -> None:
        """The node refreshes its own liveness timestamp.

        Only the node itself beats — a crashed node stays silent, which is
        what makes it detectable.  (The seed version let the *coordinator*
        call this on every node, resurrecting the dead.)
        """
        if not self.alive:
            return
        self.last_heartbeat = self.clock.now

    def crash(self) -> None:
        """The node halts: it stops heartbeating and never executes
        another fragment.  Its clock freezes at the crash instant."""
        self.alive = False


class Cluster:
    """A fixed group of nodes with a shared fabric."""

    def __init__(
        self,
        num_nodes: int = 4,
        device_factory: Callable[[SimClock], Device] | None = None,
        fabric: Fabric = INFINIBAND_NDR,
        gpus_per_node: int = 1,
        intra_node_fabric: Fabric | None = None,
        heartbeat_timeout_s: float = 0.25,
    ):
        """
        Args:
            num_nodes: Host count (the paper uses 4).
            device_factory: Builds each rank's device around a fresh clock;
                defaults to A100-40G GPUs (the paper's cluster).
            fabric: Inter-host interconnect (default: 4x NDR InfiniBand).
            gpus_per_node: Ranks per host (§3.4's multi-GPU extension);
                total execution ranks = ``num_nodes * gpus_per_node``.
            intra_node_fabric: Link between ranks sharing a host (default:
                NVLink peer-to-peer).
            heartbeat_timeout_s: Simulated seconds of heartbeat silence
                after which the coordinator declares a node dead.
        """
        if num_nodes < 1 or gpus_per_node < 1:
            raise ValueError("cluster needs at least one node and one device per node")
        if heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat timeout must be positive")
        if device_factory is None:

            def device_factory(clock):
                return Device(A100_40G, clock=clock)

        self.gpus_per_node = gpus_per_node
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._intra_node_fabric = (
            intra_node_fabric if intra_node_fabric is not None else NVLINK_P2P
        )
        self.fault_injector = None
        self.nodes = []
        for rank in range(num_nodes * gpus_per_node):
            node = ClusterNode(rank, device_factory(SimClock()), host_id=rank // gpus_per_node)
            self.nodes.append(node)
        self.fabric = fabric
        self._build_communicator()

    def _build_communicator(self) -> None:
        """(Re)build the collective group over the current membership."""

        def fabric_for(i: int, j: int):
            if self.nodes[i].host_id == self.nodes[j].host_id:
                return self._intra_node_fabric
            return None  # default inter-host fabric

        self.communicator = Communicator(
            [n.clock for n in self.nodes],
            self.fabric,
            fabric_for=fabric_for if self.gpus_per_node > 1 else None,
        )
        if self.fault_injector is not None:
            self.fault_injector.attach_communicator(self.communicator)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def load_tables(self, tables: Mapping[str, Table]) -> None:
        """Distribute a database: partition large tables, replicate small."""
        for name, table in tables.items():
            if name in REPLICATED_TABLES or name not in PARTITION_KEYS:
                for node in self.nodes:
                    node.catalog[name] = table
            else:
                parts = partition_table(table, PARTITION_KEYS[name], self.num_nodes)
                for node, part in zip(self.nodes, parts):
                    node.catalog[name] = part

    def partitioning_of(self, table_name: str) -> str | None:
        """The partition column of a distributed table (None = replicated)."""
        if table_name in REPLICATED_TABLES:
            return None
        return PARTITION_KEYS.get(table_name)

    def beat_all(self) -> None:
        """Every live node refreshes its own heartbeat (the data-plane
        side channel: nodes beat whenever they make progress)."""
        for node in self.nodes:
            node.heartbeat()

    def active_nodes(self, now: float | None = None) -> list[ClusterNode]:
        """Heartbeat-checked membership (the coordinator's view).

        A node is live iff its last self-reported heartbeat is within
        ``heartbeat_timeout_s`` of ``now``.  The coordinator deliberately
        does *not* read node-internal state: a crashed node is only
        detectable through heartbeat silence, after the timeout elapses.
        """
        if now is None:
            now = self.max_clock()
        return [
            n for n in self.nodes if now - n.last_heartbeat <= self.heartbeat_timeout_s
        ]

    def apply_due_crashes(self) -> list[int]:
        """Fire any scheduled node crashes whose time has come; returns
        the uids of nodes that just died."""
        if self.fault_injector is None:
            return []
        due = self.fault_injector.due_crashes(self.max_clock())
        crashed = []
        for node in self.nodes:
            if node.uid in due and node.alive:
                node.crash()
                crashed.append(node.uid)
        return crashed

    def remove_nodes(self, uids: list[int]) -> None:
        """Evict dead nodes from membership and renumber the survivors.

        The coordinator (rank 0) is not evictable — losing it is
        unrecoverable, exactly as in Doris.  Surviving nodes keep their
        clocks (recovery time stays visible in query totals); the
        collective group is rebuilt over the survivors.
        """
        doomed = set(uids)
        if self.nodes[0].uid in doomed:
            raise RuntimeError("cannot remove the coordinator node")
        survivors = [n for n in self.nodes if n.uid not in doomed]
        if len(survivors) == len(self.nodes):
            return
        if not survivors:
            raise RuntimeError("cannot remove every node")
        for rank, node in enumerate(survivors):
            node.node_id = rank
        self.nodes = survivors
        self._build_communicator()

    def max_clock(self) -> float:
        return max(n.clock.now for n in self.nodes)

    def align_clocks(self, category: str | None = None) -> float:
        """Barrier: advance every node to the latest local time."""
        latest = self.max_clock()
        for node in self.nodes:
            node.clock.advance_to(latest, category)
        return latest
