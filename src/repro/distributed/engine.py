"""Stage-by-stage execution of fragmented plans across the cluster.

For each fragment, every participating node executes the fragment plan
against its local catalog plus any exchange temporary tables it has
received; then the fragment's output moves according to its exchange
spec — shuffles as an all-to-all, broadcasts, merges to the coordinator —
with wire time charged through the NCCL-style communicator and waiting
time aligned across node clocks (nodes run in parallel).

Temporary exchange tables are registered per node and **deregistered once
the consuming fragment finishes** (§3.2.4's runtime registry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..columnar import Table, concat_tables
from ..core.deadline import Deadline
from ..gpu.nccl import LinkDroppedError
from ..obs import NULL_TRACER, QueryProfile
from ..plan import Plan
from .cluster import Cluster
from .fragments import Fragment

__all__ = ["DistributedExecutor", "DistributedResult", "ExchangeRetry", "NodeFailureError"]

COORDINATOR = 0


class _ClusterClock:
    """Clock adapter for cluster-scope spans: ``now`` is the cluster's
    frontier (max over node clocks), the time the coordinator observes."""

    def __init__(self, cluster: Cluster):
        self._cluster = cluster

    @property
    def now(self) -> float:
        return self._cluster.max_clock()


class NodeFailureError(RuntimeError):
    """The coordinator declared one or more compute nodes dead mid-query.

    Raised out of :meth:`DistributedExecutor.run` so the host layer
    (MiniDoris) can evict the nodes, re-partition, and re-execute the lost
    fragments on the survivors.
    """

    def __init__(self, dead_uids: list[int], detected_at: float, fragments_done: int):
        super().__init__(
            f"node(s) {dead_uids} missed heartbeats; "
            f"declared dead at t={detected_at:.6f}s after {fragments_done} fragment(s)"
        )
        self.dead_uids = dead_uids
        self.detected_at = detected_at
        self.fragments_done = fragments_done


@dataclass
class ExchangeRetry:
    """One retried collective (structured record for the event log)."""

    kind: str  # exchange kind being retried
    attempt: int
    backoff_s: float
    sim_time: float


@dataclass
class DistributedResult:
    """Result plus Table-2-style accounting.

    The numeric fields are views of :attr:`profile` — the per-query
    :class:`~repro.obs.QueryProfile` is the source of truth the bench
    harnesses consume; these fields remain for existing callers.
    """

    table: Table
    total_seconds: float
    compute_seconds: float
    exchange_seconds: float
    other_seconds: float
    exchanged_bytes: int
    fragments_run: int
    exchange_retries: int = 0
    retry_events: list = field(default_factory=list)
    profile: QueryProfile | None = None

    def breakdown(self) -> dict[str, float]:
        return {
            "compute": self.compute_seconds,
            "exchange": self.exchange_seconds,
            "other": self.other_seconds,
        }


class DistributedExecutor:
    """Runs fragment lists produced by the DistributedPlanner."""

    def __init__(
        self,
        cluster: Cluster,
        node_executor: Callable[[int, Plan, dict], Table],
        coordinator_overhead_s: float = 0.0006,
        dispatch_overhead_s: float = 0.0001,
        max_exchange_retries: int = 6,
        retry_backoff_s: float = 0.0002,
        tracer=None,
        overlap_exchange: bool = False,
    ):
        """
        Args:
            cluster: The node group.
            node_executor: ``(node_id, plan, catalog) -> Table`` — executes
                one fragment plan on one node, charging that node's clock
                (a per-node Sirius engine or CPU engine closure).
            coordinator_overhead_s: Fixed parse/optimize/schedule cost on
                the coordinator per query (the paper's dominant "other"
                time for Q1/Q6, which "does not scale with the data size").
            dispatch_overhead_s: Per-fragment plan-dispatch cost.
            max_exchange_retries: Collective retries on transient link
                faults before the failure is treated as permanent.
            retry_backoff_s: First retry backoff (simulated seconds);
                doubles per attempt, charged to every node's clock.
            tracer: Observability sink; spans are recorded as
                query -> fragment -> exchange -> collective, with retry
                events on the exchange spans.  Null (free) by default.
            overlap_exchange: Overlap shuffle/broadcast sends with fragment
                compute — a *pipelined* fragment (streaming root) starts
                sending finished partitions while it is still computing, so
                part of the wire time hides behind the slowest node's
                compute.  Off by default (seed-identical).
        """
        self.cluster = cluster
        self.node_executor = node_executor
        self.coordinator_overhead_s = coordinator_overhead_s
        self.dispatch_overhead_s = dispatch_overhead_s
        self.max_exchange_retries = max_exchange_retries
        self.retry_backoff_s = retry_backoff_s
        self.overlap_exchange = overlap_exchange
        self.retry_events: list[ExchangeRetry] = []
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cluster.communicator.tracer = self.tracer
        self._cluster_clock = _ClusterClock(cluster)

    def run(
        self,
        fragments: list[Fragment],
        deadline_s: float | None = None,
        label: str = "",
    ) -> DistributedResult:
        cluster = self.cluster
        comm = cluster.communicator
        tracer = self.tracer
        start = cluster.max_clock()
        exchange_before = [n.clock.bucket("exchange") for n in cluster.nodes]
        bytes_before = comm.bytes_on_wire
        hidden_before = comm.overlap_hidden_s
        comm.overlap_budget_s = 0.0  # no stale budget from an aborted query
        retries_before = len(self.retry_events)
        trace_mark = tracer.mark()
        mem_peak = 0
        deadline = (
            Deadline(deadline_s, cluster.nodes[COORDINATOR].clock)
            if deadline_s is not None
            else None
        )

        with tracer.span(
            label or "distributed-query",
            kind="query",
            clock=self._cluster_clock,
            num_nodes=cluster.num_nodes,
            fragments=len(fragments),
        ) as qspan:
            # Control plane: coordinator checks membership, plans, dispatches.
            self._membership_check(fragments_done=0)
            other = self.coordinator_overhead_s + self.dispatch_overhead_s * len(fragments)
            for node in cluster.nodes:
                node.clock.advance(other, category="other")

            temp_tables: list[dict[str, Table]] = [dict() for _ in cluster.nodes]
            consumers = self._consumer_index(fragments)
            result: Table | None = None

            for index, fragment in enumerate(fragments):
                self._membership_check(fragments_done=index)
                if deadline is not None:
                    deadline.check_at(cluster.max_clock())
                node_ids = (
                    [COORDINATOR]
                    if fragment.runs_on == "coordinator"
                    else range(cluster.num_nodes)
                )
                with tracer.span(
                    f"fragment-{index}",
                    kind="fragment",
                    clock=self._cluster_clock,
                    index=index,
                    runs_on=fragment.runs_on,
                ) as fspan:
                    outputs: dict[int, Table] = {}
                    frag_compute: dict[int, float] = {}
                    rows_out = 0
                    for node_id in node_ids:
                        node = cluster.nodes[node_id]
                        catalog = dict(node.catalog)
                        catalog.update(temp_tables[node_id])
                        plan = Plan(fragment.plan)
                        t0 = node.clock.now
                        outputs[node_id] = self.node_executor(node_id, plan, catalog)
                        frag_compute[node_id] = node.clock.now - t0
                        rows_out += outputs[node_id].num_rows
                        mem_peak = max(mem_peak, node.device.processing_pool.watermark)
                        node.heartbeat()  # progress doubles as liveness
                    fspan.set(rows_out=rows_out)

                    # Deregister consumed temporary tables (the runtime registry).
                    for ex_id in fragment.consumes:
                        consumers[ex_id] -= 1
                        if consumers[ex_id] == 0:
                            for per_node in temp_tables:
                                per_node.pop(f"__ex{ex_id}", None)

                    if fragment.output is None:
                        result = outputs[
                            COORDINATOR if fragment.runs_on == "coordinator" else 0
                        ]
                        continue
                    if (
                        self.overlap_exchange
                        and fragment.output.pipelined
                        and fragment.runs_on == "all"
                        and len(frag_compute) > 1
                    ):
                        # Pipelined fragment: sends started while nodes were
                        # still computing, so the collective may hide behind
                        # the *least* compute any participant had available.
                        comm.overlap_budget_s = min(frag_compute.values())
                    self._exchange(fragment, outputs, temp_tables)

            if result is None:
                raise RuntimeError("fragment list produced no result")

            end = cluster.align_clocks()
            if deadline is not None:
                deadline.check_at(end)
            qspan.set(rows_out=result.num_rows)

        total = end - start
        exchange = max(
            n.clock.bucket("exchange") - b for n, b in zip(cluster.nodes, exchange_before)
        )
        compute = max(total - exchange - other, 0.0)
        query_retries = self.retry_events[retries_before:]
        profile = QueryProfile(
            label=label,
            sim_seconds=total,
            breakdown={"compute": compute, "exchange": exchange, "other": other},
            compute_seconds=compute,
            exchange_seconds=exchange,
            other_seconds=other,
            exchanged_bytes=comm.bytes_on_wire - bytes_before,
            retries=len(query_retries),
            pipelines_run=len(fragments),
            output_rows=result.num_rows,
            device_mem_peak=mem_peak,
            spans=list(tracer.spans_since(trace_mark)),
            overlap_hidden_s=comm.overlap_hidden_s - hidden_before,
        )
        return DistributedResult(
            table=result,
            total_seconds=profile.sim_seconds,
            compute_seconds=profile.compute_seconds,
            exchange_seconds=profile.exchange_seconds,
            other_seconds=profile.other_seconds,
            exchanged_bytes=profile.exchanged_bytes,
            fragments_run=len(fragments),
            exchange_retries=len(query_retries),
            retry_events=query_retries,
            profile=profile,
        )

    # -- failure detection ----------------------------------------------------

    def _membership_check(self, fragments_done: int) -> None:
        """Coordinator-side liveness sweep at a fragment boundary.

        Scheduled crashes fire first (a crashed node stops beating); then
        every live node beats.  A silent node is declared dead only after
        ``heartbeat_timeout_s`` of silence — the coordinator blocks until
        the timeout elapses (that waiting is real detection latency,
        charged to every surviving clock), then raises
        :class:`NodeFailureError` for the host layer to recover from.
        """
        cluster = self.cluster
        cluster.apply_due_crashes()
        cluster.beat_all()
        dead = [n for n in cluster.nodes if not n.alive]
        if not dead:
            return
        detect_at = max(
            cluster.max_clock(),
            max(n.last_heartbeat + cluster.heartbeat_timeout_s for n in dead),
        )
        for node in cluster.nodes:
            if node.alive:
                node.clock.advance_to(detect_at, category="other")
        raise NodeFailureError([n.uid for n in dead], detect_at, fragments_done)

    # -- exchange data plane ------------------------------------------------

    def _exchange(self, fragment: Fragment, outputs: dict[int, Table], temp_tables) -> None:
        spec = fragment.output
        comm = self.cluster.communicator
        bytes_before = comm.bytes_on_wire
        with self.tracer.span(
            f"exchange.{spec.kind}",
            kind="exchange",
            clock=self._cluster_clock,
            table=spec.table_name,
        ) as xspan:
            self._exchange_inner(fragment, outputs, temp_tables)
            xspan.set(bytes=comm.bytes_on_wire - bytes_before)

    def _exchange_inner(
        self, fragment: Fragment, outputs: dict[int, Table], temp_tables
    ) -> None:
        spec = fragment.output
        comm = self.cluster.communicator
        n = self.cluster.num_nodes
        name = spec.table_name

        if spec.kind == "broadcast":
            full = concat_tables([outputs[i] for i in sorted(outputs)])
            self._collective(
                spec.kind,
                lambda: comm.all_to_all(
                    [[0 if i == j else outputs[i].nbytes for j in range(n)] for i in range(n)]
                ),
            )
            for node_id in range(n):
                temp_tables[node_id][name] = full
            return

        if spec.kind == "merge":
            sizes = [outputs.get(i, _empty_like(spec)).nbytes for i in range(n)]
            self._collective(spec.kind, lambda: comm.gather(COORDINATOR, sizes))
            merged = concat_tables([outputs[i] for i in sorted(outputs)])
            temp_tables[COORDINATOR][name] = merged
            return

        if spec.kind == "shuffle":
            partitions: list[list[Table]] = [[] for _ in range(n)]
            matrix = [[0] * n for _ in range(n)]
            for sender, table in outputs.items():
                ids = _partition_ids(table, spec.key_ordinals, n)
                for dest in range(n):
                    piece = table.mask(ids == dest)
                    partitions[dest].append(piece)
                    matrix[sender][dest] = piece.nbytes
            self._collective(spec.kind, lambda: comm.all_to_all(matrix))
            for dest in range(n):
                temp_tables[dest][name] = concat_tables(partitions[dest])
            return

        raise ValueError(f"unknown exchange kind {spec.kind!r}")

    def _collective(self, kind: str, op: Callable[[], float]) -> float:
        """Run one collective, retrying with exponential backoff on
        transient link faults.

        Each retry's backoff is charged to *every* node's clock (the whole
        group waits on the failed collective), so retry cost shows up in
        the exchange bucket of the Table-2 breakdown.
        """
        attempt = 0
        while True:
            try:
                return op()
            except LinkDroppedError:
                attempt += 1
                if attempt > self.max_exchange_retries:
                    raise
                backoff = self.retry_backoff_s * (2 ** (attempt - 1))
                for node in self.cluster.nodes:
                    node.clock.advance(backoff, category="exchange")
                self.retry_events.append(
                    ExchangeRetry(kind, attempt, backoff, self.cluster.max_clock())
                )
                self.tracer.event(
                    "exchange-retry",
                    sim_time=self.cluster.max_clock(),
                    kind=kind,
                    attempt=attempt,
                    backoff_s=backoff,
                )

    def _consumer_index(self, fragments: list[Fragment]) -> dict[int, int]:
        counts: dict[int, int] = {}
        for f in fragments:
            for ex_id in f.consumes:
                counts[ex_id] = counts.get(ex_id, 0) + 1
        return counts


def _partition_ids(table: Table, key_ordinals, num_partitions: int) -> np.ndarray:
    """Stable row->node assignment consistent with base-table partitioning.

    Single integer keys use plain modulo (matching
    :func:`~repro.distributed.cluster.partition_table`); multi-column or
    string keys mix an FNV-style hash.
    """
    if len(key_ordinals) == 1:
        col = table.columns[key_ordinals[0]]
        if col.dtype.is_integer or col.dtype.is_temporal:
            vals = col.data.astype(np.int64)
            return ((vals % num_partitions) + num_partitions) % num_partitions
    acc = np.zeros(table.num_rows, dtype=np.uint64)
    for ordinal in key_ordinals:
        col = table.columns[ordinal]
        if col.dtype.is_string:
            vals = np.array(
                [_fnv(str(s)) if s is not None else 0 for s in col.decoded()],
                dtype=np.uint64,
            )
        else:
            vals = col.data.astype(np.int64).view(np.uint64)
        acc = acc * np.uint64(1099511628211) + vals
    return (acc % np.uint64(num_partitions)).astype(np.int64)


def _fnv(text: str) -> int:
    acc = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


def _empty_like(spec) -> Table:
    return Table.empty(spec.schema)
