"""Distributed plan fragmentation.

Splits an optimised single-node plan into **fragments** separated by
exchange boundaries (§3.2.4): each fragment executes locally on every
participating node; its output is transmitted (shuffle / broadcast /
merge) and consumed as a temporary table by the next fragment — which is
registered and later deregistered by the executor, per the paper.

Placement logic tracks *partitioning* through the tree:

* co-partitioned joins and aggregations grouped by the partition key run
  fully locally;
* otherwise joins shuffle the misplaced side(s) by the join key — or, in
  ``prefer_broadcast_joins`` mode (the ClickHouse-style distributed
  baseline's GLOBAL JOIN), broadcast the entire right side to every node,
  which is what makes its distributed Q3 collapse in Table 2;
* aggregations run in two phases (local partial, shuffle by group key,
  final re-aggregation), with ``avg`` decomposed into sum/count — the
  §3.4 extension the paper's distributed prototype lacked;
* top-level sorts/limits run locally, merge to the coordinator, and
  finish there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..columnar import Schema
from ..plan import (
    AggregateCall,
    AggregateRel,
    FetchRel,
    FieldRef,
    FilterRel,
    JoinRel,
    ProjectRel,
    ReadRel,
    Relation,
    ScalarCall,
    SortRel,
)

__all__ = ["Fragment", "ExchangeSpec", "DistributedPlanner", "DistributedUnsupportedError"]


class DistributedUnsupportedError(NotImplementedError):
    """The distributed mode does not cover this plan shape (the paper:
    "the current distributed mode offers limited SQL coverage")."""


@dataclass
class ExchangeSpec:
    """How a fragment's output moves between nodes."""

    exchange_id: int
    kind: str  # "shuffle" | "broadcast" | "merge"
    key_ordinals: list[int]
    schema: Schema
    # Whether the producing fragment streams its output (its root is a
    # streaming operator, so partitions can be sent while the fragment is
    # still computing).  Fragments rooted at a pipeline breaker (sort,
    # aggregate, fetch) materialise everything before the first byte can
    # move and are never overlappable.
    pipelined: bool = True

    @property
    def table_name(self) -> str:
        return f"__ex{self.exchange_id}"


@dataclass
class Fragment:
    """One locally-executable plan piece."""

    fragment_id: int
    plan: Relation
    output: Optional[ExchangeSpec]  # None => this fragment produces the result
    runs_on: str = "all"  # "all" | "coordinator"
    consumes: list[int] = field(default_factory=list)  # exchange ids read

    def describe(self) -> str:
        dest = self.output.kind if self.output else "result"
        return f"F{self.fragment_id} on {self.runs_on} -> {dest}"


def _consumed_exchanges(rel: Relation) -> list[int]:
    """Exchange ids a plan reads (ReadRels named ``__ex<N>``)."""
    out: list[int] = []
    if isinstance(rel, ReadRel):
        if rel.table_name.startswith("__ex"):
            out.append(int(rel.table_name[4:]))
        return out
    for child in rel.inputs:
        out.extend(_consumed_exchanges(child))
    return out


# Partitioning states threaded through planning.
_REPLICATED = ("replicated",)
_ARBITRARY = ("arbitrary",)
_COORDINATOR = ("coordinator",)  # data gathered onto the initiator only


def _hash_part(ordinals) -> tuple:
    return ("hash", tuple(ordinals))


class DistributedPlanner:
    """Fragments one plan for a cluster of ``num_nodes``."""

    def __init__(
        self,
        partition_key_of: Callable[[str], str | None],
        prefer_broadcast_joins: bool = False,
        predicate_transfer: bool = False,
        estimate_rows: Callable[[Relation], float] | None = None,
    ):
        """
        Args:
            partition_key_of: Table name -> its hash-partition column name,
                or None when the table is replicated on every node.
            prefer_broadcast_joins: Broadcast whole build sides instead of
                shuffling (the ClickHouse-style distributed baseline).
            predicate_transfer: Before shuffling both sides of a join,
                broadcast the smaller side's join keys and semi-join-reduce
                the larger side locally — the paper's §3.4 "predicate
                transfer" optimisation for exactly the Q3 shuffle
                bottleneck its Table 2 identifies.
            estimate_rows: Cardinality estimator used to pick which side
                the transfer reduces; required when ``predicate_transfer``.
        """
        self.partition_key_of = partition_key_of
        self.prefer_broadcast = prefer_broadcast_joins
        self.predicate_transfer = predicate_transfer
        self.estimate_rows = estimate_rows
        if predicate_transfer and estimate_rows is None:
            raise ValueError("predicate_transfer requires an estimate_rows callback")
        self.fragments: list[Fragment] = []
        self._next_exchange = 0

    # -- public -----------------------------------------------------------

    def plan(self, root: Relation) -> list[Fragment]:
        """Fragment ``root``; the last fragment yields the query result on
        the coordinator."""
        self.fragments = []
        self._next_exchange = 0
        rel, part = self._visit(root)
        if part in (_REPLICATED, _COORDINATOR):
            # Every node would return an identical copy (replicated), or
            # the data already lives on the initiator: run it once.
            self._emit(rel, None, runs_on="coordinator")
        elif self._is_coordinator_only(rel):
            self._emit(rel, None, runs_on="coordinator")
        else:
            # Merge partitions to the coordinator, identity final fragment.
            merged = self._cut(rel, "merge", [])
            self._emit(merged, None, runs_on="coordinator")
        return self.fragments

    # -- plumbing -----------------------------------------------------------

    def _emit(self, rel: Relation, output: Optional[ExchangeSpec], runs_on="all") -> None:
        frag = Fragment(len(self.fragments), rel, output, runs_on, _consumed_exchanges(rel))
        self.fragments.append(frag)

    def _cut(self, rel: Relation, kind: str, key_ordinals: list[int]) -> ReadRel:
        """Terminate ``rel`` into an exchange; continue from its temp table."""
        schema = rel.output_schema()
        pipelined = not isinstance(rel, (SortRel, AggregateRel, FetchRel))
        spec = ExchangeSpec(
            self._next_exchange, kind, list(key_ordinals), schema, pipelined=pipelined
        )
        self._next_exchange += 1
        frag = Fragment(len(self.fragments), rel, spec, "all", _consumed_exchanges(rel))
        self.fragments.append(frag)
        return ReadRel(spec.table_name, schema)

    def _is_coordinator_only(self, rel: Relation) -> bool:
        """True when the relation reads only merged exchange tables."""
        if isinstance(rel, ReadRel):
            return rel.table_name.startswith("__ex")
        return bool(rel.inputs) and all(self._is_coordinator_only(c) for c in rel.inputs)

    # -- recursion -----------------------------------------------------------

    def _visit(self, rel: Relation):
        if isinstance(rel, ReadRel):
            key = self.partition_key_of(rel.table_name)
            if key is None:
                return rel, _REPLICATED
            out = rel.output_schema()
            if key in out:
                return rel, _hash_part([out.index_of(key)])
            return rel, _ARBITRARY

        if isinstance(rel, FilterRel):
            child, part = self._visit(rel.input_rel)
            return FilterRel(child, rel.condition), part

        if isinstance(rel, ProjectRel):
            child, part = self._visit(rel.input_rel)
            return ProjectRel(child, rel.expressions, rel.names), _project_partitioning(
                part, rel.expressions
            )

        if isinstance(rel, JoinRel):
            return self._visit_join(rel)

        if isinstance(rel, AggregateRel):
            return self._visit_aggregate(rel)

        if isinstance(rel, FetchRel) and isinstance(rel.input_rel, SortRel):
            sort_rel = rel.input_rel
            child, part = self._visit(sort_rel.input_rel)
            if part in (_REPLICATED, _COORDINATOR):
                return FetchRel(SortRel(child, sort_rel.sort_keys), rel.offset, rel.count), part
            # Local top-N, merge, final top-N on the coordinator.
            local = FetchRel(SortRel(child, sort_rel.sort_keys), 0, rel.offset + (rel.count or 0) or None)
            merged = self._cut(local, "merge", [])
            final = FetchRel(SortRel(merged, sort_rel.sort_keys), rel.offset, rel.count)
            return final, _ARBITRARY

        if isinstance(rel, SortRel):
            child, part = self._visit(rel.input_rel)
            if part in (_REPLICATED, _COORDINATOR):
                return SortRel(child, rel.sort_keys), part
            merged = self._cut(child, "merge", [])
            return SortRel(merged, rel.sort_keys), _ARBITRARY

        if isinstance(rel, FetchRel):
            child, part = self._visit(rel.input_rel)
            if part in (_REPLICATED, _COORDINATOR):
                return FetchRel(child, rel.offset, rel.count), part
            local = FetchRel(child, 0, rel.offset + (rel.count or 0) or None)
            merged = self._cut(local, "merge", [])
            return FetchRel(merged, rel.offset, rel.count), _ARBITRARY

        raise DistributedUnsupportedError(
            f"distributed mode does not support {type(rel).__name__}"
        )

    def _visit_join(self, rel: JoinRel):
        left, lpart = self._visit(rel.left)
        right, rpart = self._visit(rel.right)
        left_arity = len(left.output_schema())

        if lpart == _COORDINATOR or rpart == _COORDINATOR:
            # One side already lives on the initiator: pull the other side
            # there too and keep executing single-node.
            if rpart not in (_REPLICATED, _COORDINATOR):
                right = self._cut(right, "broadcast", [])
            if lpart not in (_REPLICATED, _COORDINATOR):
                left = self._cut(left, "merge", [])
            out = JoinRel(
                left, right, rel.join_type, rel.left_keys, rel.right_keys, rel.post_filter
            )
            return out, _COORDINATOR

        if not rel.left_keys:
            # Cross join: broadcast the right side.
            if rpart != _REPLICATED:
                right = self._cut(right, "broadcast", [])
            out = JoinRel(left, right, rel.join_type, [], [], rel.post_filter)
            return out, (lpart if lpart != _REPLICATED else _REPLICATED)

        co_located = (
            lpart == _hash_part([rel.left_keys[0]]) and rpart == _hash_part([rel.right_keys[0]])
        )
        if rpart == _REPLICATED:
            # Build side everywhere: always local.
            out = JoinRel(left, right, rel.join_type, rel.left_keys, rel.right_keys, rel.post_filter)
            part = lpart if lpart != _REPLICATED else _REPLICATED
            return out, part
        if lpart == _REPLICATED:
            # Probe side replicated, build side partitioned: local, output
            # follows the build side's distribution (semantically each
            # matched pair lives on the build row's node).
            out = JoinRel(left, right, rel.join_type, rel.left_keys, rel.right_keys, rel.post_filter)
            if rel.join_type in ("semi", "anti"):
                # Left (replicated) survives on every node - unsupported.
                raise DistributedUnsupportedError(
                    "semi/anti join with replicated probe side"
                )
            rmapped = _hash_part([left_arity + rel.right_keys[0]])
            return out, rmapped
        if co_located:
            out = JoinRel(left, right, rel.join_type, rel.left_keys, rel.right_keys, rel.post_filter)
            return out, _hash_part([rel.left_keys[0]])

        # Re-distribution required.
        if self.prefer_broadcast:
            # ClickHouse-style distributed join: no shuffle support.  The
            # build side is shipped in full to every node (GLOBAL JOIN) and
            # the probe side is pulled to the initiator, which executes the
            # join alone — distributed joins do not scale out, which is why
            # the paper's Table 2 shows its Q3 collapsing.
            right = self._cut(right, "broadcast", [])
            if lpart != _COORDINATOR:
                left = self._cut(left, "merge", [])
            out = JoinRel(left, right, rel.join_type, rel.left_keys, rel.right_keys, rel.post_filter)
            return out, _COORDINATOR
        shuffle_left = lpart != _hash_part([rel.left_keys[0]])
        shuffle_right = rpart != _hash_part([rel.right_keys[0]])
        if self.predicate_transfer and shuffle_left and shuffle_right:
            left, right = self._apply_predicate_transfer(rel, left, right)
        if shuffle_left:
            left = self._cut(left, "shuffle", [rel.left_keys[0]])
        if shuffle_right:
            right = self._cut(right, "shuffle", [rel.right_keys[0]])
        out = JoinRel(left, right, rel.join_type, rel.left_keys, rel.right_keys, rel.post_filter)
        return out, _hash_part([rel.left_keys[0]])

    def _apply_predicate_transfer(self, rel: JoinRel, left: Relation, right: Relation):
        """Broadcast the smaller side's distinct join keys; semi-join-reduce
        the larger side before it is shuffled.

        The reduced side then moves only the rows that can actually join —
        on Q3 this shrinks the lineitem-side shuffle by the selectivity of
        the orders-side filters, attacking the exchange bottleneck the
        paper's Table 2 breakdown identifies.
        """
        left_rows = self.estimate_rows(left)
        right_rows = self.estimate_rows(right)
        if right_rows <= left_rows:
            small, small_keys = right, rel.right_keys
            big, big_keys = left, rel.left_keys
        else:
            small, small_keys = left, rel.left_keys
            big, big_keys = right, rel.right_keys
        # Distinct keys of the small side (computed once per node on its
        # local data, then broadcast - the "transferred predicate").
        digest = AggregateRel(
            ProjectRel(
                small,
                [FieldRef(k) for k in small_keys],
                [f"__pt{i}" for i in range(len(small_keys))],
            ),
            list(range(len(small_keys))),
            [],
        )
        digest_read = self._cut(digest, "broadcast", [])
        reduced_big = JoinRel(
            big, digest_read, "semi", list(big_keys), list(range(len(small_keys)))
        )
        if right_rows <= left_rows:
            return reduced_big, right
        return left, reduced_big

    def _visit_aggregate(self, rel: AggregateRel):
        child, part = self._visit(rel.input_rel)

        if part in (_REPLICATED, _COORDINATOR):
            return AggregateRel(child, rel.group_indices, rel.measures), part

        n_groups = len(rel.group_indices)
        if n_groups and part[0] == "hash" and set(part[1]) <= set(rel.group_indices):
            # Groups are co-located: single-phase local aggregation.
            out = AggregateRel(child, rel.group_indices, rel.measures)
            new_part = _hash_part(
                [rel.group_indices.index(p) for p in part[1]]
            )
            return out, new_part

        if any(a.op == "count_distinct" or a.distinct for a, _ in rel.measures):
            # DISTINCT aggregates cannot be combined from partials: shuffle
            # raw rows by group key first, then aggregate once.
            if not n_groups:
                merged = self._cut(child, "merge", [])
                return AggregateRel(merged, [], rel.measures), _ARBITRARY
            shuffled = self._cut(child, "shuffle", [rel.group_indices[0]])
            return AggregateRel(shuffled, rel.group_indices, rel.measures), _ARBITRARY

        partial_measures, final_measures, finish_exprs, finish_names = _two_phase_measures(
            rel, n_groups
        )
        partial = AggregateRel(child, rel.group_indices, partial_measures)
        if n_groups:
            redistributed = self._cut(partial, "shuffle", [0])
        else:
            redistributed = self._cut(partial, "merge", [])
        final = AggregateRel(redistributed, list(range(n_groups)), final_measures)
        if finish_exprs is not None:
            final = ProjectRel(final, finish_exprs, finish_names)
        return final, (_hash_part([0]) if n_groups else _ARBITRARY)


def _project_partitioning(part, expressions):
    """Map a hash partitioning through a projection (bare refs only)."""
    if part in (_REPLICATED, _ARBITRARY, _COORDINATOR):
        return part
    _, ordinals = part
    mapped = []
    for ordinal in ordinals:
        hit = None
        for out_pos, expr in enumerate(expressions):
            if isinstance(expr, FieldRef) and expr.index == ordinal:
                hit = out_pos
                break
        if hit is None:
            return _ARBITRARY
        mapped.append(hit)
    return _hash_part(mapped)


_COMBINE = {"sum": "sum", "count": "sum", "count_star": "sum", "min": "min", "max": "max"}


def _two_phase_measures(rel: AggregateRel, n_groups: int):
    """Decompose measures into (partial, final) pairs; ``avg`` becomes
    sum+count partials fused back by a finishing projection."""
    partials: list[tuple[AggregateCall, str]] = []
    finals: list[tuple[AggregateCall, str]] = []
    needs_finish = any(a.op == "avg" for a, _ in rel.measures)
    finish_exprs = [FieldRef(i) for i in range(n_groups)] if needs_finish else None
    finish_names = [f"g{i}" for i in range(n_groups)] if needs_finish else None

    for agg, name in rel.measures:
        if agg.op == "avg":
            sum_pos = n_groups + len(partials)
            partials.append((AggregateCall("sum", agg.arg), f"__ps_{name}"))
            partials.append((AggregateCall("count", agg.arg), f"__pc_{name}"))
            finals.append(
                (AggregateCall("sum", FieldRef(sum_pos)), f"__fs_{name}")
            )
            finals.append(
                (AggregateCall("sum", FieldRef(sum_pos + 1)), f"__fc_{name}")
            )
            if finish_exprs is not None:
                fs = n_groups + len(finals) - 2
                finish_exprs.append(
                    ScalarCall("divide", [FieldRef(fs), FieldRef(fs + 1)])
                )
                finish_names.append(name)
            continue
        combine = _COMBINE.get(agg.op)
        if combine is None:
            raise DistributedUnsupportedError(
                f"aggregate {agg.op!r} is not distributable"
            )
        pos = n_groups + len(partials)
        partials.append((agg, f"__p_{name}"))
        finals.append((AggregateCall(combine, FieldRef(pos)), name))
        if finish_exprs is not None:
            finish_exprs.append(FieldRef(n_groups + len(finals) - 1))
            finish_names.append(name)
    if finish_exprs is not None:
        # Re-derive group key outputs by position for the finishing project.
        pass
    return partials, finals, finish_exprs, finish_names
