"""Distributed substrate: cluster, fragmentation, exchange, execution."""

from .cluster import Cluster, ClusterNode, PARTITION_KEYS, REPLICATED_TABLES, partition_table
from .engine import (
    DistributedExecutor,
    DistributedResult,
    ExchangeRetry,
    NodeFailureError,
)
from .fragments import (
    DistributedPlanner,
    DistributedUnsupportedError,
    ExchangeSpec,
    Fragment,
)

__all__ = [
    "Cluster",
    "ClusterNode",
    "DistributedExecutor",
    "DistributedPlanner",
    "DistributedResult",
    "DistributedUnsupportedError",
    "ExchangeRetry",
    "ExchangeSpec",
    "Fragment",
    "NodeFailureError",
    "PARTITION_KEYS",
    "REPLICATED_TABLES",
    "partition_table",
]
