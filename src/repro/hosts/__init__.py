"""Host databases: MiniDuck (single node), MiniDoris (distributed), and
the ClickHouse-style baseline, plus the shared CPU engine and the Sirius
drop-in extension."""

from .clicklite import CLICKLITE_SPEC, ClickLite, UnsupportedQueryError
from .cpu_engine import CpuEngine, CpuEvalError, DidNotFinishError
from .minidoris import DORIS_SPEC, MiniDoris, NodeFailureError
from .miniduck import ExecutionExtension, MiniDuck, QueryResult
from .sirius_extension import SiriusExtension

__all__ = [
    "CLICKLITE_SPEC",
    "ClickLite",
    "CpuEngine",
    "CpuEvalError",
    "DORIS_SPEC",
    "DidNotFinishError",
    "ExecutionExtension",
    "MiniDoris",
    "MiniDuck",
    "NodeFailureError",
    "QueryResult",
    "SiriusExtension",
    "UnsupportedQueryError",
]
