"""The glue that makes Sirius a drop-in accelerator for host databases.

A :class:`SiriusExtension` satisfies MiniDuck's (and MiniDoris') extension
protocol: it receives optimised plans as Substrait JSON, deserialises
them, executes on the GPU engine, and returns host tables.  The host
keeps its parser, optimizer, and user interface; only execution moves to
the GPU — the paper's drop-in acceleration story.

The extension also wires the graceful fallback: when the GPU engine hits
an unsupported feature or runs out of device memory, the query re-executes
on the host's own CPU engine.
"""

from __future__ import annotations

from typing import Mapping

from ..columnar import Table
from ..core import SiriusEngine
from ..plan import Plan
from .cpu_engine import CpuEngine

__all__ = ["SiriusExtension"]


class SiriusExtension:
    """Adapter: host extension protocol -> SiriusEngine."""

    name = "sirius-gpu"

    def __init__(self, engine: SiriusEngine, fallback_engine: CpuEngine | None = None):
        self.engine = engine
        self._catalog: Mapping[str, Table] = {}
        if fallback_engine is not None:
            engine.set_host_executor(
                lambda plan: fallback_engine.execute(plan, self._catalog)
            )
        self.plans_received = 0

    def execute_substrait(self, plan_json: str, catalog: Mapping[str, Table]) -> Table:
        """Deserialize and execute one Substrait-style plan."""
        self._catalog = catalog
        plan = Plan.from_json(plan_json)
        self.plans_received += 1
        return self.engine.execute(plan, catalog)

    @property
    def last_profile(self):
        return self.engine.last_profile

    def stats(self) -> dict:
        report = self.engine.stats()
        report["plans_received"] = self.plans_received
        return report
