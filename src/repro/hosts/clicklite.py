"""ClickLite: the ClickHouse-style baseline.

Reproduces the planning behaviours the paper's evaluation attributes to
ClickHouse:

* **no correlated subqueries** — the planner rejects them; the benchmark
  harness substitutes the decorrelated rewrites (the paper: "we rewrite
  queries containing subquery correlation for compatibility");
* **no join reordering** — joins execute in FROM-clause order, and the
  build side is never swapped to the smaller input.  On TPC-H this is
  what makes join-heavy queries degrade (Q2, Q5, Q10, ...) and makes Q9 —
  whose written order starts with two tables that share no join edge —
  effectively never finish;
* Q21 is **unsupported** outright;
* a fast scan/aggregation path — ClickHouse beats the row-at-a-time
  competition on scan-heavy queries (Q1/Q6 vs Doris in Table 2), modelled
  as a higher streaming row throughput in the device spec.
"""

from __future__ import annotations

from typing import Mapping

from ..columnar import Table
from ..gpu.device import Device
from ..gpu.specs import DeviceSpec, M7I_CPU
from ..sql import SqlPlanner, SqlPlanningError, TableStats
from ..sql.optimizer import prune_columns
from ..plan import Plan
from ..tpch.queries import CLICKHOUSE_UNSUPPORTED
from .cpu_engine import CpuEngine
from .miniduck import QueryResult

__all__ = ["ClickLite", "CLICKLITE_SPEC", "UnsupportedQueryError"]

# Same machine class as MiniDuck's, but with ClickHouse's operator
# profile: a stronger vectorised scan path (higher streaming row
# throughput) and a much weaker hash-join path — ClickHouse's join builds
# the right side serially without radix partitioning, achieving a small
# fraction of the machine's random-access bandwidth.  This pair of
# coefficients is what produces the paper's observation that ClickHouse
# wins on scan-heavy queries (Q1/Q6 vs Doris) yet collapses on join-heavy
# ones (Q2, Q5, Q10, ...).
CLICKLITE_SPEC = DeviceSpec(
    name="ClickLite CPU device (m7i.16xlarge)",
    kind="cpu",
    memory_gb=M7I_CPU.memory_gb,
    memory_bw_gbps=M7I_CPU.memory_bw_gbps,
    random_access_efficiency=0.12,
    row_throughput_grows=1.8,
    kernel_launch_us=M7I_CPU.kernel_launch_us,
    interconnect_gbps=M7I_CPU.interconnect_gbps,
    interconnect_latency_us=M7I_CPU.interconnect_latency_us,
)


class UnsupportedQueryError(ValueError):
    """The query uses a feature ClickLite does not implement."""


class ClickLite:
    """A column-store baseline with ClickHouse-style planning limits."""

    def __init__(
        self,
        spec: DeviceSpec = CLICKLITE_SPEC,
        max_intermediate_rows: int | None = 4_000_000,
        deadline_s: float | None = None,
        tracer=None,
    ):
        """Both arguments are dimensions of the per-query
        :class:`~repro.core.deadline.Deadline` envelope, enforced inside
        the CPU engine: ``deadline_s`` is the simulated execution-time
        limit (with projected checks before join assembly), and
        ``max_intermediate_rows`` is the join-memory ceiling.  Q9's
        written-order cross join outgrows any realistic ceiling (and, at
        scale, any timeout), reproducing the paper's "Q9 does not
        finish"."""
        from ..obs import NULL_TRACER

        self.device = Device(spec)
        self.deadline_s = deadline_s
        self.cpu_engine = CpuEngine(
            self.device,
            max_intermediate_rows=max_intermediate_rows,
            materialize_joins=True,
        )
        self.tables: dict[str, Table] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.device.tracer = self.tracer

    def create_table(self, name: str, table: Table) -> None:
        self.tables[name] = table

    def load_tables(self, tables: Mapping[str, Table]) -> None:
        for name, table in tables.items():
            self.create_table(name, table)

    def plan(self, sql: str) -> Plan:
        stats = {n: TableStats(t.schema, t.num_rows) for n, t in self.tables.items()}
        planner = SqlPlanner(
            stats, reorder_joins=False, allow_correlated_subqueries=False
        )
        try:
            plan = planner.plan_sql(sql)
        except SqlPlanningError as exc:
            raise UnsupportedQueryError(str(exc)) from exc
        # ClickHouse prunes columns aggressively but keeps the join order.
        return Plan(prune_columns(plan.root), plan.version)

    def execute(self, sql: str) -> QueryResult:
        from ..core.deadline import DidNotFinishError

        plan = self.plan(sql)
        with self.tracer.span(
            "query", kind="query", clock=self.device.clock, engine="clicklite"
        ) as qspan:
            try:
                table = self.cpu_engine.execute(
                    plan, self.tables, deadline_s=self.deadline_s
                )
            except DidNotFinishError as exc:
                self.tracer.event(
                    "did-not-finish", sim_time=self.device.clock.now, reason=str(exc)
                )
                raise
            qspan.set(rows_out=table.num_rows)
        return QueryResult(table, "clicklite", self.cpu_engine.last_sim_seconds)

    def supports_tpch(self, query_number: int) -> bool:
        return query_number not in CLICKHOUSE_UNSUPPORTED
