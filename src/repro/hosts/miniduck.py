"""MiniDuck: the embedded, single-node host database (the DuckDB role).

MiniDuck owns the user interface (SQL in, table out), the catalog, the
parser/optimizer, and its own vectorized CPU engine.  Like DuckDB it
exposes an **extension hook**: an accelerator can register itself and
receive every optimised plan *as serialized Substrait JSON* — MiniDuck's
own code does not know what Sirius is, which is the paper's
"zero modification to DuckDB's codebase" integration (§3.2.1).

    db = MiniDuck()
    db.load_tables(generate_tpch(0.01))
    db.install_extension(SiriusExtension(SiriusEngine.for_spec(GH200)))
    result = db.execute("select count(*) from lineitem")   # runs on "GPU"
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Protocol

from ..columnar import Schema, Table
from ..gpu.device import Device
from ..gpu.specs import M7I_CPU, DeviceSpec
from ..plan import Plan
from ..sql import SqlPlanner, TableStats
from ..sql.optimizer import optimize_plan
from .cpu_engine import CpuEngine

__all__ = ["MiniDuck", "QueryResult", "ExecutionExtension"]


class ExecutionExtension(Protocol):
    """What MiniDuck requires from a pluggable execution engine."""

    name: str

    def execute_substrait(self, plan_json: str, catalog: Mapping[str, Table]) -> Table:
        """Execute a serialized plan against the host's tables."""
        ...


class QueryResult:
    """A result table plus where/how it was executed."""

    def __init__(self, table: Table, engine: str, sim_seconds: float, profile=None):
        self.table = table
        self.engine = engine
        self.sim_seconds = sim_seconds
        self.profile = profile

    def __getattr__(self, item):
        return getattr(self.table, item)


class MiniDuck:
    """An embedded analytical database with a swappable execution engine."""

    def __init__(self, spec: DeviceSpec = M7I_CPU, optimize: bool = True, tracer=None):
        from ..obs import NULL_TRACER

        self.device = Device(spec)
        self.cpu_engine = CpuEngine(self.device)
        self.tables: dict[str, Table] = {}
        self._extension: ExecutionExtension | None = None
        self.optimize = optimize
        self._distinct_cache: dict[str, tuple[int, dict[str, int]]] = {}
        # Observability: the host traces its own CPU path; an installed
        # extension (e.g. Sirius) traces GPU execution with whatever
        # tracer its engine was built with.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.device.tracer = self.tracer

    # -- catalog ----------------------------------------------------------

    def create_table(self, name: str, table: Table) -> None:
        self.tables[name] = table

    def load_tables(self, tables: Mapping[str, Table]) -> None:
        for name, table in tables.items():
            self.create_table(name, table)

    def table_schema(self, name: str) -> Schema:
        return self.tables[name].schema

    def _stats(self) -> dict[str, TableStats]:
        out = {}
        for name, t in self.tables.items():
            out[name] = TableStats(t.schema, t.num_rows, self._distinct_counts(name, t))
        return out

    def _distinct_counts(self, name: str, table: Table) -> dict[str, int]:
        """Per-column distinct counts (ANALYZE-style statistics), cached."""
        cached = self._distinct_cache.get(name)
        if cached is not None and cached[0] == table.num_rows:
            return cached[1]
        import numpy as np

        counts = {
            field.name: int(len(np.unique(col.data)))
            for field, col in zip(table.schema, table.columns)
        }
        self._distinct_cache[name] = (table.num_rows, counts)
        return counts

    # -- persistence ---------------------------------------------------------
    #
    # §3.2.3: "Sirius relies on the host database to read data from disk."
    # MiniDuck owns the on-disk format (one RPQ columnar file per table);
    # Sirius only ever sees host tables and caches them on device.

    def save(self, directory: str | Path) -> None:
        """Persist every table as ``<directory>/<name>.rpq``."""
        from ..columnar import write_table

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name, table in self.tables.items():
            write_table(table, directory / f"{name}.rpq")

    @classmethod
    def open(cls, directory: str | Path, **kwargs) -> "MiniDuck":
        """Open a database directory previously written by :meth:`save`."""
        from ..columnar import read_table

        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"no database directory at {directory}")
        db = cls(**kwargs)
        for path in sorted(directory.glob("*.rpq")):
            db.create_table(path.stem, read_table(path))
        return db

    # -- extension hook ------------------------------------------------------

    def install_extension(self, extension: ExecutionExtension) -> None:
        """Register a drop-in execution engine (e.g. Sirius)."""
        self._extension = extension

    def uninstall_extension(self) -> None:
        self._extension = None

    @property
    def active_engine(self) -> str:
        return self._extension.name if self._extension is not None else "miniduck-cpu"

    # -- queries ------------------------------------------------------------

    def plan(self, sql: str) -> Plan:
        """Parse + bind + optimise into the Substrait-style IR."""
        planner = SqlPlanner(self._stats())
        plan = planner.plan_sql(sql)
        if self.optimize:
            plan = optimize_plan(plan, {n: t.num_rows for n, t in self.tables.items()})
        return plan

    def execute(self, sql: str) -> QueryResult:
        """Run SQL; routed to the extension when one is installed."""
        plan = self.plan(sql)
        return self.execute_plan(plan)

    def execute_plan(self, plan: Plan) -> QueryResult:
        if self._extension is not None:
            # The drop-in path: the plan crosses the boundary as Substrait
            # JSON, exactly like DuckDB -> Sirius in the paper.
            table = self._extension.execute_substrait(plan.to_json(), self.tables)
            profile = getattr(self._extension, "last_profile", None)
            sim = profile.sim_seconds if profile is not None else 0.0
            return QueryResult(table, self._extension.name, sim, profile)
        with self.tracer.span(
            "query", kind="query", clock=self.device.clock, engine="miniduck-cpu"
        ) as qspan:
            table = self.cpu_engine.execute(plan, self.tables)
            qspan.set(rows_out=table.num_rows)
        return QueryResult(table, "miniduck-cpu", self.cpu_engine.last_sim_seconds)
