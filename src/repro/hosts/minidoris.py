"""MiniDoris: the distributed host database (the Apache Doris role).

The coordinator owns the control plane exactly as in §3.2.1/§3.3:
heartbeat-checked membership, SQL planning, plan fragmentation, fragment
dispatch, and global metadata.  Compute nodes execute fragments locally:

* **vanilla mode** — each node runs the Doris-style CPU engine, and data
  exchange uses the host's own (CPU) exchange service;
* **sirius mode** — each node converts its fragment to Substrait and hands
  it to a local :class:`~repro.core.SiriusEngine`; intermediate data moves
  through Sirius' NCCL-based exchange service layer instead.

A ClickHouse-style distributed baseline (broadcast GLOBAL joins) is also
provided for Table 2's third column.
"""

from __future__ import annotations

from typing import Mapping

from ..columnar import Table
from ..core import SiriusEngine
from ..gpu.device import Device
from ..gpu.nccl import ETHERNET_100G, INFINIBAND_NDR, Fabric
from ..gpu.specs import A100_40G, DeviceSpec, XEON_6526Y
from ..plan import Plan
from ..sql import SqlPlanner, TableStats
from ..sql.optimizer import optimize_plan
from .clicklite import CLICKLITE_SPEC
from ..distributed.cluster import Cluster
from ..distributed.engine import DistributedExecutor, DistributedResult, NodeFailureError
from ..distributed.fragments import DistributedPlanner, DistributedUnsupportedError
from ..faults import FaultInjector
from .cpu_engine import CpuEngine

__all__ = ["MiniDoris", "DORIS_SPEC", "DistributedUnsupportedError", "NodeFailureError"]

# Doris compute nodes: same Xeon hardware as the paper's cluster, with the
# engine-efficiency profile of a JVM-based pipeline engine — notably lower
# effective bandwidth and per-row throughput than an embedded vectorised
# C++ engine.  (Calibrated against Table 2's Doris-vs-Sirius ratios.)
DORIS_SPEC = DeviceSpec(
    name="Doris node (Xeon Gold 6526Y, JVM engine profile)",
    kind="cpu",
    memory_gb=XEON_6526Y.memory_gb,
    memory_bw_gbps=90.0,
    random_access_efficiency=0.30,
    row_throughput_grows=0.35,
    kernel_launch_us=2.0,
    interconnect_gbps=XEON_6526Y.interconnect_gbps,
    interconnect_latency_us=XEON_6526Y.interconnect_latency_us,
)


class MiniDoris:
    """A distributed warehouse with pluggable per-node execution engines.

    Modes:
        ``"doris"``      — vanilla CPU execution (the Table 2 baseline);
        ``"sirius"``     — GPU-native execution via per-node Sirius engines;
        ``"clickhouse"`` — ClickHouse-style distributed baseline
                           (broadcast joins, no correlated subqueries).
    """

    def __init__(
        self,
        num_nodes: int = 4,
        mode: str = "doris",
        fabric: Fabric | None = None,
        gpu_spec: DeviceSpec = A100_40G,
        gpu_memory_limit_gb: float | None = None,
        coordinator_overhead_s: float = 0.0006,
        gpus_per_node: int = 1,
        predicate_transfer: bool = False,
        heartbeat_timeout_s: float = 0.25,
        max_recoveries: int = 2,
        deadline_s: float | None = None,
        tracer=None,
        overlap: bool = False,
    ):
        if mode not in ("doris", "sirius", "clickhouse"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        # Copy/compute overlap (sirius mode only): node engines stream cold
        # loads on their copy streams, and pipelined exchanges overlap
        # their sends with fragment compute.  Off by default.
        self.overlap = overlap and mode == "sirius"
        # One tracer spans the whole warehouse: the distributed executor
        # records query/fragment/exchange spans on the cluster clock, and
        # (in sirius mode) each node engine records its pipeline/operator
        # spans on that node's clock.  Null (zero-cost) by default.
        from ..obs import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.predicate_transfer = predicate_transfer
        if fabric is None:
            # Sirius exchanges over InfiniBand via NCCL; the CPU hosts'
            # exchange services run on plain Ethernet-class throughput.
            fabric = INFINIBAND_NDR if mode == "sirius" else ETHERNET_100G

        if mode == "sirius":

            def factory(clock):
                return Device(
                    gpu_spec, clock=clock, memory_limit_gb=gpu_memory_limit_gb
                )

        else:
            spec = DORIS_SPEC if mode == "doris" else CLICKLITE_SPEC

            def factory(clock):
                return Device(spec, clock=clock)

        self.cluster = Cluster(
            num_nodes,
            device_factory=factory,
            fabric=fabric,
            gpus_per_node=gpus_per_node,
            heartbeat_timeout_s=heartbeat_timeout_s,
        )

        self._global_tables: dict[str, Table] = {}
        self._node_engines: list = []
        for node in self.cluster.nodes:
            self._node_engines.append(self._make_engine(node))
        self.executor = DistributedExecutor(
            self.cluster,
            self._run_on_node,
            coordinator_overhead_s=coordinator_overhead_s,
            tracer=self.tracer,
            overlap_exchange=self.overlap,
        )
        self.queries_executed = 0
        self.max_recoveries = max_recoveries
        self.deadline_s = deadline_s
        self.fault_injector: FaultInjector | None = None
        # Structured coordinator log: failure detections, re-executions,
        # per-fragment CPU degradations.
        self.event_log: list[dict] = []

    def _make_engine(self, node):
        if self.mode != "sirius":
            return CpuEngine(node.device, materialize_joins=(self.mode == "clickhouse"))
        engine = SiriusEngine(node.device, tracer=self.tracer, overlap=self.overlap)
        # Standby CPU device on the *same clock* as the node's GPU: the
        # cpu-pipeline degradation tier re-runs a failed fragment there,
        # so its (slower) execution time lands in the query total.
        standby = CpuEngine(Device(DORIS_SPEC, clock=node.device.clock))
        uid = node.uid

        def run_fragment_on_cpu(plan: Plan, catalog) -> Table:
            self.event_log.append(
                {
                    "event": "pipeline_cpu_fallback",
                    "node": uid,
                    "sim_time": standby.device.clock.now,
                }
            )
            return standby.execute(plan, catalog)

        engine.set_pipeline_cpu_executor(run_fragment_on_cpu)
        return engine

    # -- catalog ----------------------------------------------------------

    def load_tables(self, tables: Mapping[str, Table]) -> None:
        """Distribute data across the cluster; the coordinator keeps the
        global metadata (schemas + statistics)."""
        self._global_tables.update(tables)
        self.cluster.load_tables(tables)

    def warm_caches(self) -> None:
        """Pre-load every node's local partitions into GPU memory (hot-run
        measurement methodology; no-op for CPU modes)."""
        if self.mode != "sirius":
            return
        for engine, node in zip(self._node_engines, self.cluster.nodes):
            engine.warm_cache(node.catalog)

    # -- planning ------------------------------------------------------------

    def _stats(self) -> dict[str, TableStats]:
        import numpy as np

        out = {}
        for name, t in self._global_tables.items():
            distinct = {
                f.name: int(len(np.unique(c.data)))
                for f, c in zip(t.schema, t.columns)
            }
            out[name] = TableStats(t.schema, t.num_rows, distinct)
        return out

    def plan_fragments(self, sql: str):
        planner = SqlPlanner(
            self._stats(),
            reorder_joins=(self.mode != "clickhouse"),
            allow_correlated_subqueries=(self.mode != "clickhouse"),
        )
        plan = planner.plan_sql(sql)
        plan = optimize_plan(plan, {n: t.num_rows for n, t in self._global_tables.items()})
        from ..sql.optimizer import _estimate

        row_counts = {n: t.num_rows for n, t in self._global_tables.items()}
        fragmenter = DistributedPlanner(
            self.cluster.partitioning_of,
            prefer_broadcast_joins=(self.mode == "clickhouse"),
            predicate_transfer=self.predicate_transfer,
            estimate_rows=lambda rel: _estimate(rel, row_counts),
        )
        return fragmenter.plan(plan.root)

    # -- fault injection -------------------------------------------------------

    def install_faults(self, plan_or_injector) -> FaultInjector:
        """Attach a :class:`~repro.faults.FaultPlan` (or a prebuilt
        injector) to every layer of the warehouse: node devices, the
        exchange communicator, and cluster membership."""
        injector = (
            plan_or_injector
            if isinstance(plan_or_injector, FaultInjector)
            else FaultInjector(plan_or_injector)
        )
        self.fault_injector = injector
        injector.attach_cluster(self.cluster)
        return injector

    # -- execution ------------------------------------------------------------

    def execute(self, sql: str, deadline_s: float | None = None) -> DistributedResult:
        """Run a query; on a node failure, recover and re-execute.

        Failure handling follows Doris' coordinator model: a node whose
        heartbeats go silent is declared dead, evicted from membership,
        the lost partitions are re-distributed among the survivors, and
        the query's fragments re-execute from the start.  The failed
        attempt's time (including detection latency) stays on the clocks,
        so recovery cost is visible in the query total.
        """
        if deadline_s is None:
            deadline_s = self.deadline_s
        recoveries = 0
        while True:
            fragments = self.plan_fragments(sql)
            try:
                result = self.executor.run(
                    fragments,
                    deadline_s=deadline_s,
                    label=" ".join(sql.split())[:80],
                )
            except NodeFailureError as failure:
                recoveries += 1
                if recoveries > self.max_recoveries:
                    raise
                self._recover(failure)
                continue
            self.queries_executed += 1
            return result

    def _recover(self, failure: NodeFailureError) -> None:
        self.event_log.append(
            {
                "event": "node_failure_detected",
                "dead_nodes": sorted(failure.dead_uids),
                "sim_time": failure.detected_at,
                "fragments_done": failure.fragments_done,
            }
        )
        doomed = set(failure.dead_uids)
        surviving_engines = [
            engine
            for engine, node in zip(self._node_engines, self.cluster.nodes)
            if node.uid not in doomed
        ]
        self.cluster.remove_nodes(sorted(doomed))  # raises if coordinator died
        self._node_engines = surviving_engines
        if self.mode == "sirius":
            # Surviving GPUs hold partitions laid out for the old
            # membership; evict before re-partitioning (reload is charged
            # lazily on next access).
            for engine in self._node_engines:
                engine.buffer_manager.clear()
        self.cluster.load_tables(self._global_tables)
        self.event_log.append(
            {
                "event": "fragments_reexecuted",
                "surviving_nodes": [n.uid for n in self.cluster.nodes],
                "sim_time": self.cluster.max_clock(),
            }
        )

    def _run_on_node(self, node_id: int, plan: Plan, catalog: dict) -> Table:
        engine = self._node_engines[node_id]
        if self.mode == "sirius":
            table = engine.execute(plan, catalog)
            # Exchange temporaries are per-fragment: evict them so a later
            # exchange reusing the id never reads stale cached data.
            for name in list(catalog):
                if name.startswith("__ex"):
                    engine.drop_cached(name)
            return table
        return engine.execute(plan, catalog)

    def node_stats(self) -> list[dict]:
        if self.mode == "sirius":
            return [e.stats() for e in self._node_engines]
        return [{"queries_executed": e.queries_executed} for e in self._node_engines]
