"""MiniDoris: the distributed host database (the Apache Doris role).

The coordinator owns the control plane exactly as in §3.2.1/§3.3:
heartbeat-checked membership, SQL planning, plan fragmentation, fragment
dispatch, and global metadata.  Compute nodes execute fragments locally:

* **vanilla mode** — each node runs the Doris-style CPU engine, and data
  exchange uses the host's own (CPU) exchange service;
* **sirius mode** — each node converts its fragment to Substrait and hands
  it to a local :class:`~repro.core.SiriusEngine`; intermediate data moves
  through Sirius' NCCL-based exchange service layer instead.

A ClickHouse-style distributed baseline (broadcast GLOBAL joins) is also
provided for Table 2's third column.
"""

from __future__ import annotations

from typing import Mapping

from ..columnar import Table
from ..core import SiriusEngine
from ..gpu.device import Device
from ..gpu.nccl import ETHERNET_100G, INFINIBAND_NDR, Fabric
from ..gpu.specs import A100_40G, DeviceSpec, XEON_6526Y
from ..plan import Plan
from ..sql import SqlPlanner, TableStats
from ..sql.optimizer import optimize_plan
from .clicklite import CLICKLITE_SPEC
from ..distributed.cluster import Cluster
from ..distributed.engine import DistributedExecutor, DistributedResult
from ..distributed.fragments import DistributedPlanner, DistributedUnsupportedError
from .cpu_engine import CpuEngine

__all__ = ["MiniDoris", "DORIS_SPEC", "DistributedUnsupportedError"]

# Doris compute nodes: same Xeon hardware as the paper's cluster, with the
# engine-efficiency profile of a JVM-based pipeline engine — notably lower
# effective bandwidth and per-row throughput than an embedded vectorised
# C++ engine.  (Calibrated against Table 2's Doris-vs-Sirius ratios.)
DORIS_SPEC = DeviceSpec(
    name="Doris node (Xeon Gold 6526Y, JVM engine profile)",
    kind="cpu",
    memory_gb=XEON_6526Y.memory_gb,
    memory_bw_gbps=90.0,
    random_access_efficiency=0.30,
    row_throughput_grows=0.35,
    kernel_launch_us=2.0,
    interconnect_gbps=XEON_6526Y.interconnect_gbps,
    interconnect_latency_us=XEON_6526Y.interconnect_latency_us,
)


class MiniDoris:
    """A distributed warehouse with pluggable per-node execution engines.

    Modes:
        ``"doris"``      — vanilla CPU execution (the Table 2 baseline);
        ``"sirius"``     — GPU-native execution via per-node Sirius engines;
        ``"clickhouse"`` — ClickHouse-style distributed baseline
                           (broadcast joins, no correlated subqueries).
    """

    def __init__(
        self,
        num_nodes: int = 4,
        mode: str = "doris",
        fabric: Fabric | None = None,
        gpu_spec: DeviceSpec = A100_40G,
        gpu_memory_limit_gb: float | None = None,
        coordinator_overhead_s: float = 0.0006,
        gpus_per_node: int = 1,
        predicate_transfer: bool = False,
    ):
        if mode not in ("doris", "sirius", "clickhouse"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.predicate_transfer = predicate_transfer
        if fabric is None:
            # Sirius exchanges over InfiniBand via NCCL; the CPU hosts'
            # exchange services run on plain Ethernet-class throughput.
            fabric = INFINIBAND_NDR if mode == "sirius" else ETHERNET_100G

        if mode == "sirius":
            factory = lambda clock: Device(
                gpu_spec, clock=clock, memory_limit_gb=gpu_memory_limit_gb
            )
        else:
            spec = DORIS_SPEC if mode == "doris" else CLICKLITE_SPEC
            factory = lambda clock: Device(spec, clock=clock)
        self.cluster = Cluster(
            num_nodes, device_factory=factory, fabric=fabric, gpus_per_node=gpus_per_node
        )

        self._global_tables: dict[str, Table] = {}
        self._node_engines: list = []
        for node in self.cluster.nodes:
            if mode == "sirius":
                engine = SiriusEngine(node.device)
            else:
                engine = CpuEngine(
                    node.device,
                    materialize_joins=(mode == "clickhouse"),
                )
            self._node_engines.append(engine)
        self.executor = DistributedExecutor(
            self.cluster, self._run_on_node, coordinator_overhead_s=coordinator_overhead_s
        )
        self.queries_executed = 0

    # -- catalog ----------------------------------------------------------

    def load_tables(self, tables: Mapping[str, Table]) -> None:
        """Distribute data across the cluster; the coordinator keeps the
        global metadata (schemas + statistics)."""
        self._global_tables.update(tables)
        self.cluster.load_tables(tables)

    def warm_caches(self) -> None:
        """Pre-load every node's local partitions into GPU memory (hot-run
        measurement methodology; no-op for CPU modes)."""
        if self.mode != "sirius":
            return
        for engine, node in zip(self._node_engines, self.cluster.nodes):
            engine.warm_cache(node.catalog)

    # -- planning ------------------------------------------------------------

    def _stats(self) -> dict[str, TableStats]:
        import numpy as np

        out = {}
        for name, t in self._global_tables.items():
            distinct = {
                f.name: int(len(np.unique(c.data)))
                for f, c in zip(t.schema, t.columns)
            }
            out[name] = TableStats(t.schema, t.num_rows, distinct)
        return out

    def plan_fragments(self, sql: str):
        planner = SqlPlanner(
            self._stats(),
            reorder_joins=(self.mode != "clickhouse"),
            allow_correlated_subqueries=(self.mode != "clickhouse"),
        )
        plan = planner.plan_sql(sql)
        plan = optimize_plan(plan, {n: t.num_rows for n, t in self._global_tables.items()})
        from ..sql.optimizer import _estimate

        row_counts = {n: t.num_rows for n, t in self._global_tables.items()}
        fragmenter = DistributedPlanner(
            self.cluster.partitioning_of,
            prefer_broadcast_joins=(self.mode == "clickhouse"),
            predicate_transfer=self.predicate_transfer,
            estimate_rows=lambda rel: _estimate(rel, row_counts),
        )
        return fragmenter.plan(plan.root)

    # -- execution ------------------------------------------------------------

    def execute(self, sql: str) -> DistributedResult:
        fragments = self.plan_fragments(sql)
        result = self.executor.run(fragments)
        self.queries_executed += 1
        return result

    def _run_on_node(self, node_id: int, plan: Plan, catalog: dict) -> Table:
        engine = self._node_engines[node_id]
        if self.mode == "sirius":
            table = engine.execute(plan, catalog)
            # Exchange temporaries are per-fragment: evict them so a later
            # exchange reusing the id never reads stale cached data.
            for name in list(catalog):
                if name.startswith("__ex"):
                    engine.drop_cached(name)
            return table
        return engine.execute(plan, catalog)

    def node_stats(self) -> list[dict]:
        if self.mode == "sirius":
            return [e.stats() for e in self._node_engines]
        return [{"queries_executed": e.queries_executed} for e in self._node_engines]
