"""The host databases' own CPU execution engine.

This is the *vanilla DuckDB engine* role from the paper's Figure 4: a
vectorized, pull-based (Volcano-over-whole-columns) interpreter of the
same plan IR, executing directly on host tables with NumPy and charging a
CPU-calibrated device clock.  It is implemented independently of the GPU
kernel library — null handling, expression evaluation, join assembly and
aggregation are all separate code — which makes it both the paper's
cost-normalised baseline and a differential-testing oracle for Sirius.
"""

from __future__ import annotations

import datetime
import re
from typing import Mapping

import numpy as np

from ..columnar import BOOL, Column, DATE32, FLOAT64, INT64, STRING, Table
from ..columnar.dtypes import date_to_days, dtype_from_name
from ..core.deadline import Deadline, DidNotFinishError
from ..gpu.costmodel import KernelClass
from ..gpu.device import Device
from ..gpu.specs import M7I_CPU, DeviceSpec
from ..plan import (
    AggregateRel,
    ExchangeRel,
    FetchRel,
    FieldRef,
    FilterRel,
    JoinRel,
    Literal,
    Plan,
    ProjectRel,
    ReadRel,
    Relation,
    ScalarCall,
    SortRel,
)
from ..plan.relations import join_output_schema

__all__ = ["CpuEngine", "CpuEvalError", "DidNotFinishError"]

# DidNotFinishError moved to repro.core.deadline (the unified DNF
# mechanism); re-exported here for backward compatibility.


class CpuEvalError(NotImplementedError):
    """The CPU engine met a plan construct it cannot execute."""


class _Vec:
    """A host vector during evaluation: values + validity (None = scalar)."""

    __slots__ = ("values", "valid", "dtype", "dtype_dictionary")

    def __init__(self, values: np.ndarray, valid: np.ndarray, dtype):
        self.values = values
        self.valid = valid
        self.dtype = dtype
        self.dtype_dictionary = None


class CpuEngine:
    """Executes plans on host tables with a CPU-device simulated clock."""

    def __init__(
        self,
        device: Device | None = None,
        spec: DeviceSpec = M7I_CPU,
        max_intermediate_rows: int | None = 50_000_000,
        materialize_joins: bool = False,
    ):
        """
        Args:
            device: Shared CPU device (a fresh one is made from ``spec``).
            spec: Hardware parameters when no device is given.
            max_intermediate_rows: Memory ceiling of the per-query
                :class:`~repro.core.deadline.Deadline` envelope — abort
                (``DidNotFinishError``) when a join would materialise more
                rows than this; ``None`` disables.
            materialize_joins: Charge a full write+read of every join
                output (no late materialization between operators) — the
                ClickHouse-style execution behaviour that makes join-heavy
                queries degrade in the paper's Figure 4.
        """
        self.device = device if device is not None else Device(spec)
        self.max_intermediate_rows = max_intermediate_rows
        self.materialize_joins = materialize_joins
        self.queries_executed = 0
        self.last_sim_seconds = 0.0
        self._deadline: Deadline | None = None

    def execute(
        self, plan: Plan, catalog: Mapping[str, Table], deadline_s: float | None = None
    ) -> Table:
        """Execute ``plan``; ``deadline_s`` bounds simulated execution time.

        The engine's ``max_intermediate_rows`` ceiling and ``deadline_s``
        combine into one :class:`~repro.core.deadline.Deadline` envelope.
        Time is checked after every charged kernel and *projected* before
        join assembly, so a plan whose written-order joins explode
        (ClickHouse on Q9) raises
        :class:`~repro.core.deadline.DidNotFinishError` without the
        simulation materialising the pathological intermediate.
        """
        plan.validate()
        start = self.device.clock.now
        self._deadline = (
            Deadline(
                deadline_s,
                self.device.clock,
                max_intermediate_rows=self.max_intermediate_rows,
            )
            if deadline_s is not None or self.max_intermediate_rows is not None
            else None
        )
        try:
            result = self._run(plan.root, catalog)
        finally:
            self._deadline = None
            self.last_sim_seconds = self.device.clock.now - start
        self.queries_executed += 1
        return result

    # -- relations ---------------------------------------------------------

    def _run(self, rel: Relation, catalog) -> Table:
        if isinstance(rel, ReadRel):
            table = catalog.get(rel.table_name)
            if table is None:
                raise CpuEvalError(f"table {rel.table_name!r} not found")
            if rel.projection is not None:
                table = table.select(rel.projection)  # column pruning is free
            self._charge(KernelClass.STREAM, table.nbytes, 0, table.num_rows)
            if rel.filter_expr is not None:
                table = self._filter(table, rel.filter_expr)
            return table
        if isinstance(rel, FilterRel):
            return self._filter(self._run(rel.input_rel, catalog), rel.condition)
        if isinstance(rel, ProjectRel):
            return self._project(self._run(rel.input_rel, catalog), rel)
        if isinstance(rel, JoinRel):
            return self._join(rel, catalog)
        if isinstance(rel, AggregateRel):
            return self._aggregate(self._run(rel.input_rel, catalog), rel)
        if isinstance(rel, SortRel):
            return self._sort(self._run(rel.input_rel, catalog), rel)
        if isinstance(rel, FetchRel):
            table = self._run(rel.input_rel, catalog)
            count = table.num_rows if rel.count is None else rel.count
            return table.slice(rel.offset, count)
        if isinstance(rel, ExchangeRel):
            return self._run(rel.input_rel, catalog)  # single-node bypass
        raise CpuEvalError(f"unsupported relation {type(rel).__name__}")

    def _charge(self, kclass, bytes_in, bytes_out, rows, num_groups=None):
        self.device.launch(kclass, int(bytes_in), int(bytes_out), int(rows), num_groups)
        if self._deadline is not None:
            self._deadline.check(self.device.clock)

    def _filter(self, table: Table, condition) -> Table:
        vec = self._eval(condition, table)
        keep = vec.values.astype(bool) & vec.valid
        self._charge(KernelClass.STREAM, table.nbytes, 0, table.num_rows)
        return table.mask(keep)

    def _project(self, table: Table, rel: ProjectRel) -> Table:
        out_schema = rel.output_schema()
        columns = []
        computed_bytes = 0
        for expr, field in zip(rel.expressions, out_schema):
            if isinstance(expr, FieldRef):
                # Bare column references are zero-copy in a columnar engine.
                columns.append(table.columns[expr.index])
                continue
            vec = self._eval(expr, table)
            col = self._to_column(vec, field.dtype, table.num_rows)
            computed_bytes += col.nbytes
            columns.append(col)
        if computed_bytes:
            self._charge(KernelClass.STREAM, computed_bytes, computed_bytes, table.num_rows)
        return Table(out_schema, columns)

    # -- join ------------------------------------------------------------------

    def _join(self, rel: JoinRel, catalog) -> Table:
        left = self._run(rel.left, catalog)
        right = self._run(rel.right, catalog)
        if not rel.left_keys:
            return self._cross_join(rel, left, right)

        lkeys = [left.columns[i] for i in rel.left_keys]
        rkeys = [right.columns[i] for i in rel.right_keys]
        lcodes, lvalid = self._key_codes(lkeys, rkeys)
        # Hash-table construction writes ~2.5x the key+payload bytes (load
        # factor + row ids) — mirrors the kernel library's charging so the
        # build-side choice matters identically on CPU and GPU.
        build_key_bytes = sum(self._col_traffic(k) for k in rkeys)
        table_bytes = int(2.5 * (build_key_bytes + 8 * right.num_rows))
        self._charge(KernelClass.HASH_BUILD, build_key_bytes, table_bytes, right.num_rows)
        self._charge(
            KernelClass.HASH_PROBE,
            sum(self._col_traffic(k) for k in lkeys) + 32 * left.num_rows,
            left.num_rows * 8,
            left.num_rows,
        )
        lc, rc = lcodes
        lv, rv = lvalid

        order = np.argsort(rc, kind="stable")
        rc_sorted = rc[order]
        lo = np.searchsorted(rc_sorted, lc, side="left")
        hi = np.searchsorted(rc_sorted, lc, side="right")
        hi = np.where(lv, hi, lo)  # null probe keys match nothing
        invalid_build = int((~rv).sum())
        if invalid_build:
            # Invalid build keys were coded as -1 and sort first.
            lo = np.maximum(lo, invalid_build)
            hi = np.maximum(hi, lo)
        counts = hi - lo

        if rel.join_type in ("semi", "anti") and rel.post_filter is None:
            keep = counts > 0 if rel.join_type == "semi" else counts == 0
            self._charge(KernelClass.STREAM, left.nbytes, 0, left.num_rows)
            return left.mask(keep)

        total = int(counts.sum())
        self._check_budget(total)
        self._projected_assembly_check(left, right, total)
        probe_idx = np.repeat(np.arange(left.num_rows), counts)
        starts = np.repeat(lo, counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        build_idx = order[starts + offsets] if total else np.empty(0, dtype=np.int64)

        if rel.join_type in ("semi", "anti"):
            combined = self._assemble_join(left, right, probe_idx, build_idx, rel)
            vec = self._eval(rel.post_filter, combined)
            ok = vec.values.astype(bool) & vec.valid
            matched = np.unique(probe_idx[ok])
            if rel.join_type == "semi":
                return left.take(matched)
            keep = np.setdiff1d(np.arange(left.num_rows), matched)
            return left.take(keep)

        if rel.join_type == "left":
            unmatched = np.flatnonzero(counts == 0)
            probe_idx = np.concatenate([probe_idx, unmatched])
            build_idx = np.concatenate([build_idx, np.full(len(unmatched), -1)])

        out = self._assemble_join(left, right, probe_idx, build_idx, rel)
        if rel.post_filter is not None and rel.join_type in ("inner", "left"):
            out = self._filter(out, rel.post_filter)
        return out

    def _assemble_join(self, left, right, probe_idx, build_idx, rel) -> Table:
        schema = join_output_schema(left.schema, right.schema)
        null_build = build_idx < 0
        safe_build = np.where(null_build, 0, build_idx)
        columns = []
        for col in left.columns:
            columns.append(col.take(probe_idx))
        for col in right.columns:
            if len(col):
                taken = col.take(safe_build)
            else:
                taken = Column(
                    col.dtype,
                    np.zeros(len(build_idx), dtype=col.dtype.numpy_dtype),
                    np.zeros(len(build_idx), dtype=np.bool_),
                    col.dictionary,
                )
            if null_build.any() and len(taken):
                validity = taken.is_valid_mask() & ~null_build
                taken = Column(taken.dtype, taken.data, validity, taken.dictionary)
            columns.append(taken)
        out_bytes = sum(c.nbytes for c in columns)
        self._charge(
            KernelClass.GATHER,
            left.nbytes + right.nbytes,
            out_bytes,
            len(probe_idx),
        )
        if self.materialize_joins:
            # No late materialization: the joined block is written out and
            # read back by the next operator.
            self._charge(KernelClass.STREAM, out_bytes, out_bytes, len(probe_idx))
        return Table(schema, columns)

    def _check_budget(self, rows: int) -> None:
        if self._deadline is not None:
            self._deadline.check_rows(rows)

    def _projected_assembly_check(self, left: Table, right: Table, rows: int) -> None:
        """Abort *before* materialising a join whose assembly alone would
        blow the deadline — NumPy would otherwise really build the
        pathological intermediate the timeout is meant to prevent."""
        if self._deadline is None or rows == 0:
            return
        left_row_bytes = left.nbytes / max(left.num_rows, 1)
        right_row_bytes = right.nbytes / max(right.num_rows, 1)
        out_bytes = int((left_row_bytes + right_row_bytes) * rows)
        projected = self.device.cost_model.kernel_cost(
            KernelClass.GATHER, left.nbytes + right.nbytes, out_bytes, rows
        ).total
        if self.materialize_joins:
            projected += self.device.cost_model.kernel_cost(
                KernelClass.STREAM, out_bytes, out_bytes, rows
            ).total
        self._deadline.check_projected(self.device.clock, projected)

    def _cross_join(self, rel, left, right) -> Table:
        n, m = left.num_rows, right.num_rows
        self._check_budget(n * m)
        if self._deadline is not None:
            expand = self.device.cost_model.kernel_cost(
                KernelClass.STREAM, left.nbytes + right.nbytes, n * m * 8, n * m
            ).total
            self._deadline.check_projected(self.device.clock, expand)
        self._projected_assembly_check(left, right, n * m)
        probe_idx = np.repeat(np.arange(n), m)
        build_idx = np.tile(np.arange(m), n)
        self._charge(KernelClass.STREAM, left.nbytes + right.nbytes, n * m * 8, n * m)
        out = self._assemble_join(left, right, probe_idx, build_idx, rel)
        if rel.post_filter is not None:
            out = self._filter(out, rel.post_filter)
        return out

    def _key_codes(self, lkeys, rkeys):
        """Dense comparable codes across both sides; invalid keys -> -1."""
        n_l = len(lkeys[0]) if lkeys else 0
        n_r = len(rkeys[0]) if rkeys else 0
        combined_l = np.zeros(n_l, dtype=np.int64)
        combined_r = np.zeros(n_r, dtype=np.int64)
        lvalid = np.ones(n_l, dtype=bool)
        rvalid = np.ones(n_r, dtype=bool)
        for lcol, rcol in zip(lkeys, rkeys):
            lvals = self._comparable(lcol)
            rvals = self._comparable(rcol)
            both = np.concatenate([lvals, rvals])
            _, inv = np.unique(both, return_inverse=True)
            card = int(inv.max()) + 1 if len(inv) else 1
            combined_l = combined_l * card + inv[:n_l]
            combined_r = combined_r * card + inv[n_l:]
            lvalid &= lcol.is_valid_mask()
            rvalid &= rcol.is_valid_mask()
            if lcol.dtype.is_string:
                lvalid &= lcol.data >= 0
            if rcol.dtype.is_string:
                rvalid &= rcol.data >= 0
        _, dense = np.unique(np.concatenate([combined_l, combined_r]), return_inverse=True)
        lc = dense[:n_l].astype(np.int64)
        rc = dense[n_l:].astype(np.int64)
        lc[~lvalid] = -1
        rc[~rvalid] = -1
        return (lc, rc), (lvalid, rvalid)

    def _comparable(self, col: Column) -> np.ndarray:
        if col.dtype.is_string:
            return col.decoded()
        return col.data

    def _col_traffic(self, col: Column) -> int:
        if col.dtype.is_string and col.dictionary is not None and len(col):
            avg = (
                sum(len(str(s)) for s in col.dictionary) / len(col.dictionary)
                if len(col.dictionary)
                else 0
            )
            return int(len(col) * avg) + col.nbytes
        return col.nbytes

    # -- aggregation ----------------------------------------------------------

    def _aggregate(self, table: Table, rel: AggregateRel) -> Table:
        out_schema = rel.output_schema()
        if not rel.group_indices:
            return self._global_aggregate(table, rel, out_schema)

        key_cols = [table.columns[i] for i in rel.group_indices]
        combined = np.zeros(table.num_rows, dtype=np.int64)
        for col in key_cols:
            vals = self._comparable(col)
            mask = col.is_valid_mask()
            if col.dtype.is_string:
                mask = mask & (col.data >= 0)
            work = vals.copy()
            if not mask.all():
                work = work.astype(object)
                work[~mask] = "\0null"
            _, inv = np.unique(work, return_inverse=True)
            combined = combined * (int(inv.max()) + 1 if len(inv) else 1) + inv
        uniq, first_idx, gids = np.unique(combined, return_index=True, return_inverse=True)
        num_groups = len(uniq)
        self._charge(
            KernelClass.GROUPBY_HASH,
            table.nbytes,
            num_groups * 8 * len(out_schema),
            table.num_rows,
            num_groups=num_groups,
        )

        columns = [col.take(first_idx) for col in key_cols]
        for (agg, _name), field in zip(rel.measures, out_schema.fields[len(key_cols):]):
            columns.append(self._grouped_measure(table, agg, gids, num_groups, field.dtype))
        return Table(out_schema, columns)

    def _grouped_measure(self, table, agg, gids, num_groups, dtype) -> Column:
        # Each aggregate is its own accumulation pass over its input column
        # (CPU engines evaluate measures one by one); Q1's eight measures
        # cost eight passes, which is what makes it expensive on the CPU
        # baselines.  The hash/grouping itself was charged once above.
        self._charge(
            KernelClass.GROUPBY_HASH,
            table.num_rows * 8,
            num_groups * 8,
            table.num_rows // 2,
            num_groups=num_groups,
        )
        if agg.op == "count_star":
            counts = np.bincount(gids, minlength=num_groups).astype(np.int64)
            return Column(INT64, counts)
        vec = self._eval(agg.arg, table)
        values = vec.values
        valid = vec.valid
        op = agg.op
        if op == "count" and agg.distinct:
            op = "count_distinct"
        if op == "count":
            counts = np.bincount(gids[valid], minlength=num_groups).astype(np.int64)
            return Column(INT64, counts)
        if op == "count_distinct":
            sub = gids[valid]
            vals = values[valid]
            if len(vals) == 0:
                return Column(INT64, np.zeros(num_groups, dtype=np.int64))
            _, vcodes = np.unique(vals, return_inverse=True)
            pairs = np.unique(sub * (int(vcodes.max()) + 1) + vcodes)
            out = np.bincount(
                (pairs // (int(vcodes.max()) + 1)).astype(np.int64), minlength=num_groups
            )
            return Column(INT64, out.astype(np.int64))
        has_value = np.zeros(num_groups, dtype=bool)
        np.logical_or.at(has_value, gids[valid], True)
        if op in ("sum", "avg"):
            sums = np.bincount(
                gids[valid], weights=values[valid].astype(float), minlength=num_groups
            ).astype(np.float64)  # bincount returns int64 when weights are empty
            if op == "avg":
                counts = np.bincount(gids[valid], minlength=num_groups)
                out = np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)
                return Column(FLOAT64, out, has_value)
            if dtype.is_integer:
                return Column(INT64, np.round(sums).astype(np.int64), has_value)
            return Column(FLOAT64, sums, has_value)
        if op in ("min", "max"):
            sub = gids[valid]
            vals = values[valid]
            out = np.zeros(num_groups, dtype=vals.dtype if len(vals) else np.float64)
            if len(vals):
                order = np.argsort(sub, kind="stable")
                sorted_gids = sub[order]
                sorted_vals = vals[order]
                bounds = np.concatenate([[0], np.flatnonzero(np.diff(sorted_gids)) + 1])
                reducer = np.minimum if op == "min" else np.maximum
                reduced = reducer.reduceat(sorted_vals, bounds)
                out = np.zeros(num_groups, dtype=sorted_vals.dtype)
                out[sorted_gids[bounds]] = reduced
            return self._vec_to_typed_column(out, has_value, dtype, vec)
        raise CpuEvalError(f"aggregate {agg.op} unsupported")

    def _vec_to_typed_column(self, data, valid, dtype, src_vec) -> Column:
        if dtype.is_string:
            return Column(STRING, data.astype(np.int32), valid, src_vec.dtype_dictionary)
        return Column(dtype, data.astype(dtype.numpy_dtype), valid)

    def _global_aggregate(self, table, rel, out_schema) -> Table:
        columns = []
        self._charge(KernelClass.STREAM, table.nbytes, 64, table.num_rows)
        for (agg, _name), field in zip(rel.measures, out_schema):
            value = self._scalar_measure(table, agg)
            columns.append(self._scalar_column(value, field.dtype))
        return Table(out_schema, columns)

    def _scalar_measure(self, table, agg):
        self._charge(KernelClass.STREAM, table.num_rows * 8, 8, table.num_rows)
        if agg.op == "count_star":
            return table.num_rows
        vec = self._eval(agg.arg, table)
        values = vec.values[vec.valid]
        op = agg.op
        if op == "count_distinct" or (op == "count" and agg.distinct):
            # For strings the values are dictionary codes: distinct codes
            # are distinct values, so uniqueness over codes is exact.
            return len(np.unique(values))
        if op == "count":
            return len(values)
        if len(values) == 0:
            return None
        if op == "sum":
            return float(values.astype(float).sum())
        if op == "avg":
            return float(values.astype(float).mean())
        if op in ("min", "max"):
            raw = values.min() if op == "min" else values.max()
            if vec.dtype.is_string:
                # Values are dictionary codes; decode (dictionary is sorted,
                # so code order is value order).
                return str(vec.dtype_dictionary[int(raw)])
            return raw
        raise CpuEvalError(f"aggregate {op} unsupported")

    def _scalar_column(self, value, dtype) -> Column:
        if value is None:
            return Column(
                dtype,
                np.zeros(1, dtype=dtype.numpy_dtype),
                np.zeros(1, dtype=bool),
                np.array([], dtype=object) if dtype.is_string else None,
            )
        if dtype.is_string:
            return Column.from_strings([str(value)])
        if dtype.is_integer:
            value = int(round(float(value)))
        return Column(dtype, np.array([value], dtype=dtype.numpy_dtype))

    # -- sort --------------------------------------------------------------------

    def _sort(self, table: Table, rel: SortRel) -> Table:
        keys = []
        for idx, ascending in reversed(rel.sort_keys):
            col = table.columns[idx]
            data = col.data.astype(np.float64)
            valid = col.is_valid_mask()
            if col.dtype.is_string:
                valid = valid & (col.data >= 0)
            if not ascending:
                data = -data
            data = np.where(valid, data, np.inf)
            keys.append(data)
        order = np.lexsort(keys)
        self._charge(KernelClass.SORT, table.nbytes, table.num_rows * 8, table.num_rows)
        return table.take(order)

    # -- expressions --------------------------------------------------------------

    def _eval(self, expr, table: Table) -> _Vec:
        n = table.num_rows
        if isinstance(expr, FieldRef):
            col = table.columns[expr.index]
            vec = _Vec(col.data, col.is_valid_mask(), col.dtype)
            vec.dtype_dictionary = col.dictionary
            if col.dtype.is_string:
                vec.valid = vec.valid & (col.data >= 0)
            return vec
        if isinstance(expr, Literal):
            return self._literal_vec(expr, n)
        if isinstance(expr, ScalarCall):
            return self._eval_call(expr, table)
        raise CpuEvalError(f"cannot evaluate {expr!r}")

    def _literal_vec(self, lit: Literal, n: int) -> _Vec:
        value = lit.value
        if value is None:
            vec = _Vec(np.zeros(n), np.zeros(n, dtype=bool), lit.dtype)
            vec.dtype_dictionary = None
            return vec
        if isinstance(value, datetime.date):
            vec = _Vec(np.full(n, date_to_days(value), dtype=np.int32), np.ones(n, dtype=bool), DATE32)
            vec.dtype_dictionary = None
            return vec
        if isinstance(value, str):
            vec = _Vec(np.zeros(n, dtype=np.int32), np.ones(n, dtype=bool), STRING)
            vec.dtype_dictionary = np.array([value], dtype=object)
            return vec
        dtype = BOOL if isinstance(value, bool) else (INT64 if isinstance(value, int) else FLOAT64)
        vec = _Vec(np.full(n, value, dtype=dtype.numpy_dtype), np.ones(n, dtype=bool), dtype)
        vec.dtype_dictionary = None
        return vec

    def _decode(self, vec: _Vec) -> np.ndarray:
        out = np.empty(len(vec.values), dtype=object)
        dictionary = getattr(vec, "dtype_dictionary", None)
        if dictionary is None:
            dictionary = np.array([], dtype=object)
        ok = vec.valid & (vec.values >= 0)
        out[ok] = dictionary[vec.values[ok]]
        out[~ok] = None
        return out

    def _eval_call(self, call: ScalarCall, table: Table) -> _Vec:
        f = call.func
        n = table.num_rows
        self._charge(KernelClass.STREAM, n * 8, n * 8, n)

        if f in ("add", "subtract", "multiply", "divide", "modulo"):
            a = self._eval(call.args[0], table)
            b = self._eval(call.args[1], table)
            valid = a.valid & b.valid
            av = a.values.astype(np.float64)
            bv = b.values.astype(np.float64)
            if f == "divide":
                with np.errstate(divide="ignore", invalid="ignore"):
                    out = np.divide(av, bv)
                valid = valid & (bv != 0)
                return self._num_vec(np.where(valid, out, 0.0), valid, FLOAT64)
            op = {"add": np.add, "subtract": np.subtract, "multiply": np.multiply, "modulo": np.mod}[f]
            out = op(av, bv)
            if a.dtype is DATE32 and b.dtype.is_integer and f in ("add", "subtract"):
                return self._num_vec(out.astype(np.int32), valid, DATE32)
            if a.dtype is DATE32 and b.dtype is DATE32 and f == "subtract":
                return self._num_vec(out.astype(np.int64), valid, INT64)
            if a.dtype.is_integer and b.dtype.is_integer and f != "divide":
                return self._num_vec(np.round(out).astype(np.int64), valid, INT64)
            return self._num_vec(out, valid, FLOAT64)

        if f in ("eq", "ne", "lt", "le", "gt", "ge"):
            a = self._eval(call.args[0], table)
            b = self._eval(call.args[1], table)
            valid = a.valid & b.valid
            if a.dtype.is_string or b.dtype.is_string:
                av, bv = self._decode(a), self._decode(b)
                py = {"eq": "__eq__", "ne": "__ne__", "lt": "__lt__", "le": "__le__",
                      "gt": "__gt__", "ge": "__ge__"}[f]
                out = np.zeros(len(av), dtype=bool)
                idx = np.flatnonzero(valid)
                out[idx] = [getattr(av[i], py)(bv[i]) for i in idx]
            else:
                op = {"eq": np.equal, "ne": np.not_equal, "lt": np.less, "le": np.less_equal,
                      "gt": np.greater, "ge": np.greater_equal}[f]
                out = op(a.values, b.values)
            return self._num_vec(out, valid, BOOL)

        if f == "and":
            a = self._eval(call.args[0], table)
            b = self._eval(call.args[1], table)
            av = a.values.astype(bool)
            bv = b.values.astype(bool)
            out = av & bv
            valid = (a.valid & b.valid) | (a.valid & ~av) | (b.valid & ~bv)
            return self._num_vec(out & valid, valid, BOOL)
        if f == "or":
            a = self._eval(call.args[0], table)
            b = self._eval(call.args[1], table)
            av = a.values.astype(bool) & a.valid
            bv = b.values.astype(bool) & b.valid
            out = av | bv
            valid = (a.valid & b.valid) | av | bv
            return self._num_vec(out, valid, BOOL)
        if f == "not":
            a = self._eval(call.args[0], table)
            return self._num_vec(~a.values.astype(bool) & a.valid, a.valid, BOOL)

        if f in ("is_null", "is_not_null"):
            a = self._eval(call.args[0], table)
            out = a.valid if f == "is_not_null" else ~a.valid
            return self._num_vec(out, np.ones(n, dtype=bool), BOOL)

        if f in ("like", "not_like", "contains", "starts_with"):
            a = self._eval(call.args[0], table)
            pattern = call.args[1].value
            if f == "contains":
                pattern = f"%{pattern}%"
            elif f == "starts_with":
                pattern = f"{pattern}%"
            regex = _like_regex(pattern, call.options.get("escape"))
            decoded = self._decode(a)
            out = np.array(
                [bool(regex.match(s)) if s is not None else False for s in decoded], dtype=bool
            )
            if f == "not_like":
                out = ~out
            return self._num_vec(out & a.valid, a.valid, BOOL)

        if f in ("in", "not_in"):
            a = self._eval(call.args[0], table)
            literals = [arg.value for arg in call.args[1:]]
            if a.dtype.is_string:
                targets = {str(v) for v in literals}
                decoded = self._decode(a)
                out = np.array([s in targets for s in decoded], dtype=bool)
            else:
                raw = [date_to_days(v) if isinstance(v, datetime.date) else v for v in literals]
                out = np.isin(a.values, np.array(raw))
            if f == "not_in":
                out = ~out
            return self._num_vec(out & a.valid, a.valid, BOOL)

        if f == "between":
            a = self._eval(call.args[0], table)
            lo = self._eval(call.args[1], table)
            hi = self._eval(call.args[2], table)
            valid = a.valid & lo.valid & hi.valid
            out = (a.values >= lo.values) & (a.values <= hi.values)
            return self._num_vec(out & valid, valid, BOOL)

        if f == "case":
            pairs = call.args[:-1]
            default = self._eval(call.args[-1], table)
            conds = [self._eval(pairs[i], table) for i in range(0, len(pairs), 2)]
            results = [self._eval(pairs[i + 1], table) for i in range(0, len(pairs), 2)]
            if default.dtype.is_string or any(r.dtype.is_string for r in results):
                out = self._branch_strings(default, n)
                decided = np.zeros(n, dtype=bool)
                for cond, result in zip(conds, results):
                    fire = cond.values.astype(bool) & cond.valid & ~decided
                    out[fire] = self._branch_strings(result, n)[fire]
                    decided |= fire
                return self._string_vec(list(out))
            # Promote across all branches: int default with float results
            # must not truncate.
            common = np.result_type(default.values, *(r.values for r in results))
            out_vals = default.values.astype(common).copy()
            out_valid = default.valid.copy()
            out_dtype = FLOAT64 if np.issubdtype(common, np.floating) else default.dtype
            decided = np.zeros(n, dtype=bool)
            for cond, result in zip(conds, results):
                fire = cond.values.astype(bool) & cond.valid & ~decided
                out_vals = np.where(fire, result.values.astype(common), out_vals)
                out_valid = np.where(fire, result.valid, out_valid)
                decided |= fire
            return self._num_vec(out_vals, out_valid, out_dtype)

        if f == "coalesce":
            vecs = [self._eval(a, table) for a in call.args]
            if any(v.dtype.is_string for v in vecs):
                out = np.full(n, None, dtype=object)
                for vec in vecs:
                    decoded = self._branch_strings(vec, n)
                    fill = np.array([x is None for x in out]) & np.array(
                        [d is not None for d in decoded]
                    )
                    out[fill] = decoded[fill]
                return self._string_vec(list(out))
            typed = next((v for v in vecs if v.valid.any()), vecs[0])
            out_vals = vecs[0].values.astype(typed.values.dtype).copy()
            out_valid = vecs[0].valid.copy()
            for vec in vecs[1:]:
                fill = ~out_valid & vec.valid
                out_vals = np.where(fill, vec.values.astype(out_vals.dtype), out_vals)
                out_valid |= vec.valid
            return self._num_vec(out_vals, out_valid, typed.dtype)

        if f == "cast":
            a = self._eval(call.args[0], table)
            target = dtype_from_name(call.options["to"])
            if a.dtype.is_string or target.is_string:
                raise CpuEvalError("string casts unsupported on CPU path")
            return self._num_vec(a.values.astype(target.numpy_dtype), a.valid, target)

        if f in ("extract_year", "extract_month", "extract_day"):
            a = self._eval(call.args[0], table)
            days = a.values.astype("datetime64[D]")
            if f == "extract_year":
                out = days.astype("datetime64[Y]").astype(np.int64) + 1970
            elif f == "extract_month":
                out = days.astype("datetime64[M]").astype(np.int64) % 12 + 1
            else:
                months = days.astype("datetime64[M]")
                out = (days - months.astype("datetime64[D]")).astype(np.int64) + 1
            return self._num_vec(out, a.valid, INT64)

        if f == "substring":
            a = self._eval(call.args[0], table)
            start = int(call.args[1].value)
            length = int(call.args[2].value)
            decoded = self._decode(a)
            values = [
                None if s is None else str(s)[start - 1 : start - 1 + length] for s in decoded
            ]
            col = Column.from_strings(values)
            vec = _Vec(col.data, col.is_valid_mask(), STRING)
            vec.dtype_dictionary = col.dictionary
            return vec

        if f == "negate":
            a = self._eval(call.args[0], table)
            return self._num_vec(-a.values, a.valid, a.dtype)

        if f in ("upper", "lower"):
            a = self._eval(call.args[0], table)
            decoded = self._decode(a)
            convert = str.upper if f == "upper" else str.lower
            return self._string_vec([None if s is None else convert(str(s)) for s in decoded])

        if f == "length":
            a = self._eval(call.args[0], table)
            decoded = self._decode(a)
            out = np.array([0 if s is None else len(str(s)) for s in decoded], dtype=np.int64)
            return self._num_vec(out, a.valid, INT64)

        if f == "concat":
            parts = [self._branch_strings(self._eval(arg, table), n) for arg in call.args]
            values = []
            for i in range(n):
                row = [p[i] for p in parts]
                values.append(None if any(x is None for x in row) else "".join(row))
            return self._string_vec(values)

        if f == "abs":
            a = self._eval(call.args[0], table)
            return self._num_vec(np.abs(a.values), a.valid, a.dtype)

        if f == "round":
            a = self._eval(call.args[0], table)
            digits = int(call.args[1].value) if len(call.args) > 1 else 0
            out = np.round(a.values.astype(np.float64), digits)
            return self._num_vec(out, a.valid, FLOAT64)

        raise CpuEvalError(f"function {f!r} unsupported by the CPU engine")

    def _num_vec(self, values, valid, dtype) -> _Vec:
        vec = _Vec(np.asarray(values), np.asarray(valid, dtype=bool), dtype)
        vec.dtype_dictionary = None
        return vec

    def _string_vec(self, values: list) -> _Vec:
        col = Column.from_strings(values)
        vec = _Vec(col.data, col.is_valid_mask(), STRING)
        vec.dtype_dictionary = col.dictionary
        return vec

    def _branch_strings(self, vec: _Vec, n: int) -> np.ndarray:
        """Decode a vector feeding a string result; typed NULLs pass through."""
        if vec.dtype.is_string:
            return self._decode(vec)
        if not vec.valid.any():
            return np.full(n, None, dtype=object)
        raise CpuEvalError(f"expected string operand, got {vec.dtype.name}")

    def _to_column(self, vec: _Vec, dtype, n: int) -> Column:
        dictionary = getattr(vec, "dtype_dictionary", None)
        if dtype.is_string:
            if dictionary is None:
                raise CpuEvalError("string column without dictionary")
            codes = vec.values.astype(np.int32).copy()
            codes[~vec.valid] = -1
            return Column(STRING, codes, vec.valid, dictionary)
        data = vec.values.astype(dtype.numpy_dtype)
        return Column(dtype, data, vec.valid)


def _like_regex(pattern: str, escape: str | None = None) -> re.Pattern:
    parts = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape is not None and ch == escape and i + 1 < len(pattern):
            # ESCAPE'd character matches literally, including % and _.
            parts.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
        i += 1
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)
