"""Deterministic fault injection for the execution stack.

The paper's drop-in story leans on §3.2.2's graceful fallback; Theseus
(arXiv:2508.05029) and the GPU-Presto work (arXiv:2606.24647) argue a GPU
query platform must additionally degrade gracefully under memory pressure,
data-movement stalls, and node loss.  This package provides the fault
model the engine is *tested against*: a seedable :class:`FaultPlan`
schedules faults on the simulated clock, and a :class:`FaultInjector`
fires them inside the device, communicator, and cluster layers.
"""

from .injector import FaultInjector, InjectedFault
from .plan import (
    BandwidthDegradation,
    FaultPlan,
    LinkDrop,
    MemoryPressure,
    NodeCrash,
    OOMSpike,
    Straggler,
    TransientKernelFault,
)

__all__ = [
    "BandwidthDegradation",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "LinkDrop",
    "MemoryPressure",
    "NodeCrash",
    "OOMSpike",
    "Straggler",
    "TransientKernelFault",
]
