"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is a declarative schedule of faults on the *simulated*
clock: every fault names the instant (and, for targeted faults, the node)
at which it strikes.  Because the whole engine runs on simulated time, a
plan plus a dataset is perfectly reproducible — the same plan injects the
same faults at the same points of the same query, which is what makes the
chaos suite assert exact result equality instead of "usually works".

Fault classes (mirroring the failure modes Theseus and the GPU-Presto work
call out for production GPU query platforms):

* :class:`NodeCrash` — a node dies and stops heartbeating
  (``repro.distributed.cluster``);
* :class:`LinkDrop` — transient NCCL-level collective failures
  (``repro.gpu.nccl``), survivable by exchange retry;
* :class:`BandwidthDegradation` — a window where fabric bandwidth drops to
  a fraction of nominal (data-movement stalls);
* :class:`OOMSpike` — a device allocation burst that raises device OOM
  even though steady-state capacity would suffice (memory pressure);
* :class:`TransientKernelFault` — a kernel launch fails and must be
  relaunched (ECC hiccup / driver retry class of faults);
* :class:`Straggler` — a window where one node's compute runs N× slower;
* :class:`MemoryPressure` — a window where a node's processing pool
  shrinks to a fraction of capacity (co-tenant pressure), exercising the
  out-of-core spill path instead of instant OOM.

Schedules can be authored explicitly (``plan.crash_node(2, at=0.001)``) or
sampled through the plan's seeded RNG (``plan.scatter_link_drops(...)``)
— either way the result is a plain list of frozen dataclasses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "BandwidthDegradation",
    "FaultPlan",
    "LinkDrop",
    "MemoryPressure",
    "NodeCrash",
    "OOMSpike",
    "Straggler",
    "TransientKernelFault",
]


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node_id`` halts at simulated time ``at`` (stops heartbeating,
    never responds to fragment dispatch again)."""

    node_id: int
    at: float


@dataclass(frozen=True)
class LinkDrop:
    """Starting at time ``at``, the next ``count`` collective operations
    fail with a dropped link; each failure consumes one count."""

    at: float
    count: int = 1


@dataclass(frozen=True)
class BandwidthDegradation:
    """Between ``start`` and ``end``, effective fabric bandwidth is
    multiplied by ``factor`` (0 < factor <= 1)."""

    start: float
    end: float
    factor: float


@dataclass(frozen=True)
class OOMSpike:
    """Starting at time ``at``, the next ``count`` device allocations on
    ``node_id`` (``None`` = any node) raise device OOM."""

    at: float
    count: int = 1
    node_id: int | None = None


@dataclass(frozen=True)
class TransientKernelFault:
    """Starting at time ``at``, the next ``count`` kernel launches on
    ``node_id`` (``None`` = any node) fail once each and must be
    relaunched."""

    at: float
    count: int = 1
    node_id: int | None = None


@dataclass(frozen=True)
class MemoryPressure:
    """Between ``start`` and ``end``, the processing pool of ``node_id``
    (``None`` = every node) is soft-limited to ``factor`` of its capacity
    (0 < factor < 1) — allocations past the shrunken limit spill
    partitions before OOM is considered."""

    start: float
    end: float
    factor: float
    node_id: int | None = None


@dataclass(frozen=True)
class Straggler:
    """Between ``start`` and ``end``, node ``node_id`` computes
    ``slowdown``× slower than nominal."""

    node_id: int
    start: float
    end: float
    slowdown: float


class FaultPlan:
    """An ordered, seedable schedule of faults.

    The seed drives only the *sampling* helpers; explicitly scheduled
    faults are stored verbatim.  Builder methods return ``self`` so plans
    chain::

        plan = FaultPlan(seed=7).crash_node(3, at=0.002).drop_links(at=0.001, count=2)
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.faults: list = []

    # -- explicit scheduling --------------------------------------------------

    def crash_node(self, node_id: int, at: float) -> "FaultPlan":
        self.faults.append(NodeCrash(node_id, at))
        return self

    def drop_links(self, at: float, count: int = 1) -> "FaultPlan":
        if count < 1:
            raise ValueError("link-drop count must be >= 1")
        self.faults.append(LinkDrop(at, count))
        return self

    def degrade_bandwidth(self, start: float, end: float, factor: float) -> "FaultPlan":
        if not 0.0 < factor <= 1.0:
            raise ValueError("bandwidth factor must be in (0, 1]")
        if end <= start:
            raise ValueError("degradation window must have end > start")
        self.faults.append(BandwidthDegradation(start, end, factor))
        return self

    def oom_spike(self, at: float, count: int = 1, node_id: int | None = None) -> "FaultPlan":
        if count < 1:
            raise ValueError("OOM-spike count must be >= 1")
        self.faults.append(OOMSpike(at, count, node_id))
        return self

    def kernel_fault(self, at: float, count: int = 1, node_id: int | None = None) -> "FaultPlan":
        if count < 1:
            raise ValueError("kernel-fault count must be >= 1")
        self.faults.append(TransientKernelFault(at, count, node_id))
        return self

    def memory_pressure(
        self, start: float, end: float, factor: float, node_id: int | None = None
    ) -> "FaultPlan":
        if not 0.0 < factor < 1.0:
            raise ValueError("memory-pressure factor must be in (0, 1)")
        if end <= start:
            raise ValueError("memory-pressure window must have end > start")
        self.faults.append(MemoryPressure(start, end, factor, node_id))
        return self

    def straggler(
        self, node_id: int, start: float, end: float, slowdown: float
    ) -> "FaultPlan":
        if slowdown < 1.0:
            raise ValueError("straggler slowdown must be >= 1.0")
        if end <= start:
            raise ValueError("straggler window must have end > start")
        self.faults.append(Straggler(node_id, start, end, slowdown))
        return self

    # -- seeded sampling ------------------------------------------------------

    def scatter_link_drops(self, n: int, horizon_s: float) -> "FaultPlan":
        """Sample ``n`` independent single-collective link drops uniformly
        in ``[0, horizon_s)`` from the plan's seeded RNG."""
        for _ in range(n):
            self.faults.append(LinkDrop(self.rng.uniform(0.0, horizon_s), 1))
        return self

    def scatter_kernel_faults(
        self, n: int, horizon_s: float, node_ids: Iterable[int] | None = None
    ) -> "FaultPlan":
        """Sample ``n`` transient kernel faults uniformly in time, each on
        a node drawn from ``node_ids`` (``None`` = untargeted)."""
        choices = list(node_ids) if node_ids is not None else [None]
        for _ in range(n):
            self.faults.append(
                TransientKernelFault(
                    self.rng.uniform(0.0, horizon_s), 1, self.rng.choice(choices)
                )
            )
        return self

    # -- introspection --------------------------------------------------------

    def by_kind(self, kind: type) -> list:
        return [f for f in self.faults if isinstance(f, kind)]

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        kinds = {}
        for f in self.faults:
            kinds[type(f).__name__] = kinds.get(type(f).__name__, 0) + 1
        body = ", ".join(f"{k}x{v}" for k, v in sorted(kinds.items()))
        return f"FaultPlan(seed={self.seed}, {body or 'empty'})"
