"""The runtime half of fault injection.

A :class:`FaultInjector` owns one :class:`~repro.faults.plan.FaultPlan`
and answers the instrumented layers' questions at their injection points:

* ``Device.launch`` asks :meth:`take_kernel_fault` (relaunch on True) and
  :meth:`compute_slowdown` (straggler windows);
* ``Device.new_buffer`` asks :meth:`take_oom` (raise device OOM on True);
* ``Communicator._complete`` asks :meth:`take_link_fault` (drop the
  collective) and :meth:`bandwidth_factor` (degradation windows);
* the distributed executor asks :meth:`due_crashes` at fragment
  boundaries and kills the returned nodes.

Every injected fault is recorded as a structured :class:`InjectedFault`
event so the chaos suite can assert not only that the system survived but
that the faults actually fired.  All decisions are pure functions of the
plan plus simulated time — no wall-clock, no hidden RNG — so a seeded run
replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import (
    BandwidthDegradation,
    FaultPlan,
    LinkDrop,
    MemoryPressure,
    NodeCrash,
    OOMSpike,
    Straggler,
    TransientKernelFault,
)

__all__ = ["FaultInjector", "InjectedFault"]


@dataclass
class InjectedFault:
    """One fault occurrence that actually fired."""

    kind: str  # "node-crash" | "link-drop" | "oom-spike" | "kernel-fault"
    sim_time: float
    node_id: int | None = None
    detail: str = ""


@dataclass
class _Consumable:
    """A scheduled fault with a remaining-occurrence counter."""

    spec: object
    remaining: int


class FaultInjector:
    """Runtime fault dispenser for one cluster / device set."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.events: list[InjectedFault] = []
        self._link_drops = [
            _Consumable(f, f.count) for f in plan.by_kind(LinkDrop)
        ]
        self._oom_spikes = [
            _Consumable(f, f.count) for f in plan.by_kind(OOMSpike)
        ]
        self._kernel_faults = [
            _Consumable(f, f.count) for f in plan.by_kind(TransientKernelFault)
        ]
        self._pending_crashes: list[NodeCrash] = list(plan.by_kind(NodeCrash))
        self._degradations: list[BandwidthDegradation] = list(
            plan.by_kind(BandwidthDegradation)
        )
        self._stragglers: list[Straggler] = list(plan.by_kind(Straggler))
        self._pressures: list[MemoryPressure] = list(plan.by_kind(MemoryPressure))
        # Windows that have already recorded their InjectedFault event (a
        # continuous fault fires once, at first bite, not per allocation).
        self._pressure_fired: set[int] = set()

    # -- attachment -----------------------------------------------------------

    def attach_device(self, device, rank: int = 0) -> None:
        """Instrument one device; ``rank`` is the stable node uid used by
        targeted faults."""
        device.fault_injector = self
        device.fault_rank = rank

    def attach_communicator(self, communicator) -> None:
        communicator.fault_injector = self

    def attach_cluster(self, cluster) -> None:
        """Instrument a whole cluster: every node device, the communicator,
        and the cluster itself (for crash scheduling)."""
        cluster.fault_injector = self
        self.attach_communicator(cluster.communicator)
        for node in cluster.nodes:
            self.attach_device(node.device, rank=node.uid)

    # -- consumable faults ----------------------------------------------------

    def _take(self, pool: list[_Consumable], now: float, node_id: int | None) -> object | None:
        for item in pool:
            if item.remaining <= 0 or now < item.spec.at:
                continue
            target = getattr(item.spec, "node_id", None)
            if target is not None and node_id is not None and target != node_id:
                continue
            item.remaining -= 1
            return item.spec
        return None

    def take_link_fault(self, now: float) -> bool:
        """Consume one scheduled collective failure, if any is due."""
        spec = self._take(self._link_drops, now, None)
        if spec is None:
            return False
        self.events.append(
            InjectedFault("link-drop", now, detail=f"scheduled at {spec.at:.6f}s")
        )
        return True

    def take_oom(self, node_id: int, now: float) -> bool:
        """Consume one scheduled allocation failure for this node."""
        spec = self._take(self._oom_spikes, now, node_id)
        if spec is None:
            return False
        self.events.append(
            InjectedFault("oom-spike", now, node_id=node_id, detail=f"scheduled at {spec.at:.6f}s")
        )
        return True

    def take_kernel_fault(self, node_id: int, now: float) -> bool:
        """Consume one scheduled kernel-launch failure for this node."""
        spec = self._take(self._kernel_faults, now, node_id)
        if spec is None:
            return False
        self.events.append(
            InjectedFault("kernel-fault", now, node_id=node_id, detail=f"scheduled at {spec.at:.6f}s")
        )
        return True

    # -- continuous faults ----------------------------------------------------

    def bandwidth_factor(self, now: float) -> float:
        """Product of all degradation windows active at ``now`` (1.0 when
        the fabric is healthy)."""
        factor = 1.0
        for d in self._degradations:
            if d.start <= now < d.end:
                factor *= d.factor
        return factor

    def compute_slowdown(self, node_id: int, now: float) -> float:
        """Multiplier on kernel time for stragglers (1.0 = nominal)."""
        slow = 1.0
        for s in self._stragglers:
            if s.node_id == node_id and s.start <= now < s.end:
                slow *= s.slowdown
        return slow

    @property
    def has_pool_pressure(self) -> bool:
        """Whether the plan schedules any memory-pressure window (devices
        skip the soft-limit bookkeeping entirely otherwise)."""
        return bool(self._pressures)

    def pool_pressure_factor(self, node_id: int, now: float) -> float:
        """Multiplier on the node's processing-pool capacity (1.0 = full
        pool).  Overlapping windows compound, like stragglers."""
        factor = 1.0
        for i, p in enumerate(self._pressures):
            if p.start <= now < p.end and (p.node_id is None or p.node_id == node_id):
                factor *= p.factor
                if i not in self._pressure_fired:
                    self._pressure_fired.add(i)
                    self.events.append(
                        InjectedFault(
                            "memory-pressure",
                            now,
                            node_id=node_id,
                            detail=(
                                f"pool shrunk to {p.factor:.0%} for "
                                f"[{p.start:.6f}s, {p.end:.6f}s)"
                            ),
                        )
                    )
        return factor

    # -- crashes --------------------------------------------------------------

    def due_crashes(self, now: float) -> list[int]:
        """Node uids whose scheduled crash time has arrived; each crash
        fires exactly once."""
        due = [c for c in self._pending_crashes if now >= c.at]
        if due:
            self._pending_crashes = [c for c in self._pending_crashes if now < c.at]
            for crash in due:
                self.events.append(
                    InjectedFault(
                        "node-crash",
                        now,
                        node_id=crash.node_id,
                        detail=f"scheduled at {crash.at:.6f}s",
                    )
                )
        return [c.node_id for c in due]

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def __repr__(self) -> str:
        return f"FaultInjector({self.plan!r}, fired={len(self.events)})"
