"""Fleet workload driver: seeded open-loop load with tenants.

Mirrors :class:`~repro.sched.WorkloadDriver` one level up: arrival
instants come from the same non-homogeneous Poisson generators
(:func:`~repro.sched.diurnal_rate`, :func:`~repro.sched.bursty_rate`
via Lewis–Shedler thinning), each arrival draws a query template by
weight and a tenant by weight, and everything derives from one seeded
``random.Random`` — a (seed, workload, routing) tuple fully determines
the fleet schedule.
"""

from __future__ import annotations

import random
from typing import Callable, Mapping, Sequence

from ..columnar import Table
from ..sched import (
    WorkloadQuery,
    bursty_rate,
    diurnal_rate,
    modulated_arrival_times,
)
from .report import FleetReport
from .scheduler import FleetScheduler
from .tenants import DEFAULT_TENANT

__all__ = ["FleetWorkloadDriver"]


class FleetWorkloadDriver:
    """Generates seeded multi-tenant workloads against a fleet."""

    def __init__(
        self,
        catalog: Mapping[str, Table],
        queries: Sequence[WorkloadQuery],
        seed: int = 0,
        tenants: Mapping[str, float] | None = None,
    ):
        """
        Args:
            catalog: Submission catalog shared by every query.
            queries: The weighted query mix.
            seed: Drives arrivals, query picks, and tenant picks.
            tenants: ``tenant -> weight`` mix; ``None`` sends everything
                as the default tenant.
        """
        if not queries:
            raise ValueError("workload needs at least one query template")
        self.catalog = catalog
        self.queries = list(queries)
        self.seed = seed
        self.tenants = dict(tenants) if tenants else {DEFAULT_TENANT: 1.0}
        self._tenant_names = sorted(self.tenants)
        self._tenant_weights = [self.tenants[n] for n in self._tenant_names]

    def _pick_query(self, rng: random.Random) -> WorkloadQuery:
        return rng.choices(self.queries, weights=[q.weight for q in self.queries])[0]

    def _pick_tenant(self, rng: random.Random) -> str:
        return rng.choices(self._tenant_names, weights=self._tenant_weights)[0]

    def _modulated(
        self,
        fleet: FleetScheduler,
        kind: str,
        num_queries: int,
        rate_fn: Callable[[float], float],
        rate_max: float,
        deadline_s: float | None,
    ) -> FleetReport:
        rng = random.Random(f"fleet-{kind}:{self.seed}")
        times = modulated_arrival_times(rng, num_queries, rate_fn, rate_max)
        for t in times:
            q = self._pick_query(rng)
            fleet.submit(
                q.plan,
                self.catalog,
                label=q.label,
                arrival_s=t,
                deadline_s=deadline_s,
                tenant=self._pick_tenant(rng),
            )
        return fleet.run()

    def open_loop(
        self,
        fleet: FleetScheduler,
        num_queries: int,
        rate_qps: float,
        deadline_s: float | None = None,
    ) -> FleetReport:
        """Plain Poisson arrivals at ``rate_qps``."""
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        return self._modulated(
            fleet, "open", num_queries, lambda t: rate_qps, rate_qps, deadline_s
        )

    def diurnal_open_loop(
        self,
        fleet: FleetScheduler,
        num_queries: int,
        base_qps: float,
        peak_qps: float,
        period_s: float,
        deadline_s: float | None = None,
    ) -> FleetReport:
        """Sinusoidal day/night arrivals (see :func:`~repro.sched
        .diurnal_rate`)."""
        return self._modulated(
            fleet,
            "diurnal",
            num_queries,
            diurnal_rate(base_qps, peak_qps, period_s),
            peak_qps,
            deadline_s,
        )

    def bursty_open_loop(
        self,
        fleet: FleetScheduler,
        num_queries: int,
        base_qps: float,
        burst_qps: float,
        burst_every_s: float,
        burst_len_s: float,
        deadline_s: float | None = None,
    ) -> FleetReport:
        """Square-wave flash crowds (see :func:`~repro.sched
        .bursty_rate`)."""
        return self._modulated(
            fleet,
            "bursty",
            num_queries,
            bursty_rate(base_qps, burst_qps, burst_every_s, burst_len_s),
            burst_qps,
            deadline_s,
        )
