"""Normalized plan digests: the cache keys of the fleet's two tiers.

A submitted plan is hashed into two keys over a *normalized* copy of its
``to_dict()`` tree:

* **result key** — output aliases are canonicalized away (``SELECT a AS
  x`` and ``SELECT a AS y`` read the same cached bytes; the hit is
  relabeled to the requesting plan's names), but literal values stay in
  the key: ``price > 5`` and ``price > 9`` are different results.
* **plan key** — additionally masks literal *values* (their dtypes
  remain), so every parameterization of one query shape shares a plan-
  cache entry.  This is sound here because the estimator prices plans
  with constant selectivities — an estimate is a function of the shape,
  never of the literals.

Whitespace, alias spelling, and equivalent constructions that the SQL
front-end already canonicalizes into the same logical plan therefore
collapse into the same keys for free: the digest sees plans, not text.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..plan import Plan
from ..sched import base_tables

__all__ = ["PlanDigest", "normalized_plan_dict", "plan_digest"]

# Masked alias placeholder: output names are positional in the key.
_ALIAS = "_"


def _normalize(node, mask_literals: bool):
    """Recursively copy a ``plan.to_dict()`` subtree with aliases (and,
    for the plan key, literal values) masked out."""
    if isinstance(node, list):
        return [_normalize(item, mask_literals) for item in node]
    if not isinstance(node, dict):
        return node
    out = {}
    rel = node.get("rel")
    kind = node.get("kind")
    for key, value in node.items():
        if rel == "project" and key == "names" and isinstance(value, list):
            # Output aliases are presentation, not identity: keep only
            # their count so positional structure still matters.
            out[key] = [_ALIAS] * len(value)
            continue
        if kind == "literal" and key == "value" and mask_literals:
            out[key] = None  # dtype stays; the value is the parameter
            continue
        if rel == "aggregate" and key == "measures" and isinstance(value, list):
            out[key] = [
                {
                    **_normalize(m, mask_literals),
                    **({"name": _ALIAS} if isinstance(m, dict) and "name" in m else {}),
                }
                for m in value
            ]
            continue
        out[key] = _normalize(value, mask_literals)
    return out


def normalized_plan_dict(plan: Plan, mask_literals: bool = False) -> dict:
    """The canonical dict the digest hashes (exposed for tests)."""
    return _normalize(plan.to_dict(), mask_literals)


def _digest(tree: dict) -> str:
    payload = json.dumps(tree, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


@dataclass(frozen=True)
class PlanDigest:
    """Both cache keys plus the base tables the plan depends on."""

    plan_key: str  # literals masked: one entry per query *shape*
    result_key: str  # literals kept: one entry per exact result
    tables: tuple[str, ...]  # scan dependencies, for version invalidation


def plan_digest(plan: Plan) -> PlanDigest:
    """Compute the two-tier cache keys for ``plan``."""
    return PlanDigest(
        plan_key=_digest(normalized_plan_dict(plan, mask_literals=True)),
        result_key=_digest(normalized_plan_dict(plan, mask_literals=False)),
        tables=tuple(base_tables(plan)),
    )
