"""Fleet-level job records: one per submitted query, across retries.

A :class:`FleetJob` is the fleet's view of a query: where it was routed,
whether it was answered from the result cache or throttled by a tenant
quota, and — after a replica crash — the retry that finished it.  The
replica-level :class:`~repro.sched.job.QueryJob` it wraps carries the
execution detail; latency here is always measured from the *original*
fleet arrival, so a crash-retried query's tail shows up honestly in the
percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..columnar import Table
from ..sched import JobState, QueryJob
from .digest import PlanDigest

__all__ = ["FleetJob"]


@dataclass
class FleetJob:
    """One query submitted to the fleet."""

    seq: int
    label: str
    tenant: str
    plan: Any = field(repr=False)
    catalog: Mapping[str, Table] = field(repr=False)
    arrival_s: float = 0.0
    deadline_s: float | None = None
    meta: dict = field(default_factory=dict, repr=False)
    digest: PlanDigest | None = field(default=None, repr=False)

    # -- outcome (filled in by the fleet) --
    replica_id: int | None = None
    job: QueryJob | None = field(default=None, repr=False)
    cache_hit: bool = False
    throttled: bool = False
    retries: int = 0
    retry_wait_s: float = 0.0  # original arrival -> last retry submission
    dep_versions: dict = field(default_factory=dict, repr=False)
    _table: Table | None = field(default=None, repr=False)
    _completion_s: float | None = field(default=None, repr=False)
    _error: str | None = None

    # -- terminal transitions the fleet applies directly ---------------------

    def complete_from_cache(self, vt: float, table: Table) -> None:
        self.cache_hit = True
        self._table = table
        self._completion_s = vt

    def mark_throttled(self, vt: float) -> None:
        self.throttled = True
        self._completion_s = vt

    def fail(self, vt: float, error: BaseException) -> None:
        self._error = type(error).__name__
        self._completion_s = vt

    # -- merged view ---------------------------------------------------------

    @property
    def state(self) -> str:
        if self.cache_hit:
            return JobState.COMPLETED
        if self.throttled:
            return JobState.REJECTED
        if self._error is not None:
            return JobState.FAILED
        if self.job is not None:
            return self.job.state
        return JobState.SUBMITTED

    @property
    def completion_s(self) -> float | None:
        if self._completion_s is not None:
            return self._completion_s
        return self.job.completion_s if self.job is not None else None

    @property
    def latency_s(self) -> float | None:
        done = self.completion_s
        return done - self.arrival_s if done is not None else None

    @property
    def queue_wait_s(self) -> float:
        """Admission wait plus any crash-retry delay; cache hits wait 0."""
        base = self.job.queue_wait_s if self.job is not None else 0.0
        return base + self.retry_wait_s

    @property
    def service_s(self) -> float:
        return self.job.service_s if self.job is not None else 0.0

    @property
    def table(self) -> Table | None:
        if self._table is not None:
            return self._table
        return self.job.table if self.job is not None else None

    @property
    def error_name(self) -> str | None:
        if self._error is not None:
            return self._error
        if self.job is not None and self.job.error is not None:
            return type(self.job.error).__name__
        return None

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "label": self.label,
            "tenant": self.tenant,
            "state": self.state,
            "replica_id": self.replica_id,
            "cache_hit": self.cache_hit,
            "throttled": self.throttled,
            "retries": self.retries,
            "arrival_s": self.arrival_s,
            "completion_s": self.completion_s,
            "latency_s": self.latency_s,
            "queue_wait_s": self.queue_wait_s,
            "service_s": self.service_s,
            "deadline_s": self.deadline_s,
            "error": self.error_name,
            "plan_key": self.digest.plan_key if self.digest is not None else None,
            "result_key": self.digest.result_key if self.digest is not None else None,
        }
