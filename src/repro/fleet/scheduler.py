"""The fleet scheduler: N engine replicas on one merged event timeline.

The fleet is an outer discrete-event loop over inner
:class:`~repro.sched.ServingScheduler` loops.  Each replica exposes its
next event instant (:meth:`~repro.sched.ServingScheduler
.next_event_time`); the fleet repeatedly processes the earliest event
across the whole system — a scheduled replica crash, a fleet arrival
(tenant quota -> result cache -> routing), an autoscaler sample, or one
replica-internal event — breaking time ties in exactly that order, with
replica ties to the lowest id.  Every decision is a pure function of
seeded state, so a (seed, workload, routing) tuple fully determines the
fleet schedule.

**Fleet-of-1 identity.**  With one replica and every fleet feature at
its default (caches off, no quotas, no autoscaler, no faults), routing
degenerates to pushing each arrival into the replica's own arrival heap
at its arrival instant — the replica's event loop then makes the same
decisions in the same order as a solo scheduler, so its serving report
is byte-identical to one produced without the fleet layer.
"""

from __future__ import annotations

import heapq
from typing import Callable, Mapping

from ..columnar import Table
from ..core.sirius import SiriusEngine
from ..faults import FaultPlan, NodeCrash
from ..obs import MetricSet
from ..plan import Plan
from ..sched import SERVING_BATCH_ROWS, ServingScheduler, estimate_plan
from .autoscale import Autoscaler
from .cache import PlanCache, ResultCache, TableVersions
from .digest import plan_digest
from .job import FleetJob
from .replica import EngineReplica
from .report import FleetReport
from .routing import PlacementAwareRouting, make_routing
from .tenants import DEFAULT_TENANT, TenantQuota, TenantTable

__all__ = ["FleetScheduler", "ReplicaCrashError"]

_INF = float("inf")


class ReplicaCrashError(RuntimeError):
    """A replica halted mid-query; the fleet retried or failed the work."""


class FleetScheduler:
    """Routes queries across replicated engines with caching and scaling."""

    def __init__(
        self,
        engine_factory: Callable[[int], SiriusEngine],
        replicas: int = 1,
        routing="round-robin",
        policy="fifo",
        streams: int = 4,
        seed: int = 0,
        batch_rows: int | None = SERVING_BATCH_ROWS,
        result_cache_bytes: int = 0,
        plan_cache_entries: int = 0,
        plan_overhead_s: float = 0.0,
        quotas: Mapping[str, TenantQuota] | None = None,
        autoscaler: Autoscaler | None = None,
        fault_plan: FaultPlan | None = None,
        metrics: MetricSet | None = None,
        scheduler_kwargs: dict | None = None,
        sanitize: bool = False,
    ):
        """
        Args:
            engine_factory: ``replica_id -> SiriusEngine``; called once
                per replica spawn (see :func:`~repro.fleet.replica
                .engine_factory`).
            replicas: Initial fleet size.
            routing: ``round-robin`` / ``least-outstanding`` /
                ``placement`` or a :class:`~repro.fleet.routing
                .RoutingPolicy`.
            policy / streams / seed / batch_rows: Passed to every
                replica's :class:`~repro.sched.ServingScheduler`.
            result_cache_bytes: Byte budget of the exact-result cache;
                0 (default) disables it.
            plan_cache_entries: Entry budget of the parameterized plan
                cache; 0 (default) disables it.
            plan_overhead_s: Planning latency charged on a plan-cache
                miss (the routed arrival is delayed by this much); 0.0
                keeps the default timeline untouched.
            quotas: Per-tenant token-bucket quotas; tenants absent from
                the mapping are unlimited.
            autoscaler: Reactive :class:`~repro.fleet.autoscale
                .Autoscaler`; ``None`` keeps the fleet size fixed.
            fault_plan: Scheduled faults; ``NodeCrash(node_id=i)`` halts
                replica ``i`` and the fleet retries its in-flight work
                on survivors.
            metrics: Shared :class:`~repro.obs.MetricSet` for cache and
                fleet gauges (one is created if omitted).
            scheduler_kwargs: Extra keyword arguments for every
                replica's ``ServingScheduler``.
            sanitize: Run every replica's scheduler with the sanitizer
                layer attached (leak/drift/race checks per replica);
                read the merged findings via :meth:`sanitizer_report`.
        """
        if replicas < 1:
            raise ValueError("the fleet needs at least one replica")
        self.engine_factory = engine_factory
        self.initial_replicas = int(replicas)
        self.routing = make_routing(routing)
        self.policy = policy
        self.streams = streams
        self.seed = seed
        self.batch_rows = batch_rows
        self.plan_overhead_s = float(plan_overhead_s)
        self.metrics = metrics if metrics is not None else MetricSet()
        self.result_cache = (
            ResultCache(result_cache_bytes, self.metrics)
            if result_cache_bytes > 0
            else None
        )
        self.plan_cache = (
            PlanCache(plan_cache_entries, self.metrics)
            if plan_cache_entries > 0
            else None
        )
        self.versions = TableVersions()
        self.tenants = TenantTable(quotas)
        self.autoscaler = autoscaler
        self.sanitize = bool(sanitize)
        self.scheduler_kwargs = dict(scheduler_kwargs or {})
        if self.sanitize:
            self.scheduler_kwargs.setdefault("sanitize", True)
        self._crashes: list[NodeCrash] = sorted(
            (f for f in (fault_plan.faults if fault_plan else []) if isinstance(f, NodeCrash)),
            key=lambda c: (c.at, c.node_id),
        )

        self.replicas: list[EngineReplica] = []
        self._by_id: dict[int, EngineReplica] = {}
        self.records: list[FleetJob] = []
        self._arrivals: list[tuple[float, int, FleetJob]] = []  # heap
        self.event_log: list[tuple] = []
        self._vt = 0.0
        self._next_scale = autoscaler.interval_s if autoscaler else _INF
        self._crashing: EngineReplica | None = None
        self._crash_victims: list[FleetJob] = []
        self._ran = False
        # Digests cost a plan walk; only pay it when something reads them.
        self._need_digest = (
            self.result_cache is not None
            or self.plan_cache is not None
            or isinstance(self.routing, PlacementAwareRouting)
        )

    # -- submission ----------------------------------------------------------

    @property
    def virtual_now(self) -> float:
        return self._vt

    def submit(
        self,
        plan: Plan,
        catalog: Mapping[str, Table],
        label: str | None = None,
        arrival_s: float = 0.0,
        deadline_s: float | None = None,
        tenant: str = DEFAULT_TENANT,
        meta: dict | None = None,
    ) -> FleetJob:
        """Register a query arriving at ``arrival_s`` on the fleet
        timeline; tenant quota, cache lookup, and routing all happen at
        that instant during :meth:`run`."""
        plan.validate()
        record = FleetJob(
            seq=len(self.records),
            label=label if label is not None else f"q{len(self.records)}",
            tenant=tenant,
            plan=plan,
            catalog=catalog,
            arrival_s=float(arrival_s),
            deadline_s=deadline_s,
            meta=meta if meta is not None else {},
            digest=plan_digest(plan) if self._need_digest else None,
        )
        self.records.append(record)
        heapq.heappush(self._arrivals, (record.arrival_s, record.seq, record))
        return record

    def invalidate_table(self, name: str) -> None:
        """Catalog-change hook: bump ``name``'s version so cached
        results that read it can never be served again, and eagerly
        evict them."""
        self.versions.bump(name)
        if self.result_cache is not None:
            self.result_cache.invalidate_table(name)

    # -- replica lifecycle ---------------------------------------------------

    def _spawn(self, vt: float) -> EngineReplica:
        replica_id = len(self.replicas)
        engine = self.engine_factory(replica_id)
        scheduler = ServingScheduler(
            engine,
            policy=self.policy,
            streams=self.streams,
            seed=self.seed,
            batch_rows=self.batch_rows,
            **self.scheduler_kwargs,
        )
        scheduler.on_complete = self._on_job_complete
        scheduler.begin_run()
        replica = EngineReplica(replica_id, engine, scheduler, spawned_at=vt)
        self.replicas.append(replica)
        self._by_id[replica_id] = replica
        self.metrics.count("fleet.replicas_spawned")
        return replica

    def _routable(self) -> list[EngineReplica]:
        return [r for r in self.replicas if r.routable]

    def sanitizer_report(self, suite: str = "fleet"):
        """Merge every replica's sanitizer findings into one
        :class:`~repro.analysis.sanitizers.SanitizerReport` (empty when
        the fleet runs unsanitized)."""
        from ..analysis.sanitizers import SanitizerReport

        merged = SanitizerReport(suite=suite)
        for replica in self.replicas:
            sanitizer = getattr(replica.engine, "sanitizer", None)
            if sanitizer is not None:
                merged.merge(sanitizer.report(f"{suite}:replica{replica.id}"))
        return merged

    # -- the merged event loop -----------------------------------------------

    def run(self) -> FleetReport:
        """Serve every submitted query to a terminal state; returns the
        :class:`~repro.fleet.report.FleetReport`."""
        if self._ran:
            raise RuntimeError("a FleetScheduler instance serves exactly one run")
        self._ran = True
        for _ in range(self.initial_replicas):
            self._spawn(0.0)
        try:
            while True:
                t_crash = self._crashes[0].at if self._crashes else _INF
                t_arr = self._arrivals[0][0] if self._arrivals else _INF
                t_rep = _INF
                next_replica: EngineReplica | None = None
                for replica in self.replicas:
                    if not replica.alive:
                        continue
                    t = replica.scheduler.next_event_time()
                    if t < t_rep:  # strict: ties go to the lowest id
                        t_rep = t
                        next_replica = replica
                work_pending = t_arr < _INF or t_rep < _INF
                t_scale = self._next_scale if (self.autoscaler and work_pending) else _INF
                t = min(t_crash, t_arr, t_scale, t_rep)
                if t == _INF:
                    break
                self._vt = max(self._vt, t)
                if t_crash == t:
                    self._process_crash(self._crashes.pop(0), self._vt)
                elif t_arr == t:
                    _, _, record = heapq.heappop(self._arrivals)
                    self._route(record, self._vt)
                elif t_scale == t:
                    self._autoscale_tick(self._vt)
                    self._next_scale = t + self.autoscaler.interval_s
                else:
                    next_replica.scheduler.step_event()
                    if (
                        next_replica.draining
                        and next_replica.alive
                        and next_replica.idle
                    ):
                        next_replica.retire(self._vt)
                        self.event_log.append(("retire", next_replica.id, self._vt))
        finally:
            for replica in self.replicas:
                replica.scheduler.end_run()
        return FleetReport.build(self)

    # -- event handlers ------------------------------------------------------

    def _route(self, record: FleetJob, vt: float) -> None:
        if not self.tenants.admit(record.tenant, record.arrival_s if record.retries == 0 else vt):
            record.mark_throttled(vt)
            self.metrics.count("fleet.throttled")
            self.event_log.append(("throttle", record.seq, vt))
            return
        digest = record.digest
        if self.result_cache is not None and digest is not None:
            versions = self.versions.snapshot(digest.tables)
            table = self.result_cache.lookup(digest.result_key, versions)
            if table is not None:
                # Serve the cached bytes under the requesting plan's
                # output names (aliases were masked out of the key).
                record.complete_from_cache(
                    vt, table.rename(record.plan.output_schema().names())
                )
                self.event_log.append(("hit", record.seq, vt))
                return
        candidates = self._routable()
        if not candidates:
            record.fail(
                vt, ReplicaCrashError("no routable replica (all crashed or draining)")
            )
            self.event_log.append(("unroutable", record.seq, vt))
            return
        tables = digest.tables if digest is not None else ()
        replica = self.routing.select(candidates, tables, record.catalog)
        arrival = vt
        estimate = None
        if self.plan_cache is not None and digest is not None:
            estimate = self.plan_cache.lookup(digest.plan_key)
            if estimate is None:
                estimate = estimate_plan(
                    record.plan,
                    record.catalog,
                    replica.engine.device,
                    out_of_core=replica.engine.out_of_core,
                )
                self.plan_cache.insert(digest.plan_key, estimate)
                arrival = vt + self.plan_overhead_s  # planning charged on miss
        if digest is not None:
            record.dep_versions = self.versions.snapshot(digest.tables)
        job = replica.scheduler.submit(
            record.plan,
            record.catalog,
            label=record.label,
            arrival_s=arrival,
            deadline_s=record.deadline_s,
            estimate=estimate,
            meta={"_fleet_seq": record.seq, "_fleet_replica": replica.id},
        )
        record.replica_id = replica.id
        record.job = job
        replica.routed += 1
        if job.estimate is not None:
            replica.outstanding_cost += job.estimate.service_s
        self.event_log.append(("route", record.seq, replica.id, vt))

    def _on_job_complete(self, job) -> None:
        seq = job.meta.get("_fleet_seq")
        if seq is None:
            return
        record = self.records[seq]
        replica = self._by_id.get(job.meta.get("_fleet_replica"))
        if replica is not None and job.estimate is not None:
            replica.outstanding_cost = max(
                0.0, replica.outstanding_cost - job.estimate.service_s
            )
        if self._crashing is not None and replica is self._crashing:
            # Aborted by the crash: the fleet retries it on a survivor.
            self._crash_victims.append(record)
            return
        if (
            self.result_cache is not None
            and record.digest is not None
            and job.error is None
            and job.table is not None
        ):
            current = self.versions.snapshot(record.digest.tables)
            if current == record.dep_versions:
                self.result_cache.insert(
                    record.digest.result_key, job.table, current
                )

    def _process_crash(self, crash: NodeCrash, vt: float) -> None:
        replica = self._by_id.get(crash.node_id)
        if replica is None or not replica.alive:
            self.event_log.append(("crash-noop", crash.node_id, vt))
            return
        self.event_log.append(("crash", crash.node_id, vt))
        self.metrics.count("fleet.crashes")
        self._crashing = replica
        self._crash_victims = []
        try:
            replica.scheduler.abort_pending(
                vt, ReplicaCrashError(f"replica {replica.id} crashed at {vt:.6f}s")
            )
        finally:
            self._crashing = None
        replica.crashed = True
        replica.draining = True
        replica.outstanding_cost = 0.0
        replica.retire(vt)
        # Backfill before rerouting so the victims have somewhere to go.
        if self.autoscaler is not None:
            floor = max(self.autoscaler.min_replicas, 1)
            while len(self._routable()) < floor and len(
                self._routable()
            ) < self.autoscaler.max_replicas:
                spawned = self._spawn(vt)
                self.autoscaler.record(vt, "up", len(self._routable()), 0.0, 1.0)
                self.event_log.append(("backfill", spawned.id, vt))
        victims = sorted(self._crash_victims, key=lambda r: r.seq)
        self._crash_victims = []
        for record in victims:
            record.retries += 1
            record.retry_wait_s = vt - record.arrival_s
            record.job = None
            record.replica_id = None
            self.event_log.append(("retry", record.seq, vt))
            self._route(record, vt)

    def _autoscale_tick(self, vt: float) -> None:
        routable = self._routable()
        # Pressure = the age of the oldest unfinished query (queued *or*
        # running): under serving, admission rarely blocks — the pain of
        # an under-provisioned fleet shows up as in-flight work aging on
        # oversubscribed streams, not as admission-queue depth.
        backlog = [
            j
            for r in routable
            for j in list(r.scheduler.queue) + r.scheduler.running
        ]
        queue_wait = max((vt - j.arrival_s for j in backlog), default=0.0)
        busy = sum(1 for r in routable if not r.idle)
        utilization = busy / len(routable) if routable else 0.0
        self.metrics.gauge("fleet.queue_wait", queue_wait)
        self.metrics.gauge("fleet.utilization", utilization)
        action = self.autoscaler.decide(
            vt, len(routable), queue_wait, len(backlog), utilization
        )
        if action == "up":
            self._spawn(vt)
            self.autoscaler.record(vt, "up", len(self._routable()), queue_wait, utilization)
            self.event_log.append(("scale-up", vt))
        elif action == "down":
            # Drain the least-loaded, newest replica: it stops taking new
            # work and retires once its in-flight queries finish.
            victim = min(routable, key=lambda r: (r.in_flight(), r.outstanding_cost, -r.id))
            victim.draining = True
            if victim.idle:
                victim.retire(vt)
                self.event_log.append(("retire", victim.id, vt))
            self.autoscaler.record(
                vt, "down", len(self._routable()), queue_wait, utilization
            )
            self.event_log.append(("scale-down", victim.id, vt))
