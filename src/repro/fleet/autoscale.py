"""Reactive autoscaling: queue pressure up, idleness down.

The autoscaler samples the fleet at a fixed virtual-time interval and
reads two gauges the fleet publishes through :mod:`repro.obs`:

* ``fleet.queue_wait`` — the age of the oldest unfinished query, queued
  or running (the head-of-line pain a new replica would relieve; under
  serving, pressure shows up as in-flight work aging on oversubscribed
  streams more often than as admission-queue depth);
* ``fleet.utilization`` — the fraction of routable replicas with any
  work in flight.

Policy: queue wait above ``up_queue_wait_s`` scales **up** one replica;
utilization below ``down_utilization`` (with zero queued work) scales
**down** one — always marking, never killing: the drained replica stops
receiving new work and retires only once its in-flight queries finish,
so scaling down strands nothing.  Each action arms a cooldown so one
burst doesn't thrash the fleet size between samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Autoscaler", "ScaleEvent"]


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling decision, for the report's audit trail."""

    at: float
    action: str  # "up" | "down"
    replicas: int  # routable count *after* the action
    queue_wait_s: float
    utilization: float

    def to_dict(self) -> dict:
        return {
            "at": self.at,
            "action": self.action,
            "replicas": self.replicas,
            "queue_wait_s": self.queue_wait_s,
            "utilization": self.utilization,
        }


@dataclass
class Autoscaler:
    """Threshold/cooldown reactive scaler over the fleet's gauges."""

    min_replicas: int = 1
    max_replicas: int = 8
    up_queue_wait_s: float = 0.001
    down_utilization: float = 0.25
    cooldown_s: float = 0.01
    interval_s: float = 0.001
    events: list[ScaleEvent] = field(default_factory=list)
    _cooldown_until: float = field(default=0.0, repr=False)

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be at least 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")

    def decide(
        self,
        vt: float,
        routable: int,
        queue_wait_s: float,
        backlog: int,
        utilization: float,
    ) -> str | None:
        """``"up"``, ``"down"``, or ``None`` for this sample."""
        if vt < self._cooldown_until:
            return None
        if queue_wait_s > self.up_queue_wait_s and routable < self.max_replicas:
            return "up"
        if (
            backlog == 0
            and utilization < self.down_utilization
            and routable > self.min_replicas
        ):
            return "down"
        return None

    def record(
        self, vt: float, action: str, replicas: int, queue_wait_s: float, utilization: float
    ) -> None:
        """Log an applied action and arm the cooldown."""
        self._cooldown_until = vt + self.cooldown_s
        self.events.append(
            ScaleEvent(vt, action, replicas, queue_wait_s, utilization)
        )

    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.events if e.action == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.events if e.action == "down")
