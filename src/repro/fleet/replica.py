"""One engine replica: a device + scheduler pair the fleet routes into.

Each replica owns a full engine stack — its own device (pool, caching
region, buffer manager) built on the fleet's shared
:class:`~repro.gpu.clock.SimClock` — wrapped in a
:class:`~repro.sched.ServingScheduler` that the fleet steps event by
event through the incremental ``begin_run`` / ``step_event`` /
``end_run`` surface.  The replica tracks what the router needs to know:
outstanding estimated cost, which base tables its caching region holds
hot, and its lifecycle (spawned / draining / retired) for replica-second
cost accounting.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..columnar import Table
from ..core.sirius import SiriusEngine
from ..gpu.device import Device
from ..gpu.specs import GH200, DeviceSpec
from ..sched import ServingScheduler

__all__ = ["EngineReplica", "engine_factory"]


def engine_factory(
    spec: DeviceSpec = GH200,
    warm: Mapping[str, Table] | None = None,
    clock=None,
    caching_fraction: float = 0.5,
    memory_limit_gb: float | None = None,
    **engine_kwargs,
) -> Callable[[int], SiriusEngine]:
    """A replica-engine builder: each call makes a fresh device (on the
    shared ``clock`` when given) and engine, warm-caching ``warm``.
    The returned callable takes the replica id (unused by the default
    factory, but custom factories can vary hardware per replica)."""

    def build(replica_id: int) -> SiriusEngine:
        device = Device(
            spec,
            clock=clock,
            caching_fraction=caching_fraction,
            memory_limit_gb=memory_limit_gb,
        )
        engine = SiriusEngine(device, **engine_kwargs)
        if warm:
            engine.warm_cache(warm)
        return engine

    return build


class EngineReplica:
    """An engine + scheduler the fleet steps on the merged timeline."""

    def __init__(
        self,
        replica_id: int,
        engine: SiriusEngine,
        scheduler: ServingScheduler,
        spawned_at: float = 0.0,
    ):
        self.id = replica_id
        self.engine = engine
        self.scheduler = scheduler
        self.spawned_at = spawned_at
        self.retired_at: float | None = None
        self.draining = False
        self.crashed = False
        # Sum of estimated service seconds routed here and not yet
        # finished — the least-outstanding router's load signal.
        self.outstanding_cost = 0.0
        self.routed = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.retired_at is None

    @property
    def routable(self) -> bool:
        """Whether the router may send new work here."""
        return self.alive and not self.draining

    @property
    def idle(self) -> bool:
        return not self.scheduler.pending

    def retire(self, vt: float) -> None:
        self.retired_at = vt
        self.scheduler.end_run()

    def replica_seconds(self, end_vt: float) -> float:
        """Billed lifetime: spawn to retirement (or to ``end_vt``)."""
        end = self.retired_at if self.retired_at is not None else end_vt
        return max(0.0, end - self.spawned_at)

    # -- router signals ------------------------------------------------------

    def hot_tables(self) -> set[str]:
        """Base tables resident in this replica's caching region."""
        return set(self.engine.buffer_manager.cached_tables())

    def queue_depth(self) -> int:
        return len(self.scheduler.queue)

    def in_flight(self) -> int:
        return len(self.scheduler.running) + len(self.scheduler.queue)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "spawned_at": self.spawned_at,
            "retired_at": self.retired_at,
            "draining": self.draining,
            "crashed": self.crashed,
            "routed": self.routed,
        }

    def __repr__(self) -> str:
        state = (
            "crashed"
            if self.crashed
            else "retired"
            if not self.alive
            else "draining"
            if self.draining
            else "up"
        )
        return f"EngineReplica(id={self.id}, {state}, routed={self.routed})"
