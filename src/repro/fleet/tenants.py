"""Per-tenant fairness: token-bucket quotas over fleet admission.

Quotas sit *in front of* routing: a query whose tenant bucket is empty
at its arrival instant is throttled fleet-side — it never reaches a
replica's admission queue, so one tenant's burst cannot occupy queue
slots that the pool-headroom admission controller would otherwise hand
to everyone in arrival order.  Buckets refill on the virtual serving
timeline (see :class:`~repro.sched.admission.TokenBucket`), so the same
arrival sequence always produces the same admit/throttle decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..sched import TokenBucket

__all__ = ["TenantQuota", "TenantTable"]

DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantQuota:
    """Admission quota for one tenant: sustained rate plus burst depth."""

    rate_per_s: float
    burst: float = 1.0

    def bucket(self) -> TokenBucket:
        return TokenBucket(self.rate_per_s, self.burst)


class TenantTable:
    """The fleet's tenant registry: quotas, buckets, and counters.

    Tenants without a configured quota are unlimited (the whole layer
    defaults off).  ``admit`` consumes one token at the query's arrival
    instant; a refusal is a fleet-level throttle.
    """

    def __init__(self, quotas: Mapping[str, TenantQuota] | None = None):
        self.quotas = dict(quotas) if quotas else {}
        self._buckets = {name: q.bucket() for name, q in self.quotas.items()}
        self.submitted: dict[str, int] = {}
        self.throttled: dict[str, int] = {}

    def admit(self, tenant: str, now: float) -> bool:
        """Whether ``tenant`` may submit at virtual time ``now``."""
        self.submitted[tenant] = self.submitted.get(tenant, 0) + 1
        bucket = self._buckets.get(tenant)
        if bucket is None:
            return True
        if bucket.try_take(now):
            return True
        self.throttled[tenant] = self.throttled.get(tenant, 0) + 1
        return False

    @property
    def total_throttled(self) -> int:
        return sum(self.throttled.values())

    def stats(self) -> dict:
        tenants = sorted(set(self.submitted) | set(self.quotas))
        return {
            name: {
                "submitted": self.submitted.get(name, 0),
                "throttled": self.throttled.get(name, 0),
                "quota": (
                    {
                        "rate_per_s": self.quotas[name].rate_per_s,
                        "burst": self.quotas[name].burst,
                    }
                    if name in self.quotas
                    else None
                ),
            }
            for name in tenants
        }
