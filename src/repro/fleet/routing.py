"""Pluggable fleet routing policies.

A routing policy picks which replica an arriving query lands on.  All
three built-ins are pure functions of replica state plus (for round-
robin) an internal cursor, so a (seed, workload, policy) tuple fully
determines the fleet schedule:

* ``round-robin`` — cycle over routable replicas in id order.
* ``least-outstanding`` — the replica with the least outstanding
  estimated service seconds (ties to the lowest id).
* ``placement`` — data-placement-aware: score each replica by how many
  bytes of the query's base tables its caching region holds hot, take
  the best score, break ties by least outstanding cost then lowest id.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..columnar import Table
from .replica import EngineReplica

__all__ = [
    "LeastOutstandingRouting",
    "PlacementAwareRouting",
    "ROUTINGS",
    "RoundRobinRouting",
    "RoutingPolicy",
    "make_routing",
]


class RoutingPolicy:
    """Base class: pick a replica for a query."""

    name = "base"

    def select(
        self,
        replicas: Sequence[EngineReplica],
        tables: Sequence[str],
        catalog: Mapping[str, Table],
    ) -> EngineReplica:
        """Choose among ``replicas`` (routable, non-empty, id-ordered).

        Args:
            replicas: Candidate replicas, ordered by id.
            tables: Base tables the query scans (placement signal).
            catalog: The submission catalog (for table sizes).
        """
        raise NotImplementedError


class RoundRobinRouting(RoutingPolicy):
    """Cycle over routable replicas in id order."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def select(self, replicas, tables, catalog):
        choice = replicas[self._cursor % len(replicas)]
        self._cursor += 1
        return choice


class LeastOutstandingRouting(RoutingPolicy):
    """Least outstanding estimated service seconds; ties to lowest id."""

    name = "least-outstanding"

    def select(self, replicas, tables, catalog):
        return min(replicas, key=lambda r: (r.outstanding_cost, r.id))


class PlacementAwareRouting(RoutingPolicy):
    """Send queries where their base tables are already hot.

    The score is the byte count of the query's base tables resident in
    the replica's caching region — the copy traffic a placement miss
    would cost.  Among equally-hot replicas the load signal (least
    outstanding cost, then id) decides, so placement awareness degrades
    to least-outstanding when every replica is equally warm.
    """

    name = "placement"

    def select(self, replicas, tables, catalog):
        def score(replica: EngineReplica) -> float:
            hot = replica.hot_tables()
            total = 0
            for name in tables:
                table = catalog.get(name)
                if table is not None and name in hot:
                    total += int(table.nbytes)
            return float(total)

        return min(replicas, key=lambda r: (-score(r), r.outstanding_cost, r.id))


ROUTINGS = {
    RoundRobinRouting.name: RoundRobinRouting,
    LeastOutstandingRouting.name: LeastOutstandingRouting,
    PlacementAwareRouting.name: PlacementAwareRouting,
}


def make_routing(policy: "str | RoutingPolicy") -> RoutingPolicy:
    """Resolve a routing policy by name or pass an instance through."""
    if isinstance(policy, RoutingPolicy):
        return policy
    try:
        return ROUTINGS[policy]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {policy!r}; choose from {sorted(ROUTINGS)}"
        ) from None
