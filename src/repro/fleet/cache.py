"""The fleet's two-tier cache: exact results and parameterized plans.

* :class:`ResultCache` — completed result tables keyed by the *result
  key* (literals included), LRU-evicted under a byte budget.  Every
  entry records the versions of the base tables it read; a lookup whose
  dependencies have moved is a miss and drops the stale entry (the
  invalidation hook :meth:`~ResultCache.invalidate_table` bumps nothing
  itself — versions live in :class:`TableVersions` — it just evicts
  eagerly so invalidated bytes stop occupying budget).
* :class:`PlanCache` — :class:`~repro.sched.estimator.PlanEstimate`\\ s
  keyed by the *plan key* (literals masked), LRU under an entry budget.
  A hit skips re-deriving the estimate for every parameterization of a
  shape the fleet has already priced.

Both report hit/miss/eviction/invalidation counters through a
:class:`repro.obs.MetricSet`, and both maintain the invariant the
property suite leans on: ``hits + misses == lookups`` and resident bytes
never exceed the budget.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

from ..columnar import Table
from ..obs import MetricSet

__all__ = ["PlanCache", "ResultCache", "TableVersions"]


class TableVersions:
    """Monotone version counters per base table.

    The fleet bumps a table's version whenever the catalog changes under
    it (a load, an update, an explicit invalidation); cached results
    remember the versions they read and go stale the moment any moves.
    """

    def __init__(self):
        self._versions: dict[str, int] = {}

    def get(self, name: str) -> int:
        return self._versions.get(name, 0)

    def bump(self, name: str) -> int:
        self._versions[name] = self.get(name) + 1
        return self._versions[name]

    def snapshot(self, names) -> dict[str, int]:
        return {n: self.get(n) for n in names}

    def to_dict(self) -> dict:
        return dict(sorted(self._versions.items()))


@dataclass
class _ResultEntry:
    table: Table
    nbytes: int
    deps: dict[str, int]  # table name -> version it was computed against


class ResultCache:
    """Byte-budgeted LRU of exact query results with version deps."""

    def __init__(self, max_bytes: int, metrics: MetricSet | None = None):
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.max_bytes = int(max_bytes)
        self.metrics = metrics if metrics is not None else MetricSet()
        self._entries: "OrderedDict[str, _ResultEntry]" = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.inserts = 0
        self.oversized_rejects = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def _gauge(self) -> None:
        self.metrics.gauge("fleet.result_cache.bytes", self.bytes)
        self.metrics.gauge("fleet.result_cache.entries", len(self._entries))

    def _drop(self, key: str) -> _ResultEntry:
        entry = self._entries.pop(key)
        self.bytes -= entry.nbytes
        return entry

    def lookup(self, key: str, versions: Mapping[str, int]) -> Table | None:
        """The cached table for ``key``, or ``None``.  A stale entry
        (any dep version moved since insert) is a miss and is dropped."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self.metrics.count("fleet.result_cache.miss")
            return None
        if any(versions.get(t, 0) != v for t, v in entry.deps.items()):
            self._drop(key)
            self.invalidations += 1
            self.misses += 1
            self.metrics.count("fleet.result_cache.invalidation")
            self.metrics.count("fleet.result_cache.miss")
            self._gauge()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.metrics.count("fleet.result_cache.hit")
        return entry.table

    def insert(self, key: str, table: Table, deps: Mapping[str, int]) -> bool:
        """Cache ``table`` under ``key``; evicts LRU entries until the
        byte budget holds.  A result larger than the whole budget is not
        cached (returns ``False``)."""
        nbytes = int(table.nbytes)
        if nbytes > self.max_bytes:
            self.oversized_rejects += 1
            self.metrics.count("fleet.result_cache.oversized_reject")
            return False
        if key in self._entries:
            self._drop(key)
        while self._entries and self.bytes + nbytes > self.max_bytes:
            self._drop(next(iter(self._entries)))
            self.evictions += 1
            self.metrics.count("fleet.result_cache.eviction")
        self._entries[key] = _ResultEntry(table, nbytes, dict(deps))
        self.bytes += nbytes
        self.inserts += 1
        self.metrics.count("fleet.result_cache.insert")
        self._gauge()
        return True

    def invalidate_table(self, name: str) -> int:
        """Eagerly drop every entry depending on ``name``; returns how
        many were dropped.  (Version bumps alone already prevent stale
        serves — this just frees the budget immediately.)"""
        stale = [k for k, e in self._entries.items() if name in e.deps]
        for key in stale:
            self._drop(key)
            self.invalidations += 1
            self.metrics.count("fleet.result_cache.invalidation")
        self._gauge()
        return len(stale)

    def stats(self) -> dict:
        return {
            "max_bytes": self.max_bytes,
            "bytes": self.bytes,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "inserts": self.inserts,
            "oversized_rejects": self.oversized_rejects,
        }


class PlanCache:
    """Entry-budgeted LRU of plan estimates keyed by parameterized shape."""

    def __init__(self, max_entries: int, metrics: MetricSet | None = None):
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = int(max_entries)
        self.metrics = metrics if metrics is not None else MetricSet()
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def lookup(self, key: str):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self.metrics.count("fleet.plan_cache.miss")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.metrics.count("fleet.plan_cache.hit")
        return entry

    def insert(self, key: str, estimate) -> None:
        if self.max_entries == 0:
            return
        if key in self._entries:
            self._entries.pop(key)
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.metrics.count("fleet.plan_cache.eviction")
        self._entries[key] = estimate
        self.metrics.gauge("fleet.plan_cache.entries", len(self._entries))

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        return {
            "max_entries": self.max_entries,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
