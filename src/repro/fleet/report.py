"""Fleet-run reports: merged percentiles plus per-replica detail.

The fleet report merges every :class:`~repro.fleet.job.FleetJob` into
one latency distribution (queue wait vs service split, exactly like the
single-replica :class:`~repro.sched.report.ServingReport`), and keeps
each replica's own serving report nested under it — fleet-of-1 with the
caches off nests a report byte-identical to a solo scheduler's.  Cost is
reported as **replica-seconds**: each replica is billed from spawn to
retirement (or end of run), so an autoscaled fleet's bill reflects the
scale decisions, not just the peak.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..sched import JobState, percentile
from .job import FleetJob

__all__ = ["FleetReport"]


def _dist(values) -> dict:
    return {
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "p99": percentile(values, 0.99),
        "mean": (sum(values) / len(values)) if values else 0.0,
        "max": max(values, default=0.0),
        "count": len(values),
    }


@dataclass
class FleetReport:
    """Everything a fleet run produced, ready for JSON or a summary."""

    routing: str
    seed: int
    jobs: list[FleetJob] = field(repr=False)
    replicas: list[dict]  # per-replica lifecycle + nested ServingReport dict
    makespan_s: float
    throughput_qps: float
    latency: dict
    counters: dict
    result_cache: dict
    plan_cache: dict
    tenants: dict
    autoscale_events: list[dict]
    replica_seconds: float
    schedule_digest: str

    @classmethod
    def build(cls, fleet) -> "FleetReport":
        jobs: list[FleetJob] = fleet.records
        completed = [j for j in jobs if j.state == JobState.COMPLETED]
        if jobs:
            t0 = min(j.arrival_s for j in jobs)
            t1 = max(
                (j.completion_s for j in jobs if j.completion_s is not None),
                default=t0,
            )
            makespan = t1 - t0
        else:
            t0 = t1 = 0.0
            makespan = 0.0
        throughput = len(completed) / makespan if makespan > 0 else 0.0
        latency = {
            "total_s": _dist([j.latency_s for j in completed]),
            "queue_wait_s": _dist([j.queue_wait_s for j in completed]),
            "service_s": _dist([j.service_s for j in completed]),
        }
        counters = {
            "submitted": len(jobs),
            "completed": len(completed),
            "failed": sum(1 for j in jobs if j.state == JobState.FAILED),
            "rejected": sum(1 for j in jobs if j.state == JobState.REJECTED),
            "throttled": sum(1 for j in jobs if j.throttled),
            "cache_hits": sum(1 for j in jobs if j.cache_hit),
            "retries": sum(j.retries for j in jobs),
            "crashes": sum(1 for r in fleet.replicas if r.crashed),
            "replicas_spawned": len(fleet.replicas),
            "scale_ups": fleet.autoscaler.scale_ups if fleet.autoscaler else 0,
            "scale_downs": fleet.autoscaler.scale_downs if fleet.autoscaler else 0,
        }
        end_vt = max(t1, fleet.virtual_now)
        replica_seconds = sum(r.replica_seconds(end_vt) for r in fleet.replicas)
        replicas = [
            {**r.to_dict(), "report": r.scheduler.build_report().to_dict()}
            for r in fleet.replicas
        ]
        digest_src = repr(
            (
                fleet.routing.name,
                [r["report"]["schedule_digest"] for r in replicas],
                fleet.event_log,
            )
        )
        return cls(
            routing=fleet.routing.name,
            seed=fleet.seed,
            jobs=jobs,
            replicas=replicas,
            makespan_s=makespan,
            throughput_qps=throughput,
            latency=latency,
            counters=counters,
            result_cache=fleet.result_cache.stats() if fleet.result_cache else {},
            plan_cache=fleet.plan_cache.stats() if fleet.plan_cache else {},
            tenants=fleet.tenants.stats(),
            autoscale_events=(
                [e.to_dict() for e in fleet.autoscaler.events]
                if fleet.autoscaler
                else []
            ),
            replica_seconds=replica_seconds,
            schedule_digest=hashlib.sha256(digest_src.encode()).hexdigest()[:16],
        )

    def completed_jobs(self) -> list[FleetJob]:
        return [j for j in self.jobs if j.state == JobState.COMPLETED]

    @property
    def result_cache_hit_rate(self) -> float:
        lookups = self.result_cache.get("hits", 0) + self.result_cache.get("misses", 0)
        return self.result_cache.get("hits", 0) / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "routing": self.routing,
            "seed": self.seed,
            "makespan_s": self.makespan_s,
            "throughput_qps": self.throughput_qps,
            "latency": self.latency,
            "counters": self.counters,
            "result_cache": self.result_cache,
            "plan_cache": self.plan_cache,
            "tenants": self.tenants,
            "autoscale_events": self.autoscale_events,
            "replica_seconds": self.replica_seconds,
            "schedule_digest": self.schedule_digest,
            "replicas": self.replicas,
            "jobs": [j.to_dict() for j in self.jobs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        c = self.counters
        lat = self.latency
        lines = [
            f"fleet report — routing={self.routing} seed={self.seed} "
            f"replicas={c['replicas_spawned']}",
            f"  jobs: {c['submitted']} submitted, {c['completed']} completed, "
            f"{c['failed']} failed, {c['rejected']} rejected "
            f"({c['throttled']} throttled, {c['cache_hits']} cache hits, "
            f"{c['retries']} retries)",
            f"  makespan: {self.makespan_s:.6f}s sim  "
            f"throughput: {self.throughput_qps:.2f} q/s  "
            f"cost: {self.replica_seconds:.6f} replica-seconds",
            f"  total latency   p50={lat['total_s']['p50']:.6f}s  "
            f"p95={lat['total_s']['p95']:.6f}s  p99={lat['total_s']['p99']:.6f}s",
            f"  queue wait      p50={lat['queue_wait_s']['p50']:.6f}s  "
            f"p95={lat['queue_wait_s']['p95']:.6f}s  "
            f"p99={lat['queue_wait_s']['p99']:.6f}s",
            f"  service time    p50={lat['service_s']['p50']:.6f}s  "
            f"p95={lat['service_s']['p95']:.6f}s  "
            f"p99={lat['service_s']['p99']:.6f}s",
        ]
        if self.result_cache:
            lines.append(
                f"  result cache: {self.result_cache['hits']} hits / "
                f"{self.result_cache['misses']} misses "
                f"({self.result_cache_hit_rate:.0%}), "
                f"{self.result_cache['bytes']} B resident, "
                f"{self.result_cache['evictions']} evicted"
            )
        if self.plan_cache:
            lines.append(
                f"  plan cache: {self.plan_cache['hits']} hits / "
                f"{self.plan_cache['misses']} misses, "
                f"{self.plan_cache['entries']} entries"
            )
        if c["scale_ups"] or c["scale_downs"]:
            lines.append(
                f"  autoscale: {c['scale_ups']} up, {c['scale_downs']} down"
            )
        if c["crashes"]:
            lines.append(f"  crashes: {c['crashes']} ({c['retries']} retried)")
        lines.append(f"  schedule digest: {self.schedule_digest}")
        return "\n".join(lines)
