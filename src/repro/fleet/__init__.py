"""Fleet serving: replicated engines, two-tier caching, autoscaling.

The serving tentpole scaled one engine to N concurrent queries; this
package scales N engines to a *fleet*.  A :class:`FleetScheduler` routes
arriving queries across engine replicas (round-robin, least-outstanding,
or data-placement-aware), answers repeats straight from an exact
**result cache**, reuses priced query shapes through a parameterized
**plan cache** (both keyed on normalized plan digests with version-based
invalidation), enforces per-tenant token-bucket quotas, and reacts to
queue pressure with a threshold/cooldown **autoscaler** whose scale-down
path drains replicas gracefully — no query is ever stranded.

Everything defaults off: a fleet of one replica with the caches disabled
produces a serving report byte-identical to a solo
:class:`~repro.sched.ServingScheduler`.
"""

from .autoscale import Autoscaler, ScaleEvent
from .cache import PlanCache, ResultCache, TableVersions
from .digest import PlanDigest, normalized_plan_dict, plan_digest
from .driver import FleetWorkloadDriver
from .job import FleetJob
from .replica import EngineReplica, engine_factory
from .report import FleetReport
from .routing import (
    LeastOutstandingRouting,
    PlacementAwareRouting,
    ROUTINGS,
    RoundRobinRouting,
    RoutingPolicy,
    make_routing,
)
from .scheduler import FleetScheduler, ReplicaCrashError
from .tenants import DEFAULT_TENANT, TenantQuota, TenantTable

__all__ = [
    "Autoscaler",
    "DEFAULT_TENANT",
    "EngineReplica",
    "FleetJob",
    "FleetReport",
    "FleetScheduler",
    "FleetWorkloadDriver",
    "LeastOutstandingRouting",
    "PlacementAwareRouting",
    "PlanCache",
    "PlanDigest",
    "ROUTINGS",
    "ReplicaCrashError",
    "ResultCache",
    "RoundRobinRouting",
    "RoutingPolicy",
    "ScaleEvent",
    "TableVersions",
    "TenantQuota",
    "TenantTable",
    "engine_factory",
    "make_routing",
    "normalized_plan_dict",
    "plan_digest",
]
