"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro table1
    python -m repro figure1
    python -m repro figure4 [--sf 0.1] [--queries 1,3,6]
    python -m repro figure5 [--sf 0.1]
    python -m repro table2  [--sf 0.1] [--nodes 4]
    python -m repro serve   [--sf 0.1] [--policy sjf] [--streams 4] [--requests 32]
    python -m repro fleet   [--sf 0.1] [--replicas 4] [--routing placement]
                            [--workload bursty] [--result-cache-mb 16] [--autoscale]
    python -m repro analyze [--sf 0.1] [--queries 1,3,6]
    python -m repro battery [--engines sqlite,duckdb] [--out battery.json] [--limit 50]
    python -m repro all     [--sf 0.05]

``--trace out.json`` additionally runs the Sirius engines under a real
tracer and writes every executed query's :class:`~repro.obs.QueryProfile`
(span tree, compute/exchange/transfer breakdown, memory high-water mark)
as JSON::

    python -m repro table2 --sf 0.02 --queries 3 --trace q3.json
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures on the simulated substrate.",
    )
    parser.add_argument(
        "target",
        choices=[
            "table1", "figure1", "figure4", "figure5", "table2", "serve",
            "fleet", "analyze", "battery", "sanitize", "all",
        ],
        help="which experiment to regenerate ('serve' runs the multi-query "
        "serving demo; 'fleet' runs the replicated fleet-serving demo; "
        "'analyze' statically analyzes the TPC-H plans; "
        "'battery' runs the SQL shape battery against embedded baselines; "
        "'sanitize' runs the runtime sanitizer suites and fails on any "
        "finding)",
    )
    parser.add_argument("--sf", type=float, default=0.1, help="TPC-H scale factor")
    parser.add_argument("--nodes", type=int, default=4, help="cluster size for table2")
    parser.add_argument(
        "--policy",
        choices=["fifo", "fair", "sjf"],
        default="fair",
        help="serving scheduling policy (serve target)",
    )
    parser.add_argument(
        "--streams", type=int, default=4, help="serving worker streams (serve target)"
    )
    parser.add_argument(
        "--requests", type=int, default=32, help="queries in the serving workload"
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="open-loop arrival rate in q/s (serve target; default: closed loop)",
    )
    parser.add_argument(
        "--seed", type=int, default=19920101, help="workload seed (serve target)"
    )
    parser.add_argument(
        "--replicas", type=int, default=4, help="fleet size (fleet target)"
    )
    parser.add_argument(
        "--routing",
        choices=["round-robin", "least-outstanding", "placement"],
        default="least-outstanding",
        help="fleet routing policy (fleet target)",
    )
    parser.add_argument(
        "--workload",
        choices=["open", "diurnal", "bursty"],
        default="bursty",
        help="fleet arrival shape (fleet target)",
    )
    parser.add_argument(
        "--result-cache-mb", type=float, default=16.0,
        help="fleet result-cache budget in MB; 0 disables (fleet target)",
    )
    parser.add_argument(
        "--plan-cache", type=int, default=256,
        help="fleet plan-cache entries; 0 disables (fleet target)",
    )
    parser.add_argument(
        "--autoscale", action="store_true",
        help="start the fleet at one replica and let the reactive "
        "autoscaler grow it to --replicas (fleet target)",
    )
    parser.add_argument(
        "--suite",
        choices=["tpch", "battery", "fleet", "all"],
        default="all",
        help="which sanitizer suite to run (sanitize target)",
    )
    parser.add_argument(
        "--queries", type=str, default=None, help="comma-separated TPC-H query numbers"
    )
    parser.add_argument(
        "--engines", type=str, default=None,
        help="comma-separated baseline engines for the battery target "
        "(default: every available engine)",
    )
    parser.add_argument(
        "--out", type=str, default=None, metavar="PATH",
        help="write the battery differential artifact as JSON (battery target)",
    )
    parser.add_argument(
        "--limit", type=int, default=None,
        help="run only the first N battery statements (battery target)",
    )
    parser.add_argument(
        "--refresh-shapes", action="store_true",
        help="regenerate the committed expected-shapes file from the CPU "
        "reference (battery target)",
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="write per-query Sirius profiles (spans included) as JSON",
    )
    args = parser.parse_args(argv)

    queries = (
        [int(q) for q in args.queries.split(",")] if args.queries else list(range(1, 23))
    )
    tracer = None
    traced_profiles: list = []
    if args.trace is not None:
        from .obs import Tracer

        tracer = Tracer()

    if args.target in ("table1", "all"):
        from .bench import table1

        print("== Table 1: CPU vs GPU instances ==")
        print(table1())
        print()
    if args.target in ("figure1", "all"):
        from .bench import figure1_all

        print("== Figure 1: hardware trends ==")
        print(figure1_all())
        print()
    if args.target in ("figure4", "figure5", "all"):
        from .bench import SingleNodeHarness

        sf = min(args.sf, 0.05) if args.target == "all" else args.sf
        print(f"== Figures 4 & 5: single-node TPC-H (SF {sf}) ==")
        harness = SingleNodeHarness(sf=sf, tracer=tracer)
        result = harness.run(queries=queries)
        print(result.figure4_table())
        print()
        print(result.figure5_table())
        print()
        traced_profiles.extend(
            t.sirius_profile for t in result.timings if t.sirius_profile is not None
        )
    if args.target == "serve":
        from .core import SiriusEngine
        from .gpu.specs import GH200
        from .hosts import MiniDuck
        from .sched import WorkloadDriver, WorkloadQuery
        from .tpch import generate_tpch, tpch_query

        sf = min(args.sf, 0.05)
        mix = [q for q in queries if q in (1, 3, 6)] if args.queries else [1, 3, 6]
        print(
            f"== Multi-query serving (SF {sf}, mix {mix}, policy {args.policy}, "
            f"{args.streams} streams) =="
        )
        data = generate_tpch(sf=sf, seed=args.seed)
        host = MiniDuck()
        host.load_tables(data)
        engine = SiriusEngine.for_spec(GH200, tracer=tracer)
        engine.warm_cache(data)
        driver = WorkloadDriver(
            engine,
            data,
            [WorkloadQuery(f"q{n}", host.plan(tpch_query(n))) for n in mix],
            seed=args.seed,
        )
        if args.rate is not None:
            report = driver.open_loop(
                num_queries=args.requests,
                rate_qps=args.rate,
                policy=args.policy,
                streams=args.streams,
            )
        else:
            clients = max(args.streams, 1)
            report = driver.closed_loop(
                clients=clients,
                requests_per_client=max(args.requests // clients, 1),
                policy=args.policy,
                streams=args.streams,
            )
        print(report.summary())
        print()
    if args.target == "fleet":
        from .fleet import (
            Autoscaler,
            FleetScheduler,
            FleetWorkloadDriver,
            engine_factory,
        )
        from .gpu.specs import GH200
        from .hosts import MiniDuck
        from .sched import WorkloadQuery
        from .tpch import generate_tpch, tpch_query

        sf = min(args.sf, 0.05)
        mix = [q for q in queries if q in (1, 3, 6)] if args.queries else [1, 3, 6]
        print(
            f"== Fleet serving (SF {sf}, mix {mix}, routing {args.routing}, "
            f"{args.replicas} replicas, workload {args.workload}) =="
        )
        data = generate_tpch(sf=sf, seed=args.seed)
        host = MiniDuck()
        host.load_tables(data)
        autoscaler = (
            Autoscaler(min_replicas=1, max_replicas=args.replicas)
            if args.autoscale
            else None
        )
        fleet = FleetScheduler(
            engine_factory(GH200, warm=data),
            replicas=1 if args.autoscale else args.replicas,
            routing=args.routing,
            policy=args.policy,
            streams=args.streams,
            seed=args.seed,
            result_cache_bytes=int(args.result_cache_mb * 1e6),
            plan_cache_entries=args.plan_cache,
            autoscaler=autoscaler,
        )
        driver = FleetWorkloadDriver(
            data,
            [WorkloadQuery(f"q{n}", host.plan(tpch_query(n))) for n in mix],
            seed=args.seed,
        )
        n = args.requests
        if args.workload == "bursty":
            report = driver.bursty_open_loop(
                fleet, n, base_qps=500.0, burst_qps=20000.0,
                burst_every_s=0.01, burst_len_s=0.002,
            )
        elif args.workload == "diurnal":
            report = driver.diurnal_open_loop(
                fleet, n, base_qps=500.0, peak_qps=10000.0, period_s=0.02
            )
        else:
            report = driver.open_loop(fleet, n, rate_qps=5000.0)
        print(report.summary())
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(report.to_json())
                fh.write("\n")
            print(f"wrote fleet report to {args.out}")
        print()
    if args.target == "sanitize":
        from .analysis.sanitizers.cli import run_suite

        print(f"== Runtime sanitizer (suite {args.suite}) ==")
        report = run_suite(args.suite)
        print(report.summary())
        for finding in report.findings:
            print(f"  {finding}")
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(report.to_json())
                fh.write("\n")
            print(f"wrote sanitizer report to {args.out}")
        return 0 if report.ok else 1
    analysis_reports: list = []
    if args.target == "analyze":
        from .analysis import analyze_plan
        from .gpu.device import Device
        from .gpu.specs import GH200
        from .hosts import MiniDuck
        from .tpch import generate_tpch, tpch_query

        sf = min(args.sf, 0.05)
        print(f"== Static plan analysis: TPC-H (SF {sf}) ==")
        host = MiniDuck()
        host.load_tables(generate_tpch(sf=sf))
        device = Device(GH200)
        print(f"{'query':<7}{'tier':<18}{'findings':<10}{'working set':<14}{'est rows':<10}")
        for n in queries:
            plan = host.plan(tpch_query(n))
            report = analyze_plan(plan, host.tables, device)
            analysis_reports.append({"query": f"q{n}", **report.to_dict()})
            ws = (
                f"{report.working_set_bytes / 1e6:.2f} MB"
                if report.working_set_bytes is not None
                else "-"
            )
            rows = report.estimated_rows if report.estimated_rows is not None else "-"
            print(
                f"{'q' + str(n):<7}{report.suggested_tier:<18}"
                f"{len(report.findings):<10}{ws:<14}{rows:<10}"
            )
            for finding in report.findings:
                print(f"       {finding}")
        print()
    if args.target == "battery":
        from .bench.baselines import (
            SCALE_FACTOR,
            available_baselines,
            run_battery_baselines,
        )

        if args.refresh_shapes:
            from .bench.baselines.battery import refresh_expected_shapes

            path = refresh_expected_shapes()
            print(f"regenerated expected shapes at {path}")
            return 0
        engines = args.engines.split(",") if args.engines else None
        # The battery's committed shapes are pinned to its own scale factor.
        print(
            f"== SQL shape battery vs embedded baselines "
            f"(SF {SCALE_FACTOR}, available: {', '.join(available_baselines()) or 'none'}) =="
        )
        artifact = run_battery_baselines(
            engines=engines, out_path=args.out, limit=args.limit
        )
        for name, summary in artifact["engines"].items():
            print(
                f"{name:<8} {summary['match']} match, {summary['mismatch']} mismatch, "
                f"{summary['error']} error, {summary['unsupported']} unsupported "
                f"({summary['total_statement_s']:.2f}s in statements)"
            )
        if not artifact["engines"]:
            print("no baseline engines available; install duckdb for the full cross-check")
        if args.out is not None:
            print(f"wrote differential artifact to {args.out}")
        mismatches = sum(s["mismatch"] + s["error"] for s in artifact["engines"].values())
        return 1 if mismatches else 0
    if args.target in ("table2", "all"):
        from .bench import TABLE2_QUERIES, DistributedHarness

        sf = min(args.sf, 0.05) if args.target == "all" else args.sf
        print(f"== Table 2: distributed TPC-H (SF {sf}, {args.nodes} nodes) ==")
        harness = DistributedHarness(sf=sf, num_nodes=args.nodes, tracer=tracer)
        result = harness.run(
            queries=[q for q in queries if q in TABLE2_QUERIES]
            if args.queries
            else TABLE2_QUERIES
        )
        print(result.table())
        traced_profiles.extend(
            r.sirius_profile for r in result.rows if r.sirius_profile is not None
        )

    if args.trace is not None:
        doc = {
            "target": args.target,
            "sf": args.sf,
            "profiles": [p.to_dict() for p in traced_profiles],
        }
        if analysis_reports:
            doc["analysis_reports"] = analysis_reports
        with open(args.trace, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, indent=2))
            fh.write("\n")
        print(f"wrote {len(traced_profiles)} query profile(s) to {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
