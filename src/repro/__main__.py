"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro table1
    python -m repro figure1
    python -m repro figure4 [--sf 0.1] [--queries 1,3,6]
    python -m repro figure5 [--sf 0.1]
    python -m repro table2  [--sf 0.1] [--nodes 4]
    python -m repro all     [--sf 0.05]

``--trace out.json`` additionally runs the Sirius engines under a real
tracer and writes every executed query's :class:`~repro.obs.QueryProfile`
(span tree, compute/exchange/transfer breakdown, memory high-water mark)
as JSON::

    python -m repro table2 --sf 0.02 --queries 3 --trace q3.json
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures on the simulated substrate.",
    )
    parser.add_argument(
        "target",
        choices=["table1", "figure1", "figure4", "figure5", "table2", "all"],
        help="which experiment to regenerate",
    )
    parser.add_argument("--sf", type=float, default=0.1, help="TPC-H scale factor")
    parser.add_argument("--nodes", type=int, default=4, help="cluster size for table2")
    parser.add_argument(
        "--queries", type=str, default=None, help="comma-separated TPC-H query numbers"
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="write per-query Sirius profiles (spans included) as JSON",
    )
    args = parser.parse_args(argv)

    queries = (
        [int(q) for q in args.queries.split(",")] if args.queries else list(range(1, 23))
    )
    tracer = None
    traced_profiles: list = []
    if args.trace is not None:
        from .obs import Tracer

        tracer = Tracer()

    if args.target in ("table1", "all"):
        from .bench import table1

        print("== Table 1: CPU vs GPU instances ==")
        print(table1())
        print()
    if args.target in ("figure1", "all"):
        from .bench import figure1_all

        print("== Figure 1: hardware trends ==")
        print(figure1_all())
        print()
    if args.target in ("figure4", "figure5", "all"):
        from .bench import SingleNodeHarness

        sf = min(args.sf, 0.05) if args.target == "all" else args.sf
        print(f"== Figures 4 & 5: single-node TPC-H (SF {sf}) ==")
        harness = SingleNodeHarness(sf=sf, tracer=tracer)
        result = harness.run(queries=queries)
        print(result.figure4_table())
        print()
        print(result.figure5_table())
        print()
        traced_profiles.extend(
            t.sirius_profile for t in result.timings if t.sirius_profile is not None
        )
    if args.target in ("table2", "all"):
        from .bench import TABLE2_QUERIES, DistributedHarness

        sf = min(args.sf, 0.05) if args.target == "all" else args.sf
        print(f"== Table 2: distributed TPC-H (SF {sf}, {args.nodes} nodes) ==")
        harness = DistributedHarness(sf=sf, num_nodes=args.nodes, tracer=tracer)
        result = harness.run(
            queries=[q for q in queries if q in TABLE2_QUERIES]
            if args.queries
            else TABLE2_QUERIES
        )
        print(result.table())
        traced_profiles.extend(
            r.sirius_profile for r in result.rows if r.sirius_profile is not None
        )

    if args.trace is not None:
        doc = {
            "target": args.target,
            "sf": args.sf,
            "profiles": [p.to_dict() for p in traced_profiles],
        }
        with open(args.trace, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, indent=2))
            fh.write("\n")
        print(f"wrote {len(traced_profiles)} query profile(s) to {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
