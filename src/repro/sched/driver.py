"""Workload drivers: seeded open- and closed-loop query generators.

* **Open loop** — queries arrive on a Poisson process at a fixed rate,
  regardless of how the system keeps up (the tail-latency-honest load
  model: queue wait explodes when the arrival rate crosses capacity).
* **Closed loop** — N clients each keep exactly one query in flight,
  submitting the next one on completion after a think time (throughput-
  oriented; queue wait is bounded by the client count).

Both draw every random choice from one `random.Random` seeded from the
driver's seed, so a (seed, workload, policy, streams) tuple fully
determines the schedule.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..columnar import Table
from ..core.sirius import SiriusEngine
from .report import ServingReport
from .scheduler import ServingScheduler

__all__ = [
    "WorkloadQuery",
    "WorkloadDriver",
    "bursty_rate",
    "diurnal_rate",
    "modulated_arrival_times",
]


def diurnal_rate(base_qps: float, peak_qps: float, period_s: float) -> Callable[[float], float]:
    """A sinusoidal day/night arrival-rate curve.

    Rate starts at ``base_qps`` (midnight), peaks at ``peak_qps`` half a
    period in, and returns — the classic diurnal traffic shape scaled to
    simulated seconds.  Returns ``rate(t)``.
    """
    if base_qps <= 0 or peak_qps < base_qps:
        raise ValueError("need 0 < base_qps <= peak_qps")
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    swing = peak_qps - base_qps

    def rate(t: float) -> float:
        return base_qps + swing * 0.5 * (1.0 - math.cos(2.0 * math.pi * t / period_s))

    return rate


def bursty_rate(
    base_qps: float, burst_qps: float, burst_every_s: float, burst_len_s: float
) -> Callable[[float], float]:
    """A square-wave burst curve: ``burst_qps`` for the first
    ``burst_len_s`` of every ``burst_every_s`` window, ``base_qps``
    otherwise (flash-crowd load against which tail latency is measured).
    """
    if base_qps <= 0 or burst_qps < base_qps:
        raise ValueError("need 0 < base_qps <= burst_qps")
    if not 0 < burst_len_s < burst_every_s:
        raise ValueError("need 0 < burst_len_s < burst_every_s")

    def rate(t: float) -> float:
        return burst_qps if (t % burst_every_s) < burst_len_s else base_qps

    return rate


def modulated_arrival_times(
    rng: random.Random, n: int, rate_fn: Callable[[float], float], rate_max: float
) -> list[float]:
    """``n`` arrival instants of a non-homogeneous Poisson process with
    intensity ``rate_fn`` via Lewis–Shedler thinning: candidate arrivals
    are drawn at the envelope rate ``rate_max`` and accepted with
    probability ``rate(t) / rate_max``.  Deterministic in ``rng``.
    """
    if rate_max <= 0:
        raise ValueError("rate_max must be positive")
    times: list[float] = []
    t = 0.0
    while len(times) < n:
        t += rng.expovariate(rate_max)
        if rng.random() * rate_max <= rate_fn(t):
            times.append(t)
    return times


@dataclass(frozen=True)
class WorkloadQuery:
    """One query template in the mix, drawn with the given weight."""

    label: str
    plan: Any
    weight: float = 1.0


class WorkloadDriver:
    """Generates seeded workloads and runs them through a scheduler."""

    def __init__(
        self,
        engine: SiriusEngine,
        catalog: Mapping[str, Table],
        queries: Sequence[WorkloadQuery],
        seed: int = 0,
    ):
        if not queries:
            raise ValueError("workload needs at least one query template")
        self.engine = engine
        self.catalog = catalog
        self.queries = list(queries)
        self.seed = seed

    def _scheduler(self, policy, streams, **kwargs) -> ServingScheduler:
        return ServingScheduler(
            self.engine, policy=policy, streams=streams, seed=self.seed, **kwargs
        )

    def _pick(self, rng: random.Random) -> WorkloadQuery:
        return rng.choices(self.queries, weights=[q.weight for q in self.queries])[0]

    def open_loop(
        self,
        num_queries: int,
        rate_qps: float,
        policy="fifo",
        streams: int = 4,
        deadline_s: float | None = None,
        **scheduler_kwargs,
    ) -> ServingReport:
        """Poisson arrivals at ``rate_qps``; returns the serving report."""
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        sched = self._scheduler(policy, streams, **scheduler_kwargs)
        rng = random.Random(f"open-loop:{self.seed}")
        t = 0.0
        for _ in range(num_queries):
            t += rng.expovariate(rate_qps)
            q = self._pick(rng)
            sched.submit(
                q.plan, self.catalog, label=q.label, arrival_s=t, deadline_s=deadline_s
            )
        return sched.run()

    def _modulated_open_loop(
        self,
        kind: str,
        num_queries: int,
        rate_fn: Callable[[float], float],
        rate_max: float,
        policy,
        streams: int,
        deadline_s: float | None,
        **scheduler_kwargs,
    ) -> ServingReport:
        sched = self._scheduler(policy, streams, **scheduler_kwargs)
        rng = random.Random(f"{kind}:{self.seed}")
        times = modulated_arrival_times(rng, num_queries, rate_fn, rate_max)
        for t in times:
            q = self._pick(rng)
            sched.submit(
                q.plan, self.catalog, label=q.label, arrival_s=t, deadline_s=deadline_s
            )
        return sched.run()

    def diurnal_open_loop(
        self,
        num_queries: int,
        base_qps: float,
        peak_qps: float,
        period_s: float,
        policy="fifo",
        streams: int = 4,
        deadline_s: float | None = None,
        **scheduler_kwargs,
    ) -> ServingReport:
        """Open loop with a sinusoidal day/night rate (see
        :func:`diurnal_rate`); arrivals seeded from the driver's seed."""
        return self._modulated_open_loop(
            "diurnal",
            num_queries,
            diurnal_rate(base_qps, peak_qps, period_s),
            peak_qps,
            policy,
            streams,
            deadline_s,
            **scheduler_kwargs,
        )

    def bursty_open_loop(
        self,
        num_queries: int,
        base_qps: float,
        burst_qps: float,
        burst_every_s: float,
        burst_len_s: float,
        policy="fifo",
        streams: int = 4,
        deadline_s: float | None = None,
        **scheduler_kwargs,
    ) -> ServingReport:
        """Open loop with square-wave flash crowds (see
        :func:`bursty_rate`); arrivals seeded from the driver's seed."""
        return self._modulated_open_loop(
            "bursty",
            num_queries,
            bursty_rate(base_qps, burst_qps, burst_every_s, burst_len_s),
            burst_qps,
            policy,
            streams,
            deadline_s,
            **scheduler_kwargs,
        )

    def closed_loop(
        self,
        clients: int,
        requests_per_client: int,
        think_time_s: float = 0.0,
        policy="fifo",
        streams: int = 4,
        deadline_s: float | None = None,
        **scheduler_kwargs,
    ) -> ServingReport:
        """``clients`` concurrent clients, one query in flight each."""
        if clients < 1 or requests_per_client < 1:
            raise ValueError("need at least one client and one request")
        sched = self._scheduler(policy, streams, **scheduler_kwargs)
        rng = random.Random(f"closed-loop:{self.seed}")
        # Pre-draw every client's request sequence so the schedule depends
        # only on the seed, not on completion order.
        sequences = {
            c: [self._pick(rng) for _ in range(requests_per_client)]
            for c in range(clients)
        }
        sent = {c: 0 for c in range(clients)}

        def submit_next(client: int, arrival_s: float) -> None:
            q = sequences[client][sent[client]]
            sent[client] += 1
            sched.submit(
                q.plan,
                self.catalog,
                label=q.label,
                arrival_s=arrival_s,
                deadline_s=deadline_s,
                meta={"client": client},
            )

        def on_complete(job) -> None:
            client = job.meta.get("client")
            if client is not None and sent[client] < requests_per_client:
                base = job.completion_s if job.completion_s is not None else 0.0
                submit_next(client, base + think_time_s)

        sched.on_complete = on_complete
        for c in range(clients):
            submit_next(c, 0.0)
        return sched.run()
