"""Workload drivers: seeded open- and closed-loop query generators.

* **Open loop** — queries arrive on a Poisson process at a fixed rate,
  regardless of how the system keeps up (the tail-latency-honest load
  model: queue wait explodes when the arrival rate crosses capacity).
* **Closed loop** — N clients each keep exactly one query in flight,
  submitting the next one on completion after a think time (throughput-
  oriented; queue wait is bounded by the client count).

Both draw every random choice from one `random.Random` seeded from the
driver's seed, so a (seed, workload, policy, streams) tuple fully
determines the schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..columnar import Table
from ..core.sirius import SiriusEngine
from .report import ServingReport
from .scheduler import ServingScheduler

__all__ = ["WorkloadQuery", "WorkloadDriver"]


@dataclass(frozen=True)
class WorkloadQuery:
    """One query template in the mix, drawn with the given weight."""

    label: str
    plan: Any
    weight: float = 1.0


class WorkloadDriver:
    """Generates seeded workloads and runs them through a scheduler."""

    def __init__(
        self,
        engine: SiriusEngine,
        catalog: Mapping[str, Table],
        queries: Sequence[WorkloadQuery],
        seed: int = 0,
    ):
        if not queries:
            raise ValueError("workload needs at least one query template")
        self.engine = engine
        self.catalog = catalog
        self.queries = list(queries)
        self.seed = seed

    def _scheduler(self, policy, streams, **kwargs) -> ServingScheduler:
        return ServingScheduler(
            self.engine, policy=policy, streams=streams, seed=self.seed, **kwargs
        )

    def _pick(self, rng: random.Random) -> WorkloadQuery:
        return rng.choices(self.queries, weights=[q.weight for q in self.queries])[0]

    def open_loop(
        self,
        num_queries: int,
        rate_qps: float,
        policy="fifo",
        streams: int = 4,
        deadline_s: float | None = None,
        **scheduler_kwargs,
    ) -> ServingReport:
        """Poisson arrivals at ``rate_qps``; returns the serving report."""
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        sched = self._scheduler(policy, streams, **scheduler_kwargs)
        rng = random.Random(f"open-loop:{self.seed}")
        t = 0.0
        for _ in range(num_queries):
            t += rng.expovariate(rate_qps)
            q = self._pick(rng)
            sched.submit(
                q.plan, self.catalog, label=q.label, arrival_s=t, deadline_s=deadline_s
            )
        return sched.run()

    def closed_loop(
        self,
        clients: int,
        requests_per_client: int,
        think_time_s: float = 0.0,
        policy="fifo",
        streams: int = 4,
        deadline_s: float | None = None,
        **scheduler_kwargs,
    ) -> ServingReport:
        """``clients`` concurrent clients, one query in flight each."""
        if clients < 1 or requests_per_client < 1:
            raise ValueError("need at least one client and one request")
        sched = self._scheduler(policy, streams, **scheduler_kwargs)
        rng = random.Random(f"closed-loop:{self.seed}")
        # Pre-draw every client's request sequence so the schedule depends
        # only on the seed, not on completion order.
        sequences = {
            c: [self._pick(rng) for _ in range(requests_per_client)]
            for c in range(clients)
        }
        sent = {c: 0 for c in range(clients)}

        def submit_next(client: int, arrival_s: float) -> None:
            q = sequences[client][sent[client]]
            sent[client] += 1
            sched.submit(
                q.plan,
                self.catalog,
                label=q.label,
                arrival_s=arrival_s,
                deadline_s=deadline_s,
                meta={"client": client},
            )

        def on_complete(job) -> None:
            client = job.meta.get("client")
            if client is not None and sent[client] < requests_per_client:
                base = job.completion_s if job.completion_s is not None else 0.0
                submit_next(client, base + think_time_s)

        sched.on_complete = on_complete
        for c in range(clients):
            submit_next(c, 0.0)
        return sched.run()
