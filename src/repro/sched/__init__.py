"""Multi-query serving on the simulated device (the serving tentpole).

The paper frames Sirius as a serving-capable engine: a global task queue
drained by worker threads.  This package generalises the reproduction's
single-query executor to N concurrent queries on one device — a
:class:`ServingScheduler` interleaving chunk-granular tasks across
virtual worker streams, an :class:`AdmissionController` gating entry on
estimated working sets, pluggable scheduling policies, and seeded
open-/closed-loop :class:`WorkloadDriver` load generators producing
throughput and latency-percentile :class:`ServingReport`\\ s.
"""

from .admission import AdmissionController, TokenBucket
from .driver import (
    WorkloadDriver,
    WorkloadQuery,
    bursty_rate,
    diurnal_rate,
    modulated_arrival_times,
)
from .estimator import PlanEstimate, base_tables, estimate_plan
from .job import JobState, QueryJob
from .policies import (
    FifoPolicy,
    POLICIES,
    RoundRobinFairSharePolicy,
    SchedulingPolicy,
    ShortestCostFirstPolicy,
    make_policy,
)
from .report import ServingReport, percentile
from .scheduler import SERVING_BATCH_ROWS, ServingScheduler

__all__ = [
    "AdmissionController",
    "FifoPolicy",
    "JobState",
    "POLICIES",
    "PlanEstimate",
    "QueryJob",
    "RoundRobinFairSharePolicy",
    "SERVING_BATCH_ROWS",
    "SchedulingPolicy",
    "ServingReport",
    "ServingScheduler",
    "ShortestCostFirstPolicy",
    "TokenBucket",
    "WorkloadDriver",
    "WorkloadQuery",
    "base_tables",
    "bursty_rate",
    "diurnal_rate",
    "estimate_plan",
    "make_policy",
    "modulated_arrival_times",
    "percentile",
]
