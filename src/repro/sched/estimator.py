"""Pre-execution cost estimation for admission control and SJF.

Walks a logical plan bottom-up with textbook cardinality guesses
(selectivity constants, FK-join output = probe side) and prices the
operators with the device's own :class:`~repro.gpu.costmodel
.KernelCostModel`.  The product is a :class:`PlanEstimate`:

* ``working_set_bytes`` — how much of the processing pool the query is
  expected to hold at once (hash tables, sort buffers, the largest
  intermediate).  The admission controller gates on this.
* ``service_s`` — expected simulated device seconds.  The
  shortest-cost-first policy orders jobs by this.

Estimates only need to *rank* queries correctly and land within an order
of magnitude for admission; they are never charged to the clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..columnar import Table
from ..gpu.costmodel import KernelClass, KernelCostModel
from ..gpu.device import Device
from ..plan import Plan
from ..plan.relations import (
    AggregateRel,
    ExchangeRel,
    FetchRel,
    FilterRel,
    JoinRel,
    ProjectRel,
    ReadRel,
    Relation,
    SortRel,
)

__all__ = ["PlanEstimate", "base_tables", "estimate_plan"]


def base_tables(plan: Plan) -> list[str]:
    """Names of the base tables a plan scans, in plan order without
    duplicates.  Shared by placement-aware fleet routing (score replicas
    by which of these are hot), cache dependency tracking (a result is
    stale when any of these tables' versions move), and the estimator's
    cold-table pricing.
    """
    names: list[str] = []
    seen: set[str] = set()

    def visit(rel: Relation) -> None:
        if isinstance(rel, ReadRel) and rel.table_name not in seen:
            seen.add(rel.table_name)
            names.append(rel.table_name)
        for child in rel.inputs:
            visit(child)

    visit(plan.root)
    return names

# Classic System-R style default selectivities.
FILTER_SELECTIVITY = 0.3
SEMI_JOIN_SELECTIVITY = 0.5
# A hash table costs roughly 2x the build side (slots + payload).
HASH_TABLE_FACTOR = 2.0
# Sort needs input + output resident simultaneously.
SORT_BUFFER_FACTOR = 2.0
DEFAULT_GROUPS = 10_000


@dataclass(frozen=True)
class PlanEstimate:
    """Pre-execution estimate used by admission control and SJF."""

    working_set_bytes: int
    service_s: float
    rows: int

    def to_dict(self) -> dict:
        return {
            "working_set_bytes": self.working_set_bytes,
            "service_s": self.service_s,
            "rows": self.rows,
        }


def estimate_plan(
    plan: Plan,
    catalog: Mapping[str, Table],
    device: Device,
    cold_tables: Mapping[str, Table] | None = None,
    overlap: bool = False,
    chunk_bytes: int = 1 << 20,
    out_of_core: bool = False,
    fusion: bool = False,
) -> PlanEstimate:
    """Estimate a plan's processing-pool working set and service time.

    Args:
        cold_tables: Base tables the query will have to cold-load (not yet
            in the caching region); their host->device copy time is added
            to the service estimate.
        overlap: Price cold loads under copy/compute overlap — only the
            first chunk plus whatever copy time the estimated kernel work
            cannot hide is exposed (matches the engine's ``overlap=True``
            execution model).
        chunk_bytes: Chunk granularity assumed for overlapped loads.
        fusion: Price streaming runs the way the fused executor bills
            them — a maximal chain of adjacent filters/projects becomes a
            single launch whose streaming term covers only the chain's
            external input and output; the interior intermediate
            materialisations are free.  Mirrors
            :meth:`KernelCostModel.fused_cost`.
        out_of_core: Price spill waves: whatever part of the working set
            exceeds the processing pool must round-trip to pinned host
            memory (spilled once under pressure, unspilled once when its
            partition is processed), so that excess is charged twice at
            the pinned-copy rate.  This is what makes SJF and admission
            rank an over-pool query as *slower*, not *impossible*.
    """
    est = _Estimator(catalog, device.cost_model, fusion=fusion)
    rows, nbytes = est.visit(plan.root)
    # The final result is materialised in the pool, then copied out.
    working_set = est.working_set + int(nbytes)
    service = est.seconds + device.cost_model.transfer_cost(int(nbytes))
    if out_of_core:
        excess = working_set - device.processing_pool.capacity
        if excess > 0:
            service += 2.0 * device.cost_model.transfer_cost(int(excess), pinned=True)
    if cold_tables:
        for table in cold_tables.values():
            total = int(table.nbytes)
            if not overlap:
                service += device.cost_model.transfer_cost(total)
                continue
            # Overlapped cold load: the first chunk is synchronous; the
            # remaining chunk copies hide behind the plan's kernel work,
            # exposing only the tail the compute cannot cover.
            first = min(chunk_bytes, total)
            service += device.cost_model.transfer_cost(first)
            remaining = total - first
            if remaining > 0:
                copy_s = 0.0
                while remaining > 0:
                    step = min(chunk_bytes, remaining)
                    copy_s += device.cost_model.transfer_cost(step)
                    remaining -= step
                service += max(0.0, copy_s - est.seconds)
    return PlanEstimate(int(working_set), float(service), int(rows))


class _Estimator:
    def __init__(
        self, catalog: Mapping[str, Table], model: KernelCostModel, fusion: bool = False
    ):
        self.catalog = catalog
        self.model = model
        self.fusion = fusion
        self.working_set = 0  # peak concurrent pool bytes (hash/sort state)
        self.seconds = 0.0

    def _charge(self, kclass: str, bytes_in: float, bytes_out: float, rows: float, groups=None):
        self.seconds += self.model.kernel_cost(
            kclass, int(bytes_in), int(bytes_out), int(max(rows, 1)), groups
        ).total

    def visit(self, rel: Relation) -> tuple[float, float]:
        """Return (estimated rows, estimated bytes) of the relation."""
        if isinstance(rel, ReadRel):
            return self._read(rel)
        if isinstance(rel, (FilterRel, ProjectRel)):
            if self.fusion:
                return self._fused_chain(rel)
            rows, nbytes = self.visit(rel.inputs[0])
            self._charge(KernelClass.STREAM, nbytes, nbytes, rows)
            if isinstance(rel, FilterRel):
                return rows * FILTER_SELECTIVITY, nbytes * FILTER_SELECTIVITY
            return rows, nbytes
        if isinstance(rel, JoinRel):
            return self._join(rel)
        if isinstance(rel, AggregateRel):
            return self._aggregate(rel)
        if isinstance(rel, SortRel):
            rows, nbytes = self.visit(rel.inputs[0])
            self.working_set += int(SORT_BUFFER_FACTOR * nbytes)
            self._charge(KernelClass.SORT, nbytes, nbytes, rows)
            return rows, nbytes
        if isinstance(rel, FetchRel):
            rows, nbytes = self.visit(rel.inputs[0])
            if rel.count is not None and rows > 0:
                keep = min(float(rel.count), rows) / rows
                return rows * keep, nbytes * keep
            return rows, nbytes
        if isinstance(rel, ExchangeRel):
            return self.visit(rel.inputs[0])
        if rel.inputs:  # unknown unary relation: pass through
            return self.visit(rel.inputs[0])
        return 0.0, 0.0

    def _fused_chain(self, rel: Relation) -> tuple[float, float]:
        """Price a maximal adjacent Filter/Project chain as one fused
        launch: each hop keeps its non-streaming terms (the work still
        happens), but the memory-bandwidth term covers only the chain's
        external input and final output — interior materialisations are
        priced at zero, matching the fused executor.  The selectivity
        cascade is preserved hop by hop."""
        chain: list[Relation] = []
        node = rel
        while isinstance(node, (FilterRel, ProjectRel)):
            chain.append(node)
            node = node.inputs[0]
        rows, nbytes = self.visit(node)
        ext_in = nbytes
        parts = []
        for hop in reversed(chain):
            parts.append((KernelClass.STREAM, int(nbytes), int(nbytes), int(max(rows, 1)), None))
            if isinstance(hop, FilterRel):
                rows *= FILTER_SELECTIVITY
                nbytes *= FILTER_SELECTIVITY
        self.seconds += self.model.fused_cost(parts, int(ext_in), int(nbytes)).total
        return rows, nbytes

    def _read(self, rel: ReadRel) -> tuple[float, float]:
        table = self.catalog.get(rel.table_name)
        if table is None:
            return 0.0, 0.0
        rows = float(table.num_rows)
        if rel.projection is not None:
            wanted = set(rel.projection)
            nbytes = float(
                sum(
                    col.nbytes
                    for f, col in zip(table.schema, table.columns)
                    if f.name in wanted
                )
            )
        else:
            nbytes = float(table.nbytes)
        # Scans read from the caching region; only the filter (if pushed)
        # is a processing kernel.
        if rel.filter_expr is not None:
            self._charge(KernelClass.STREAM, nbytes, nbytes, rows)
            return rows * FILTER_SELECTIVITY, nbytes * FILTER_SELECTIVITY
        return rows, nbytes

    def _join(self, rel: JoinRel) -> tuple[float, float]:
        probe_rows, probe_bytes = self.visit(rel.inputs[0])
        build_rows, build_bytes = self.visit(rel.inputs[1])
        self.working_set += int(HASH_TABLE_FACTOR * build_bytes)
        self._charge(KernelClass.HASH_BUILD, build_bytes, build_bytes, build_rows)
        self._charge(
            KernelClass.HASH_PROBE, probe_bytes, probe_bytes + build_bytes, probe_rows
        )
        if rel.join_type in ("semi", "anti"):
            return probe_rows * SEMI_JOIN_SELECTIVITY, probe_bytes * SEMI_JOIN_SELECTIVITY
        # FK-join assumption: output cardinality ~ probe side, output rows
        # carry columns from both sides.
        out_rows = probe_rows
        per_row = (probe_bytes / probe_rows if probe_rows else 0.0) + (
            build_bytes / build_rows if build_rows else 0.0
        )
        return out_rows, out_rows * per_row

    def _aggregate(self, rel: AggregateRel) -> tuple[float, float]:
        rows, nbytes = self.visit(rel.inputs[0])
        groups = float(min(rows, DEFAULT_GROUPS)) if rel.group_indices else 1.0
        per_row = nbytes / rows if rows else 0.0
        out_bytes = groups * max(per_row, 8.0 * (len(rel.group_indices) + len(rel.measures)))
        self.working_set += int(out_bytes)
        self._charge(KernelClass.GROUPBY_HASH, nbytes, out_bytes, rows, int(groups))
        return groups, out_bytes
