"""The concurrent serving scheduler: a shared task queue over N queries.

The paper's execution model (§3.2.2) is a global task queue served by
worker threads.  Single-query execution drains one query's pipeline tasks;
this module generalises that to **N concurrent queries on one device**:
each admitted query exposes its next chunk-task via
:meth:`~repro.core.executor.QueryRun.step`, and the scheduler interleaves
tasks from all admitted queries across ``streams`` virtual worker streams.

Two timelines
-------------

The simulation has one device clock, so tasks *execute* serially on it —
each step's simulated duration is measured there (and accumulated into the
owning job's ``service_s``).  Concurrency lives on the **virtual serving
timeline**: measured durations are placed onto worker streams
discrete-event style (a task starts at ``max(stream free, job ready)``),
which yields arrivals, queue waits, completions, latencies, and a makespan
of roughly ``total work / streams``.  Every quantity the report cites —
throughput, p50/p95/p99, queue wait vs service split — lives on this
virtual timeline; per-query *profiles* (operator breakdowns) still come
from the device clock and are byte-identical to solo runs at concurrency 1.

Determinism: arrivals are seeded, the event loop breaks ties by stream
index and submission sequence, and policies are pure functions of job
state — the same seed always produces the identical schedule, and
therefore identical profiles and reports.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from typing import Callable, Mapping

from ..columnar import Table
from ..core.deadline import Deadline, DeadlineExceededError, DidNotFinishError
from ..core.fallback import FALLBACK_EXCEPTIONS
from ..core.sirius import OOC_RETRY_BATCH_ROWS, SiriusEngine
from ..obs import NULL_TRACER
from ..plan import Plan
from .admission import AdmissionController
from .estimator import estimate_plan
from .job import JobState, QueryJob
from .policies import SchedulingPolicy, make_policy
from .report import ServingReport

__all__ = ["ServingScheduler"]

_INF = float("inf")

# Default streaming batch size under serving: small enough that queries
# interleave at fine granularity, large enough to keep kernels efficient.
SERVING_BATCH_ROWS = OOC_RETRY_BATCH_ROWS


class ServingScheduler:
    """Admits, interleaves, and completes concurrent queries on one engine."""

    def __init__(
        self,
        engine: SiriusEngine,
        policy: "str | SchedulingPolicy" = "fifo",
        streams: int = 4,
        seed: int = 0,
        admission: AdmissionController | None = None,
        batch_rows: int | None = SERVING_BATCH_ROWS,
        tracer=None,
        tracer_factory: Callable[[], object] | None = None,
        static_admission: bool = False,
        sanitize: bool = False,
    ):
        """
        Args:
            engine: The (exclusively borrowed) engine to serve on.
            policy: Task-dispatch policy: ``fifo`` / ``fair`` / ``sjf`` or
                a :class:`~repro.sched.policies.SchedulingPolicy`.
            streams: Number of virtual worker streams (the paper's worker
                threads); the concurrency degree.
            seed: Recorded in the report (workload drivers derive their
                arrival randomness from it).
            admission: Admission controller; a default one over the
                engine's processing pool if omitted.
            batch_rows: Streaming batch size for served queries (None =
                engine default; the serving default is small for fine
                interleaving).
            tracer: Scheduler-level observability sink (serving spans and
                admission events).
            tracer_factory: Zero-arg callable making one tracer per query;
                interleaved queries must not share a span stack.
            static_admission: Run the plan analyzer on every submitted
                query (report stored in ``job.meta["analysis"]``) and let
                admission act on it *before* execution: plans the analyzer
                proves broken are rejected at arrival, and queries whose
                report predicts the spill tier are admitted pre-degraded
                (spilling enabled, out-of-core batch size) instead of
                burning a wasted full-size attempt.  Off by default — the
                analyzer is advisory at execution time.
            sanitize: Attach a :class:`~repro.analysis.sanitizers
                .Sanitizer` to the engine (if it does not already carry
                one) and run the end-of-run leak/drift checks at
                :meth:`end_run`.  Purely observational.
        """
        if streams < 1:
            raise ValueError("streams must be at least 1")
        self.engine = engine
        self.policy = make_policy(policy)
        self.streams = int(streams)
        self.seed = seed
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(
                engine.device.processing_pool, out_of_core=engine.out_of_core
            )
        )
        self.batch_rows = batch_rows
        self.static_admission = bool(static_admission)
        if sanitize and getattr(engine, "sanitizer", None) is None:
            from ..analysis.sanitizers import Sanitizer

            engine.sanitizer = Sanitizer()
            engine.sanitizer.attach(engine.device, engine.buffer_manager)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer_factory = tracer_factory
        # Called with each job reaching a terminal state; closed-loop
        # drivers submit the client's next request from here.
        self.on_complete: Callable[[QueryJob], None] | None = None

        self.jobs: list[QueryJob] = []
        self._seq = 0
        self._arrivals: list[tuple[float, int, QueryJob]] = []  # heap
        self.queue: deque[QueryJob] = deque()  # bounded admission queue
        self.running: list[QueryJob] = []  # admitted, in admission order
        # Jobs whose last task has executed but whose completion instant
        # lies ahead of the loop's current virtual time: completion (and
        # the reservation release that comes with it) is a timeline event,
        # processed in order — a queued job must not be admitted at a
        # virtual time before the release that makes room for it.
        self._completions: list[tuple[float, int, QueryJob]] = []
        self.active: set[str] = set()  # owner keys of admitted jobs
        self.step_log: list[tuple[int, int, float, float]] = []
        self.expired_in_queue = 0
        self.degraded = 0
        self.pre_degraded = 0
        self._ran = False
        # Incremental-run state (see begin_run/step_event/end_run): the
        # loop's virtual clock and worker-stream frontiers live on the
        # instance so an outer loop (the fleet scheduler) can interleave
        # several ServingSchedulers event by event.
        self._vt = 0.0
        self._stream_free: list[float] = []
        self._saved_spill = False
        self._began = False

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        plan: Plan,
        catalog: Mapping[str, Table],
        label: str | None = None,
        arrival_s: float = 0.0,
        deadline_s: float | None = None,
        meta: dict | None = None,
        estimate=None,
    ) -> QueryJob:
        """Register a query arriving at ``arrival_s`` on the serving
        timeline.  Legal before :meth:`run` and from ``on_complete``
        callbacks during it (closed-loop workloads).

        ``estimate`` lets a front-end that already priced the plan (the
        fleet router consults its plan cache) pass the
        :class:`~repro.sched.estimator.PlanEstimate` through instead of
        re-deriving it; ``None`` computes it here, as before.
        """
        plan.validate()
        job = QueryJob(
            seq=self._seq,
            label=label if label is not None else f"q{self._seq}",
            plan=plan,
            catalog=catalog,
            arrival_s=float(arrival_s),
            deadline_s=deadline_s,
            estimate=estimate
            if estimate is not None
            else estimate_plan(
                plan, catalog, self.engine.device, out_of_core=self.engine.out_of_core
            ),
            meta=meta if meta is not None else {},
        )
        if self.static_admission and "analysis" not in job.meta:
            from ..analysis import analyze_plan

            job.meta["analysis"] = analyze_plan(
                plan, catalog, self.engine.device, out_of_core=self.engine.out_of_core
            )
        self._seq += 1
        self.jobs.append(job)
        heapq.heappush(self._arrivals, (job.arrival_s, job.seq, job))
        return job

    # -- the event loop ------------------------------------------------------

    def run(self) -> ServingReport:
        """Serve every submitted job to a terminal state; returns the
        :class:`~repro.sched.report.ServingReport`."""
        self.begin_run()
        try:
            while self.pending:
                self.step_event()
        finally:
            self.end_run()
        return self.build_report()

    # The loop above is also exposed piecewise so an outer discrete-event
    # loop — the fleet scheduler — can interleave several replicas'
    # schedulers on one merged timeline.  ``run()`` is exactly
    # begin_run + step_event-until-drained + end_run, so the piecewise
    # form is byte-identical to the monolithic one.

    def begin_run(self) -> None:
        """Enter serving mode (pool reset, contention-aware eviction on)."""
        if self._ran:
            raise RuntimeError("a ServingScheduler instance serves exactly one run")
        self._ran = True
        self.engine.device.reset_processing_pool()
        self._saved_spill = self.engine.buffer_manager.enable_spill
        self.engine.buffer_manager.active_queries = self.active
        self._stream_free = [0.0] * self.streams
        self._vt = 0.0
        self._began = True

    @property
    def pending(self) -> bool:
        """Whether any submitted job is not yet terminal."""
        return bool(self._arrivals or self.queue or self.running or self._completions)

    @property
    def virtual_now(self) -> float:
        """The serving-timeline instant the event loop has reached."""
        return self._vt

    def next_event_time(self) -> float:
        """Virtual time of the next event :meth:`step_event` would
        process (``inf`` when nothing is pending).

        An idle scheduler with queued work reports "now": its next event
        is the forced admission that un-wedges the queue.
        """
        if not self.pending:
            return _INF
        if not self.running and not self._completions and self.queue:
            return self._vt
        t_arr = self._arrivals[0][0] if self._arrivals else _INF
        t_done = self._completions[0][0] if self._completions else _INF
        if self.running:
            ready_t = min(j.ready_at for j in self.running)
            t_exec = max(min(self._stream_free), ready_t)
        else:
            t_exec = _INF
        return max(self._vt, min(t_arr, t_done, t_exec))

    def step_event(self) -> None:
        """Process exactly one serving-timeline event (one iteration of
        the event loop): a completion, an arrival batch, a task
        execution, or a forced admission on an idle device."""
        vt = self._vt
        stream_free = self._stream_free
        if not self.running and not self._completions and self.queue:
            # Device idle with queued work and no release in
            # flight: admit (forcing the head through if its
            # estimate exceeds headroom — nothing running means no
            # reservation will ever be released).
            self._try_admission(vt, force=True)
            return
        t_arr = self._arrivals[0][0] if self._arrivals else _INF
        t_done = self._completions[0][0] if self._completions else _INF
        if self.running:
            ready_t = min(j.ready_at for j in self.running)
            t_exec = max(min(stream_free), ready_t)
        else:
            t_exec = _INF
        if t_done <= t_arr and t_done <= t_exec:
            self._vt = vt = max(vt, t_done)
            _, _, job = heapq.heappop(self._completions)
            self._finish(job, vt, error=job.error)
            self._expire_queue(vt)
            self._try_admission(vt)
            return
        if t_arr <= t_exec:
            self._vt = vt = max(vt, t_arr)
            self._drain_arrivals(vt)
            self._expire_queue(vt)
            self._try_admission(vt)
            return
        # Execute one task: earliest-free stream, policy's job.
        self._vt = vt = max(vt, t_exec)
        self._expire_queue(vt)
        self._try_admission(vt)
        w = min(range(self.streams), key=stream_free.__getitem__)
        candidates = [j for j in self.running if j.ready_at <= vt]
        job = self.policy.select(candidates, vt)
        self._run_step(job, w, vt, stream_free)

    def end_run(self) -> None:
        """Leave serving mode, restoring the engine's buffer-manager and
        device state.  Idempotent."""
        if not self._began:
            return
        self._began = False
        self.engine.buffer_manager.active_queries = None
        self.engine.buffer_manager.enable_spill = self._saved_spill
        self.engine.device.query_owner = None
        sanitizer = getattr(self.engine, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.check_end_run(
                self.engine, f"scheduler.end_run:{self.policy.name}"
            )

    def abort_pending(self, vt: float, error: BaseException) -> list[QueryJob]:
        """Fail every non-terminal job at ``vt`` with ``error`` (replica
        crash: the fleet retries the victims on a survivor).  Returns the
        aborted jobs in submission order."""
        victims: list[QueryJob] = []
        while self._completions:
            _, _, job = heapq.heappop(self._completions)
            victims.append(job)
        victims.extend(self.running)
        self.running = []
        victims.extend(self.queue)
        self.queue.clear()
        while self._arrivals:
            _, _, job = heapq.heappop(self._arrivals)
            victims.append(job)
        victims.sort(key=lambda j: j.seq)
        for job in victims:
            self._finish(job, max(vt, job.arrival_s), error=error)
        return victims

    # -- arrival / admission -------------------------------------------------

    def _drain_arrivals(self, vt: float) -> None:
        while self._arrivals and self._arrivals[0][0] <= vt:
            _, _, job = heapq.heappop(self._arrivals)
            if self.static_admission:
                reason = self.admission.static_reject_reason(job)
                if reason is not None:
                    job.state = JobState.REJECTED
                    job.completion_s = job.arrival_s
                    job.meta["reject_reason"] = reason
                    self.admission.rejected += 1
                    self.admission.static_rejected += 1
                    self.tracer.event(
                        "sched.rejected_static",
                        sim_time=vt,
                        job=job.label,
                        seq=job.seq,
                        reason=reason,
                    )
                    self.tracer.count("sched.rejected_static")
                    if self.on_complete is not None:
                        self.on_complete(job)
                    continue
            if len(self.queue) >= self.admission.max_queue_depth:
                job.state = JobState.REJECTED
                job.completion_s = job.arrival_s
                self.admission.rejected += 1
                self.tracer.event(
                    "sched.rejected", sim_time=vt, job=job.label, seq=job.seq
                )
                self.tracer.count("sched.rejected")
                if self.on_complete is not None:
                    self.on_complete(job)
                continue
            job.state = JobState.QUEUED
            self.queue.append(job)

    def _expire_queue(self, vt: float) -> None:
        """Fail queued jobs whose whole deadline elapsed while waiting."""
        for job in [j for j in self.queue if j.deadline_s is not None]:
            if vt - job.arrival_s > job.deadline_s:
                self.queue.remove(job)
                job.queue_wait_s = job.deadline_s
                self.expired_in_queue += 1
                error = DeadlineExceededError(
                    f"query spent its whole {job.deadline_s:.6f}s deadline "
                    f"in the admission queue",
                    budget_s=job.deadline_s,
                    elapsed_s=job.deadline_s,
                )
                self._finish(job, job.arrival_s + job.deadline_s, error=error)

    def _try_admission(self, vt: float, force: bool = False) -> None:
        while self.queue:
            head = self.queue[0]
            if self.admission.can_admit(head):
                self.queue.popleft()
                self._admit(head, vt, forced=False)
            elif force and not self.running:
                self.queue.popleft()
                self._admit(head, vt, forced=True)
            else:
                break

    def _admit(self, job: QueryJob, vt: float, forced: bool) -> None:
        job.admitted_s = vt
        job.queue_wait_s = vt - job.arrival_s
        job.forced_admission = forced
        self.admission.admit(job, forced=forced)
        job.tracer = (
            self.tracer_factory() if self.tracer_factory is not None else NULL_TRACER
        )
        if job.deadline_s is not None:
            # Anchor the resource envelope on the device clock and charge
            # the admission-queue wait against it (satellite fix: a query
            # must not sit out its budget in the queue and then run with a
            # fresh deadline).
            job.deadline = Deadline(job.deadline_s, self.engine.device.clock)
            job.deadline.charge_wait(job.queue_wait_s)
            try:
                job.deadline.check_at(self.engine.device.clock.now)
            except DeadlineExceededError as exc:
                self._finish(job, vt, error=exc)
                return
        batch_rows = self.batch_rows
        out_of_core: bool | None = None
        if self.static_admission:
            report = job.meta.get("analysis")
            suggested = getattr(report, "suggested_tier", None) if report else None
            if suggested in ("gpu-retry-spill", "gpu-spill"):
                # Pre-degrade from the plan alone: start directly in the
                # out-of-core configuration instead of burning a wasted
                # full-size attempt that the estimate says will OOM.  A
                # "gpu-spill" verdict admits the query as a streaming job
                # on the partitioned spill tier.
                job.degraded_tier = suggested
                self.pre_degraded += 1
                self.engine.buffer_manager.enable_spill = True
                batch_rows = min(
                    batch_rows or OOC_RETRY_BATCH_ROWS, OOC_RETRY_BATCH_ROWS
                )
                if suggested == "gpu-spill":
                    out_of_core = True
                self.tracer.event(
                    "sched.pre_degraded",
                    sim_time=vt,
                    job=job.label,
                    seq=job.seq,
                    tier=job.degraded_tier,
                )
                self.tracer.count("sched.pre_degraded")
        job.qrun = self.engine.start_query(
            job.plan,
            job.catalog,
            deadline=job.deadline,
            tracer=job.tracer,
            batch_rows=batch_rows,
            out_of_core=out_of_core,
        )
        job.state = JobState.RUNNING
        job.ready_at = vt
        self.running.append(job)
        self.active.add(job.owner_key)
        self.tracer.event(
            "sched.admitted",
            sim_time=vt,
            job=job.label,
            seq=job.seq,
            queue_wait_s=job.queue_wait_s,
            forced=forced,
        )
        self.tracer.count("sched.admitted")

    # -- execution -----------------------------------------------------------

    def _run_step(
        self, job: QueryJob, w: int, vt: float, stream_free: list[float]
    ) -> None:
        device = self.engine.device
        clock = device.clock
        saved_tracer = device.tracer
        device.query_owner = job.owner_key
        device.tracer = job.tracer
        mark = clock.now
        error: BaseException | None = None
        degrade: BaseException | None = None
        try:
            alive = job.qrun.step()
            if not alive and job.qrun.result is not None:
                # Device->host copy of the result is part of service time.
                job.table = job.qrun.result.to_host()
                job.profile = job.qrun.profile
        except DidNotFinishError as exc:  # deadline / memory ceiling: no retry
            alive = False
            error = exc
        except FALLBACK_EXCEPTIONS as exc:
            alive = False
            degrade = exc
        finally:
            duration = clock.now - mark
            device.query_owner = None
            device.tracer = saved_tracer
        end = vt + duration
        stream_free[w] = end
        job.ready_at = end
        job.service_s += duration
        job.steps += 1
        self.step_log.append((job.seq, w, vt, end))
        if degrade is not None:
            self._degrade(job, end, degrade)
        elif error is not None or not alive:
            # The job is done executing, but its completion (and the
            # reservation release) belongs at virtual time ``end``; park
            # it until the loop's clock gets there.
            job.error = error
            self.running.remove(job)
            heapq.heappush(self._completions, (end, job.seq, job))

    def _degrade(self, job: QueryJob, end: float, exc: BaseException) -> None:
        """Walk the job one degradation tier down, or fail it.

        Serving-mode analogue of the engine's ladder: the first
        recoverable failure (device OOM, unsupported feature, persistent
        kernel fault) retries the query out-of-core — spilling enabled,
        small batches — under the *same* deadline; a query that fails on
        the batched retry escalates once more to the partitioned
        ``gpu-spill`` tier before the failure is final.  The wasted
        attempts' time stays charged, exactly like the single-query path.
        """
        self.engine.device.processing_pool.release_owner(job.owner_key)
        out_of_core: bool | None = None
        if job.degraded_tier is None:
            job.degraded_tier = "gpu-retry-spill"
        elif job.degraded_tier == "gpu-retry-spill":
            job.degraded_tier = "gpu-spill"
            out_of_core = True
        else:
            self._finish(job, end, error=exc)
            return
        self.degraded += 1
        self.engine.buffer_manager.enable_spill = True
        retry_batch = min(self.batch_rows or OOC_RETRY_BATCH_ROWS, OOC_RETRY_BATCH_ROWS)
        job.qrun = self.engine.start_query(
            job.plan,
            job.catalog,
            deadline=job.deadline,
            tracer=job.tracer,
            batch_rows=retry_batch,
            out_of_core=out_of_core,
        )
        self.tracer.event(
            "sched.degraded",
            sim_time=end,
            job=job.label,
            seq=job.seq,
            tier=job.degraded_tier,
            cause=type(exc).__name__,
        )
        self.tracer.count("sched.degraded")

    def _finish(
        self, job: QueryJob, end: float, error: BaseException | None = None
    ) -> None:
        job.completion_s = end
        job.error = error
        job.state = JobState.FAILED if error is not None else JobState.COMPLETED
        if job in self.running:
            self.running.remove(job)
        self.active.discard(job.owner_key)
        self.admission.release(job)
        self.engine.device.processing_pool.release_owner(job.owner_key)
        if job.qrun is not None and not job.qrun.done:
            job.qrun.abort()
        if self.tracer.enabled:
            if job.admitted_s is not None and job.admitted_s > job.arrival_s:
                self.tracer.record_span(
                    f"queue-wait:{job.label}",
                    "serving-queue",
                    start=job.arrival_s,
                    end=job.admitted_s,
                    seq=job.seq,
                )
            if job.admitted_s is not None:
                self.tracer.record_span(
                    f"service:{job.label}",
                    "serving-service",
                    start=job.admitted_s,
                    end=end,
                    seq=job.seq,
                    busy_s=job.service_s,
                    state=job.state,
                )
        self.tracer.event(
            "sched.finished",
            sim_time=end,
            job=job.label,
            seq=job.seq,
            state=job.state,
        )
        if self.on_complete is not None:
            self.on_complete(job)

    # -- reporting -----------------------------------------------------------

    def build_report(self) -> ServingReport:
        digest = hashlib.sha256(repr(self.step_log).encode()).hexdigest()[:16]
        counters = {
            "submitted": len(self.jobs),
            "completed": sum(1 for j in self.jobs if j.state == JobState.COMPLETED),
            "failed": sum(1 for j in self.jobs if j.state == JobState.FAILED),
            "rejected": sum(1 for j in self.jobs if j.state == JobState.REJECTED),
            "expired_in_queue": self.expired_in_queue,
            "degraded": self.degraded,
            "pre_degraded": self.pre_degraded,
            "forced_admissions": self.admission.forced,
            "steps": len(self.step_log),
            "contention_avoided_evictions": (
                self.engine.buffer_manager.contention_avoided_evictions
            ),
        }
        return ServingReport.build(
            policy=self.policy.name,
            streams=self.streams,
            seed=self.seed,
            jobs=self.jobs,
            counters=counters,
            schedule_digest=digest,
        )
