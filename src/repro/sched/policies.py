"""Pluggable scheduling policies for the serving task queue.

All policies answer one question: *given the admitted jobs whose next task
is ready, which job's task does the freed worker stream run?*  They are
pure functions of job state — deterministic by construction, since
candidate lists are presented in stable admission order and every key is
tie-broken by submission sequence number.
"""

from __future__ import annotations

from typing import Sequence

from .job import QueryJob

__all__ = [
    "SchedulingPolicy",
    "FifoPolicy",
    "RoundRobinFairSharePolicy",
    "ShortestCostFirstPolicy",
    "POLICIES",
    "make_policy",
]


class SchedulingPolicy:
    """Interface: pick the next job to run a task for."""

    name = "base"

    def select(self, candidates: Sequence[QueryJob], now: float) -> QueryJob:
        """Return one job from ``candidates`` (never empty)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FifoPolicy(SchedulingPolicy):
    """Run-to-completion in arrival order: the earliest-arrived admitted
    job gets every free stream slot until it finishes (head-of-line
    blocking and all — the baseline the fair/SJF policies improve on)."""

    name = "fifo"

    def select(self, candidates: Sequence[QueryJob], now: float) -> QueryJob:
        return min(candidates, key=lambda j: (j.arrival_s, j.seq))


class RoundRobinFairSharePolicy(SchedulingPolicy):
    """Least-attained-service-first: the task goes to the admitted job
    that has consumed the least simulated device time so far.

    Because every executed task strictly increases the chosen job's
    ``service_s`` (each chunk-task advances the clock), a job can only be
    passed over finitely often before it holds the minimum — no admitted
    job starves.  With equal-cost tasks this degenerates to classic
    round-robin interleaving.
    """

    name = "fair"

    def select(self, candidates: Sequence[QueryJob], now: float) -> QueryJob:
        return min(candidates, key=lambda j: (j.service_s, j.seq))


class ShortestCostFirstPolicy(SchedulingPolicy):
    """Shortest-expected-cost-first: prioritise the job whose *remaining*
    estimated cost (cost-model estimate minus service already received) is
    smallest — SJF on the estimator's numbers, which minimises mean wait
    when the estimates rank queries correctly."""

    name = "sjf"

    def select(self, candidates: Sequence[QueryJob], now: float) -> QueryJob:
        def remaining(job: QueryJob) -> float:
            est = job.estimate.service_s if job.estimate is not None else 0.0
            return max(est - job.service_s, 0.0)

        return min(candidates, key=lambda j: (remaining(j), j.seq))


POLICIES = {
    p.name: p for p in (FifoPolicy, RoundRobinFairSharePolicy, ShortestCostFirstPolicy)
}


def make_policy(policy: "str | SchedulingPolicy") -> SchedulingPolicy:
    """Resolve a policy name (``fifo`` / ``fair`` / ``sjf``) or pass an
    instance through."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; available: {sorted(POLICIES)}"
        ) from None
