"""Serving jobs: one submitted query's lifecycle record.

A :class:`QueryJob` travels ``SUBMITTED -> QUEUED -> RUNNING ->
COMPLETED`` (or ``FAILED`` / ``REJECTED``).  All of its timestamps live on
the scheduler's *virtual serving timeline* — the discrete-event timeline
the scheduler builds by placing measured step durations onto worker
streams — while ``service_s`` sums the simulated device seconds the job's
own steps consumed (so per-query service time excludes other queries'
interleaved work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..columnar import Table
from ..core.deadline import Deadline
from ..core.executor import QueryRun
from ..obs import QueryProfile
from .estimator import PlanEstimate

__all__ = ["JobState", "QueryJob"]


class JobState:
    """String constants for a job's lifecycle state."""

    SUBMITTED = "submitted"  # known to the scheduler, not yet arrived
    QUEUED = "queued"  # arrived, waiting in the admission queue
    RUNNING = "running"  # admitted; tasks interleave on the streams
    COMPLETED = "completed"
    FAILED = "failed"  # deadline expiry or exhausted degradation
    REJECTED = "rejected"  # bounded admission queue was full on arrival

    TERMINAL = (COMPLETED, FAILED, REJECTED)


@dataclass
class QueryJob:
    """One query submitted to the serving scheduler."""

    seq: int
    label: str
    plan: Any = field(repr=False)
    catalog: Mapping[str, Table] = field(repr=False)
    arrival_s: float = 0.0
    deadline_s: float | None = None
    estimate: PlanEstimate | None = field(default=None, repr=False)
    meta: dict = field(default_factory=dict, repr=False)

    # -- lifecycle (filled in by the scheduler) --
    state: str = JobState.SUBMITTED
    admitted_s: float | None = None
    completion_s: float | None = None
    queue_wait_s: float = 0.0
    service_s: float = 0.0  # simulated device seconds of this job's own steps
    steps: int = 0
    ready_at: float = 0.0  # virtual time its next task may start
    forced_admission: bool = False
    degraded_tier: str | None = None
    error: BaseException | None = field(default=None, repr=False)

    # -- execution state --
    owner_key: str = ""
    qrun: QueryRun | None = field(default=None, repr=False)
    deadline: Deadline | None = field(default=None, repr=False)
    tracer: Any = field(default=None, repr=False)
    table: Table | None = field(default=None, repr=False)
    profile: QueryProfile | None = field(default=None, repr=False)

    def __post_init__(self):
        if not self.owner_key:
            self.owner_key = f"job-{self.seq}"

    @property
    def latency_s(self) -> float | None:
        """End-to-end latency on the serving timeline (arrival to done)."""
        if self.completion_s is None:
            return None
        return self.completion_s - self.arrival_s

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "label": self.label,
            "state": self.state,
            "arrival_s": self.arrival_s,
            "admitted_s": self.admitted_s,
            "completion_s": self.completion_s,
            "latency_s": self.latency_s,
            "queue_wait_s": self.queue_wait_s,
            "service_s": self.service_s,
            "steps": self.steps,
            "deadline_s": self.deadline_s,
            "degraded_tier": self.degraded_tier,
            "forced_admission": self.forced_admission,
            "error": type(self.error).__name__ if self.error is not None else None,
            "estimated_service_s": (
                self.estimate.service_s if self.estimate is not None else None
            ),
            "estimated_working_set_bytes": (
                self.estimate.working_set_bytes if self.estimate is not None else None
            ),
        }
