"""Serving-run reports: throughput and latency percentiles.

Latency is split the way serving systems report it: **queue wait**
(arrival to admission) vs **service** (the job's own simulated device
seconds) vs **total** (arrival to completion on the serving timeline,
which also includes time spent admitted-but-preempted while other
queries' tasks held the streams).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from .job import JobState, QueryJob

__all__ = ["ServingReport", "percentile"]


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 1]); 0.0 when empty."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if not values:
        return 0.0
    s = sorted(values)
    pos = (len(s) - 1) * q
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return s[lo]
    return s[lo] + (s[hi] - s[lo]) * (pos - lo)


def _dist(values) -> dict:
    return {
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "p99": percentile(values, 0.99),
        "mean": (sum(values) / len(values)) if values else 0.0,
        "max": max(values, default=0.0),
        "count": len(values),
    }


@dataclass
class ServingReport:
    """Everything a serving run produced, ready for JSON or a summary."""

    policy: str
    streams: int
    seed: int
    jobs: list[QueryJob] = field(repr=False)
    makespan_s: float
    throughput_qps: float
    latency: dict
    counters: dict
    schedule_digest: str

    @classmethod
    def build(cls, policy, streams, seed, jobs, counters, schedule_digest):
        completed = [j for j in jobs if j.state == JobState.COMPLETED]
        if jobs:
            t0 = min(j.arrival_s for j in jobs)
            t1 = max(
                (j.completion_s for j in jobs if j.completion_s is not None),
                default=t0,
            )
            makespan = t1 - t0
        else:
            makespan = 0.0
        throughput = len(completed) / makespan if makespan > 0 else 0.0
        latency = {
            "total_s": _dist([j.latency_s for j in completed]),
            "queue_wait_s": _dist([j.queue_wait_s for j in completed]),
            "service_s": _dist([j.service_s for j in completed]),
        }
        return cls(
            policy=policy,
            streams=streams,
            seed=seed,
            jobs=jobs,
            makespan_s=makespan,
            throughput_qps=throughput,
            latency=latency,
            counters=counters,
            schedule_digest=schedule_digest,
        )

    def completed_jobs(self) -> list[QueryJob]:
        return [j for j in self.jobs if j.state == JobState.COMPLETED]

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "streams": self.streams,
            "seed": self.seed,
            "makespan_s": self.makespan_s,
            "throughput_qps": self.throughput_qps,
            "latency": self.latency,
            "counters": self.counters,
            "schedule_digest": self.schedule_digest,
            "jobs": [j.to_dict() for j in self.jobs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        c = self.counters
        lat = self.latency
        lines = [
            f"serving report — policy={self.policy} streams={self.streams} "
            f"seed={self.seed}",
            f"  jobs: {c['submitted']} submitted, {c['completed']} completed, "
            f"{c['failed']} failed, {c['rejected']} rejected "
            f"({c['expired_in_queue']} expired in queue, {c['degraded']} degraded)",
            f"  makespan: {self.makespan_s:.6f}s sim  "
            f"throughput: {self.throughput_qps:.2f} q/s",
            f"  total latency   p50={lat['total_s']['p50']:.6f}s  "
            f"p95={lat['total_s']['p95']:.6f}s  p99={lat['total_s']['p99']:.6f}s",
            f"  queue wait      p50={lat['queue_wait_s']['p50']:.6f}s  "
            f"p95={lat['queue_wait_s']['p95']:.6f}s  "
            f"p99={lat['queue_wait_s']['p99']:.6f}s",
            f"  service time    p50={lat['service_s']['p50']:.6f}s  "
            f"p95={lat['service_s']['p95']:.6f}s  "
            f"p99={lat['service_s']['p99']:.6f}s",
            f"  schedule digest: {self.schedule_digest}",
        ]
        return "\n".join(lines)
