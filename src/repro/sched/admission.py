"""Admission control for the shared processing pool.

A query is admitted only when its estimated working set fits inside the
pool's *headroom* — capacity scaled by a safety fraction, minus the
advisory reservations of every already-admitted query.  Waiting queries
sit in a **bounded** queue (arrivals past the bound are rejected
outright, the classic load-shedding knob), and time spent queued is
accounted and charged against the query's deadline on admission.

Reservations are advisory (see :meth:`~repro.gpu.rmm.PoolAllocator
.reserve`): they never move the allocator's free list, so an estimate
that is wrong does not break execution — a genuinely oversized query
still hits the pool's real OOM and walks the degradation path.
"""

from __future__ import annotations

from ..gpu.rmm import PoolAllocator
from .job import QueryJob

__all__ = ["AdmissionController", "TokenBucket"]


class TokenBucket:
    """A deterministic token bucket on the virtual serving timeline.

    Tokens refill continuously at ``rate_per_s`` up to ``burst``; a
    request consumes whole tokens at its arrival instant.  Refill depends
    only on the elapsed virtual time, so the same arrival sequence always
    produces the same admit/throttle decisions.  This is the per-tenant
    quota primitive the fleet layer layers over the pool-headroom
    admission controller above.
    """

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)  # start full: a quiet tenant can burst
        self._last_refill = 0.0
        self.granted = 0
        self.throttled = 0

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last_refill) * self.rate_per_s
            )
            self._last_refill = now

    def available(self, now: float) -> float:
        """Tokens available at virtual time ``now`` (refills first)."""
        self._refill(now)
        return self.tokens

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Consume ``amount`` tokens at ``now`` if available."""
        self._refill(now)
        if self.tokens + 1e-12 >= amount:
            self.tokens -= amount
            self.granted += 1
            return True
        self.throttled += 1
        return False

    def stats(self) -> dict:
        return {
            "rate_per_s": self.rate_per_s,
            "burst": self.burst,
            "granted": self.granted,
            "throttled": self.throttled,
        }

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate_per_s}/s, burst={self.burst}, "
            f"tokens={self.tokens:.2f})"
        )


class AdmissionController:
    """Gates admission on estimated working set vs pool headroom."""

    def __init__(
        self,
        pool: PoolAllocator,
        headroom_fraction: float = 0.9,
        max_queue_depth: int = 32,
        max_working_set_fraction: float | None = None,
        out_of_core: bool = False,
        spill_footprint_fraction: float = 0.5,
    ):
        """
        Args:
            pool: The shared processing pool being protected.
            headroom_fraction: Fraction of pool capacity admissions may
                collectively reserve (the rest absorbs estimate error).
            max_queue_depth: Bound on the admission wait queue; arrivals
                beyond it are rejected.
            max_working_set_fraction: When set, a query whose *static*
                working-set estimate exceeds this fraction of pool
                capacity is rejected outright at arrival — it could only
                ever run forced-and-degraded, so load-shed it instead of
                letting it camp in the queue.  ``None`` (default)
                preserves the pre-analysis behaviour.
            out_of_core: The engine behind the pool runs partitioned
                out-of-core execution: an over-pool query is then a
                *streaming* job whose resident footprint is bounded by
                spilling, so (a) the static working-set rejection gate
                does not apply — the query is admissible, just slower —
                and (b) its reservation is capped at
                ``spill_footprint_fraction`` of pool capacity (the spill
                machinery holds at most about that much resident).
            spill_footprint_fraction: Reservation cap for over-pool
                queries under ``out_of_core`` admission.
        """
        if not 0.0 < headroom_fraction <= 1.0:
            raise ValueError("headroom_fraction must be in (0, 1]")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if max_working_set_fraction is not None and max_working_set_fraction <= 0.0:
            raise ValueError("max_working_set_fraction must be positive")
        if not 0.0 < spill_footprint_fraction <= 1.0:
            raise ValueError("spill_footprint_fraction must be in (0, 1]")
        self.pool = pool
        self.headroom_fraction = headroom_fraction
        self.max_queue_depth = max_queue_depth
        self.max_working_set_fraction = max_working_set_fraction
        self.out_of_core = bool(out_of_core)
        self.spill_footprint_fraction = spill_footprint_fraction
        self.admitted = 0
        self.rejected = 0
        self.forced = 0
        self.static_rejected = 0

    @property
    def headroom_bytes(self) -> int:
        """Bytes of reservable headroom left in the pool."""
        budget = int(self.pool.capacity * self.headroom_fraction)
        return budget - self.pool.reserved_total

    def _demand(self, job: QueryJob) -> int:
        demand = job.estimate.working_set_bytes if job.estimate is not None else 0
        if self.out_of_core:
            # A spilling query's resident footprint is bounded by the
            # partition budget, not its full working set.
            cap = int(self.pool.capacity * self.spill_footprint_fraction)
            return min(demand, cap)
        return demand

    def can_admit(self, job: QueryJob) -> bool:
        """Would admitting ``job`` keep reservations within headroom?"""
        return self._demand(job) <= self.headroom_bytes

    def static_reject_reason(self, job: QueryJob) -> str | None:
        """Why ``job`` should be rejected from its plan alone, or ``None``.

        Two static gates, both decided before any GPU memory moves:

        * the plan analyzer found errors (``suggested_tier == "reject"``:
          executing the plan would raise, so don't queue it);
        * the static working-set estimate exceeds
          ``max_working_set_fraction`` of pool capacity (the query could
          only ever run forced-and-degraded).
        """
        report = job.meta.get("analysis")
        if report is not None and getattr(report, "suggested_tier", None) == "reject":
            n = len(report.errors)
            return f"plan analysis found {n} error(s): {report.errors[0].message}"
        if self.out_of_core:
            # Over-pool queries are streaming spill jobs, not lost causes:
            # admit them (priced slower by the estimator) instead of
            # load-shedding.
            return None
        if self.max_working_set_fraction is not None:
            limit = int(self.pool.capacity * self.max_working_set_fraction)
            demand = self._demand(job)
            if demand > limit:
                return (
                    f"static working set {demand} B exceeds "
                    f"{self.max_working_set_fraction:.0%} of pool capacity "
                    f"({limit} B)"
                )
        return None

    def admit(self, job: QueryJob, forced: bool = False) -> None:
        """Reserve the job's estimated working set in the pool.

        ``forced`` marks an admission that overrode the headroom check —
        the scheduler forces the queue head through when nothing is
        running and nothing else ever will be (a query estimated larger
        than the pool must still get its chance to run and degrade).
        """
        self.pool.reserve(job.owner_key, self._demand(job))
        self.admitted += 1
        if forced:
            self.forced += 1

    def release(self, job: QueryJob) -> int:
        """Drop the job's reservation (on completion or failure)."""
        return self.pool.unreserve(job.owner_key)

    def stats(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "static_rejected": self.static_rejected,
            "forced": self.forced,
            "headroom_bytes": self.headroom_bytes,
            "reserved_bytes": self.pool.reserved_total,
        }
