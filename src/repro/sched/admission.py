"""Admission control for the shared processing pool.

A query is admitted only when its estimated working set fits inside the
pool's *headroom* — capacity scaled by a safety fraction, minus the
advisory reservations of every already-admitted query.  Waiting queries
sit in a **bounded** queue (arrivals past the bound are rejected
outright, the classic load-shedding knob), and time spent queued is
accounted and charged against the query's deadline on admission.

Reservations are advisory (see :meth:`~repro.gpu.rmm.PoolAllocator
.reserve`): they never move the allocator's free list, so an estimate
that is wrong does not break execution — a genuinely oversized query
still hits the pool's real OOM and walks the degradation path.
"""

from __future__ import annotations

from ..gpu.rmm import PoolAllocator
from .job import QueryJob

__all__ = ["AdmissionController"]


class AdmissionController:
    """Gates admission on estimated working set vs pool headroom."""

    def __init__(
        self,
        pool: PoolAllocator,
        headroom_fraction: float = 0.9,
        max_queue_depth: int = 32,
    ):
        """
        Args:
            pool: The shared processing pool being protected.
            headroom_fraction: Fraction of pool capacity admissions may
                collectively reserve (the rest absorbs estimate error).
            max_queue_depth: Bound on the admission wait queue; arrivals
                beyond it are rejected.
        """
        if not 0.0 < headroom_fraction <= 1.0:
            raise ValueError("headroom_fraction must be in (0, 1]")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        self.pool = pool
        self.headroom_fraction = headroom_fraction
        self.max_queue_depth = max_queue_depth
        self.admitted = 0
        self.rejected = 0
        self.forced = 0

    @property
    def headroom_bytes(self) -> int:
        """Bytes of reservable headroom left in the pool."""
        budget = int(self.pool.capacity * self.headroom_fraction)
        return budget - self.pool.reserved_total

    def _demand(self, job: QueryJob) -> int:
        return job.estimate.working_set_bytes if job.estimate is not None else 0

    def can_admit(self, job: QueryJob) -> bool:
        """Would admitting ``job`` keep reservations within headroom?"""
        return self._demand(job) <= self.headroom_bytes

    def admit(self, job: QueryJob, forced: bool = False) -> None:
        """Reserve the job's estimated working set in the pool.

        ``forced`` marks an admission that overrode the headroom check —
        the scheduler forces the queue head through when nothing is
        running and nothing else ever will be (a query estimated larger
        than the pool must still get its chance to run and degrade).
        """
        self.pool.reserve(job.owner_key, self._demand(job))
        self.admitted += 1
        if forced:
            self.forced += 1

    def release(self, job: QueryJob) -> int:
        """Drop the job's reservation (on completion or failure)."""
        return self.pool.unreserve(job.owner_key)

    def stats(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "forced": self.forced,
            "headroom_bytes": self.headroom_bytes,
            "reserved_bytes": self.pool.reserved_total,
        }
