"""Rendering and aggregation helpers shared by the benchmark harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["ascii_table", "geomean", "format_ms", "bar_series"]


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[str(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), "-+-".join("-" * w for w in widths)]
    out += [line(r) for r in str_rows]
    return "\n".join(out)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values; 0.0 for an empty sequence."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_ms(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1000:.3f}"


def bar_series(label: str, fractions: dict[str, float], width: int = 50) -> str:
    """One stacked text bar (Figure-5 style) from category fractions."""
    glyphs = {
        "join": "J", "groupby": "G", "filter": "F",
        "aggregation": "A", "orderby": "O", "other": ".", "transfer": "t",
        "exchange": "x",
    }
    total = sum(fractions.values())
    if total <= 0:
        return f"{label:6s} |"
    bar = []
    for cat in ("join", "groupby", "filter", "aggregation", "orderby", "other", "transfer", "exchange"):
        frac = fractions.get(cat, 0.0) / total
        bar.append(glyphs.get(cat, "?") * int(round(frac * width)))
    return f"{label:6s} |{''.join(bar)[:width]}|"
