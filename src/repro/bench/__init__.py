"""Benchmark harness: one runner per paper table/figure plus ablations."""

from .ablations import (
    compression_ablation,
    fusion_ablation,
    impl_swap_string_groupby,
    multi_gpu_ablation,
    oocore_ablation,
    overlap_ablation,
    predicate_transfer_ablation,
    AblationHarness,
    batch_execution,
    hot_vs_cold,
    impl_swap,
    interconnect_sweep,
)
from .distributed_bench import DistributedHarness, TABLE2_QUERIES, Table2Result
from .hardware import figure1_all, figure1_series, table1
from .report import ascii_table, bar_series, format_ms, geomean
from .single_node import Figure4Result, SingleNodeHarness

__all__ = [
    "AblationHarness",
    "DistributedHarness",
    "Figure4Result",
    "SingleNodeHarness",
    "TABLE2_QUERIES",
    "Table2Result",
    "ascii_table",
    "bar_series",
    "batch_execution",
    "figure1_all",
    "figure1_series",
    "format_ms",
    "geomean",
    "hot_vs_cold",
    "impl_swap",
    "compression_ablation",
    "fusion_ablation",
    "impl_swap_string_groupby",
    "multi_gpu_ablation",
    "oocore_ablation",
    "overlap_ablation",
    "predicate_transfer_ablation",
    "interconnect_sweep",
    "table1",
]
