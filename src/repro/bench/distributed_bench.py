"""Distributed TPC-H harness: regenerates Table 2.

Runs the distributed subset (Q1, Q3, Q6 — the queries the paper's
distributed Sirius supports) on a 4-node cluster in three modes:

* vanilla MiniDoris (CPU),
* ClickHouse-style distributed baseline,
* MiniDoris accelerated by per-node Sirius engines (A100 GPUs, NCCL
  exchange),

and reports, for Sirius, the compute / exchange / other breakdown of the
paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hosts import MiniDoris
from ..tpch import generate_tpch, tpch_query
from .report import ascii_table, format_ms

__all__ = ["Table2Result", "DistributedHarness", "TABLE2_QUERIES"]

TABLE2_QUERIES = (1, 3, 6)


@dataclass
class Table2Row:
    query: int
    doris_s: float
    clickhouse_s: float
    sirius_s: float
    sirius_compute_s: float
    sirius_exchange_s: float
    sirius_other_s: float
    exchanged_bytes: int
    # Source of truth for the sirius_* fields above; carries the span tree
    # when the harness was built with a real tracer.
    sirius_profile: object = None

    @property
    def speedup_vs_doris(self) -> float:
        return self.doris_s / self.sirius_s

    @property
    def speedup_vs_clickhouse(self) -> float:
        return self.clickhouse_s / self.sirius_s


@dataclass
class Table2Result:
    scale_factor: float
    num_nodes: int
    rows: list[Table2Row] = field(default_factory=list)

    def table(self) -> str:
        body = []
        for r in self.rows:
            body.append(
                (
                    f"Q{r.query}",
                    format_ms(r.doris_s),
                    format_ms(r.clickhouse_s),
                    format_ms(r.sirius_s),
                    format_ms(r.sirius_compute_s),
                    format_ms(r.sirius_exchange_s),
                    format_ms(r.sirius_other_s),
                    f"{r.speedup_vs_doris:.1f}x",
                )
            )
        return ascii_table(
            [
                "query", "Doris ms", "ClickHouse ms", "Sirius ms",
                "compute", "exchange", "other", "vs Doris",
            ],
            body,
        )

    def row(self, query: int) -> Table2Row:
        return next(r for r in self.rows if r.query == query)


class DistributedHarness:
    """Owns the three 4-node clusters over one generated dataset."""

    def __init__(
        self, sf: float = 0.1, num_nodes: int = 4, seed: int = 19920101, tracer=None
    ):
        """``tracer`` instruments the Sirius cluster (the baselines stay
        untraced); each :class:`Table2Row` then carries a full profile."""
        self.sf = sf
        self.num_nodes = num_nodes
        self.data = generate_tpch(sf=sf, seed=seed)
        self.doris = MiniDoris(num_nodes=num_nodes, mode="doris")
        self.clickhouse = MiniDoris(num_nodes=num_nodes, mode="clickhouse")
        self.sirius = MiniDoris(num_nodes=num_nodes, mode="sirius", tracer=tracer)
        for db in (self.doris, self.clickhouse, self.sirius):
            db.load_tables(self.data)
        self.sirius.warm_caches()

    def run_query(self, query: int) -> Table2Row:
        doris_res = self.doris.execute(tpch_query(query))
        ch_res = self.clickhouse.execute(tpch_query(query, for_clickhouse=True))
        sirius_res = self.sirius.execute(tpch_query(query))
        # The row is a view of the query profile — the one aggregation
        # structure the observability layer produces (Table 2's split).
        profile = sirius_res.profile
        if not profile.label:
            profile.label = f"Q{query}"
        split = profile.table2_split()
        return Table2Row(
            query=query,
            doris_s=doris_res.total_seconds,
            clickhouse_s=ch_res.total_seconds,
            sirius_s=profile.sim_seconds,
            sirius_compute_s=split["compute"],
            sirius_exchange_s=split["exchange"],
            sirius_other_s=split["other"],
            exchanged_bytes=profile.exchanged_bytes,
            sirius_profile=profile,
        )

    def run(self, queries=TABLE2_QUERIES) -> Table2Result:
        result = Table2Result(self.sf, self.num_nodes)
        for q in queries:
            result.rows.append(self.run_query(q))
        return result
