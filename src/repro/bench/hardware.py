"""Hardware-data harness: regenerates Table 1 and Figure 1.

These come straight from the catalog in :mod:`repro.gpu.specs` — the same
constants that parameterise the simulated devices, so the benchmark tables
and the performance model cannot drift apart.
"""

from __future__ import annotations

from ..gpu.specs import TABLE1_INSTANCES, TRENDS, trend_cagr
from .report import ascii_table

__all__ = ["table1", "figure1_series", "figure1_all"]


def table1() -> str:
    """The paper's Table 1: CPU vs GPU instance comparison."""
    rows = []
    for inst in TABLE1_INSTANCES:
        rows.append(
            (
                inst.name,
                f"{inst.cores:,}",
                f"{inst.memory_bw_gbps:,.0f} GB/s",
                f"{inst.memory_gb:,.0f} GB",
                f"${inst.cost_per_hour}/h ({inst.cloud})",
                f"{inst.bandwidth_per_dollar:,.0f}",
            )
        )
    return ascii_table(
        ["instance", "cores", "memory BW", "memory size", "rental cost", "GB/s per $/h"],
        rows,
    )


def figure1_series(name: str) -> str:
    """One Figure 1 panel as an ASCII series with its growth rate."""
    series = TRENDS[name]
    peak = max(v for _, _, v in series)
    rows = []
    for year, label, value in series:
        bar = "#" * max(int(round(value / peak * 40)), 1)
        rows.append((year, label, f"{value:g}", bar))
    table = ascii_table(["year", "hardware", "value", ""], rows)
    cagr = trend_cagr(name) * 100
    return f"{name} (CAGR {cagr:+.1f}%/yr)\n{table}"


def figure1_all() -> str:
    panels = ["gpu_memory_gb", "interconnect_gbps", "storage_gbps", "network_gbps"]
    return "\n\n".join(figure1_series(p) for p in panels)
