"""Ablation harness for the design choices DESIGN.md calls out.

* **Hot vs cold caching region** — the paper reports hot runs; this
  quantifies what the pre-allocated caching region buys (§3.2.3).
* **Kernel implementation swap** — libcudf vs "custom kernel"
  implementations of join and group-by (§3.2.2's modular design); the
  custom hash group-by avoids libcudf's sort path for string keys.
* **Interconnect generation sweep** — cold-run time under PCIe4 / PCIe5 /
  NVLink-C2C (the §2.1 hardware-trend argument).
* **Batch (out-of-core) execution** — whole-table pipelines vs §3.4's
  partitioned batch execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import SiriusEngine
from ..gpu.specs import A100_40G, GH200, DeviceSpec
from ..hosts import MiniDuck
from ..tpch import generate_tpch, tpch_query
from .report import ascii_table

__all__ = [
    "AblationHarness",
    "hot_vs_cold",
    "impl_swap",
    "interconnect_sweep",
    "batch_execution",
    "overlap_ablation",
    "oocore_ablation",
    "fusion_ablation",
]


@dataclass
class AblationHarness:
    """Shared dataset + host planner for the ablation experiments."""

    sf: float = 0.05
    seed: int = 19920101

    def __post_init__(self):
        self.data = generate_tpch(sf=self.sf, seed=self.seed)
        self.host = MiniDuck()
        self.host.load_tables(self.data)

    def plan(self, query: int):
        return self.host.plan(tpch_query(query))

    def fresh_engine(self, **kwargs) -> SiriusEngine:
        return SiriusEngine.for_spec(GH200, **kwargs)


def hot_vs_cold(
    harness: AblationHarness, query: int = 6, spec: DeviceSpec = A100_40G
) -> dict[str, float]:
    """Cold run (caching region empty, pays host->device copies) vs hot.

    Defaults to the PCIe4-attached A100, where the cold-run penalty is
    largest; over NVLink-C2C (GH200) the gap shrinks dramatically — which
    is exactly the paper's §2.1 argument that faster interconnects let
    GPUs reach beyond device memory.
    """
    plan = harness.plan(query)
    engine = SiriusEngine.for_spec(spec)
    engine.execute(plan, harness.data)
    cold = engine.last_profile.sim_seconds
    engine.execute(plan, harness.data)
    hot = engine.last_profile.sim_seconds
    return {"cold_s": cold, "hot_s": hot, "speedup": cold / hot}


def impl_swap(
    harness: AblationHarness, query: int = 10, op_kinds: tuple[str, ...] = ("groupby",)
) -> dict[str, float]:
    """libcudf vs custom implementations of the given operator kinds.

    Swapping only ``groupby`` isolates the string-key sort-path question
    (the custom kernel hashes strings directly); swapping only ``join``
    compares hash join vs the sort-merge custom kernel.
    """
    plan = harness.plan(query)
    engine = harness.fresh_engine()
    engine.warm_cache(harness.data)
    results = {}
    for impl in ("libcudf", "custom"):
        for kind in op_kinds:
            engine.use_implementation(kind, impl)
        engine.execute(plan, harness.data)
        results[impl] = engine.last_profile.sim_seconds
    return results


def interconnect_sweep(harness: AblationHarness, query: int = 1) -> str:
    """Cold-run time across interconnect generations (data load included)."""
    plan = harness.plan(query)
    rows = []
    for name, gbps, latency in (
        ("PCIe 4.0 x16", 25.6, 5.0),
        ("PCIe 5.0 x16", 64.0, 4.0),
        ("NVLink-C2C", 450.0, 2.0),
    ):
        spec = DeviceSpec(
            name=f"GH200-class over {name}",
            kind="gpu",
            memory_gb=GH200.memory_gb,
            memory_bw_gbps=GH200.memory_bw_gbps,
            random_access_efficiency=GH200.random_access_efficiency,
            row_throughput_grows=GH200.row_throughput_grows,
            kernel_launch_us=GH200.kernel_launch_us,
            interconnect_gbps=gbps,
            interconnect_latency_us=latency,
        )
        engine = SiriusEngine.for_spec(spec)
        engine.execute(plan, harness.data)  # cold: pays the load
        rows.append((name, f"{gbps:g} GB/s", f"{engine.last_profile.sim_seconds*1000:.3f} ms"))
    return ascii_table(["interconnect", "bandwidth", "cold-run time"], rows)


def batch_execution(harness: AblationHarness, query: int = 1, batch_rows: int = 50_000):
    """Whole-table pipelines vs batched (out-of-core style) execution."""
    plan = harness.plan(query)
    whole = harness.fresh_engine()
    whole.warm_cache(harness.data)
    whole.execute(plan, harness.data)
    batched = harness.fresh_engine(batch_rows=batch_rows)
    batched.warm_cache(harness.data)
    result = batched.execute(plan, harness.data)
    return {
        "whole_s": whole.last_profile.sim_seconds,
        "batched_s": batched.last_profile.sim_seconds,
        "batched_rows": result.num_rows,
    }


def impl_swap_string_groupby(harness: AblationHarness) -> dict[str, float]:
    """Micro-ablation: group the customer table by its (string) name.

    Maximises the sort-path vs hash-path difference: every key is a
    distinct string, so libcudf's sort-based group-by pays its full
    log-factor while the custom hash kernel streams once.
    """
    from ..plan import PlanBuilder

    schema = harness.data["customer"].schema
    plan = (
        PlanBuilder.read("customer", schema)
        .aggregate(groups=["c_name"], aggs=[("sum", "c_acctbal", "total")])
        .build()
    )
    engine = harness.fresh_engine()
    engine.warm_cache(harness.data, names=["customer"])
    results = {}
    for impl in ("libcudf", "custom"):
        engine.use_implementation("groupby", impl)
        engine.execute(plan, harness.data)
        results[impl] = engine.last_profile.sim_seconds
    return results


def compression_ablation(harness: AblationHarness, query: int = 12) -> dict[str, float]:
    """Lightweight caching-region compression (§3.4): capacity saved vs
    decompression cost on a hot run."""
    plan = harness.plan(query)
    plain = harness.fresh_engine()
    plain.warm_cache(harness.data)
    plain.execute(plan, harness.data)
    packed = harness.fresh_engine(compress_cache=True)
    packed.warm_cache(harness.data)
    packed.execute(plan, harness.data)
    return {
        "plain_hot_s": plain.last_profile.sim_seconds,
        "packed_hot_s": packed.last_profile.sim_seconds,
        "plain_cache_bytes": plain.device.caching_region.used,
        "packed_cache_bytes": packed.device.caching_region.used,
        "saved_bytes": packed.buffer_manager.compressed_saved_bytes,
    }


def multi_gpu_ablation(sf: float = 0.02, query: int = 1) -> dict[str, float]:
    """Multi-GPU per node (§3.4): compute time at 1 vs 2 GPUs per host."""
    from ..hosts import MiniDoris
    from ..tpch import generate_tpch, tpch_query

    data = generate_tpch(sf=sf)
    out = {}
    for gpus in (1, 2):
        db = MiniDoris(num_nodes=4, mode="sirius", gpus_per_node=gpus)
        db.load_tables(data)
        db.warm_caches()
        result = db.execute(tpch_query(query))
        out[f"gpus{gpus}_total_s"] = result.total_seconds
        out[f"gpus{gpus}_compute_s"] = result.compute_seconds
    return out


def overlap_ablation(
    harness: AblationHarness,
    queries: tuple[int, ...] = (1, 3, 6),
    spec: DeviceSpec = A100_40G,
    distributed_query: int = 3,
    num_nodes: int = 4,
) -> dict[str, float]:
    """Copy/compute overlap (async streams + prefetch) on and off.

    Single-node: cold runs of the given queries on a PCIe4-attached A100
    (the configuration where exposed copy time is largest), synchronous
    loads vs chunked double-buffered loads on the copy stream.
    Distributed: the Table-2 Q3 shuffle with pipelined exchanges
    overlapping sends with fragment compute.
    """
    from ..hosts import MiniDoris

    out: dict[str, float] = {}
    for query in queries:
        plan = harness.plan(query)
        for enabled in (False, True):
            engine = SiriusEngine.for_spec(spec, overlap=enabled)
            engine.execute(plan, harness.data)  # cold: pays the load
            key = "overlap" if enabled else "baseline"
            out[f"q{query}_{key}_s"] = engine.last_profile.sim_seconds
            if enabled:
                out[f"q{query}_hidden_s"] = engine.last_profile.overlap_hidden_s
    sql = tpch_query(distributed_query)
    for enabled in (False, True):
        db = MiniDoris(num_nodes=num_nodes, mode="sirius", overlap=enabled)
        db.load_tables(harness.data)
        db.warm_caches()
        result = db.execute(sql)
        key = "overlap" if enabled else "baseline"
        out[f"dist_{key}_total_s"] = result.total_seconds
        out[f"dist_{key}_exchange_s"] = result.exchange_seconds
        out[f"dist_{key}_exchange_frac"] = result.profile.table2_fractions()["exchange"]
        if enabled:
            out["dist_hidden_s"] = result.profile.overlap_hidden_s
    return out


def oocore_ablation(
    sf: float = 0.02,
    query: int = 9,
    memory_limits_gb: tuple[float, ...] = (0.1, 0.08, 0.05, 0.04, 0.03),
) -> dict:
    """Out-of-core partitioned execution vs the degradation ladder.

    Runs an over-HBM query (Q9's working set exceeds the processing pool
    at the smaller limits) on devices whose memory shrinks step by step,
    once with ``out_of_core`` off (the engine only recovers via the
    fallback ladder after hitting OOM) and once with it on (radix
    partitions spill through the tiered store and the first attempt
    completes on the GPU).  The sweep exposes the slowdown curve: it
    should be smooth and monotone, not a cliff.
    """
    from ..sql import SqlPlanner, TableStats
    from ..tpch import TABLE_BASE_ROWS, TPCH_QUERIES, TPCH_SCHEMAS

    data = generate_tpch(sf=sf)
    # Plan without projection pruning stats so the query's working set
    # genuinely exceeds the shrunken pools (MiniDuck's pruned plans fit
    # even the smallest limits in this sweep).
    stats = {
        name: TableStats(schema, max(int(TABLE_BASE_ROWS[name] * sf), 1))
        for name, schema in TPCH_SCHEMAS.items()
    }
    plan = SqlPlanner(stats).plan_sql(TPCH_QUERIES[query])
    baseline = SiriusEngine.for_spec(GH200)
    expected = baseline.execute(plan, data)
    out: dict = {
        "sf": sf,
        "query": query,
        "baseline_s": baseline.last_profile.sim_seconds,
        "baseline_rows": expected.num_rows,
        "sweep": [],
    }
    for mem in memory_limits_gb:
        entry: dict = {"memory_gb": mem}
        for ooc in (False, True):
            engine = SiriusEngine.for_spec(
                GH200, memory_limit_gb=mem, out_of_core=ooc
            )
            result = engine.execute(plan, data)
            profile = engine.last_profile
            key = "ooc" if ooc else "off"
            entry[f"{key}_s"] = profile.sim_seconds
            entry[f"{key}_tier"] = profile.fallback_tier
            entry[f"{key}_rows_match"] = result.num_rows == expected.num_rows
            if ooc:
                entry["spilled_bytes"] = profile.spill.get("spilled_bytes", 0)
                entry["unspilled_bytes"] = profile.spill.get("unspilled_bytes", 0)
        out["sweep"].append(entry)
    return out


def fusion_ablation(
    harness: AblationHarness, queries: tuple[int, ...] = (1, 6, 3)
) -> dict:
    """Pipeline fusion + compiled expressions on and off.

    Cold and hot runs of the given queries with ``fusion`` toggled.  The
    streaming-bound queries (Q1, Q6) are where intermediate
    materialisation dominates, so fusion's effect is largest there; Q3 is
    the join-heavy control where most time sits in probe/build kernels
    and fusion only trims the residual streaming hops.

    Plans come from the raw SQL planner (as in ``oocore_ablation``), not
    MiniDuck's optimized pipeline: MiniDuck pushes filters into the scan
    and prunes projections, which *already* removes the intermediate
    materialisations fusion targets — the unpushed Filter -> Project
    chains are the shape whose cost fusion is meant to collapse.
    """
    from ..sql import SqlPlanner, TableStats
    from ..tpch import TABLE_BASE_ROWS, TPCH_QUERIES, TPCH_SCHEMAS

    stats = {
        name: TableStats(schema, max(int(TABLE_BASE_ROWS[name] * harness.sf), 1))
        for name, schema in TPCH_SCHEMAS.items()
    }
    planner = SqlPlanner(stats)
    out: dict = {"queries": list(queries), "per_query": {}}
    for query in queries:
        plan = planner.plan_sql(TPCH_QUERIES[query])
        entry: dict = {}
        for enabled in (False, True):
            engine = harness.fresh_engine(fusion=enabled)
            engine.execute(plan, harness.data)  # cold: pays the load
            cold = engine.last_profile
            engine.execute(plan, harness.data)
            hot = engine.last_profile
            key = "fused" if enabled else "baseline"
            entry[f"{key}_cold_s"] = cold.sim_seconds
            entry[f"{key}_hot_s"] = hot.sim_seconds
            entry[f"{key}_kernels"] = hot.kernel_count
            if enabled:
                entry["fused_regions"] = hot.fused_kernels
                entry["saved_bytes"] = hot.fusion_saved_bytes
        entry["hot_speedup"] = (
            entry["baseline_hot_s"] / entry["fused_hot_s"]
            if entry["fused_hot_s"]
            else float("inf")
        )
        out["per_query"][f"q{query}"] = entry
    return out


def predicate_transfer_ablation(sf: float = 0.05, query: int = 3) -> dict[str, float]:
    """The paper's §3.4 predicate-transfer optimisation on its Table 2
    bottleneck: Q3's shuffle."""
    from ..hosts import MiniDoris
    from ..tpch import generate_tpch, tpch_query

    data = generate_tpch(sf=sf)
    out = {}
    for enabled in (False, True):
        db = MiniDoris(num_nodes=4, mode="sirius", predicate_transfer=enabled)
        db.load_tables(data)
        db.warm_caches()
        result = db.execute(tpch_query(query))
        key = "pt" if enabled else "baseline"
        out[f"{key}_total_s"] = result.total_seconds
        out[f"{key}_exchange_s"] = result.exchange_seconds
        out[f"{key}_bytes"] = result.exchanged_bytes
    return out
