"""Differential baseline harness: the SQL shape battery run against the
in-repo engines (MiniDuck CPU reference, Sirius GPU) and optional embedded
baselines (DuckDB, SQLite) with value cross-checking and resource-monitored
timing.  See DESIGN.md, "SQL coverage & differential testing"."""

from .battery import SCALE_FACTOR, BatteryCase, battery_cases, expected_shapes
from .canonical import canonical_rows, rows_equal
from .engines import BaselineResult, available_baselines, baseline_engines
from .harness import run_battery_baselines

__all__ = [
    "SCALE_FACTOR",
    "BatteryCase",
    "battery_cases",
    "expected_shapes",
    "canonical_rows",
    "rows_equal",
    "BaselineResult",
    "available_baselines",
    "baseline_engines",
    "run_battery_baselines",
]
