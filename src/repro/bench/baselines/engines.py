"""Embedded baseline engines for differential testing.

DuckDB and SQLite are *optional*: neither is a dependency of the package.
``is_available`` gates on importability, so the harness (and the battery
tests) skip cleanly on machines without them — CI installs DuckDB to get
the full cross-check, while the stdlib ``sqlite3`` baseline is available
everywhere.

Each adapter owns the dialect translation from the battery's SQL (which
matches the in-repo frontend, itself a DuckDB-flavoured subset) into what
the baseline accepts, plus a static ``unsupported_reason`` filter for the
few constructs a baseline cannot evaluate faithfully.
"""

from __future__ import annotations

import importlib
import importlib.util
import re
from dataclasses import dataclass

from ...columnar import BOOL, DATE32, FLOAT64, INT64, STRING, Table

__all__ = [
    "BaselineEngine",
    "BaselineResult",
    "DuckDbBaseline",
    "SqliteBaseline",
    "available_baselines",
    "baseline_engines",
]


@dataclass
class BaselineResult:
    """Outcome of one battery statement on one baseline engine."""

    engine: str
    case_id: str
    category: str
    status: str  # "match" | "mismatch" | "error" | "unsupported"
    rows: int | None
    cols: int | None
    elapsed_s: float | None
    detail: str | None = None


class BaselineEngine:
    """One embedded engine loaded with the TPC-H tables."""

    name = ""

    @classmethod
    def is_available(cls) -> bool:
        raise NotImplementedError

    def load(self, tables: dict[str, Table]) -> None:
        raise NotImplementedError

    def translate(self, sql: str) -> str:
        return sql

    def unsupported_reason(self, sql: str) -> str | None:
        """A static reason this engine cannot faithfully run ``sql``."""
        return None

    def execute(self, sql: str) -> list[tuple]:
        raise NotImplementedError

    def close(self) -> None:
        pass


def _column_defs(table: Table, int_t: str, float_t: str, text_t: str, date_t: str) -> str:
    defs = []
    for f in table.schema.fields:
        if f.dtype is STRING:
            sql_t = text_t
        elif f.dtype is DATE32:
            sql_t = date_t
        elif f.dtype is FLOAT64:
            sql_t = float_t
        elif f.dtype is BOOL or f.dtype is INT64 or f.dtype.is_integer:
            sql_t = int_t
        else:
            sql_t = float_t
        defs.append(f"{f.name} {sql_t}")
    return ", ".join(defs)


class DuckDbBaseline(BaselineEngine):
    """DuckDB via its Python API (optional dependency)."""

    name = "duckdb"

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("duckdb") is not None

    def __init__(self) -> None:
        if not self.is_available():
            raise RuntimeError("duckdb is not installed")
        duckdb = importlib.import_module("duckdb")
        self._con = duckdb.connect(":memory:")

    def load(self, tables: dict[str, Table]) -> None:
        for name, table in tables.items():
            defs = _column_defs(table, "BIGINT", "DOUBLE", "VARCHAR", "DATE")
            self._con.execute(f"create table {name} ({defs})")
            rows = table.to_rows()
            if rows:
                holes = ", ".join("?" * len(table.schema.fields))
                self._con.executemany(f"insert into {name} values ({holes})", rows)

    def translate(self, sql: str) -> str:
        # numpy-style float->int casts truncate; DuckDB's round. Align them.
        return re.sub(r"cast\(([^()]+) as int\)", r"cast(trunc(\1) as bigint)", sql)

    def execute(self, sql: str) -> list[tuple]:
        return self._con.execute(self.translate(sql)).fetchall()

    def close(self) -> None:
        self._con.close()


class SqliteBaseline(BaselineEngine):
    """Stdlib ``sqlite3``: the always-available baseline."""

    name = "sqlite"

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("sqlite3") is not None

    def __init__(self) -> None:
        sqlite3 = importlib.import_module("sqlite3")
        self._con = sqlite3.connect(":memory:")
        # The battery's LIKE semantics are case-sensitive (as in DuckDB).
        self._con.execute("pragma case_sensitive_like = on")

    def load(self, tables: dict[str, Table]) -> None:
        for name, table in tables.items():
            defs = _column_defs(table, "INTEGER", "REAL", "TEXT", "TEXT")
            self._con.execute(f"create table {name} ({defs})")
            date_cols = [i for i, f in enumerate(table.schema.fields) if f.dtype is DATE32]
            rows = table.to_rows()
            if date_cols:
                rows = [
                    tuple(
                        v.isoformat() if i in date_cols and v is not None else v
                        for i, v in enumerate(row)
                    )
                    for row in rows
                ]
            if rows:
                holes = ", ".join("?" * len(table.schema.fields))
                self._con.executemany(f"insert into {name} values ({holes})", rows)
        self._con.commit()

    def translate(self, sql: str) -> str:
        # DATE literals compare correctly as ISO-8601 text.
        out = re.sub(r"\bdate\s+'", "'", sql)
        # EXTRACT -> strftime.
        fmt = {"year": "%Y", "month": "%m", "day": "%d"}

        def _extract(m: re.Match) -> str:
            return f"cast(strftime('{fmt[m.group(1)]}', {m.group(2)}) as integer)"

        out = re.sub(r"extract\s*\(\s*(year|month|day)\s+from\s+([^()]+?)\s*\)", _extract, out)
        # SUBSTRING (both forms) -> substr.
        out = re.sub(
            r"substring\s*\(\s*([^()]+?)\s+from\s+(\d+)\s+for\s+(\d+)\s*\)",
            r"substr(\1, \2, \3)",
            out,
        )
        out = re.sub(r"\bsubstring\s*\(", "substr(", out)
        # sqlite requires LIMIT before OFFSET.
        if re.search(r"\boffset\b", out) and not re.search(r"\blimit\b", out):
            out = re.sub(r"\boffset\b", "limit -1 offset", out)
        # This sqlite build (3.40) predates the CONCAT function.
        out = re.sub(
            r"\bconcat\s*\(([^()]+)\)",
            lambda m: "(" + " || ".join(p.strip() for p in _split_args(m.group(1))) + ")",
            out,
        )
        return out

    def unsupported_reason(self, sql: str) -> str | None:
        if re.search(r"round\s*\([^()]*,\s*-\d+\s*\)", sql):
            return "sqlite round() ignores negative digit counts"
        return None

    def execute(self, sql: str) -> list[tuple]:
        cursor = self._con.execute(self.translate(sql))
        return cursor.fetchall()

    def close(self) -> None:
        self._con.close()


def _split_args(arglist: str) -> list[str]:
    """Split a paren-free argument list on commas outside string literals."""
    parts, depth, current = [], False, []
    for ch in arglist:
        if ch == "'":
            depth = not depth
        if ch == "," and not depth:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


_ENGINES: dict[str, type[BaselineEngine]] = {
    DuckDbBaseline.name: DuckDbBaseline,
    SqliteBaseline.name: SqliteBaseline,
}


def available_baselines() -> list[str]:
    """Names of baseline engines importable in this environment."""
    return [name for name, cls in _ENGINES.items() if cls.is_available()]


def baseline_engines(
    tables: dict[str, Table], names: list[str] | None = None
) -> dict[str, BaselineEngine]:
    """Construct and load every requested (available) baseline engine."""
    selected = names if names is not None else list(_ENGINES)
    out: dict[str, BaselineEngine] = {}
    for name in selected:
        if name not in _ENGINES:
            raise ValueError(f"unknown baseline engine {name!r}")
        if not _ENGINES[name].is_available():
            continue
        engine = _ENGINES[name]()
        engine.load(tables)
        out[name] = engine
    return out
