"""Differential baseline runs: battery statements against embedded engines.

The harness executes every battery statement on the MiniDuck CPU reference
and on each available baseline (DuckDB, SQLite), cross-checks values via
sorted-row canonicalization, and records per-statement timings plus
process resource usage into a JSON artifact with a committed schema
(``ARTIFACT_SCHEMA_VERSION``); CI uploads the artifact from the `battery`
job so baseline timings accumulate across commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ...hosts import MiniDuck
from ...tpch.dbgen import generate_tpch
from .battery import SCALE_FACTOR, battery_cases
from .canonical import rows_equal
from .engines import BaselineResult, available_baselines, baseline_engines
from .monitor import ResourceMonitor

__all__ = ["ARTIFACT_SCHEMA_VERSION", "run_battery_baselines"]

# Committed artifact schema; bump on any structural change.
ARTIFACT_SCHEMA_VERSION = 1


def run_battery_baselines(
    engines: list[str] | None = None,
    out_path: str | Path | None = None,
    sf: float = SCALE_FACTOR,
    limit: int | None = None,
) -> dict:
    """Run the battery differentially; return (and optionally write) the artifact."""
    tables = generate_tpch(sf)
    reference = MiniDuck()
    reference.load_tables(tables)

    cases = battery_cases()
    if limit is not None:
        cases = cases[:limit]

    ref_rows: dict[str, list[tuple]] = {}
    with ResourceMonitor() as ref_monitor:
        for case in cases:
            ref_rows[case.case_id] = reference.execute(case.sql).table.to_rows()

    results: list[BaselineResult] = []
    engine_stats: dict[str, dict] = {}
    loaded = baseline_engines(tables, engines)
    for name, engine in loaded.items():
        with ResourceMonitor() as monitor:
            for case in cases:
                results.append(_run_case(engine, case, ref_rows[case.case_id]))
        engine_results = [r for r in results if r.engine == name]
        engine_stats[name] = _summarize(engine_results, monitor.stats)
        engine.close()

    artifact = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "generated_by": "repro.bench.baselines",
        "scale_factor": sf,
        "statement_count": len(cases),
        "available_engines": available_baselines(),
        "reference": {"engine": "miniduck-cpu", "resources": ref_monitor.stats},
        "engines": engine_stats,
        "results": [vars(r) for r in results],
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(artifact, indent=1) + "\n")
    return artifact


def _run_case(engine, case, reference_rows: list[tuple]) -> BaselineResult:
    reason = engine.unsupported_reason(case.sql)
    if reason is not None:
        return BaselineResult(engine.name, case.case_id, case.category, "unsupported",
                              None, None, None, reason)
    # Real engines run in real time; these are not simulated timestamps.
    start = time.perf_counter()  # lint: allow=RR01
    try:
        rows = engine.execute(case.sql)
    except Exception as exc:  # a baseline rejecting the dialect is data, not a crash
        return BaselineResult(engine.name, case.case_id, case.category, "error",
                              None, None, time.perf_counter() - start,  # lint: allow=RR01
                              f"{type(exc).__name__}: {exc}")
    elapsed = time.perf_counter() - start  # lint: allow=RR01
    cols = len(rows[0]) if rows else len(reference_rows[0]) if reference_rows else 0
    if rows_equal(rows, reference_rows):
        return BaselineResult(engine.name, case.case_id, case.category, "match",
                              len(rows), cols, elapsed)
    return BaselineResult(engine.name, case.case_id, case.category, "mismatch",
                          len(rows), cols, elapsed,
                          f"baseline {len(rows)} rows vs reference {len(reference_rows)}")


def _summarize(results: list[BaselineResult], resources: dict) -> dict:
    by_status: dict[str, int] = {}
    for r in results:
        by_status[r.status] = by_status.get(r.status, 0) + 1
    return {
        "cases": len(results),
        "match": by_status.get("match", 0),
        "mismatch": by_status.get("mismatch", 0),
        "error": by_status.get("error", 0),
        "unsupported": by_status.get("unsupported", 0),
        "total_statement_s": sum(r.elapsed_s for r in results if r.elapsed_s is not None),
        "resources": resources,
    }
