"""Result canonicalization for cross-engine comparison.

Engines disagree on incidental representation long before they disagree
on semantics: row order without ORDER BY, ``datetime.date`` vs ISO text,
``Decimal`` sums vs floats, ints where another engine widens to float.
``canonical_rows`` maps every result to a normal form — value-normalized
tuples in a total sort order — so :func:`rows_equal` only fails on real
semantic differences (with float tolerance and NULL-aware equality).
"""

from __future__ import annotations

import datetime
import math
from decimal import Decimal

__all__ = ["normalize_value", "canonical_rows", "values_match", "rows_equal"]

REL_TOL = 1e-6
ABS_TOL = 1e-6


def normalize_value(value):
    """Map an engine-specific cell value onto the comparison domain."""
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, Decimal):
        return float(value)
    if isinstance(value, datetime.datetime):
        return value.date().isoformat()
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, bytes):
        return value.decode("utf-8", "replace")
    if hasattr(value, "item"):  # numpy scalar
        return normalize_value(value.item())
    return value


def _sort_key(row: tuple) -> tuple:
    """A total order over normalized rows.

    Floats are keyed at 6 significant digits so values that differ only
    by ulps land adjacent; ``values_match`` does the exact comparison.
    """
    key = []
    for v in row:
        if v is None:
            key.append((0, ""))
        elif isinstance(v, (int, float)):
            key.append((1, f"{float(v):+.6e}"))
        else:
            key.append((2, str(v)))
    return tuple(key)


def canonical_rows(rows) -> list[tuple]:
    """Normalize every value and sort rows into the canonical order."""
    return sorted((tuple(normalize_value(v) for v in row) for row in rows), key=_sort_key)


def values_match(x, y, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """NULL-aware, tolerance-aware scalar equality."""
    if x is None or y is None:
        return x is None and y is None
    if isinstance(x, (int, float)) and isinstance(y, (int, float)):
        return math.isclose(float(x), float(y), rel_tol=rel_tol, abs_tol=abs_tol)
    return x == y


def rows_equal(a, b, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """Compare two result sets up to canonical order and float tolerance."""
    ca, cb = canonical_rows(a), canonical_rows(b)
    if len(ca) != len(cb):
        return False
    for row_a, row_b in zip(ca, cb):
        if len(row_a) != len(row_b):
            return False
        if not all(values_match(x, y, rel_tol, abs_tol) for x, y in zip(row_a, row_b)):
            return False
    return True
