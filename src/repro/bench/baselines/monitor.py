"""Resource monitoring for baseline runs without hard dependencies.

The container has no psutil, so the monitor is built on the stdlib:
``time.perf_counter`` for wall clock, ``resource.getrusage`` for CPU time
and peak RSS.  When psutil *is* installed (CI may add it), its live RSS
reading is recorded as well — the artifact schema keeps the field nullable
so consumers never depend on it.
"""

from __future__ import annotations

import importlib.util
import resource
import time

__all__ = ["ResourceMonitor"]

_HAS_PSUTIL = importlib.util.find_spec("psutil") is not None


class ResourceMonitor:
    """Context manager sampling wall/CPU time and memory around a block."""

    def __init__(self) -> None:
        self.stats: dict = {}

    def __enter__(self) -> "ResourceMonitor":
        # Baselines are real external engines: wall time here is genuinely
        # wall time, not part of the simulated timeline.
        self._wall0 = time.perf_counter()  # lint: allow=RR01
        usage = resource.getrusage(resource.RUSAGE_SELF)
        self._user0 = usage.ru_utime
        self._sys0 = usage.ru_stime
        return self

    def __exit__(self, *exc) -> None:
        usage = resource.getrusage(resource.RUSAGE_SELF)
        self.stats = {
            "wall_s": time.perf_counter() - self._wall0,  # lint: allow=RR01
            "user_cpu_s": usage.ru_utime - self._user0,
            "sys_cpu_s": usage.ru_stime - self._sys0,
            # ru_maxrss is KiB on Linux; a process-lifetime high-water mark.
            "max_rss_kib": usage.ru_maxrss,
            "rss_kib": _live_rss_kib(),
        }


def _live_rss_kib() -> int | None:
    if not _HAS_PSUTIL:
        return None
    import psutil

    return psutil.Process().memory_info().rss // 1024
