"""SQL shape battery: a catalog of one-line statements over TPC-H.

Inspired by opteryx's battery-of-shapes test style: every statement is a
single line of SQL over the deterministic ``generate_tpch(0.01)`` catalog,
paired with the expected ``(rows, cols)`` result shape committed in
``expected_shapes.json``.  The battery is the shared substrate for

* shape regression tests (CPU reference and Sirius GPU must both produce
  the committed shape and agree on values, ``tests/sql/test_battery_shape.py``),
* differential baseline runs against embedded engines
  (:mod:`repro.bench.baselines.harness`), and
* serving-mode consistency checks.

Statements are grouped into categories; each case gets a stable id
``<category>-<index>`` so committed shapes survive insertions in *other*
categories.  Append new statements at the end of a category rather than
reordering, and refresh shapes with
``python -m repro battery --refresh-shapes``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["BatteryCase", "battery_cases", "expected_shapes", "SCALE_FACTOR"]

# The battery is defined against this deterministic dbgen scale factor.
SCALE_FACTOR = 0.01

_SHAPES_PATH = Path(__file__).with_name("expected_shapes.json")


@dataclass(frozen=True)
class BatteryCase:
    case_id: str
    category: str
    sql: str


def _comparison_sweep() -> list[str]:
    """Every comparison operator over int, float, and date columns."""
    out = []
    for op in ("=", "<>", "<", "<=", ">", ">="):
        out.append(f"select count(*) as n from part where p_size {op} 25")
        out.append(f"select count(*) as n from lineitem where l_discount {op} 0.05")
        out.append(
            f"select count(*) as n from orders where o_orderdate {op} date '1995-06-15'"
        )
    return out


def _aggregate_sweep() -> list[str]:
    """Every aggregate, both grouped and global."""
    out = []
    for fn in ("sum", "min", "max", "avg", "count"):
        out.append(f"select {fn}(l_quantity) as v from lineitem")
        out.append(
            f"select l_returnflag, {fn}(l_extendedprice) as v from lineitem "
            "group by l_returnflag order by l_returnflag"
        )
        out.append(
            f"select o_orderpriority, {fn}(o_totalprice) as v from orders "
            "group by o_orderpriority order by o_orderpriority"
        )
    return out


_PREDICATE = [
    "select count(*) as n from part where p_size + 5 < 15",
    "select count(*) as n from part where p_size - 5 > 40",
    "select count(*) as n from part where p_size * 2 >= 98",
    "select count(*) as n from part where p_size / 2 >= 24",
    "select count(*) as n from part where p_size % 2 = 0",
    "select count(*) as n from part where p_retailprice * 1.1 > 2000.0",
    "select count(*) as n from part where -p_size < -49",
    "select count(*) as n from lineitem where l_extendedprice * (1 - l_discount) > 90000.0",
    "select count(*) as n from lineitem where l_quantity * l_discount > 4.5",
    "select count(*) as n from region where 1 = 1",
    "select count(*) as n from region where 1 = 0",
    "select count(*) as n from region where not 1 = 0",
    "select count(*) as n from region where 1 = 1 and 2 > 1",
    "select count(*) as n from region where 1 = 0 or 2 > 1",
    "select count(*) as n from orders where o_orderstatus = 'F' and o_totalprice > 100000.0",
    "select count(*) as n from orders where o_orderstatus = 'F' or o_orderstatus = 'O'",
    "select count(*) as n from orders where not o_orderstatus = 'F'",
    "select count(*) as n from orders where not (o_orderstatus = 'F' or o_orderstatus = 'O')",
    "select count(*) as n from lineitem where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'",
    "select count(*) as n from lineitem where l_returnflag = 'R' and l_linestatus = 'F' and l_quantity < 10",
    "select count(*) as n from customer where c_acctbal < 0.0",
    "select count(*) as n from customer where c_acctbal >= 0.0 and c_acctbal <= 1000.0",
    "select count(*) as n from supplier where s_acctbal > 5000.0 or s_nationkey < 5",
    "select count(*) as n from partsupp where ps_availqty < 100 and ps_supplycost < 500.0",
    "select count(*) as n from nation where n_regionkey = 0 and n_nationkey > 10",
    "select count(*) as n from orders where o_custkey % 10 = 3",
    "select count(*) as n from lineitem where l_commitdate < l_receiptdate",
    "select count(*) as n from lineitem where l_shipdate > l_commitdate",
    "select count(*) as n from orders where extract(year from o_orderdate) = 1995",
    "select count(*) as n from orders where extract(month from o_orderdate) = 12",
    "select count(*) as n from orders where extract(day from o_orderdate) = 1",
]

_CASE_BETWEEN_IN_LIKE = [
    "select case when p_size > 25 then 'big' else 'small' end as t, count(*) as n from part group by t order by t",
    "select case when p_size > 40 then 'xl' when p_size > 20 then 'l' else 's' end as t, count(*) as n from part group by t order by t",
    "select case when p_size > 25 then 'big' end as t, count(*) as n from part group by t order by t",
    "select case when l_quantity < 10 then 1 else 0 end as small, count(*) as n from lineitem group by small order by small",
    "select sum(case when o_orderstatus = 'F' then 1 else 0 end) as f from orders",
    "select sum(case when o_orderstatus = 'F' then o_totalprice else 0.0 end) as v from orders",
    "select count(*) as n from part where case when p_size > 25 then 1 else 0 end = 1",
    "select case when n_regionkey = 0 then n_name else 'other' end as x from nation order by x",
    "select case when n_regionkey = 0 then n_name end as x from nation order by x",
    "select case when p_size > 25 then case when p_size > 40 then 'xl' else 'l' end else 's' end as t, count(*) as n from part group by t order by t",
    "select count(*) as n from part where p_size between 10 and 20",
    "select count(*) as n from part where p_size not between 10 and 20",
    "select count(*) as n from part where p_size between 20 and 10",
    "select count(*) as n from part where p_size between 25 and 25",
    "select count(*) as n from lineitem where l_discount between 0.05 and 0.07",
    "select count(*) as n from orders where o_orderdate between date '1995-01-01' and date '1995-12-31'",
    "select count(*) as n from part where p_size + 1 between 11 and 21",
    "select count(*) as n from lineitem where l_quantity between 49 and 50",
    "select count(*) as n from orders where o_orderkey in (1, 2, 3, 4)",
    "select count(*) as n from orders where o_orderkey in (1)",
    "select count(*) as n from orders where o_orderkey not in (1, 2, 3, 4)",
    "select count(*) as n from orders where o_orderstatus in ('F', 'O')",
    "select count(*) as n from orders where o_orderstatus not in ('F', 'O')",
    "select count(*) as n from part where p_brand in ('Brand#12', 'Brand#23', 'Brand#34')",
    "select count(*) as n from part where p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')",
    "select count(*) as n from nation where n_regionkey in (0, 2, 4)",
    "select count(*) as n from lineitem where l_shipmode in ('MAIL', 'SHIP')",
    "select count(*) as n from part where p_name like 'a%'",
    "select count(*) as n from part where p_name like '%ous%'",
    "select count(*) as n from part where p_name like '%red'",
    "select count(*) as n from part where p_name not like '%red%'",
    "select count(*) as n from part where p_type like 'PROMO%'",
    "select count(*) as n from part where p_type like '%BRASS'",
    "select count(*) as n from part where p_type like '%BURNISHED%'",
    "select count(*) as n from nation where n_name like '_NITED%'",
    "select count(*) as n from nation where n_name like '____'",
    "select count(*) as n from part where p_container like 'SM ___'",
    "select count(*) as n from part where p_name like '%%'",
    "select count(*) as n from part where p_type like 'PROMO\\%' escape '\\'",
    "select count(*) as n from part where p_name like '%\\_%' escape '\\'",
    "select count(*) as n from customer where c_phone like '2_-%'",
    "select count(*) as n from customer where c_mktsegment like 'BUILD%'",
    "select count(*) as n from supplier where s_name like 'Supplier#00000001_'",
]

_DISTINCT = [
    "select distinct o_orderstatus from orders order by o_orderstatus",
    "select distinct l_returnflag from lineitem order by l_returnflag",
    "select distinct l_linestatus from lineitem order by l_linestatus",
    "select distinct l_returnflag, l_linestatus from lineitem order by l_returnflag, l_linestatus",
    "select distinct p_brand from part order by p_brand",
    "select distinct p_mfgr from part order by p_mfgr",
    "select distinct n_regionkey from nation order by n_regionkey",
    "select distinct c_mktsegment from customer order by c_mktsegment",
    "select distinct o_orderpriority from orders order by o_orderpriority",
    "select distinct o_shippriority from orders",
    "select distinct l_shipmode from lineitem order by l_shipmode",
    "select distinct p_size from part where p_size > 40 order by p_size",
    "select distinct p_size % 10 as d from part order by d",
    "select distinct extract(year from o_orderdate) as y from orders order by y",
    "select distinct s_nationkey from supplier order by s_nationkey limit 5",
    "select distinct p_brand, p_container from part where p_size = 1 order by p_brand, p_container",
    "select count(distinct l_suppkey) as n from lineitem",
    "select count(distinct p_brand) as n from part",
    "select l_returnflag, count(distinct l_suppkey) as n from lineitem group by l_returnflag order by l_returnflag",
    "select o_orderstatus, count(distinct o_custkey) as n from orders group by o_orderstatus order by o_orderstatus",
    "select distinct o_orderstatus, o_orderpriority from orders order by o_orderstatus, o_orderpriority",
]

_HAVING = [
    "select l_returnflag, count(*) as n from lineitem group by l_returnflag having count(*) > 10000 order by l_returnflag",
    "select l_returnflag, count(*) as n from lineitem group by l_returnflag having count(*) > 100000 order by l_returnflag",
    "select p_brand, count(*) as n from part group by p_brand having count(*) > 80 order by p_brand",
    "select p_size, count(*) as n from part group by p_size having count(*) >= 40 order by p_size",
    "select n_regionkey, count(*) as n from nation group by n_regionkey having count(*) = 5 order by n_regionkey",
    "select o_custkey, sum(o_totalprice) as v from orders group by o_custkey having sum(o_totalprice) > 1500000.0 order by o_custkey",
    "select o_custkey, count(*) as n from orders group by o_custkey having count(*) >= 30 order by o_custkey",
    "select l_suppkey, avg(l_quantity) as q from lineitem group by l_suppkey having avg(l_quantity) > 27.0 order by l_suppkey",
    "select l_suppkey, max(l_quantity) as q from lineitem group by l_suppkey having max(l_quantity) < 50 order by l_suppkey",
    "select l_suppkey, min(l_discount) as d from lineitem group by l_suppkey having min(l_discount) > 0.0 order by l_suppkey",
    "select p_mfgr, count(*) as n from part group by p_mfgr having count(*) > 350 and count(*) < 450 order by p_mfgr",
    "select p_mfgr, count(*) as n from part group by p_mfgr having count(*) > 500 or min(p_size) = 1 order by p_mfgr",
    "select c_nationkey, count(*) as n from customer group by c_nationkey having count(*) > 60 order by c_nationkey",
    "select s_nationkey, sum(s_acctbal) as v from supplier group by s_nationkey having sum(s_acctbal) > 10000.0 order by s_nationkey",
    "select o_orderpriority, count(*) as n from orders group by o_orderpriority having max(o_totalprice) > 400000.0 order by o_orderpriority",
    "select l_returnflag, sum(l_quantity) as q from lineitem group by l_returnflag having sum(l_quantity) > 500000 order by l_returnflag",
    "select p_brand, avg(p_retailprice) as v from part group by p_brand having avg(p_retailprice) > 1500.0 order by p_brand",
    "select extract(year from o_orderdate) as y, count(*) as n from orders group by y having count(*) > 2000 order by y",
    "select p_size, count(distinct p_brand) as b from part group by p_size having count(distinct p_brand) >= 25 order by p_size",
    "select avg(l_discount) as a from lineitem having count(*) > 100000",
]

_NULL_SEMANTICS = [
    "select null as x from region",
    "select null as x, r_name from region order by r_name",
    "select count(*) as n from region where null = null",
    "select count(*) as n from lineitem where l_quantity = null",
    "select count(*) as n from lineitem where l_quantity <> null",
    "select count(*) as n from lineitem where not l_quantity = null",
    "select count(*) as n from part where p_size is null",
    "select count(*) as n from part where p_size is not null",
    "select count(*) as n from part where p_name is not null",
    "select coalesce(null, 1) as x from region",
    "select coalesce(null, null, 2) as x from region",
    "select coalesce(p_size, 0) as x from part order by x limit 5",
    "select coalesce(null, n_name) as x from nation order by x limit 5",
    "select coalesce(n_name, 'missing') as x from nation order by x limit 5",
    "select case when 1 = 0 then 1 end as x from region",
    "select count(case when p_size > 25 then 1 end) as n from part",
    "select n_name, s_name from nation left join supplier on n_nationkey = s_nationkey and s_acctbal > 9999.0 order by n_name, s_name",
    "select count(s_name) as with_supp, count(*) as total from nation left join supplier on n_nationkey = s_nationkey and s_acctbal > 9999.0",
    "select n_name from nation left join supplier on n_nationkey = s_nationkey and s_acctbal > 9999.0 where s_name is null order by n_name",
    "select n_name from nation left join supplier on n_nationkey = s_nationkey and s_acctbal > 9999.0 where s_name is not null order by n_name",
    "select count(*) as n from nation left join supplier on n_nationkey = s_nationkey and 1 = 0",
    "select sum(s_acctbal) as v from nation left join supplier on n_nationkey = s_nationkey and s_acctbal > 9999.0",
    "select case when p_size > 25 then p_size end as x from part where p_size > 48 order by x",
    "select count(*) as n from region where null = null or 1 = 1",
    "select count(*) as n from region where null = null and 1 = 1",
]

_SHAPE_EDGE = [
    "select * from region where 1 = 0",
    "select * from nation where n_nationkey < 0",
    "select r_name from region where r_name = 'ATLANTIS'",
    "select count(*) as n from region where 1 = 0",
    "select sum(p_size) as s from part where 1 = 0",
    "select min(p_size) as s, max(p_size) as m from part where 1 = 0",
    "select avg(p_retailprice) as a from part where 1 = 0",
    "select p_size, count(*) as n from part where 1 = 0 group by p_size",
    "select distinct p_brand from part where 1 = 0",
    "select r_name from region order by r_name limit 0",
    "select r_name from region order by r_name limit 1",
    "select count(*) as n from lineitem limit 1",
    "select r_name from region order by r_name limit 100",
    "select r_name from region order by r_name limit 3 offset 4",
    "select r_name from region order by r_name limit 10 offset 99",
    "select n_name from nation order by n_name offset 22",
    "select n_name from nation order by n_name limit 5 offset 0",
    "select * from region order by r_regionkey",
    "select r.* from region r order by r_regionkey",
    "select max(o_totalprice) as m from orders",
    "select count(*) as n from region",
    "select count(*) as n, count(*) as m from region",
    "select r_regionkey, r_regionkey + 1 as nxt from region order by r_regionkey",
    "select o_orderkey from orders where o_orderkey = 1",
    "select l_orderkey, l_linenumber from lineitem where l_orderkey = 1 order by l_linenumber",
]

_SUBQUERY = [
    "select count(*) as n from nation where exists (select 1 from supplier where s_nationkey = n_nationkey)",
    "select count(*) as n from nation where not exists (select 1 from supplier where s_nationkey = n_nationkey)",
    "select n_name from nation where exists (select 1 from supplier where s_nationkey = n_nationkey and s_acctbal > 9000.0) order by n_name",
    "select count(*) as n from customer where exists (select 1 from orders where o_custkey = c_custkey)",
    "select count(*) as n from customer where not exists (select 1 from orders where o_custkey = c_custkey)",
    "select count(*) as n from part where exists (select 1 from lineitem where l_partkey = p_partkey and l_quantity > 49)",
    "select count(*) as n from orders where exists (select 1 from lineitem where l_orderkey = o_orderkey and l_returnflag = 'R')",
    "select count(*) as n from supplier where exists (select 1 from partsupp where ps_suppkey = s_suppkey and ps_availqty < 10)",
    "select count(*) as n from nation where n_regionkey in (select r_regionkey from region where r_name = 'ASIA')",
    "select n_name from nation where n_regionkey in (select r_regionkey from region where r_name like 'A%') order by n_name",
    "select count(*) as n from nation where n_regionkey not in (select r_regionkey from region where r_name = 'ASIA')",
    "select count(*) as n from customer where c_nationkey in (select n_nationkey from nation where n_regionkey = 1)",
    "select count(*) as n from orders where o_custkey in (select c_custkey from customer where c_acctbal < 0.0)",
    "select count(*) as n from lineitem where l_partkey in (select p_partkey from part where p_size = 50)",
    "select count(*) as n from supplier where s_nationkey not in (select n_nationkey from nation where n_regionkey = 0)",
    "select count(*) as n from orders where o_totalprice > (select avg(o_totalprice) from orders)",
    "select count(*) as n from part where p_retailprice < (select min(p_retailprice) + 10.0 from part)",
    "select count(*) as n from lineitem where l_quantity = (select max(l_quantity) from lineitem)",
    "select count(*) as n from supplier where s_acctbal >= (select max(s_acctbal) from supplier)",
    "select count(*) as n from customer where c_acctbal < (select min(c_acctbal) + 1.0 from customer)",
    "select o_orderkey from orders where o_totalprice >= (select max(o_totalprice) from orders) order by o_orderkey",
    "select count(*) as n from nation where exists (select 1 from customer where c_nationkey = n_nationkey and exists (select 1 from orders where o_custkey = c_custkey and o_totalprice > 500000.0))",
    "select count(*) as n from region where exists (select 1 from nation where n_regionkey = r_regionkey and n_name like 'U%')",
    "select r_name from region where exists (select 1 from nation where n_regionkey = r_regionkey and exists (select 1 from supplier where s_nationkey = n_nationkey and s_acctbal < -900.0)) order by r_name",
    "select count(*) as n from part where p_partkey in (select ps_partkey from partsupp where ps_supplycost < (select avg(ps_supplycost) from partsupp))",
    "select count(*) as n from customer where c_custkey in (select o_custkey from orders where o_orderdate >= date '1998-01-01')",
    "select count(*) as n from nation where exists (select 1 from supplier where s_nationkey = n_nationkey) and exists (select 1 from customer where c_nationkey = n_nationkey)",
    "select count(*) as n from orders where exists (select 1 from lineitem where l_orderkey = o_orderkey and l_shipdate > o_orderdate)",
    "select count(*) as n from part where not exists (select 1 from lineitem where l_partkey = p_partkey)",
    "select n_name from nation where n_nationkey in (select s_nationkey from supplier where s_acctbal > (select avg(s_acctbal) from supplier)) order by n_name",
]

_ORDER_LIMIT = [
    "select n_name, n_regionkey from nation order by n_regionkey, n_name limit 10",
    "select n_name, n_regionkey from nation order by n_regionkey desc, n_name asc limit 10",
    "select n_name, n_regionkey from nation order by n_regionkey asc, n_name desc limit 10",
    "select p_brand, p_size, p_retailprice from part order by p_brand, p_size desc, p_retailprice limit 20",
    "select o_orderdate, o_totalprice from orders order by o_orderdate, o_totalprice desc limit 15",
    "select l_returnflag, l_linestatus, l_quantity from lineitem order by l_returnflag, l_linestatus, l_quantity desc limit 12",
    "select c_name from customer order by c_acctbal desc limit 5",
    "select c_name, c_acctbal from customer order by c_acctbal desc, c_name limit 5",
    "select s_name from supplier order by s_acctbal limit 7",
    "select p_name from part order by p_retailprice desc, p_name limit 9",
    "select o_orderkey from orders order by o_totalprice desc limit 1",
    "select p_size from part order by 1 limit 4",
    "select p_brand, count(*) as n from part group by p_brand order by 2 desc, 1 limit 6",
    "select p_brand, count(*) as n from part group by p_brand order by n desc, p_brand limit 6",
    "select p_brand, p_container, count(*) as n from part group by p_brand, p_container order by n desc, p_brand, p_container limit 5",
    "select l_shipmode, sum(l_quantity) as q from lineitem group by l_shipmode order by q desc limit 3",
    "select o_orderdate from orders order by o_orderdate limit 3",
    "select o_orderdate from orders order by o_orderdate desc limit 3",
    "select n_name from nation order by length(n_name), n_name limit 8",
    "select p_retailprice - p_size as v from part order by v desc limit 5",
    "select r_name from region order by r_name desc",
    "select n_regionkey, n_name from nation order by n_regionkey desc, n_name desc limit 25",
    "select c_custkey from customer order by c_custkey limit 10 offset 1490",
    "select o_orderkey from orders order by o_orderkey desc limit 4 offset 2",
    "select p_partkey from part order by p_partkey limit 5 offset 1995",
    "select s_suppkey, s_acctbal from supplier order by s_acctbal desc, s_suppkey limit 10 offset 5",
    "select l_orderkey from lineitem where l_orderkey < 100 order by l_orderkey, l_linenumber limit 8 offset 8",
    "select distinct p_size from part order by p_size desc limit 6",
    "select distinct o_orderpriority from orders order by o_orderpriority limit 2 offset 2",
    "select upper(n_name) as u from nation order by u desc limit 5",
]

_FUNCTIONS = [
    "select upper(n_name) as u from nation order by u limit 5",
    "select lower(r_name) as x from region order by x",
    "select upper(lower(r_name)) as x from region order by x",
    "select length(n_name) as l from nation order by l, n_name limit 10",
    "select n_name, length(n_name) as l from nation where length(n_name) > 10 order by n_name",
    "select max(length(p_name)) as m from part",
    "select abs(-3) as a from region limit 1",
    "select abs(c_acctbal) as a from customer order by a desc limit 5",
    "select count(*) as n from customer where abs(c_acctbal) < 10.0",
    "select round(2.567, 2) as r from region limit 1",
    "select round(o_totalprice, 0) as r from orders order by r desc limit 5",
    "select round(avg(l_discount), 3) as r from lineitem",
    "select round(p_retailprice, -2) as r, count(*) as n from part group by r order by r limit 10",
    "select n_name || '!' as x from nation order by x limit 5",
    "select r_name || '-' || r_name as x from region order by x",
    "select concat(n_name, '/', r_name) as x from nation join region on n_regionkey = r_regionkey order by x limit 5",
    "select substring(n_name, 1, 3) as s from nation order by s limit 10",
    "select substring(n_name from 2 for 4) as s from nation order by s limit 10",
    "select count(*) as n from nation where substring(n_name, 1, 1) = 'U'",
    "select upper(substring(r_name, 1, 2)) as x from region order by x",
    "select extract(year from o_orderdate) as y from orders order by y limit 3",
    "select extract(month from l_shipdate) as m, count(*) as n from lineitem group by m order by m",
    "select extract(day from o_orderdate) as d, count(*) as n from orders group by d order by d limit 10",
    "select cast(p_retailprice as int) as i from part order by i desc limit 5",
    "select cast(p_size as float) as f from part order by f limit 5",
    "select cast(p_size as float) / 7.0 as f from part order by f desc limit 5",
    "select coalesce(null, length(r_name)) as x from region order by x",
    "select length(r_name || '!') as x from region order by x",
    "select min(s_name) as a, max(s_name) as b from supplier",
    "select count(*) as n from part where length(p_name) between 20 and 30",
]

_JOIN = [
    "select n_name, r_name from nation join region on n_regionkey = r_regionkey order by n_name",
    "select n_name, r_name from nation, region where n_regionkey = r_regionkey order by n_name",
    "select count(*) as n from nation join region on n_regionkey = r_regionkey",
    "select count(*) as n from supplier join nation on s_nationkey = n_nationkey",
    "select count(*) as n from customer join nation on c_nationkey = n_nationkey",
    "select count(*) as n from orders join customer on o_custkey = c_custkey",
    "select count(*) as n from lineitem join orders on l_orderkey = o_orderkey",
    "select count(*) as n from lineitem join part on l_partkey = p_partkey",
    "select count(*) as n from partsupp join supplier on ps_suppkey = s_suppkey",
    "select count(*) as n from partsupp join part on ps_partkey = p_partkey",
    "select count(*) as n from supplier join nation on s_nationkey = n_nationkey join region on n_regionkey = r_regionkey",
    "select r_name, count(*) as n from supplier join nation on s_nationkey = n_nationkey join region on n_regionkey = r_regionkey group by r_name order by r_name",
    "select count(*) as n from lineitem join orders on l_orderkey = o_orderkey join customer on o_custkey = c_custkey",
    "select count(*) as n from region cross join region",
    "select count(*) as n from nation cross join region",
    "select r1.r_name, r2.r_name from region r1 cross join region r2 where r1.r_regionkey < r2.r_regionkey order by r1.r_name, r2.r_name limit 5",
    "select count(*) as n from nation n1 join nation n2 on n1.n_regionkey = n2.n_regionkey",
    "select count(*) as n from lineitem join orders on l_orderkey = o_orderkey where o_orderstatus = 'F'",
    "select count(*) as n from lineitem join part on l_partkey = p_partkey where p_size > 40 and l_quantity < 5",
    "select n_name, count(*) as n from customer join nation on c_nationkey = n_nationkey group by n_name order by n_name",
    "select n_name, count(*) as n from supplier join nation on s_nationkey = n_nationkey group by n_name having count(*) >= 5 order by n_name",
    "select o_orderpriority, sum(l_quantity) as q from lineitem join orders on l_orderkey = o_orderkey group by o_orderpriority order by o_orderpriority",
    "select c_mktsegment, count(*) as n from orders join customer on o_custkey = c_custkey group by c_mktsegment order by c_mktsegment",
    "select count(*) as n from nation left join supplier on n_nationkey = s_nationkey",
    "select n_name, count(s_suppkey) as n from nation left join supplier on n_nationkey = s_nationkey group by n_name order by n_name limit 10",
    "select count(*) as n from region left join nation on r_regionkey = n_regionkey",
    "select t.n_name from (select n_name, n_regionkey from nation where n_regionkey < 2) t join region on t.n_regionkey = r_regionkey order by t.n_name",
    "select count(*) as n from lineitem join partsupp on l_partkey = ps_partkey and l_suppkey = ps_suppkey",
    "select s_name from supplier join nation on s_nationkey = n_nationkey where n_name = 'FRANCE' order by s_name",
    "select count(*) as n from orders join customer on o_custkey = c_custkey join nation on c_nationkey = n_nationkey where n_regionkey = 2",
]

_AGGREGATE = [
    "select count(*) as n from lineitem",
    "select sum(l_quantity) as q, sum(l_extendedprice) as v from lineitem",
    "select min(l_shipdate) as a, max(l_shipdate) as b from lineitem",
    "select avg(o_totalprice) as a from orders",
    "select count(*) as n, sum(o_totalprice) as v, avg(o_totalprice) as a from orders",
    "select sum(l_extendedprice * l_discount) as rev from lineitem where l_discount between 0.05 and 0.07 and l_quantity < 24",
    "select l_returnflag, l_linestatus, sum(l_quantity) as q, avg(l_extendedprice) as p, count(*) as n from lineitem group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus",
    "select p_size as sz, count(*) as n from part group by sz order by sz",
    "select p_size, count(*) as n from part group by 1 order by 1",
    "select p_size % 5 as bucket, count(*) as n from part group by bucket order by bucket",
    "select extract(year from o_orderdate) as y, sum(o_totalprice) as v from orders group by y order by y",
    "select n_regionkey, min(n_name) as a, max(n_name) as b from nation group by n_regionkey order by n_regionkey",
    "select o_orderstatus, min(o_orderdate) as a, max(o_orderdate) as b from orders group by o_orderstatus order by o_orderstatus",
    "select l_shipmode, avg(l_discount) as d from lineitem group by l_shipmode order by l_shipmode",
    "select c_nationkey, avg(c_acctbal) as a from customer group by c_nationkey order by c_nationkey limit 10",
    "select p_mfgr, p_brand, count(*) as n from part group by p_mfgr, p_brand order by p_mfgr, p_brand limit 12",
    "select o_custkey % 7 as h, count(*) as n, sum(o_totalprice) as v from orders group by h order by h",
    "select count(*) as n from (select o_custkey from orders group by o_custkey) t",
    "select count(*) as n from (select l_orderkey, count(*) as c from lineitem group by l_orderkey having count(*) = 7) t",
    "select max(n) as m from (select o_custkey, count(*) as n from orders group by o_custkey) t",
    "select avg(c) as a from (select l_orderkey, count(*) as c from lineitem group by l_orderkey) t",
    "select sum(case when l_returnflag = 'R' then l_quantity else 0 end) as r_qty from lineitem",
    "select count(*) as groups from (select p_brand, p_size from part group by p_brand, p_size) t",
    "select l_linenumber, count(*) as n from lineitem group by l_linenumber order by l_linenumber",
    "select s_nationkey, count(*) as n, round(sum(s_acctbal), 1) as v from supplier group by s_nationkey order by s_nationkey",
    "select upper(o_orderstatus) as s, count(*) as n from orders group by s order by s",
    "select length(p_brand) as l, count(*) as n from part group by l order by l",
    "select o_orderpriority, count(distinct o_custkey) as c, count(*) as n from orders group by o_orderpriority order by o_orderpriority",
    "select substring(c_phone, 1, 2) as cc, count(*) as n from customer group by cc order by cc limit 10",
    "select sum(ps_availqty) as q, min(ps_supplycost) as a, max(ps_supplycost) as b from partsupp",
]

_CATEGORIES: dict[str, list[str]] = {
    "predicate": _comparison_sweep() + _PREDICATE,
    "case_between_in_like": _CASE_BETWEEN_IN_LIKE,
    "distinct": _DISTINCT,
    "having": _HAVING,
    "null_semantics": _NULL_SEMANTICS,
    "shape_edge": _SHAPE_EDGE,
    "subquery": _SUBQUERY,
    "order_limit": _ORDER_LIMIT,
    "functions": _FUNCTIONS,
    "join": _JOIN,
    "aggregate": _aggregate_sweep() + _AGGREGATE,
}


def battery_cases() -> list[BatteryCase]:
    """All battery statements with stable per-category ids."""
    cases = []
    for category, statements in _CATEGORIES.items():
        for i, sql in enumerate(statements):
            cases.append(BatteryCase(f"{category}-{i:03d}", category, sql))
    return cases


def expected_shapes() -> dict[str, tuple[int, int]]:
    """The committed ``case_id -> (rows, cols)`` map."""
    raw = json.loads(_SHAPES_PATH.read_text())
    return {k: (v[0], v[1]) for k, v in raw.items()}


def write_expected_shapes(shapes: dict[str, tuple[int, int]]) -> None:
    """Persist a refreshed shape map."""
    payload = {k: list(v) for k, v in sorted(shapes.items())}
    _SHAPES_PATH.write_text(json.dumps(payload, indent=1) + "\n")


def refresh_expected_shapes() -> Path:
    """Recompute every case's shape on the CPU reference and persist it
    (``python -m repro battery --refresh-shapes``)."""
    from ...hosts import MiniDuck
    from ...tpch.dbgen import generate_tpch

    host = MiniDuck()
    host.load_tables(generate_tpch(SCALE_FACTOR))
    shapes = {}
    for case in battery_cases():
        table = host.execute(case.sql).table
        shapes[case.case_id] = (table.num_rows, len(table.schema.fields))
    write_expected_shapes(shapes)
    return _SHAPES_PATH
