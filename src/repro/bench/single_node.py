"""Single-node TPC-H harness: regenerates Figure 4 and Figure 5.

Figure 4 — end-to-end comparison of MiniDuck (the DuckDB role), ClickLite
(the ClickHouse role, with the paper's query rewrites / unsupported-query
handling), and Sirius as a drop-in accelerator for MiniDuck, all
cost-normalised: the CPU engines run on the m7i.16xlarge-class device and
Sirius on the GH200-class device, the two $3.2/h instances of §4.2.

Figure 5 — Sirius' per-query operator-time breakdown (join / group-by /
filter / aggregation / order-by / other).

Times reported are hot-run simulated seconds (data pre-cached in device
memory, per the paper's measurement methodology).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import SiriusEngine
from ..gpu.specs import GH200
from ..hosts import ClickLite, CpuEngine, DidNotFinishError, MiniDuck, SiriusExtension
from ..hosts.clicklite import UnsupportedQueryError
from ..tpch import CLICKHOUSE_UNSUPPORTED, generate_tpch, tpch_query
from .report import ascii_table, bar_series, format_ms, geomean

__all__ = ["Figure4Result", "SingleNodeHarness"]

DEFAULT_SF = 0.1


@dataclass
class QueryTiming:
    query: int
    duckdb_s: float
    clickhouse_s: float | None  # None = DNF or unsupported
    clickhouse_status: str  # "ok" | "dnf" | "unsupported"
    sirius_s: float
    sirius_breakdown: dict[str, float]
    rows: int
    # The full per-query profile (spans included when the harness was
    # built with a real tracer); the fields above are views of it.
    sirius_profile: object = None


@dataclass
class Figure4Result:
    scale_factor: float
    timings: list[QueryTiming] = field(default_factory=list)

    @property
    def speedup_vs_duckdb(self) -> float:
        return geomean([t.duckdb_s / t.sirius_s for t in self.timings])

    @property
    def speedup_vs_clickhouse(self) -> float:
        return geomean(
            [t.clickhouse_s / t.sirius_s for t in self.timings if t.clickhouse_s]
        )

    def figure4_table(self) -> str:
        rows = []
        for t in self.timings:
            ch = {
                "ok": format_ms(t.clickhouse_s),
                "dnf": "DNF",
                "unsupported": "unsupported",
            }[t.clickhouse_status]
            rows.append(
                (
                    f"Q{t.query}",
                    format_ms(t.duckdb_s),
                    ch,
                    format_ms(t.sirius_s),
                    f"{t.duckdb_s / t.sirius_s:.2f}x",
                )
            )
        rows.append(("geomean", "", "", "", f"{self.speedup_vs_duckdb:.2f}x"))
        return ascii_table(
            ["query", "MiniDuck ms", "ClickLite ms", "Sirius ms", "speedup"], rows
        )

    def figure5_table(self) -> str:
        lines = ["Sirius per-query breakdown (J=join G=groupby F=filter A=agg O=orderby .=other t=transfer)"]
        for t in self.timings:
            total = sum(t.sirius_breakdown.values())
            if total <= 0:
                continue
            fracs = {k: v / total for k, v in t.sirius_breakdown.items()}
            lines.append(bar_series(f"Q{t.query}", fracs))
        return "\n".join(lines)

    def dominant_category(self, query: int) -> str:
        timing = next(t for t in self.timings if t.query == query)
        return max(timing.sirius_breakdown.items(), key=lambda kv: kv[1])[0]


class SingleNodeHarness:
    """Owns the three engines and runs query sets against them."""

    def __init__(self, sf: float = DEFAULT_SF, seed: int = 19920101, tracer=None):
        """``tracer`` (a :class:`~repro.obs.Tracer`) instruments the Sirius
        engine; each :class:`QueryTiming` then carries a profile with the
        query's span tree.  Null by default — benchmark output is
        byte-identical with or without it."""
        self.sf = sf
        self.data = generate_tpch(sf=sf, seed=seed)

        self.duck = MiniDuck()
        self.duck.load_tables(self.data)

        self.accelerated = MiniDuck()
        self.accelerated.load_tables(self.data)
        self.sirius = SiriusEngine.for_spec(GH200, tracer=tracer)
        self.accelerated.install_extension(
            SiriusExtension(self.sirius, fallback_engine=CpuEngine())
        )
        self.sirius.warm_cache(self.data)  # hot-run methodology

        lineitem_rows = self.data["lineitem"].num_rows
        # ClickHouse's per-query resource envelope, both dimensions of the
        # unified Deadline mechanism scaled to the dataset: an execution-time
        # limit generous for every query that finishes (the slowest, Q1,
        # stays well under half of it), and the join-memory ceiling (a fixed
        # few-GB limit at the paper's SF100 corresponds to ~1.5x lineitem
        # rows of intermediates here) that Q9's written-order cross join
        # exceeds, reporting DNF as in the paper.
        self.click = ClickLite(
            max_intermediate_rows=int(1.5 * lineitem_rows),
            deadline_s=max(0.2 * sf, 0.005),
        )
        self.click.load_tables(self.data)

    def run_query(self, query: int) -> QueryTiming:
        duck_res = self.duck.execute(tpch_query(query))
        sirius_res = self.accelerated.execute(tpch_query(query))

        ch_s: float | None = None
        status = "ok"
        if query in CLICKHOUSE_UNSUPPORTED:
            status = "unsupported"
        else:
            try:
                ch_res = self.click.execute(tpch_query(query, for_clickhouse=True))
                ch_s = ch_res.sim_seconds
            except DidNotFinishError:
                status = "dnf"
            except UnsupportedQueryError:
                status = "unsupported"

        profile = sirius_res.profile
        if profile is not None and not profile.label:
            profile.label = f"Q{query}"
        return QueryTiming(
            query=query,
            duckdb_s=duck_res.sim_seconds,
            clickhouse_s=ch_s,
            clickhouse_status=status,
            sirius_s=sirius_res.sim_seconds,
            sirius_breakdown=dict(profile.breakdown) if profile else {},
            rows=sirius_res.table.num_rows,
            sirius_profile=profile,
        )

    def run(self, queries=range(1, 23)) -> Figure4Result:
        result = Figure4Result(self.sf)
        for q in queries:
            result.timings.append(self.run_query(q))
        return result
