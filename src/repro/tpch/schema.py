"""TPC-H schemas (all eight tables) in the reproduction's type system.

DECIMALs are float64 (see ``repro.columnar.dtypes``); keys are int64 —
matching Sirius' uint64-row-id-capable engine width.
"""

from __future__ import annotations

from ..columnar import Schema

__all__ = ["TPCH_SCHEMAS", "TABLE_BASE_ROWS", "tpch_schema"]

TPCH_SCHEMAS: dict[str, Schema] = {
    "region": Schema(
        [
            ("r_regionkey", "int64"),
            ("r_name", "string"),
            ("r_comment", "string"),
        ]
    ),
    "nation": Schema(
        [
            ("n_nationkey", "int64"),
            ("n_name", "string"),
            ("n_regionkey", "int64"),
            ("n_comment", "string"),
        ]
    ),
    "supplier": Schema(
        [
            ("s_suppkey", "int64"),
            ("s_name", "string"),
            ("s_address", "string"),
            ("s_nationkey", "int64"),
            ("s_phone", "string"),
            ("s_acctbal", "float64"),
            ("s_comment", "string"),
        ]
    ),
    "customer": Schema(
        [
            ("c_custkey", "int64"),
            ("c_name", "string"),
            ("c_address", "string"),
            ("c_nationkey", "int64"),
            ("c_phone", "string"),
            ("c_acctbal", "float64"),
            ("c_mktsegment", "string"),
            ("c_comment", "string"),
        ]
    ),
    "part": Schema(
        [
            ("p_partkey", "int64"),
            ("p_name", "string"),
            ("p_mfgr", "string"),
            ("p_brand", "string"),
            ("p_type", "string"),
            ("p_size", "int64"),
            ("p_container", "string"),
            ("p_retailprice", "float64"),
            ("p_comment", "string"),
        ]
    ),
    "partsupp": Schema(
        [
            ("ps_partkey", "int64"),
            ("ps_suppkey", "int64"),
            ("ps_availqty", "int64"),
            ("ps_supplycost", "float64"),
            ("ps_comment", "string"),
        ]
    ),
    "orders": Schema(
        [
            ("o_orderkey", "int64"),
            ("o_custkey", "int64"),
            ("o_orderstatus", "string"),
            ("o_totalprice", "float64"),
            ("o_orderdate", "date"),
            ("o_orderpriority", "string"),
            ("o_clerk", "string"),
            ("o_shippriority", "int64"),
            ("o_comment", "string"),
        ]
    ),
    "lineitem": Schema(
        [
            ("l_orderkey", "int64"),
            ("l_partkey", "int64"),
            ("l_suppkey", "int64"),
            ("l_linenumber", "int64"),
            ("l_quantity", "float64"),
            ("l_extendedprice", "float64"),
            ("l_discount", "float64"),
            ("l_tax", "float64"),
            ("l_returnflag", "string"),
            ("l_linestatus", "string"),
            ("l_shipdate", "date"),
            ("l_commitdate", "date"),
            ("l_receiptdate", "date"),
            ("l_shipinstruct", "string"),
            ("l_shipmode", "string"),
            ("l_comment", "string"),
        ]
    ),
}

# Rows at scale factor 1.0 per the TPC-H specification.
TABLE_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,  # approximate: 1-7 lines per order
}


def tpch_schema(table: str) -> Schema:
    """Schema of one TPC-H table; raises KeyError for unknown names."""
    return TPCH_SCHEMAS[table]
