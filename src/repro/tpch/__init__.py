"""TPC-H substrate: schemas, deterministic dbgen, and the 22 queries."""

from .dbgen import generate_table, generate_tpch
from .queries import (
    CLICKHOUSE_REWRITES,
    CLICKHOUSE_UNSUPPORTED,
    TPCH_QUERIES,
    tpch_query,
)
from .schema import TABLE_BASE_ROWS, TPCH_SCHEMAS, tpch_schema

__all__ = [
    "CLICKHOUSE_REWRITES",
    "CLICKHOUSE_UNSUPPORTED",
    "TABLE_BASE_ROWS",
    "TPCH_QUERIES",
    "TPCH_SCHEMAS",
    "generate_table",
    "generate_tpch",
    "tpch_query",
    "tpch_schema",
]
